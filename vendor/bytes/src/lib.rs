//! Offline stand-in for the `bytes` crate.
//!
//! The container has no registry access, so the workspace vendors the tiny
//! subset of the real crate's API it actually uses: [`Bytes`], an immutable,
//! reference-counted byte buffer whose clones share the same allocation.
//! Semantics match the real crate for this subset; anything beyond it is
//! deliberately left out.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice (no copy in the real crate; one here).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Bytes(Arc::from(&a[..]))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes(Arc::from(b))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0[..] == other.0[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0[..].cmp(&other.0[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9u8; 1000]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn slice_ops_via_deref() {
        let a = Bytes::from(vec![5u8, 6, 7, 8]);
        assert_eq!(a[0], 5);
        assert_eq!(a.to_vec(), vec![5, 6, 7, 8]);
        assert!(a.windows(2).any(|w| w == [6, 7]));
    }
}
