//! Offline stand-in for the `proptest` crate.
//!
//! The container has no registry access, so the workspace vendors a small
//! deterministic property-testing engine with the API subset the test
//! suites use: the [`proptest!`] macro, `any::<T>()`, integer/float range
//! strategies, `collection::vec`, `collection::btree_set`,
//! `array::uniform16`/`uniform32`, and the `prop_assert*` family.
//!
//! Differences from the real crate, stated openly:
//!
//! * **No shrinking.** A failing case reports the panic from the raw
//!   generated inputs (printed via the assertion message).
//! * **Deterministic generation.** Inputs derive from a fixed per-test
//!   seed (SplitMix64 over the test name), so failures always reproduce.
//! * `ProptestConfig` carries only `cases`.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration (only the `cases` knob is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the from-scratch bignum
        // properties fast in debug builds while still covering edge cases.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving all value generation.
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift mapping is unbiased enough for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The real crate's `Strategy` also carries shrinking;
/// this one only generates.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-range generator (the target of `any`).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

/// Strategy generating any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` strategy of the real crate.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                assert!(span > 0, "empty range strategy");
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// `Just(v)`: always generates a clone of `v`.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates may shrink the size
    /// below the drawn length (matching the real crate's behaviour of not
    /// guaranteeing exact sizes for sets).
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::btree_set(element, len_range)`.
    pub fn btree_set<S>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.len.generate(rng).max(self.len.start.max(1));
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`uniform16`, `uniform32`, …).
pub mod array {
    use super::*;

    /// Strategy for `[S::Value; N]`.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident => $n:literal),*) => {$(
            /// Array strategy applying `element` to every slot.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }
    uniform_fn!(uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform32 => 32);
}

/// The macro and trait prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Declares deterministic property tests. Mirrors the real macro's shape:
/// an optional `#![proptest_config(..)]` header, then `fn name(pat in
/// strategy, ...) { body }` items (each carrying its own `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!`: plain assertion (no shrink-and-replay machinery).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `prop_assert_eq!` → `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `prop_assert_ne!` → `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// `prop_assume!`: skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(TestRng::for_test("x").next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let s = Strategy::generate(&(3usize..4), &mut rng);
            assert_eq!(s, 3);
        }
    }

    #[test]
    fn collection_and_array_strategies() {
        let mut rng = TestRng::for_test("coll");
        let v = Strategy::generate(&crate::collection::vec(any::<u8>(), 2..5), &mut rng);
        assert!((2..5).contains(&v.len()));
        let a = Strategy::generate(&crate::array::uniform16(any::<u8>()), &mut rng);
        assert_eq!(a.len(), 16);
        let s = Strategy::generate(&crate::collection::btree_set(0u32..500, 1..40), &mut rng);
        assert!(!s.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_checks(
            data in crate::collection::vec(any::<u8>(), 1..10),
            mut x in 0u64..100,
            flag in any::<bool>(),
        ) {
            x += 1;
            prop_assume!(!data.is_empty());
            prop_assert!(x >= 1);
            prop_assert_eq!(data.len(), data.len());
            prop_assert_ne!(x, 0);
            let _ = flag;
        }
    }
}
