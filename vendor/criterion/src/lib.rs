//! Offline stand-in for the `criterion` crate.
//!
//! The container has no registry access, so the workspace vendors a
//! minimal timing harness exposing the subset the benches use:
//! [`Criterion::benchmark_group`], group knobs (`sample_size`,
//! `measurement_time`, `throughput`), `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It runs each benchmark for a bounded number of timed iterations and
//! prints a mean per-iteration figure — enough to compare runs by hand and
//! to keep the benches compiling and executable; it does no statistical
//! analysis, warm-up control, or HTML reporting.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (the group name provides the function part).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a bounded number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (the real crate's sample
    /// count; used directly as the iteration count here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Accepted for API compatibility; the stand-in has no target time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size.max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size.max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        let mut line = format!(
            "{}/{}: {:>12.1} ns/iter ({} iters)",
            self.name, id.id, per_iter, b.iters
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Bytes(n) => (n, "B"),
                Throughput::Elements(n) => (n, "elem"),
            };
            if per_iter > 0.0 {
                line.push_str(&format!(
                    "  [{:.1} M{}/s]",
                    count as f64 * 1e9 / per_iter / 1e6,
                    unit
                ));
            }
        }
        println!("{line}");
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with generated main functions.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.benchmark_group(id.id.clone()).bench_function("", f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg.configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(1));
        group.throughput(Throughput::Bytes(64));
        group.bench_function("xor", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x ^= 0x9e37_79b9;
                x
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, _| b.iter(|| 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
