//! The network substrate under adverse conditions: reliable delivery over
//! a lossy, corrupting, duplicating, reordering link — with a pcap trace
//! of everything that happened.
//!
//! Run: `cargo run --release -p teenet-bench --example fault_injection`

use teenet_netsim::stream::drive_pair;
use teenet_netsim::{
    FaultConfig, LinkConfig, Network, RateLimit, SimDuration, StreamConn, TraceEvent,
};

fn main() {
    let mut net = Network::new(4242);
    net.enable_pcap();
    let alice = net.add_node();
    let bob = net.add_node();
    // A thoroughly hostile link: 15% drop, 15% corruption (the smoltcp
    // README's "good starting values"), duplication, reordering, and a
    // token-bucket shaper.
    net.add_duplex_link(
        alice,
        bob,
        LinkConfig {
            latency: SimDuration::from_millis(3),
            bandwidth_bps: Some(1_000_000),
            faults: FaultConfig {
                drop_chance: 0.15,
                corrupt_chance: 0.15,
                duplicate_chance: 0.10,
                reorder_chance: 0.20,
                max_delay: SimDuration::from_millis(25),
                rate_limit: Some(RateLimit {
                    tokens_per_interval: 64,
                    interval: SimDuration::from_millis(50),
                }),
            },
        },
    );

    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    let mut tx = StreamConn::new(alice, bob);
    let mut rx = StreamConn::new(bob, alice);
    tx.send(&payload);

    let completed = drive_pair(&mut tx, &mut rx, &mut net, 5000);
    let received = rx.read();
    println!(
        "transferred {} bytes over a hostile link: complete={}, intact={}",
        payload.len(),
        completed,
        received == payload
    );
    println!(
        "retransmissions: {} (loss and corruption recovered by ARQ)",
        tx.retransmissions
    );
    let t = &net.trace;
    println!(
        "link events: {} sent, {} delivered, {} dropped, {} corrupted, {} duplicated",
        t.count(TraceEvent::Sent),
        t.count(TraceEvent::Delivered),
        t.count(TraceEvent::Dropped),
        t.count(TraceEvent::Corrupted),
        t.count(TraceEvent::Duplicated),
    );
    println!("virtual time elapsed: {}", net.now());

    let pcap = net.trace.to_pcap();
    let path = std::env::temp_dir().join("teenet_fault_injection.pcap");
    std::fs::write(&path, &pcap).expect("write pcap");
    println!(
        "pcap capture ({} bytes) written to {} — open it in Wireshark",
        pcap.len(),
        path.display()
    );
}
