//! Load-generation walkthrough: stress the attestation service with an
//! open-loop storm, compare a lossy closed-loop run, then replay the
//! same storm through the sharded model and show the report is identical
//! no matter how many OS threads carry it.
//!
//! ```text
//! cargo run -p teenet-bench --example load_storm
//! ```

use teenet::driver::AttestService;
use teenet_load::{LoadConfig, LoadMode, LoadRunner, Scenario, ServiceScenario};
use teenet_netsim::fault::FaultConfig;

fn main() {
    // Calibrate once against the real enclave stack: one full Figure-1
    // attestation is executed and its instruction counters and wire sizes
    // captured. Everything after this line runs on virtual time.
    let mut scenario = ServiceScenario::new(AttestService::default(), 42);
    let calibration = scenario.calibrate();
    println!(
        "calibrated: {} op(s), server cost {} SGX + {} normal instructions/session\n",
        calibration.ops.len(),
        calibration.session_server_cost().sgx_instr,
        calibration.session_server_cost().normal_instr,
    );

    // An open-loop Poisson storm at ~50% of calibrated capacity.
    let config = LoadConfig::new(2_000, 42, LoadMode::Open { rate_per_sec: None });
    let report = LoadRunner::new(config).run(scenario.name(), &calibration);
    print!("{}", report.text());

    // The same workload closed-loop over a 1%-lossy network: retransmission
    // keeps sessions completing, at a latency cost visible in the tail.
    let mut config = LoadConfig::new(2_000, 42, LoadMode::Closed { concurrency: 8 });
    config.faults = FaultConfig {
        drop_chance: 0.01,
        ..FaultConfig::default()
    };
    let report = LoadRunner::new(config).run(scenario.name(), &calibration);
    println!();
    print!("{}", report.text());

    // Sharded replay: sessions become pure functions of (seed, index) and
    // split across OS threads. The report bytes cannot depend on the
    // thread count — replaying on 1 and 4 shards proves it.
    let mut config = LoadConfig::new(2_000, 42, LoadMode::Closed { concurrency: 8 });
    config.faults = FaultConfig {
        drop_chance: 0.01,
        ..FaultConfig::default()
    };
    let runner = LoadRunner::new(config);
    let one = runner.run_sharded(scenario.name(), &calibration, 1);
    let four = runner.run_sharded(scenario.name(), &calibration, 4);
    assert_eq!(
        one.json(),
        four.json(),
        "sharded replay must be thread-count independent"
    );
    println!();
    println!("sharded replay on 1 and 4 threads: byte-identical reports");
    print!("{}", four.text());
}
