//! Secure in-network functions (§3.3): endpoints attest middleboxes and
//! release TLS session keys over the attestation channel — unilaterally
//! (enterprise gateway) and bilaterally (cloud DPI both endpoints agree
//! on), plus a two-box chain with block and rewrite actions.
//!
//! Run: `cargo run --release -p teenet-bench --example tls_middlebox`

use teenet::attest::AttestConfig;
use teenet::ledger::AttestLedger;
use teenet_crypto::SecureRng;
use teenet_mbox::scenarios::{cloud_dpi_bilateral, enterprise_outbound};
use teenet_mbox::{Action, EndpointRole, MiddleboxChain, MiddleboxHost, ProvisionPolicy, Rule};
use teenet_sgx::EpidGroup;
use teenet_tls::handshake::{handshake, TlsConfig};

fn main() {
    // --- Scenario 1: enterprise outbound inspection (unilateral).
    let report = enterprise_outbound(7).expect("scenario");
    println!("enterprise outbound inspection (client-side unilateral provisioning):");
    println!(
        "  {} records passed, {} blocked, {} rule alerts, {} attestation(s)",
        report.passed, report.blocked, report.alerts, report.attestations
    );
    for r in &report.server_received {
        println!("  server received: {:?}", String::from_utf8_lossy(r));
    }

    // --- Scenario 2: cloud DPI with bilateral consent.
    let report = cloud_dpi_bilateral(8).expect("scenario");
    println!();
    println!("cloud DPI (bilateral consent — inactive until BOTH endpoints attest):");
    println!(
        "  {} records passed, {} alerts, {} attestations (one per endpoint)",
        report.passed, report.alerts, report.attestations
    );

    // --- Scenario 3: a chain of two middleboxes (firewall → DLP).
    println!();
    println!("middlebox chain: firewall (block) then DLP (rewrite):");
    let mut rng = SecureRng::seed_from_u64(9);
    let epid = EpidGroup::new(70, &mut rng).expect("group");
    let mut ledger = AttestLedger::new();
    let firewall = MiddleboxHost::deploy(
        "firewall",
        ProvisionPolicy::Unilateral,
        vec![Rule::new(b"ATTACK", Action::Block)],
        AttestConfig::fast(),
        &epid,
        1,
        &mut rng,
    )
    .expect("deploy");
    let dlp = MiddleboxHost::deploy(
        "dlp",
        ProvisionPolicy::Unilateral,
        vec![Rule::new(b"card=4111111111111111", Action::Rewrite)],
        AttestConfig::fast(),
        &epid,
        2,
        &mut rng,
    )
    .expect("deploy");
    let mut srng = rng.fork(b"server");
    let (mut client, mut server) = handshake(TlsConfig::fast(), &mut rng, &mut srng).expect("tls");
    let mut chain = MiddleboxChain::provision(
        vec![firewall, dlp],
        EndpointRole::Client,
        &client,
        &mut rng,
        &mut ledger,
    )
    .expect("provision");
    println!(
        "  chain provisioned: {} boxes, {} attestations (Table 3: one per in-path middlebox)",
        chain.len(),
        ledger.total()
    );

    for msg in [
        b"GET /checkout".as_slice(),
        b"pay with card=4111111111111111 now",
        b"ATTACK payload",
    ] {
        let record = client.send(msg).expect("seal");
        match chain
            .process(EndpointRole::Client, &record)
            .expect("process")
        {
            Some(bytes) => {
                let plain = server.recv(&bytes).expect("open");
                println!(
                    "  {:?} -> delivered as {:?}",
                    String::from_utf8_lossy(msg),
                    String::from_utf8_lossy(&plain)
                );
            }
            None => {
                println!(
                    "  {:?} -> BLOCKED by the chain",
                    String::from_utf8_lossy(msg)
                );
                break; // a blocked record ends the TLS stream
            }
        }
    }
    let (alerts, blocked, passed) = chain.stats().expect("stats");
    println!("  chain totals: {alerts} alerts, {blocked} blocked, {passed} passes");
}
