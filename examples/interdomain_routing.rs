//! SGX-enabled software-defined inter-domain routing, end to end
//! (the paper's §3.1 / Figure 2): attestation of the shared controller,
//! private policy submission, centralized BGP computation, route
//! distribution, and two-party promise verification.
//!
//! Run: `cargo run --release -p teenet-bench --example interdomain_routing`

use teenet::attest::AttestConfig;
use teenet::fmt;
use teenet_crypto::SecureRng;
use teenet_interdomain::controller::verify_status;
use teenet_interdomain::{default_policies, run_native, AsId, Predicate, SdnDeployment, Topology};
use teenet_sgx::cost::CostModel;

fn main() {
    // A random 10-AS topology with business relationships, like the
    // paper's evaluation setup (scaled down for a quick demo).
    let n = 10;
    let mut rng = SecureRng::seed_from_u64(99);
    let topology = Topology::random(n, &mut rng);
    let mut policies = default_policies(&topology);

    // AS5 promises one of its neighbors preferential treatment — a
    // private local-pref override no other AS may learn.
    let (promisee, _) = topology.neighbors(AsId(5))[0];
    policies
        .get_mut(&AsId(5))
        .expect("policy")
        .pref_override
        .insert(promisee, 400);
    println!("topology: {n} ASes, {} edges", topology.edges().len());
    println!("AS5 privately promises to prefer {promisee}'s routes (pref 400)");

    // Deploy: one enclave platform per AS plus the controller platform.
    let config = AttestConfig::fast();
    let mut deployment = SdnDeployment::new(&topology, &policies, config, 7).expect("deployment");
    let report = deployment.run().expect("figure-2 flow");

    println!();
    println!(
        "attestations during setup: {} (one per AS-local controller)",
        report.attestations
    );
    println!("routes installed per AS: {:?}", report.routes_installed);
    let model = CostModel::paper();
    let native = run_native(&topology, &policies);
    println!(
        "controller cost: {} normal instructions in-enclave vs {} native ({} overhead)",
        fmt::instr(report.interdomain.normal_instr),
        fmt::instr(native.interdomain.normal_instr),
        fmt::overhead_pct(
            report.interdomain.normal_instr,
            native.interdomain.normal_instr
        )
    );
    println!(
        "controller cycles (paper model): {}",
        fmt::cycles(report.interdomain.cycles(&model))
    );

    // Promise verification: both parties submit the same predicate; only
    // the Boolean verdict leaves the enclave.
    let predicate = Predicate::PrefersNeighbor {
        of: AsId(5),
        neighbor: promisee,
        dst: AsId(0),
    };
    let s1 = deployment
        .verify_predicate(promisee.0 as usize, AsId(5), promisee, &predicate)
        .expect("submission");
    assert_eq!(s1, verify_status::PENDING);
    println!();
    println!("{promisee} submitted the promise predicate: awaiting counterparty");
    let s2 = deployment
        .verify_predicate(5, AsId(5), promisee, &predicate)
        .expect("submission");
    println!(
        "AS5 co-submitted: verdict = {}",
        match s2 {
            verify_status::TRUE => "promise KEPT",
            verify_status::FALSE => "promise BROKEN",
            _ => "pending",
        }
    );

    // A nosy predicate about a third party is rejected inside the enclave.
    let nosy = Predicate::RouteExists {
        src: AsId(7),
        dst: AsId(0),
    };
    let refused = deployment
        .verify_predicate(5, AsId(5), promisee, &nosy)
        .is_err();
    println!("third-party predicate rejected by the verification module: {refused}");
}
