//! Quickstart: remote attestation between two parties and a secure
//! channel bootstrapped through it — the paper's Figure 1 in ~80 lines.
//!
//! Run: `cargo run --release -p teenet-bench --example quickstart`

use teenet::attest::AttestConfig;
use teenet::identity::IdentityPolicy;
use teenet::responder::{attest_enclave, AttestResponder, SessionNonce};
use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
use teenet_crypto::SecureRng;
use teenet_sgx::cost::CostModel;
use teenet_sgx::{deploy_platform, EnclaveCtx, EnclaveProgram, EpidGroup, SgxError, TeeBackend};

/// A tiny service enclave: answers attestation, then serves encrypted
/// "what time is it"-style queries over the bootstrapped channel.
struct GreeterEnclave {
    responder: AttestResponder,
    greetings: u64,
}

impl EnclaveProgram for GreeterEnclave {
    fn code_image(&self) -> Vec<u8> {
        // Everything behaviour-defining goes into the measured image.
        b"greeter-enclave-v1".to_vec()
    }

    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        fn_id: u64,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match fn_id {
            0 => self.responder.handle_begin(ctx, input),
            1 => self.responder.handle_finish(ctx, input),
            // Encrypted application traffic: nonce ‖ sealed message.
            2 => {
                let (nonce, sealed) = input.split_at(32);
                let nonce: SessionNonce = nonce.try_into().expect("32 bytes");
                let channel = self.responder.channel_mut(&nonce)?;
                let plain = channel
                    .open(sealed)
                    .map_err(|_| SgxError::EcallRejected("bad channel message"))?;
                self.greetings += 1;
                let reply = format!(
                    "hello, {}! (greeting #{}, computed inside the enclave)",
                    String::from_utf8_lossy(&plain),
                    self.greetings
                );
                Ok(channel.seal(reply.as_bytes()))
            }
            _ => Err(SgxError::EcallRejected("unknown function")),
        }
    }
}

fn main() {
    // --- Provisioning: an attestation group and a platform (one machine).
    let mut rng = SecureRng::seed_from_u64(42);
    let epid = EpidGroup::new(1, &mut rng).expect("attestation group");
    let mut platform =
        deploy_platform(TeeBackend::Sgx, "service-host", &epid, 7).expect("platform deploy");
    let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).expect("author key");

    // --- Load the enclave. Its MRENCLAVE derives from the code image.
    let config = AttestConfig::default(); // 1024-bit DH, as in the paper
    let enclave = platform
        .create_signed(
            Box::new(GreeterEnclave {
                responder: AttestResponder::new(config.clone()),
                greetings: 0,
            }),
            &author,
            1,
        )
        .expect("enclave load");
    let expected = platform.measurement_of(enclave).expect("measurement");
    println!("enclave loaded, MRENCLAVE = {}…", expected.short_hex());

    // --- Remote attestation (Figure 1) + secure channel bootstrap.
    let model = CostModel::paper();
    let (outcome, nonce) = attest_enclave(
        IdentityPolicy::Mrenclave(expected),
        config,
        &model,
        &mut rng,
        platform.as_mut(),
        enclave,
        0,
        1,
        &epid.public_key(),
        None,
    )
    .expect("attestation");
    println!(
        "attestation verified: identity ok, challenger spent {} SGX / {} normal instructions",
        outcome.counters.sgx_instr, outcome.counters.normal_instr
    );

    // --- Talk over the channel: the host only ever sees ciphertext.
    let mut channel = outcome.channel.expect("channel");
    for name in ["alice", "bob"] {
        let mut input = nonce.to_vec();
        input.extend_from_slice(&channel.seal(name.as_bytes()));
        let sealed_reply = platform
            .ecall_nohost(enclave, 2, &input)
            .expect("service call");
        let reply = channel.open(&sealed_reply).expect("open");
        println!("service replied: {}", String::from_utf8_lossy(&reply));
    }

    let counters = platform.counters_of(enclave).expect("counters");
    println!(
        "enclave totals: {} SGX instructions, {} normal instructions, {} cycles (paper model)",
        counters.sgx_instr,
        counters.normal_instr,
        counters.cycles(&model)
    );
}
