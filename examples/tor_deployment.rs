//! Tor under the paper's incremental SGX deployment model (§3.2): runs
//! the bad-apple and directory-subversion attacks against every phase and
//! prints the resulting defense matrix.
//!
//! Run: `cargo run --release -p teenet-bench --example tor_deployment`

use teenet_tor::attacks::{bad_apple, defense_matrix, directory_subversion};
use teenet_tor::deployment::{Phase, TorDeployment, TorSpec};

fn phase_name(phase: Phase) -> &'static str {
    match phase {
        Phase::Vanilla => "vanilla Tor",
        Phase::SgxDirectory => "SGX directory",
        Phase::IncrementalOrs => "incremental SGX ORs",
        Phase::FullSgx => "fully SGX (DHT)",
    }
}

fn main() {
    println!("Tor attack/defense matrix across SGX deployment phases");
    println!();
    println!("{:<24} {:<48} attacker wins?", "phase", "attack");
    for outcome in defense_matrix(77).expect("matrix") {
        println!(
            "{:<24} {:<48} {}",
            phase_name(outcome.phase),
            outcome.attack,
            if outcome.succeeded { "YES" } else { "no" }
        );
    }

    // Zoom in on the two pivotal transitions.
    println!();
    let o = bad_apple(Phase::SgxDirectory, 101).expect("attack");
    println!(
        "securing only the directory does not stop exit sniffing: {}",
        o.detail
    );
    let o = bad_apple(Phase::IncrementalOrs, 102).expect("attack");
    println!("SGX-enabled ORs stop it at admission: {}", o.detail);
    let o = directory_subversion(Phase::SgxDirectory, 103).expect("attack");
    println!(
        "a compromised authority majority is neutralised by mutual attestation: {}",
        o.detail
    );

    // The fully SGX-enabled design: no directory at all, DHT membership.
    println!();
    let mut spec = TorSpec::fast(Phase::FullSgx, 104);
    spec.n_relays = 12;
    spec.n_exits = 4;
    spec.bad_apples = vec![0];
    let mut deployment = TorDeployment::build(spec).expect("deployment");
    let admission = deployment.run_admission().expect("admission");
    let ring = admission.dht.as_ref().expect("chord ring");
    println!(
        "fully SGX network: {} relays admitted into the Chord ring, {} rejected by attestation",
        ring.len(),
        admission.rejected.len()
    );
    let member = ring.members()[0];
    let (owner, hops) = ring.lookup(member, 0xfeed_beef).expect("lookup");
    println!("DHT membership lookup: owner relay {owner}, {hops} finger hops");
    let path = deployment.select_path(&admission, None).expect("path");
    let reply = deployment
        .exchange(path, b"anonymous request")
        .expect("exchange");
    println!(
        "3-hop circuit through attested relays delivered: {:?}",
        String::from_utf8_lossy(&reply)
    );
    println!(
        "attestations performed: {} (Table 3: proportional to network size)",
        deployment.ledger.total()
    );
}
