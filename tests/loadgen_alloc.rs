//! Allocation-count regression gate for the streaming engine's hot path.
//!
//! The pre-streaming engine allocated a fresh `Vec<u8>` per framed
//! message (plus a second copy when `netsim` re-boxed the payload). The
//! streaming engine frames into a pooled per-slot scratch buffer and
//! ships one `Bytes` copy, so its allocation count per message is
//! strictly lower. This test pins that with a counting global allocator:
//! the whole binary runs under an allocator that counts every `alloc`
//! call, and the streaming run must allocate measurably less than the
//! retained reference run on identical work.
//!
//! One `#[test]` only: a `#[global_allocator]` is process-wide state, and
//! Rust runs tests in one process — a single test keeps the counting
//! windows race-free without cross-test ordering assumptions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use teenet_load::scenario::{Calibration, OpProfile};
use teenet_load::{LoadConfig, LoadMode, LoadRunner};
use teenet_sgx::cost::Counters;
use teenet_sgx::{TeeBackend, TransitionStats};

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCS.load(Ordering::Relaxed) - before)
}

fn c(sgx: u64, normal: u64) -> Counters {
    Counters {
        sgx_instr: sgx,
        normal_instr: normal,
    }
}

/// A synthetic two-op script (no real-enclave calibration, so the counted
/// window contains nothing but the replay itself).
fn toy_calibration() -> Calibration {
    Calibration {
        setup: c(10, 1_000_000),
        ops: vec![
            OpProfile {
                name: "hello",
                client: c(0, 50_000),
                server: c(4, 500_000),
                request_bytes: 128,
                response_bytes: 64,
                transitions: TransitionStats::default(),
            },
            OpProfile {
                name: "work",
                client: c(0, 10_000),
                server: c(8, 2_000_000),
                request_bytes: 256,
                response_bytes: 1024,
                transitions: TransitionStats::default(),
            },
        ],
        mode: Default::default(),
        backend: TeeBackend::Sgx,
        switchless: Default::default(),
    }
}

#[test]
fn streaming_engine_allocates_less_than_reference_per_message() {
    let sessions = 400u64;
    let ops = 2u64;
    // Clean links, closed loop: exactly one request + one response per op
    // crosses the wire, so the message count is deterministic.
    let messages = sessions * ops * 2;
    let cal = toy_calibration();
    let cfg = LoadConfig::new(sessions, 7, LoadMode::Closed { concurrency: 16 });
    let runner = LoadRunner::new(cfg);

    // Warm both paths once so lazily initialised process state (stdio,
    // cost-model tables) doesn't land in either counted window.
    let warm_stream = runner.run("toy", &cal);
    let warm_ref = runner.run_reference("toy", &cal).unwrap();
    assert_eq!(warm_stream.json(), warm_ref.json());

    let (stream_report, stream_allocs) = allocs_during(|| runner.run("toy", &cal));
    let (ref_report, ref_allocs) = allocs_during(|| runner.run_reference("toy", &cal).unwrap());
    assert_eq!(stream_report.json(), ref_report.json());
    assert_eq!(stream_report.completed, sessions);

    // The reference path allocates a fresh framing Vec per message on top
    // of the shared per-message Bytes copy; the streaming path reuses the
    // slot scratch but pays a small bounded bookkeeping overhead (slab
    // growth, BTreeMap index nodes, heap amortisation). Require the gap
    // to stay within that slack of one-allocation-per-message.
    assert!(
        ref_allocs > stream_allocs + (messages * 3) / 4,
        "streaming must save ~1 alloc/message: \
         reference {ref_allocs}, streaming {stream_allocs}, messages {messages}"
    );

    // Absolute hot-path bound: one Bytes copy per message plus bounded
    // bookkeeping (slab/index/heap amortisation) — not the reference
    // engine's ~2+/message.
    assert!(
        stream_allocs <= messages * 2,
        "streaming hot path regressed: {stream_allocs} allocs for {messages} messages"
    );
}
