//! Rollback-protection contract of the keystore fleet.
//!
//! Property: a worker that has accepted a sealed key slot at epoch `E`
//! rejects *any* sealed blob whose monotonic counter is ≤ `E` with the
//! rollback domain error — for every seed, every provisioning depth and
//! every stale epoch choice. And the rejection is deterministic: the
//! same seed reproduces byte-identical calibrations and loadgen reports
//! (the revoke step runs the rollback probe inside every calibrated
//! session, so determinism here covers the rejection path itself).

use proptest::prelude::*;

use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
use teenet_crypto::SecureRng;
use teenet_keystore::coordinator::{
    CoordinatorEnclave, FN_FINISH_ATTEST, FN_PROVISION, FN_START_ATTEST,
};
use teenet_keystore::worker::{
    WorkerEnclave, FN_ACTIVATE, FN_ATTEST_BEGIN, FN_ATTEST_FINISH, FN_STAGE, ROLLBACK_REJECTED,
};
use teenet_keystore::KeystoreError;
use teenet_load::scenarios::by_name_mode;
use teenet_load::{LoadConfig, LoadMode, LoadRunner};
use teenet_sgx::{
    deploy_platform, EnclaveId, EpidGroup, Report, SgxError, TeeBackend, TeePlatform,
    TransitionMode,
};

use teenet::attest::{AttestConfig, AttestRequest};

/// One coordinator + one worker, attested and channel-established, built
/// from the crate's public enclave programs.
struct Rig {
    coordinator_platform: Box<dyn TeePlatform>,
    coordinator: EnclaveId,
    worker_platform: Box<dyn TeePlatform>,
    worker: EnclaveId,
}

fn rig(seed: u64) -> Rig {
    let mut rng = SecureRng::seed_from_u64(seed).fork(b"rollback-rig");
    let epid = EpidGroup::new(9, &mut rng).expect("epid group");
    let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).expect("author key");
    let mut worker_platform =
        deploy_platform(TeeBackend::Sgx, "rig-fleet", &epid, seed).expect("worker platform");
    let worker = worker_platform
        .create_signed(
            Box::new(WorkerEnclave::new(AttestConfig::fast())),
            &author,
            1,
        )
        .expect("worker enclave");
    let expected = worker_platform.measurement_of(worker).expect("measurement");
    let mut coordinator_platform = deploy_platform(
        TeeBackend::Sgx,
        "rig-coordinator",
        &epid,
        seed.wrapping_add(1),
    )
    .expect("coordinator platform");
    let coordinator = coordinator_platform
        .create_signed(
            Box::new(CoordinatorEnclave::new(
                AttestConfig::fast(),
                expected,
                epid.public_key(),
                rng.fork(b"coordinator"),
            )),
            &author,
            1,
        )
        .expect("coordinator enclave");
    let mut rig = Rig {
        coordinator_platform,
        coordinator,
        worker_platform,
        worker,
    };
    attest(&mut rig);
    rig
}

/// Ferries the Figure-1 messages between the two platforms.
fn attest(rig: &mut Rig) {
    let wid = 0u32.to_le_bytes();
    let request_wire = rig
        .coordinator_platform
        .ecall_nohost(rig.coordinator, FN_START_ATTEST, &wid)
        .expect("attest start");
    let request = AttestRequest::from_bytes(&request_wire).expect("attest request");
    let mut begin_input = request_wire.clone();
    begin_input.extend_from_slice(&rig.worker_platform.attestation_target_info().mrenclave.0);
    let report_bytes = rig
        .worker_platform
        .ecall_nohost(rig.worker, FN_ATTEST_BEGIN, &begin_input)
        .expect("attest begin");
    let report = Report::from_bytes(&report_bytes).expect("report");
    let evidence = rig.worker_platform.evidence(&report).expect("evidence");
    let mut finish_input = request.nonce.to_vec();
    finish_input.extend_from_slice(&evidence.to_bytes());
    let response_wire = rig
        .worker_platform
        .ecall_nohost(rig.worker, FN_ATTEST_FINISH, &finish_input)
        .expect("attest finish");
    let mut verify_input = wid.to_vec();
    verify_input.extend_from_slice(&response_wire);
    rig.coordinator_platform
        .ecall_nohost(rig.coordinator, FN_FINISH_ATTEST, &verify_input)
        .expect("attest verify");
}

/// Provision once: coordinator mints the next epoch, worker stages and
/// activates it. Returns the sealed blob the host would persist.
fn provision(rig: &mut Rig) -> Vec<u8> {
    let wid = 0u32.to_le_bytes();
    let release_wire = rig
        .coordinator_platform
        .ecall_nohost(rig.coordinator, FN_PROVISION, &wid)
        .expect("provision mint");
    let blob_wire = rig
        .worker_platform
        .ecall_nohost(rig.worker, FN_STAGE, &release_wire)
        .expect("stage");
    rig.worker_platform
        .ecall_nohost(rig.worker, FN_ACTIVATE, &blob_wire)
        .expect("activate");
    blob_wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replaying any superseded sealed blob — whatever the seed, the
    /// provisioning depth, or which stale epoch the host picks — fails
    /// with the rollback domain error, and the worker keeps its newest
    /// epoch (a fresh provision still advances).
    #[test]
    fn stale_sealed_blobs_are_rejected(
        seed in 0u64..500,
        depth in 2usize..6,
        stale_pick in 0usize..4,
    ) {
        let mut rig = rig(seed);
        let mut blobs = Vec::new();
        for _ in 0..depth {
            blobs.push(provision(&mut rig));
        }
        // Any earlier blob (counter ≤ last accepted) must be rejected —
        // including the *current* one replayed (counter == last).
        let stale = &blobs[stale_pick.min(depth - 1)];
        let err = rig
            .worker_platform
            .ecall_nohost(rig.worker, FN_ACTIVATE, stale)
            .expect_err("stale blob must be rejected");
        prop_assert_eq!(err, SgxError::EcallRejected(ROLLBACK_REJECTED));
        // The emulator error lifts into the keystore domain error.
        prop_assert_eq!(
            KeystoreError::from(SgxError::EcallRejected(ROLLBACK_REJECTED)),
            KeystoreError::Rollback(ROLLBACK_REJECTED)
        );
        // The gate fails closed without corrupting state: the next
        // provision still advances and activates.
        provision(&mut rig);
    }
}

/// The rejection is deterministic under replay: the same seed produces
/// byte-identical loadgen reports — and the calibrated session includes
/// the revoke step's rollback probe, so the rejection path is inside
/// every report. Checked in both transition modes.
#[test]
fn rollback_rejection_is_deterministic_under_replay() {
    for mode in [TransitionMode::Classic, TransitionMode::Switchless] {
        let mut reports = Vec::new();
        for _ in 0..2 {
            let mut scenario = by_name_mode("keystore", 23, mode).expect("keystore registered");
            let calibration = scenario.calibrate();
            let config = LoadConfig::new(40, 23, LoadMode::Closed { concurrency: 8 });
            reports.push(
                LoadRunner::new(config)
                    .run(scenario.name(), &calibration)
                    .json(),
            );
        }
        assert_eq!(
            reports[0],
            reports[1],
            "same seed must reproduce the identical report ({})",
            mode.as_str()
        );
    }
}
