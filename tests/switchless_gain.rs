//! Integration: the acceptance gate for the switchless transition layer.
//!
//! Running the same scenario at the same seed in both transition modes,
//! switchless must report strictly fewer SGX instructions (crossings ride
//! the shared call ring instead of paying EENTER/EEXIT) and a p99 no
//! worse than classic — and the byte-stable-JSON contract must hold per
//! mode.

use teenet_load::scenarios::{by_name_mode, NAMES};
use teenet_load::{LoadConfig, LoadMode, LoadRunner, RunReport};
use teenet_sgx::TransitionMode;

/// Closed-loop run: same arrival schedule in both modes (open-loop auto
/// rate derives from calibrated capacity, which differs per mode and
/// would make the latency comparison unsound).
fn run(name: &str, seed: u64, sessions: u64, mode: TransitionMode) -> RunReport {
    let mut scenario = by_name_mode(name, seed, mode).expect("known scenario");
    let calibration = scenario.calibrate();
    let config = LoadConfig::new(sessions, seed, LoadMode::Closed { concurrency: 8 });
    LoadRunner::new(config).run(scenario.name(), &calibration)
}

#[test]
fn tls_switchless_strictly_cheaper_and_no_worse_p99() {
    let classic = run("tls", 7, 120, TransitionMode::Classic);
    let switchless = run("tls", 7, 120, TransitionMode::Switchless);
    assert_eq!(classic.completed, 120);
    assert_eq!(switchless.completed, 120);

    assert!(
        switchless.total.sgx_instr < classic.total.sgx_instr,
        "switchless must spend strictly fewer SGX instructions: {} vs {}",
        switchless.total.sgx_instr,
        classic.total.sgx_instr
    );
    let p99 = |r: &RunReport| r.latency.percentiles().2;
    assert!(
        p99(&switchless) <= p99(&classic),
        "switchless p99 must be no worse: {} vs {}",
        p99(&switchless),
        p99(&classic)
    );

    // The report attributes the saving to elided crossings, not to the
    // workload shrinking.
    assert_eq!(classic.transitions.elided, 0);
    assert!(switchless.transitions.elided > 0);
    assert_eq!(classic.transition_mode, "classic");
    assert_eq!(switchless.transition_mode, "switchless");
}

#[test]
fn every_scenario_cheaper_under_switchless() {
    for name in NAMES {
        let classic = run(name, 5, 40, TransitionMode::Classic);
        let switchless = run(name, 5, 40, TransitionMode::Switchless);
        assert!(
            switchless.total.sgx_instr < classic.total.sgx_instr,
            "{name}: switchless {} !< classic {}",
            switchless.total.sgx_instr,
            classic.total.sgx_instr
        );
        assert!(
            switchless.transitions.elided > 0,
            "{name}: no crossings rode the ring"
        );
    }
}

#[test]
fn switchless_json_is_byte_stable() {
    let a = run("tls", 11, 60, TransitionMode::Switchless).json();
    let b = run("tls", 11, 60, TransitionMode::Switchless).json();
    assert_eq!(a, b, "switchless runs must stay byte-deterministic");
    assert!(a.contains("\"transition_mode\":\"switchless\""));
    assert!(a.contains("\"transitions\":{"));
}
