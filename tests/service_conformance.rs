//! Generic invariants every [`EnclaveService`] must satisfy, checked
//! uniformly across all four paper workloads through the one
//! [`AppHarness`] calibration path.
//!
//! These replace the per-driver copies of the same assertions: a service
//! that registers with `teenet-load` gets every check here for free.

use teenet_app::{AppHarness, EnclaveService, WorkProfile};
use teenet_interdomain::driver::BgpService;
use teenet_mbox::driver::TlsMboxService;
use teenet_sgx::cost::Counters;
use teenet_sgx::TransitionMode;
use teenet_tor::driver::TorService;

use teenet::driver::AttestService;

/// Compile-time regression: the platform layer and every service impl
/// must stay `Send`, so a load shard can own its own deployment on its
/// own OS thread. A future PR that captures non-`Send` state (an `Rc`, a
/// thread-bound handle) in any of these types fails here at compile time.
#[test]
fn platform_and_all_services_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<teenet_sgx::Platform>();
    assert_send::<AttestService>();
    assert_send::<TlsMboxService>();
    assert_send::<TorService>();
    assert_send::<BgpService>();
    assert_send::<Box<dyn teenet_load::Scenario>>();
}

fn calibrate<S, F>(build: &F, seed: u64, mode: TransitionMode) -> WorkProfile
where
    S: EnclaveService,
    F: Fn() -> S,
{
    let mut svc = build();
    match AppHarness::new(seed, mode).calibrate(&mut svc) {
        Ok(profile) => profile,
        Err(e) => panic!("calibration failed: {e:?}"),
    }
}

/// One session's total SGX instructions, both sides of the wire.
fn session_sgx(profile: &WorkProfile) -> u64 {
    let server = profile.session_server();
    let client = profile.session_client();
    server.sgx_instr + client.sgx_instr
}

/// Runs the full conformance suite against one service constructor.
fn conforms<S, F>(build: F, seed: u64)
where
    S: EnclaveService,
    F: Fn() -> S,
{
    let name = build().name();

    // A calibrated session must actually do work.
    let classic = calibrate(&build, seed, TransitionMode::Classic);
    assert!(
        !classic.steps.is_empty(),
        "{name}: session script must produce steps"
    );
    assert_eq!(classic.mode, TransitionMode::Classic);

    // Counters additivity: merging setup and every step field-wise equals
    // summing the raw fields — no step hides cost from the rollup.
    let mut merged = Counters::new();
    merged.merge(classic.setup);
    merged.merge(classic.session_server());
    merged.merge(classic.session_client());
    let mut sgx_sum = classic.setup.sgx_instr;
    let mut normal_sum = classic.setup.normal_instr;
    for s in &classic.steps {
        sgx_sum += s.server.sgx_instr + s.client.sgx_instr;
        normal_sum += s.server.normal_instr + s.client.normal_instr;
    }
    assert_eq!(merged.sgx_instr, sgx_sum, "{name}: sgx additivity");
    assert_eq!(merged.normal_instr, normal_sum, "{name}: normal additivity");

    // Determinism: the same seed must reproduce the identical profile.
    let again = calibrate(&build, seed, TransitionMode::Classic);
    assert_eq!(
        classic, again,
        "{name}: same-seed profiles must be identical"
    );

    // Switchless must strictly lower per-session SGX instructions by
    // eliding transitions; classic must elide none.
    let sw = calibrate(&build, seed, TransitionMode::Switchless);
    assert_eq!(sw.mode, TransitionMode::Switchless);
    assert_eq!(sw.steps.len(), classic.steps.len(), "{name}: step count");
    assert!(
        session_sgx(&sw) < session_sgx(&classic),
        "{name}: switchless must cut per-session SGX instructions \
         ({} vs {})",
        session_sgx(&sw),
        session_sgx(&classic),
    );
    assert!(
        sw.session_transitions().elided > 0,
        "{name}: switchless must elide transitions"
    );
    assert_eq!(
        classic.session_transitions().elided,
        0,
        "{name}: classic mode never rides the ring"
    );
}

#[test]
fn attest_service_conforms() {
    conforms(AttestService::default, 9);
}

#[test]
fn tls_mbox_service_conforms() {
    conforms(TlsMboxService::default, 3);
}

#[test]
fn tor_service_conforms() {
    conforms(TorService::new, 11);
}

#[test]
fn bgp_service_conforms() {
    conforms(|| BgpService::new(6), 21);
}
