//! Generic invariants every [`teenet_app::EnclaveService`] must satisfy,
//! checked uniformly across *every* workload registered in the
//! `teenet-load` [`REGISTRY`] — the service list is derived, not
//! hard-coded, so a new workload (the keystore fleet, a future sixth) is
//! conformance-checked the moment its registry entry lands.
//!
//! These replace the per-driver copies of the same assertions: a service
//! that registers with `teenet-load` gets every check here for free.

use teenet_load::scenario::Calibration;
use teenet_load::scenarios::REGISTRY;
use teenet_load::{LoadConfig, LoadMode, LoadRunner};
use teenet_sgx::cost::Counters;
use teenet_sgx::{TeeBackend, TransitionMode};

/// Compile-time regression: the platform layer and the boxed scenario
/// type must stay `Send`, so a load shard can own its own deployment on
/// its own OS thread. The registry builds trait objects, so one bound on
/// the box covers every registered service — current and future.
#[test]
fn platform_and_registry_scenarios_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<teenet_sgx::Platform>();
    assert_send::<Box<dyn teenet_load::Scenario>>();
}

fn calibrate(
    entry: &teenet_load::scenarios::ScenarioEntry,
    seed: u64,
    mode: TransitionMode,
) -> Calibration {
    entry.build(seed, mode).calibrate()
}

fn calibrate_backend(
    entry: &teenet_load::scenarios::ScenarioEntry,
    seed: u64,
    mode: TransitionMode,
    backend: TeeBackend,
) -> Calibration {
    entry.build_backend(seed, mode, backend).calibrate()
}

/// One session's total SGX instructions, both sides of the wire.
fn session_sgx(cal: &Calibration) -> u64 {
    cal.session_server_cost().sgx_instr + cal.session_client_cost().sgx_instr
}

/// Runs the full conformance suite against every registered workload.
#[test]
fn every_registered_service_conforms() {
    for (i, entry) in REGISTRY.iter().enumerate() {
        // Distinct seeds per entry so no two workloads share an RNG
        // stream by accident.
        let seed = 3 + 2 * i as u64;
        let name = entry.name;

        // A calibrated session must actually do work.
        let classic = calibrate(entry, seed, TransitionMode::Classic);
        assert!(
            !classic.ops.is_empty(),
            "{name}: session script must produce steps"
        );
        assert_eq!(classic.mode, TransitionMode::Classic);

        // Counters additivity: the session rollups must equal the
        // field-wise sum over steps — no step hides cost from the rollup.
        let mut merged = Counters::new();
        merged.merge(classic.session_server_cost());
        merged.merge(classic.session_client_cost());
        let mut sgx_sum = 0;
        let mut normal_sum = 0;
        for op in &classic.ops {
            sgx_sum += op.server.sgx_instr + op.client.sgx_instr;
            normal_sum += op.server.normal_instr + op.client.normal_instr;
        }
        assert_eq!(merged.sgx_instr, sgx_sum, "{name}: sgx additivity");
        assert_eq!(merged.normal_instr, normal_sum, "{name}: normal additivity");

        // Determinism: the same seed must reproduce the identical
        // calibration, setup included.
        let again = calibrate(entry, seed, TransitionMode::Classic);
        assert_eq!(
            classic, again,
            "{name}: same-seed calibrations must be identical"
        );

        // Switchless must strictly lower per-session SGX instructions by
        // eliding transitions; classic must elide none.
        let sw = calibrate(entry, seed, TransitionMode::Switchless);
        assert_eq!(sw.mode, TransitionMode::Switchless);
        assert_eq!(sw.ops.len(), classic.ops.len(), "{name}: step count");
        assert!(
            session_sgx(&sw) < session_sgx(&classic),
            "{name}: switchless must cut per-session SGX instructions \
             ({} vs {})",
            session_sgx(&sw),
            session_sgx(&classic),
        );
        assert!(
            sw.session_transitions().elided > 0,
            "{name}: switchless must elide transitions"
        );
        assert_eq!(
            classic.session_transitions().elided,
            0,
            "{name}: classic mode never rides the ring"
        );
    }
}

/// The backend-independent invariants, re-run with every registered
/// workload deployed on the VM-TEE backend. The switchless-cuts-SGX
/// invariant is deliberately absent here: a VM-TEE charges no per-call
/// EENTER/EEXIT, so eliding transitions is not guaranteed to lower the
/// `sgx_instr` meter — that economy is SGX-specific.
#[test]
fn every_registered_service_conforms_on_vmtee() {
    for (i, entry) in REGISTRY.iter().enumerate() {
        let seed = 3 + 2 * i as u64;
        let name = entry.name;

        let classic = calibrate_backend(entry, seed, TransitionMode::Classic, TeeBackend::VmTee);
        assert!(
            !classic.ops.is_empty(),
            "{name}: vmtee session script must produce steps"
        );
        assert_eq!(classic.backend, TeeBackend::VmTee);

        // Counter additivity holds regardless of how the backend prices
        // those counters into cycles.
        let mut merged = Counters::new();
        merged.merge(classic.session_server_cost());
        merged.merge(classic.session_client_cost());
        let mut sgx_sum = 0;
        let mut normal_sum = 0;
        for op in &classic.ops {
            sgx_sum += op.server.sgx_instr + op.client.sgx_instr;
            normal_sum += op.server.normal_instr + op.client.normal_instr;
        }
        assert_eq!(merged.sgx_instr, sgx_sum, "{name}: vmtee sgx additivity");
        assert_eq!(
            merged.normal_instr, normal_sum,
            "{name}: vmtee normal additivity"
        );

        // Same-seed determinism on the new backend.
        let again = calibrate_backend(entry, seed, TransitionMode::Classic, TeeBackend::VmTee);
        assert_eq!(
            classic, again,
            "{name}: same-seed vmtee calibrations must be identical"
        );

        // Classic elides nothing on any backend.
        assert_eq!(
            classic.session_transitions().elided,
            0,
            "{name}: classic mode never elides, vmtee included"
        );
    }
}

/// Sharded replay is a pure partition of the session space: for both
/// backends, a 1-shard and a 4-shard run of every workload must produce
/// byte-identical reports.
#[test]
fn shard_counts_agree_per_backend() {
    for (i, entry) in REGISTRY.iter().enumerate() {
        let seed = 5 + 2 * i as u64;
        for backend in [TeeBackend::Sgx, TeeBackend::VmTee] {
            let cal = calibrate_backend(entry, seed, TransitionMode::Classic, backend);
            let config = LoadConfig::new(40, seed, LoadMode::Open { rate_per_sec: None });
            let runner = LoadRunner::new(config);
            let one = runner.run_sharded(entry.name, &cal, 1);
            let four = runner.run_sharded(entry.name, &cal, 4);
            assert_eq!(
                one.json(),
                four.json(),
                "{} ({}): 1-shard and 4-shard reports must be byte-identical",
                entry.name,
                backend.as_str(),
            );
        }
    }
}
