//! Property-based invariants across the workspace: reliable delivery under
//! arbitrary faults, onion-layer algebra at arbitrary depths, channel and
//! record-layer round trips, DHT lookup correctness, and parser robustness
//! against arbitrary bytes (no panics, no false accepts).

use proptest::prelude::*;
use teenet::channel::SecureChannel;
use teenet_crypto::SecureRng;
use teenet_netsim::stream::drive_pair;
use teenet_netsim::{FaultConfig, LinkConfig, Network, SimDuration, StreamConn};
use teenet_tls::record::{DirectionKeys, RecordProtection};
use teenet_tls::CipherSuite;
use teenet_tor::cell::PAYLOAD_LEN;
use teenet_tor::crypto::HopKeys;
use teenet_tor::dht::ChordRing;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reliable stream delivers arbitrary data exactly once, in order,
    /// under arbitrary (bounded) loss, corruption, duplication and
    /// reordering.
    #[test]
    fn stream_delivers_under_arbitrary_faults(
        data in proptest::collection::vec(any::<u8>(), 1..3000),
        drop in 0.0f64..0.35,
        corrupt in 0.0f64..0.25,
        duplicate in 0.0f64..0.25,
        reorder in 0.0f64..0.3,
        seed in 0u64..1000,
    ) {
        let mut net = Network::new(seed);
        let a = net.add_node();
        let b = net.add_node();
        net.add_duplex_link(a, b, LinkConfig {
            faults: FaultConfig {
                drop_chance: drop,
                corrupt_chance: corrupt,
                duplicate_chance: duplicate,
                reorder_chance: reorder,
                max_delay: SimDuration::from_millis(15),
                rate_limit: None,
            },
            ..Default::default()
        });
        let mut tx = StreamConn::new(a, b);
        let mut rx = StreamConn::new(b, a);
        tx.send(&data);
        prop_assert!(drive_pair(&mut tx, &mut rx, &mut net, 3000), "did not complete");
        prop_assert_eq!(rx.read(), data);
    }

    /// Onion layering: encrypt through N hops client-side, strip through
    /// the same N hops relay-side, recover the payload bit for bit; any
    /// prefix of strips yields garbage.
    #[test]
    fn onion_layers_compose_at_any_depth(
        payload in proptest::array::uniform32(any::<u8>()),
        n_hops in 1usize..6,
        key_seed in any::<u8>(),
    ) {
        let mut client_keys: Vec<HopKeys> = (0..n_hops)
            .map(|i| HopKeys::derive(&[key_seed.wrapping_add(i as u8 + 1); 32]).unwrap())
            .collect();
        let mut relay_keys: Vec<HopKeys> = (0..n_hops)
            .map(|i| HopKeys::derive(&[key_seed.wrapping_add(i as u8 + 1); 32]).unwrap())
            .collect();
        let mut cell = [0u8; PAYLOAD_LEN];
        cell[..32].copy_from_slice(&payload);
        let original = cell;
        for hop in client_keys.iter_mut().rev() {
            hop.crypt_forward(&mut cell);
        }
        for (i, hop) in relay_keys.iter_mut().enumerate() {
            if i + 1 < n_hops {
                prop_assert_ne!(cell, original, "payload visible before last hop");
            }
            hop.crypt_forward(&mut cell);
        }
        prop_assert_eq!(cell, original);
    }

    /// Secure channels deliver arbitrary message sequences in order, and
    /// any single-bit flip is rejected.
    #[test]
    fn channel_roundtrip_and_tamper(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..8),
        flip_byte in any::<u8>(),
    ) {
        let shared = b"proptest shared secret";
        let mut tx = SecureChannel::from_shared_secret(shared, b"ctx", true).unwrap();
        let mut rx = SecureChannel::from_shared_secret(shared, b"ctx", false).unwrap();
        for msg in &msgs {
            let sealed = tx.seal(msg);
            prop_assert_eq!(&rx.open(&sealed).unwrap(), msg);
        }
        let mut sealed = tx.seal(b"tamper target");
        let idx = flip_byte as usize % sealed.len();
        sealed[idx] ^= 1;
        prop_assert!(rx.open(&sealed).is_err());
    }

    /// Record layer: arbitrary payloads round-trip under both suites.
    #[test]
    fn record_layer_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
        suite_pick in any::<bool>(),
    ) {
        let suite = if suite_pick {
            CipherSuite::Aes128CtrHmacSha256
        } else {
            CipherSuite::ChaCha20HmacSha256
        };
        let keys = DirectionKeys {
            enc_key: vec![9u8; suite.key_len()],
            mac_key: [3u8; 32],
        };
        let mut tx = RecordProtection::new(suite, keys.clone());
        let mut rx = RecordProtection::new(suite, keys);
        let rec = tx.seal(&payload).unwrap();
        prop_assert_eq!(rx.open(&rec).unwrap(), payload);
    }

    /// Chord: for any member set and any key, greedy finger lookup from
    /// any start agrees with the ring successor.
    #[test]
    fn chord_lookup_agrees_with_owner(
        members in proptest::collection::btree_set(0u32..500, 1..40),
        key in any::<u64>(),
    ) {
        let mut ring = ChordRing::new();
        for &m in &members {
            ring.join(m);
        }
        let owner = ring.owner(key).unwrap();
        for &start in members.iter().take(5) {
            let (found, hops) = ring.lookup(start, key).unwrap();
            prop_assert_eq!(found, owner);
            prop_assert!(hops <= members.len());
        }
    }

    /// Parser robustness: arbitrary bytes never panic and are never
    /// accepted as valid structures with inconsistent framing.
    #[test]
    fn parsers_tolerate_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = teenet::attest::AttestRequest::from_bytes(&bytes);
        let _ = teenet::attest::AttestResponse::from_bytes(&bytes);
        let _ = teenet_sgx::Report::from_bytes(&bytes);
        let _ = teenet_sgx::Quote::from_bytes(&bytes);
        let _ = teenet_sgx::seal::SealedBlob::from_bytes(&bytes);
        let _ = teenet_interdomain::LocalPolicy::from_bytes(&bytes);
        let _ = teenet_interdomain::Predicate::from_bytes(&bytes);
        let _ = teenet_interdomain::wire::decode_submission(&bytes);
        let _ = teenet_interdomain::wire::decode_routes(&bytes);
        let _ = teenet_tor::Cell::from_bytes(&bytes);
        let _ = teenet_mbox::ProvisionMsg::from_bytes(&bytes);
    }

    /// Sealing: round trip for arbitrary secrets; arbitrary single-byte
    /// corruption of the blob is always rejected.
    #[test]
    fn sealing_roundtrip_and_corruption(
        secret in proptest::collection::vec(any::<u8>(), 0..500),
        key in proptest::array::uniform32(any::<u8>()),
        flip in any::<u16>(),
    ) {
        let blob = teenet_sgx::seal::seal(&key, b"label", [5u8; 16], &secret);
        prop_assert_eq!(teenet_sgx::seal::unseal(&key, &blob).unwrap(), secret);
        let mut bytes = blob.to_bytes();
        let idx = flip as usize % bytes.len();
        bytes[idx] ^= 1 + (flip >> 8) as u8 % 255;
        if let Ok(parsed) = teenet_sgx::seal::SealedBlob::from_bytes(&bytes) {
            if parsed != blob {
                prop_assert!(teenet_sgx::seal::unseal(&key, &parsed).is_err());
            }
        }
    }

    /// Deterministic RNG forks: same label → same stream, different
    /// labels → different streams (no accidental correlation).
    #[test]
    fn rng_fork_independence(seed in any::<u64>(), la in any::<u8>(), lb in any::<u8>()) {
        let parent = SecureRng::seed_from_u64(seed);
        let mut f1 = parent.fork(&[la]);
        let mut f2 = parent.fork(&[lb]);
        let a: Vec<u64> = (0..4).map(|_| f1.next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|_| f2.next_u64()).collect();
        if la == lb {
            prop_assert_eq!(a, b);
        } else {
            prop_assert_ne!(a, b);
        }
    }
}
