//! Integration: the SDN inter-domain routing case study end to end —
//! deployment over SGX platforms, correctness of the in-enclave
//! computation against both the native run and the distributed oracle,
//! privacy of the verification module, and Table 4's overhead shape.

use teenet::attest::AttestConfig;
use teenet_crypto::SecureRng;
use teenet_interdomain::controller::verify_status;
use teenet_interdomain::refbgp::run_distributed_bgp;
use teenet_interdomain::{
    compute_routes, default_policies, run_native, AsId, Predicate, SdnDeployment, Topology,
};

fn topology(n: u32, seed: u64) -> Topology {
    Topology::random(n, &mut SecureRng::seed_from_u64(seed))
}

#[test]
fn full_figure2_flow_distributes_correct_routes() {
    let t = topology(12, 5);
    let policies = default_policies(&t);
    let reference = compute_routes(&t, &policies);

    let mut deployment = SdnDeployment::new(&t, &policies, AttestConfig::fast(), 9).unwrap();
    let report = deployment.run().unwrap();

    // Every AS got exactly the routes the reference computation selects.
    for (i, &count) in report.routes_installed.iter().enumerate() {
        let expected = reference.routes_of(AsId(i as u32)).len() as u32;
        assert_eq!(count, expected, "AS{i} route count");
    }
    assert_eq!(report.attestations, 12);
}

#[test]
fn three_way_agreement_native_enclave_distributed() {
    // The same topology through all three execution paths must agree.
    let t = topology(15, 6);
    let policies = default_policies(&t);
    let native = run_native(&t, &policies);
    let distributed = run_distributed_bgp(&t, &policies, 77);
    assert_eq!(native.outcome.best, distributed.best);

    let mut deployment = SdnDeployment::new(&t, &policies, AttestConfig::fast(), 10).unwrap();
    let report = deployment.run().unwrap();
    for (i, &count) in report.routes_installed.iter().enumerate() {
        assert_eq!(
            count as usize,
            native.outcome.routes_of(AsId(i as u32)).len()
        );
    }
}

#[test]
fn broken_promise_detected_through_the_enclave() {
    // A constructed topology where AS0 has a genuine alternative: AS0
    // peers with AS1; both sell transit to AS2; AS1 and AS2 both sell
    // transit to AS3. AS0 promises to prefer customer AS2's routes, but
    // secretly downgrades them below the peer default.
    use teenet_interdomain::EdgeKind;
    let t = Topology::from_edges(
        4,
        vec![
            (AsId(0), AsId(1), EdgeKind::Peering),
            (AsId(0), AsId(2), EdgeKind::TransitTo),
            (AsId(1), AsId(2), EdgeKind::TransitTo),
            (AsId(2), AsId(3), EdgeKind::TransitTo),
            (AsId(1), AsId(3), EdgeKind::TransitTo),
        ],
    );
    let promise = Predicate::PrefersNeighbor {
        of: AsId(0),
        neighbor: AsId(2),
        dst: AsId(3),
    };

    // Honest policies: promise kept.
    let honest = default_policies(&t);
    let mut deployment = SdnDeployment::new(&t, &honest, AttestConfig::fast(), 11).unwrap();
    deployment.run().unwrap();
    let s1 = deployment
        .verify_predicate(2, AsId(0), AsId(2), &promise)
        .unwrap();
    assert_eq!(s1, verify_status::PENDING);
    let s2 = deployment
        .verify_predicate(0, AsId(0), AsId(2), &promise)
        .unwrap();
    assert_eq!(s2, verify_status::TRUE, "honest AS0 keeps the promise");

    // Sabotaged policies: AS0 downgrades AS2 below the peer default.
    let mut cheating = default_policies(&t);
    cheating
        .get_mut(&AsId(0))
        .unwrap()
        .pref_override
        .insert(AsId(2), 50);
    let mut deployment = SdnDeployment::new(&t, &cheating, AttestConfig::fast(), 12).unwrap();
    deployment.run().unwrap();
    let s1 = deployment
        .verify_predicate(2, AsId(0), AsId(2), &promise)
        .unwrap();
    assert_eq!(s1, verify_status::PENDING);
    let s2 = deployment
        .verify_predicate(0, AsId(0), AsId(2), &promise)
        .unwrap();
    assert_eq!(s2, verify_status::FALSE, "the secret downgrade is exposed");
}

#[test]
fn verification_never_leaks_third_party_predicates() {
    let t = topology(8, 8);
    let policies = default_policies(&t);
    let mut deployment = SdnDeployment::new(&t, &policies, AttestConfig::fast(), 12).unwrap();
    deployment.run().unwrap();

    // AS1 and AS2 agree on a predicate that inspects AS5's routing.
    let nosy = Predicate::NextHopIs {
        src: AsId(5),
        dst: AsId(0),
        next_hop: AsId(1),
    };
    assert!(deployment
        .verify_predicate(1, AsId(1), AsId(2), &nosy)
        .is_err());
}

#[test]
fn table4_shape_holds_across_sizes() {
    // SGX overhead must stay within a sane band (the paper reports 82%)
    // and grow in absolute terms with topology size.
    let mut last_sgx = 0u64;
    for n in [10u32, 20, 30] {
        let t = topology(n, 2015);
        let policies = default_policies(&t);
        let native = run_native(&t, &policies);
        let mut deployment = SdnDeployment::new(&t, &policies, AttestConfig::fast(), 13).unwrap();
        let report = deployment.run().unwrap();
        let overhead =
            report.interdomain.normal_instr as f64 / native.interdomain.normal_instr as f64;
        assert!((1.5..2.6).contains(&overhead), "n={n}: overhead {overhead}");
        assert!(report.interdomain.normal_instr > last_sgx);
        last_sgx = report.interdomain.normal_instr;
    }
}

#[test]
fn deployment_is_deterministic() {
    let t = topology(10, 9);
    let policies = default_policies(&t);
    let run = |seed| {
        let mut d = SdnDeployment::new(&t, &policies, AttestConfig::fast(), seed).unwrap();
        let r = d.run().unwrap();
        (
            r.interdomain.normal_instr,
            r.interdomain.sgx_instr,
            r.routes_installed,
        )
    };
    assert_eq!(run(42), run(42));
}
