//! Integration: the TLS-aware middlebox case study — key release through
//! real attestation, inspection correctness, and the consent policies.

use teenet::attest::AttestConfig;
use teenet::ledger::AttestLedger;
use teenet_crypto::SecureRng;
use teenet_mbox::scenarios::{cloud_dpi_bilateral, enterprise_outbound};
use teenet_mbox::{
    Action, EndpointRole, MiddleboxChain, MiddleboxHost, ProcessResult, ProvisionPolicy, Rule,
};
use teenet_sgx::EpidGroup;
use teenet_tls::handshake::{handshake, TlsConfig};

#[test]
fn scenarios_are_deterministic() {
    let a = enterprise_outbound(42).unwrap();
    let b = enterprise_outbound(42).unwrap();
    assert_eq!(a.server_received, b.server_received);
    assert_eq!(a.blocked, b.blocked);
    let c = cloud_dpi_bilateral(43).unwrap();
    assert_eq!(c.attestations, 2);
}

#[test]
fn server_side_unilateral_inspection() {
    // The paper's "service providers can deploy middleboxes that inspect
    // TLS traffic" variant: the *server* releases keys; client unchanged.
    let mut rng = SecureRng::seed_from_u64(50);
    let epid = EpidGroup::new(60, &mut rng).unwrap();
    let mut ledger = AttestLedger::new();
    let mut inspector = MiddleboxHost::deploy(
        "provider-ids",
        ProvisionPolicy::Unilateral,
        vec![Rule::new(b"bot-c2-beacon", Action::Alert)],
        AttestConfig::fast(),
        &epid,
        60,
        &mut rng,
    )
    .unwrap();
    let mut srng = rng.fork(b"server");
    let (mut client, mut server) = handshake(TlsConfig::fast(), &mut rng, &mut srng).unwrap();
    let (sid, active) = inspector
        .provision(EndpointRole::Server, &server, &mut rng, &mut ledger)
        .unwrap();
    assert!(active);

    // Client→server traffic is inspected in flight.
    let rec = client.send(b"bot-c2-beacon ping").unwrap();
    let out = inspector.process(sid, EndpointRole::Client, &rec).unwrap();
    let ProcessResult::Pass(bytes) = out else {
        panic!("alert-only rule must pass");
    };
    assert_eq!(server.recv(&bytes).unwrap(), b"bot-c2-beacon ping");
    // Server→client direction works too.
    let rec = server.send(b"response").unwrap();
    let out = inspector.process(sid, EndpointRole::Server, &rec).unwrap();
    let ProcessResult::Pass(bytes) = out else {
        panic!("pass");
    };
    assert_eq!(client.recv(&bytes).unwrap(), b"response");
    let (alerts, _, passed) = inspector.stats(sid).unwrap();
    assert_eq!(alerts, 1);
    assert_eq!(passed, 2);
}

#[test]
fn middlebox_transparent_to_endpoints_when_passing() {
    // Passed records are byte-identical: endpoints cannot even tell the
    // middlebox decrypted them (same keys, same seq, same ciphertext).
    let mut rng = SecureRng::seed_from_u64(51);
    let epid = EpidGroup::new(61, &mut rng).unwrap();
    let mut ledger = AttestLedger::new();
    let mut mb = MiddleboxHost::deploy(
        "transparent",
        ProvisionPolicy::Unilateral,
        vec![Rule::new(b"nothing-matches-this", Action::Block)],
        AttestConfig::fast(),
        &epid,
        61,
        &mut rng,
    )
    .unwrap();
    let mut srng = rng.fork(b"server");
    let (mut client, _server) = handshake(TlsConfig::fast(), &mut rng, &mut srng).unwrap();
    let (sid, _) = mb
        .provision(EndpointRole::Client, &client, &mut rng, &mut ledger)
        .unwrap();
    let rec = client.send(b"innocent").unwrap();
    let out = mb.process(sid, EndpointRole::Client, &rec).unwrap();
    assert_eq!(out, ProcessResult::Pass(rec));
}

#[test]
fn rewrite_keeps_downstream_chain_consistent() {
    // Box 1 rewrites; box 2 must still authenticate and inspect the
    // rewritten record; the endpoint must still accept it.
    let mut rng = SecureRng::seed_from_u64(52);
    let epid = EpidGroup::new(62, &mut rng).unwrap();
    let mut ledger = AttestLedger::new();
    let sanitizer = MiddleboxHost::deploy(
        "sanitizer",
        ProvisionPolicy::Unilateral,
        vec![Rule::new(b"secret-token", Action::Rewrite)],
        AttestConfig::fast(),
        &epid,
        62,
        &mut rng,
    )
    .unwrap();
    let auditor = MiddleboxHost::deploy(
        "auditor",
        ProvisionPolicy::Unilateral,
        // The auditor alerts on the *masked* form — proof it inspected
        // the post-rewrite plaintext.
        vec![Rule::new(b"************", Action::Alert)],
        AttestConfig::fast(),
        &epid,
        63,
        &mut rng,
    )
    .unwrap();
    let mut srng = rng.fork(b"server");
    let (mut client, mut server) = handshake(TlsConfig::fast(), &mut rng, &mut srng).unwrap();
    let mut chain = MiddleboxChain::provision(
        vec![sanitizer, auditor],
        EndpointRole::Client,
        &client,
        &mut rng,
        &mut ledger,
    )
    .unwrap();
    let rec = client.send(b"send secret-token now").unwrap();
    let out = chain.process(EndpointRole::Client, &rec).unwrap().unwrap();
    assert_eq!(server.recv(&out).unwrap(), b"send ************ now");
    let (alerts, _, _) = chain.stats().unwrap();
    assert_eq!(alerts, 2, "rewrite match + auditor's masked-form match");
}

#[test]
fn bilateral_box_never_activates_with_one_endpoint() {
    let mut rng = SecureRng::seed_from_u64(53);
    let epid = EpidGroup::new(63, &mut rng).unwrap();
    let mut ledger = AttestLedger::new();
    let mut mb = MiddleboxHost::deploy(
        "strict",
        ProvisionPolicy::Bilateral,
        vec![],
        AttestConfig::fast(),
        &epid,
        64,
        &mut rng,
    )
    .unwrap();
    let mut srng = rng.fork(b"server");
    let (mut client, _server) = handshake(TlsConfig::fast(), &mut rng, &mut srng).unwrap();
    let (sid, active) = mb
        .provision(EndpointRole::Client, &client, &mut rng, &mut ledger)
        .unwrap();
    assert!(!active);
    // Same endpoint re-provisioning does not count as the second party.
    let (_, active) = mb
        .provision(EndpointRole::Client, &client, &mut rng, &mut ledger)
        .unwrap();
    assert!(!active, "one endpoint cannot consent twice");
    let rec = client.send(b"data").unwrap();
    assert!(mb.process(sid, EndpointRole::Client, &rec).is_err());
}
