//! Workspace-level contract of the sharded replay model: for every paper
//! scenario, in both transition modes and both arrival disciplines, the
//! report produced by `run_sharded` must be byte-identical for 1, 2 and
//! 4 OS threads — calibration against real enclaves included.

use teenet_load::scenarios::{by_name_mode, NAMES};
use teenet_load::{LoadConfig, LoadMode, LoadRunner};
use teenet_netsim::fault::FaultConfig;
use teenet_sgx::TransitionMode;

const SEED: u64 = 17;
const SESSIONS: u64 = 200;

fn config(mode: LoadMode) -> LoadConfig {
    let mut cfg = LoadConfig::new(SESSIONS, SEED, mode);
    // Faults exercise the per-session derived RNGs: a partition-dependent
    // seed would show up as diverging retry/drop counts immediately.
    cfg.faults = FaultConfig {
        drop_chance: 0.03,
        corrupt_chance: 0.02,
        ..FaultConfig::default()
    };
    cfg
}

#[test]
fn every_scenario_is_shard_count_independent() {
    for name in NAMES {
        for tmode in [TransitionMode::Classic, TransitionMode::Switchless] {
            let mut scenario = by_name_mode(name, SEED, tmode).expect("known scenario");
            let calibration = scenario.calibrate();
            for lmode in [
                LoadMode::Open { rate_per_sec: None },
                LoadMode::Closed { concurrency: 16 },
            ] {
                let runner = LoadRunner::new(config(lmode));
                let one = runner.run_sharded(scenario.name(), &calibration, 1);
                let two = runner.run_sharded(scenario.name(), &calibration, 2);
                let four = runner.run_sharded(scenario.name(), &calibration, 4);
                let label = format!("{name}/{}/{:?}", tmode.as_str(), lmode);
                assert_eq!(one.json(), two.json(), "{label}: 1 vs 2 shards");
                assert_eq!(one.json(), four.json(), "{label}: 1 vs 4 shards");
                assert_eq!(one.text(), four.text(), "{label}: text rendering");
                assert_eq!(
                    one.completed + one.failed,
                    SESSIONS,
                    "{label}: every session must resolve"
                );
            }
        }
    }
}

#[test]
fn sharded_and_serial_models_share_per_session_costs() {
    // The sharded model removes cross-session queueing, so latency and
    // duration legitimately differ from the serial engine — but the
    // per-session work (cost rollups, transitions) is identical by
    // construction on a clean network where every session completes.
    let mut scenario = by_name_mode("attest", SEED, TransitionMode::Classic).unwrap();
    let calibration = scenario.calibrate();
    let cfg = LoadConfig::new(100, SEED, LoadMode::Closed { concurrency: 8 });
    let runner = LoadRunner::new(cfg);
    let serial = runner.run(scenario.name(), &calibration);
    let sharded = runner.run_sharded(scenario.name(), &calibration, 4);
    assert_eq!(serial.completed, sharded.completed);
    assert_eq!(serial.transitions, sharded.transitions);
    for (a, b) in serial.phases.iter().zip(sharded.phases.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.counters, b.counters, "phase {}", a.name);
        assert_eq!(a.ops, b.ops, "phase {}", a.name);
    }
    assert_eq!(serial.total, sharded.total);
    assert_eq!(serial.total_cycles, sharded.total_cycles);
}
