//! Integration: the full remote-attestation stack (crypto → SGX emulator →
//! attestation protocol → secure channel) across multiple platforms.

use teenet::attest::AttestConfig;
use teenet::identity::{IdentityPolicy, SoftwareCertificate};
use teenet::responder::{attest_enclave, AttestResponder, SessionNonce};
use teenet::TeenetError;
use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
use teenet_crypto::SecureRng;
use teenet_sgx::cost::CostModel;
use teenet_sgx::{deploy_platform, EnclaveCtx, EnclaveProgram, EpidGroup, SgxError, TeeBackend};

struct EchoService {
    responder: AttestResponder,
    version: u8,
}

impl EnclaveProgram for EchoService {
    fn code_image(&self) -> Vec<u8> {
        vec![b'e', b's', b'v', self.version]
    }
    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        fn_id: u64,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match fn_id {
            0 => self.responder.handle_begin(ctx, input),
            1 => self.responder.handle_finish(ctx, input),
            2 => {
                let (nonce, msg) = input.split_at(32);
                let nonce: SessionNonce = nonce.try_into().expect("32");
                let ch = self.responder.channel_mut(&nonce)?;
                let plain = ch
                    .open(msg)
                    .map_err(|_| SgxError::EcallRejected("bad message"))?;
                Ok(ch.seal(&plain))
            }
            _ => Err(SgxError::EcallRejected("unknown fn")),
        }
    }
}

fn service(version: u8) -> Box<EchoService> {
    Box::new(EchoService {
        responder: AttestResponder::new(AttestConfig::fast()),
        version,
    })
}

#[test]
fn cross_platform_attestation_and_channel() {
    // Two distinct physical platforms in one EPID group: quotes from
    // either verify under the single group key; channels work end to end.
    let mut rng = SecureRng::seed_from_u64(1);
    let epid = EpidGroup::new(1, &mut rng).unwrap();
    let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
    let model = CostModel::paper();

    for (name, seed) in [("host-a", 10u64), ("host-b", 20)] {
        let mut platform = deploy_platform(TeeBackend::Sgx, name, &epid, seed).unwrap();
        let enclave = platform.create_signed(service(1), &author, 1).unwrap();
        let expected = platform.measurement_of(enclave).unwrap();
        let (outcome, nonce) = attest_enclave(
            IdentityPolicy::Mrenclave(expected),
            AttestConfig::fast(),
            &model,
            &mut rng,
            platform.as_mut(),
            enclave,
            0,
            1,
            &epid.public_key(),
            None,
        )
        .unwrap();
        let mut channel = outcome.channel.unwrap();
        let mut input = nonce.to_vec();
        input.extend_from_slice(&channel.seal(b"cross-platform ping"));
        let reply = platform.ecall_nohost(enclave, 2, &input).unwrap();
        assert_eq!(channel.open(&reply).unwrap(), b"cross-platform ping");
    }
}

#[test]
fn certificate_gated_attestation() {
    // A foundation certifies version 1; version 2 (an "update" nobody
    // certified) must be rejected under the Certified policy.
    let mut rng = SecureRng::seed_from_u64(2);
    let epid = EpidGroup::new(1, &mut rng).unwrap();
    let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
    let foundation = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
    let model = CostModel::paper();

    let v1_measurement = teenet_sgx::measure_image(&service(1).code_image());
    let cert = SoftwareCertificate::issue(
        "echo-service",
        1,
        vec![v1_measurement],
        &foundation,
        &mut rng,
    )
    .unwrap();
    let policy = IdentityPolicy::Certified {
        authority: foundation.verifying_key(),
    };

    let mut platform = deploy_platform(TeeBackend::Sgx, "host", &epid, 3).unwrap();
    let v1 = platform.create_signed(service(1), &author, 1).unwrap();
    let v2 = platform.create_signed(service(2), &author, 2).unwrap();

    assert!(attest_enclave(
        policy.clone(),
        AttestConfig::fast(),
        &model,
        &mut rng,
        platform.as_mut(),
        v1,
        0,
        1,
        &epid.public_key(),
        Some(&cert),
    )
    .is_ok());

    let err = attest_enclave(
        policy,
        AttestConfig::fast(),
        &model,
        &mut rng,
        platform.as_mut(),
        v2,
        0,
        1,
        &epid.public_key(),
        Some(&cert),
    )
    .map(|_| ())
    .unwrap_err();
    assert!(matches!(err, TeenetError::IdentityRejected(_)));
}

#[test]
fn quotes_do_not_verify_under_foreign_group() {
    // Platforms provisioned into different EPID groups cannot impersonate
    // each other.
    let mut rng = SecureRng::seed_from_u64(3);
    let group_a = EpidGroup::new(1, &mut rng).unwrap();
    let group_b = EpidGroup::new(2, &mut rng).unwrap();
    let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
    let model = CostModel::paper();

    let mut platform = deploy_platform(TeeBackend::Sgx, "host", &group_a, 4).unwrap();
    let enclave = platform.create_signed(service(1), &author, 1).unwrap();
    let err = attest_enclave(
        IdentityPolicy::AcceptAny,
        AttestConfig::fast(),
        &model,
        &mut rng,
        platform.as_mut(),
        enclave,
        0,
        1,
        &group_b.public_key(), // verifier trusts the wrong group
        None,
    )
    .map(|_| ())
    .unwrap_err();
    assert!(matches!(err, TeenetError::Sgx(SgxError::QuoteInvalid(_))));
}

#[test]
fn channel_messages_survive_many_rounds() {
    let mut rng = SecureRng::seed_from_u64(4);
    let epid = EpidGroup::new(1, &mut rng).unwrap();
    let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
    let model = CostModel::paper();
    let mut platform = deploy_platform(TeeBackend::Sgx, "host", &epid, 5).unwrap();
    let enclave = platform.create_signed(service(1), &author, 1).unwrap();
    let (outcome, nonce) = attest_enclave(
        IdentityPolicy::AcceptAny,
        AttestConfig::fast(),
        &model,
        &mut rng,
        platform.as_mut(),
        enclave,
        0,
        1,
        &epid.public_key(),
        None,
    )
    .unwrap();
    let mut channel = outcome.channel.unwrap();
    for i in 0..50u32 {
        let msg = format!("round {i}");
        let mut input = nonce.to_vec();
        input.extend_from_slice(&channel.seal(msg.as_bytes()));
        let reply = platform.ecall_nohost(enclave, 2, &input).unwrap();
        assert_eq!(channel.open(&reply).unwrap(), msg.as_bytes());
    }
    assert_eq!(channel.sent_count(), 50);
    assert_eq!(channel.received_count(), 50);
}

#[test]
fn two_independent_sessions_to_one_enclave() {
    // Two challengers attest the same enclave; their channels are
    // independent (distinct nonces → distinct keys).
    let mut rng = SecureRng::seed_from_u64(6);
    let epid = EpidGroup::new(1, &mut rng).unwrap();
    let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
    let model = CostModel::paper();
    let mut platform = deploy_platform(TeeBackend::Sgx, "host", &epid, 6).unwrap();
    let enclave = platform.create_signed(service(1), &author, 1).unwrap();

    let mut sessions = Vec::new();
    for _ in 0..2 {
        let (outcome, nonce) = attest_enclave(
            IdentityPolicy::AcceptAny,
            AttestConfig::fast(),
            &model,
            &mut rng,
            platform.as_mut(),
            enclave,
            0,
            1,
            &epid.public_key(),
            None,
        )
        .unwrap();
        sessions.push((outcome.channel.unwrap(), nonce));
    }
    let (mut ch1, n1) = sessions.remove(0);
    let (mut ch2, n2) = sessions.remove(0);
    assert_ne!(n1, n2);
    // Cross-use fails: channel 1's ciphertext under session 2's nonce.
    let mut input = n2.to_vec();
    input.extend_from_slice(&ch1.seal(b"mismatched"));
    assert!(platform.ecall_nohost(enclave, 2, &input).is_err());
    // Correct pairing works.
    let mut input = n2.to_vec();
    input.extend_from_slice(&ch2.seal(b"matched"));
    let reply = platform.ecall_nohost(enclave, 2, &input).unwrap();
    assert_eq!(ch2.open(&reply).unwrap(), b"matched");
}
