//! Workspace-level contract of the streaming engine: generating sessions
//! lazily, recycling their slots, and scheduling open-loop arrivals one
//! at a time must be *invisible* — for every paper scenario, in both
//! transition modes and both arrival disciplines, the streaming engine's
//! report is byte-identical to the retained reference engine's
//! (calibration against real enclaves included), sharded replay stays
//! shard-count independent on top of it, and the resource diagnostics
//! prove the memory actually is O(live sessions).

use teenet_load::scenarios::{by_name_mode, NAMES};
use teenet_load::{LoadConfig, LoadMode, LoadRunner};
use teenet_netsim::fault::FaultConfig;
use teenet_sgx::TransitionMode;

const SEED: u64 = 23;
const SESSIONS: u64 = 150;

fn config(mode: LoadMode) -> LoadConfig {
    let mut cfg = LoadConfig::new(SESSIONS, SEED, mode);
    // Faults force retransmissions, stale timeouts and duplicate
    // deliveries — the paths where retirement could diverge from the
    // reference engine's done/failed-flag bookkeeping.
    cfg.faults = FaultConfig {
        drop_chance: 0.04,
        corrupt_chance: 0.03,
        duplicate_chance: 0.02,
        ..FaultConfig::default()
    };
    cfg
}

#[test]
fn every_scenario_streams_byte_identically_to_the_reference() {
    for name in NAMES {
        for tmode in [TransitionMode::Classic, TransitionMode::Switchless] {
            let mut scenario = by_name_mode(name, SEED, tmode).expect("known scenario");
            let calibration = scenario.calibrate();
            for lmode in [
                LoadMode::Open { rate_per_sec: None },
                LoadMode::Closed { concurrency: 8 },
            ] {
                let runner = LoadRunner::new(config(lmode));
                let streaming = runner.run(scenario.name(), &calibration);
                let reference = runner
                    .run_reference(scenario.name(), &calibration)
                    .expect("session count fits the reference engine");
                let label = format!("{name}/{}/{:?}", tmode.as_str(), lmode);
                assert_eq!(
                    streaming.json(),
                    reference.json(),
                    "{label}: JSON must be byte-identical"
                );
                assert_eq!(
                    streaming.text(),
                    reference.text(),
                    "{label}: text must be byte-identical"
                );
                assert_eq!(
                    streaming.completed + streaming.failed,
                    SESSIONS,
                    "{label}: every session must resolve"
                );
            }
        }
    }
}

#[test]
fn sharded_replay_stays_shard_count_independent_over_streaming_shards() {
    // Shards now run the streaming engine internally and reduce their
    // scheduling state on the fly; the shard-count byte-identity contract
    // must survive that.
    for name in ["tls", "keystore"] {
        let mut scenario = by_name_mode(name, SEED, TransitionMode::Classic).unwrap();
        let calibration = scenario.calibrate();
        for lmode in [
            LoadMode::Open { rate_per_sec: None },
            LoadMode::Closed { concurrency: 8 },
        ] {
            let runner = LoadRunner::new(config(lmode));
            let one = runner.run_sharded(scenario.name(), &calibration, 1);
            let four = runner.run_sharded(scenario.name(), &calibration, 4);
            assert_eq!(one.json(), four.json(), "{name}/{lmode:?}: 1 vs 4 shards");
            assert_eq!(one.text(), four.text(), "{name}/{lmode:?}: text rendering");
        }
    }
}

#[test]
fn retirement_bounds_live_slots_by_concurrency() {
    // Closed loop with a clean network: exactly `concurrency` sessions
    // are in flight at any instant, so the slab never grows past it —
    // each retired session's slot is recycled by its replacement.
    let mut scenario = by_name_mode("tls", SEED, TransitionMode::Classic).unwrap();
    let calibration = scenario.calibrate();
    let concurrency = 16u32;
    let cfg = LoadConfig::new(2_000, SEED, LoadMode::Closed { concurrency });
    let (report, stats) = LoadRunner::new(cfg).run_with_stats(scenario.name(), &calibration);
    assert_eq!(report.completed, 2_000);
    assert_eq!(
        stats.peak_live_sessions,
        u64::from(concurrency),
        "live slots must equal the closed-loop concurrency"
    );
    assert_eq!(
        stats.slots_allocated,
        u64::from(concurrency),
        "only the initial batch ever allocates a slot"
    );

    // Under faults, abandoned sessions retire too; retransmits keep
    // sessions live longer but never add slots beyond the in-flight set.
    let mut cfg = LoadConfig::new(2_000, SEED, LoadMode::Closed { concurrency });
    cfg.faults = FaultConfig {
        drop_chance: 0.05,
        ..FaultConfig::default()
    };
    let (report, stats) = LoadRunner::new(cfg).run_with_stats(scenario.name(), &calibration);
    assert_eq!(report.completed + report.failed, 2_000);
    assert_eq!(
        stats.peak_live_sessions,
        u64::from(concurrency),
        "faulty runs still cap live sessions at concurrency"
    );
}

#[test]
fn open_loop_heap_is_o_live_not_o_sessions() {
    let mut scenario = by_name_mode("attest", SEED, TransitionMode::Classic).unwrap();
    let calibration = scenario.calibrate();
    let n = 3_000u64;
    let cfg = LoadConfig::new(n, SEED, LoadMode::Open { rate_per_sec: None });
    let runner = LoadRunner::new(cfg);
    let (report, streaming) = runner.run_with_stats(scenario.name(), &calibration);
    let (_, reference) = runner
        .run_reference_with_stats(scenario.name(), &calibration)
        .unwrap();
    assert_eq!(report.completed, n);
    assert!(
        reference.peak_heap_events >= n,
        "reference heap-loads all {n} arrivals at t=0 (got {})",
        reference.peak_heap_events
    );
    assert!(
        streaming.peak_heap_events < n / 8,
        "streaming heap must stay O(live): {} events for {n} sessions",
        streaming.peak_heap_events
    );
    assert!(
        streaming.peak_live_sessions < n / 8,
        "open-loop sessions must retire as they complete: {} live peak",
        streaming.peak_live_sessions
    );
    assert_eq!(
        reference.peak_live_sessions, n,
        "the retained engine keeps every session live to the end"
    );
}
