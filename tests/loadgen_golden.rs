//! Byte-stability gate for the load subsystem: the JSON report of every
//! scenario, in both transition modes, at a fixed seed must match the
//! committed golden fixture byte for byte.
//!
//! The fixtures pin the *numbers* of the calibrate-then-replay pipeline —
//! calibration counters, wire sizes, latency percentiles, transition
//! stats — so a refactor of the calibration stack (e.g. the move to the
//! `teenet-app` service layer) cannot silently change replayed results.
//! Any deliberate change must regenerate the fixtures in the same commit,
//! with an explanation:
//!
//! ```text
//! UPDATE_LOADGEN_GOLDEN=1 cargo test -p teenet-integration --test loadgen_golden
//! ```

use std::path::PathBuf;

use teenet_load::scenarios::{by_name_backend, by_name_mode, NAMES};
use teenet_load::{LoadConfig, LoadMode, LoadRunner};
use teenet_sgx::{TeeBackend, TransitionMode};

/// Fixed shape of every golden run: open loop at the auto rate, default
/// links, 60 sessions at seed 11.
const SESSIONS: u64 = 60;
const SEED: u64 = 11;

fn run_json(name: &str, mode: TransitionMode) -> String {
    let mut scenario = by_name_mode(name, SEED, mode).expect("known scenario");
    let calibration = scenario.calibrate();
    let config = LoadConfig::new(SESSIONS, SEED, LoadMode::Open { rate_per_sec: None });
    LoadRunner::new(config)
        .run(scenario.name(), &calibration)
        .json()
}

fn run_json_vmtee(name: &str, mode: TransitionMode) -> String {
    let mut scenario =
        by_name_backend(name, SEED, mode, TeeBackend::VmTee).expect("known scenario");
    let calibration = scenario.calibrate();
    let config = LoadConfig::new(SESSIONS, SEED, LoadMode::Open { rate_per_sec: None });
    LoadRunner::new(config)
        .run(scenario.name(), &calibration)
        .json()
}

fn fixture_path(name: &str, mode: TransitionMode) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/loadgen")
        .join(format!("{name}.{}.json", mode.as_str()))
}

/// VM-TEE fixtures sit next to the SGX ones with a `.vmtee` infix; the
/// SGX files keep their pre-multi-backend names so this PR provably does
/// not rewrite them.
fn vmtee_fixture_path(name: &str, mode: TransitionMode) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/loadgen")
        .join(format!("{name}.{}.vmtee.json", mode.as_str()))
}

fn check(name: &str, mode: TransitionMode) {
    let got = run_json(name, mode);
    let path = fixture_path(name, mode);
    if std::env::var_os("UPDATE_LOADGEN_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden fixture");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        got,
        want,
        "loadgen output for scenario {name} ({}) drifted from the golden fixture; \
         if the change is deliberate, regenerate with UPDATE_LOADGEN_GOLDEN=1 and \
         explain the diff in the commit",
        mode.as_str()
    );
}

fn check_vmtee(name: &str, mode: TransitionMode) {
    let got = run_json_vmtee(name, mode);
    let path = vmtee_fixture_path(name, mode);
    if std::env::var_os("UPDATE_LOADGEN_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write vmtee golden fixture");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        got,
        want,
        "vmtee loadgen output for scenario {name} ({}) drifted from the golden fixture; \
         if the change is deliberate, regenerate with UPDATE_LOADGEN_GOLDEN=1 and \
         explain the diff in the commit",
        mode.as_str()
    );
    // The VM-TEE profile must actually reprice the run: a fixture equal to
    // the SGX one would mean the backend never reached the cost model.
    assert!(got.contains("\"backend\":\"vmtee\""));
    assert_ne!(got, run_json(name, mode));
}

#[test]
fn attest_matches_golden_classic() {
    check("attest", TransitionMode::Classic);
}

#[test]
fn attest_matches_golden_switchless() {
    check("attest", TransitionMode::Switchless);
}

#[test]
fn tls_matches_golden_classic() {
    check("tls", TransitionMode::Classic);
}

#[test]
fn tls_matches_golden_switchless() {
    check("tls", TransitionMode::Switchless);
}

#[test]
fn tor_matches_golden_classic() {
    check("tor", TransitionMode::Classic);
}

#[test]
fn tor_matches_golden_switchless() {
    check("tor", TransitionMode::Switchless);
}

#[test]
fn bgp_matches_golden_classic() {
    check("bgp", TransitionMode::Classic);
}

#[test]
fn bgp_matches_golden_switchless() {
    check("bgp", TransitionMode::Switchless);
}

#[test]
fn keystore_matches_golden_classic() {
    check("keystore", TransitionMode::Classic);
}

#[test]
fn keystore_matches_golden_switchless() {
    check("keystore", TransitionMode::Switchless);
}

#[test]
fn tls_matches_golden_vmtee_classic() {
    check_vmtee("tls", TransitionMode::Classic);
}

#[test]
fn tls_matches_golden_vmtee_switchless() {
    check_vmtee("tls", TransitionMode::Switchless);
}

#[test]
fn keystore_matches_golden_vmtee_classic() {
    check_vmtee("keystore", TransitionMode::Classic);
}

#[test]
fn keystore_matches_golden_vmtee_switchless() {
    check_vmtee("keystore", TransitionMode::Switchless);
}

#[test]
fn every_scenario_has_a_fixture() {
    for name in NAMES {
        for mode in [TransitionMode::Classic, TransitionMode::Switchless] {
            assert!(
                fixture_path(name, mode).exists()
                    || std::env::var_os("UPDATE_LOADGEN_GOLDEN").is_some(),
                "no golden fixture for {name} ({})",
                mode.as_str()
            );
        }
    }
}
