//! Integration: the Tor case study — anonymity properties of the data
//! plane, the attack/defense matrix across deployment phases, and the
//! consistency of DHT membership with attestation results.

use teenet_netsim::{FaultConfig, LinkConfig, SimDuration};
use teenet_tor::attacks::{bad_apple, defense_matrix, directory_subversion};
use teenet_tor::deployment::{Phase, TorDeployment, TorSpec};

#[test]
fn exit_sees_plaintext_but_not_client_guard_sees_client_but_not_plaintext() {
    // The core onion-routing property, exercised through a full built
    // deployment: position determines knowledge.
    let mut spec = TorSpec::fast(Phase::Vanilla, 21);
    spec.bad_apples = vec![0]; // exit 0 records plaintext
    spec.snoopers = vec![4]; // relay 4 records metadata
    let mut dep = TorDeployment::build(spec).unwrap();
    let admission = dep.run_admission().unwrap();
    // Force a path where we know every position: guard=4, middle=5, exit=0.
    let relays = &dep.network.relays;
    let path = vec![relays[4].net_node, relays[5].net_node, relays[0].net_node];
    assert!(admission.admitted.len() >= 3);
    let reply = dep.exchange(path, b"the secret").unwrap();
    assert_eq!(reply, b"echo:the secret");

    let client_node = dep.network.clients[dep.client].net_node;
    // Exit saw the plaintext...
    assert!(dep.network.relays[0]
        .observed_plaintext
        .iter()
        .any(|p| p == b"the secret"));
    // ...but the guard (snooper at position 1) never saw it, only its
    // neighbors — including the client.
    assert!(dep.network.relays[4].observed_plaintext.is_empty());
    assert!(dep.network.relays[4]
        .observed_metadata
        .iter()
        .any(|&(prev, _)| prev == client_node));
    // And the exit's metadata never includes the client address: its
    // circuit neighbor is the middle relay.
    let middle = dep.network.relays[5].net_node;
    for &(prev, _) in &dep.network.relays[0].observed_metadata {
        assert_ne!(prev, client_node);
        assert_eq!(prev, middle);
    }
}

#[test]
fn defense_matrix_is_monotone() {
    let matrix = defense_matrix(31).unwrap();
    // Once an attack is stopped at some phase, it stays stopped at every
    // later phase.
    let phases = [
        Phase::Vanilla,
        Phase::SgxDirectory,
        Phase::IncrementalOrs,
        Phase::FullSgx,
    ];
    for attack in [
        "bad-apple exit sniffing",
        "directory subversion (tie-breaking / bad admission)",
    ] {
        let mut seen_defended = false;
        for phase in phases {
            let outcome = matrix
                .iter()
                .find(|o| o.phase == phase && o.attack == attack);
            let Some(outcome) = outcome else { continue };
            if !outcome.succeeded {
                seen_defended = true;
            }
            if seen_defended {
                assert!(!outcome.succeeded, "{attack} regressed at {phase:?}");
            }
        }
        assert!(seen_defended, "{attack} never defended");
    }
}

#[test]
fn attacks_are_deterministic_per_seed() {
    let a = bad_apple(Phase::IncrementalOrs, 55).unwrap();
    let b = bad_apple(Phase::IncrementalOrs, 55).unwrap();
    assert_eq!(a.succeeded, b.succeeded);
    assert_eq!(a.detail, b.detail);
    let a = directory_subversion(Phase::Vanilla, 56).unwrap();
    assert!(a.succeeded);
}

#[test]
fn dht_membership_equals_attestation_survivors() {
    let mut spec = TorSpec::fast(Phase::FullSgx, 23);
    spec.n_relays = 10;
    spec.n_exits = 4;
    spec.bad_apples = vec![1, 3];
    spec.snoopers = vec![7];
    let mut dep = TorDeployment::build(spec).unwrap();
    let admission = dep.run_admission().unwrap();
    let ring = admission.dht.as_ref().unwrap();
    assert_eq!(ring.len(), 7);
    for bad in [1u32, 3, 7] {
        assert!(!ring.contains(bad));
        assert!(admission.rejected.contains(&bad));
    }
    // Every admitted member resolves lookups to admitted members only.
    for &m in ring.members().iter() {
        let (owner, _) = ring.lookup(m, 0xabcdef).unwrap();
        assert!(ring.contains(owner));
    }
}

#[test]
fn circuits_survive_lossy_links() {
    // Cells ride the netsim substrate; with mild reordering the circuit
    // still builds (cells between a pair keep FIFO order on a clean link,
    // so we only inject *delay-free* duplication which the circuit layer
    // tolerates at the link level).
    let mut spec = TorSpec::fast(Phase::Vanilla, 24);
    spec.n_relays = 4;
    spec.n_exits = 2;
    let mut dep = TorDeployment::build(spec).unwrap();
    dep.network.set_link_config(LinkConfig {
        latency: SimDuration::from_millis(2),
        bandwidth_bps: Some(10_000_000),
        faults: FaultConfig::default(),
    });
    let admission = dep.run_admission().unwrap();
    let path = dep.select_path(&admission, None).unwrap();
    let reply = dep.exchange(path, b"latency test").unwrap();
    assert_eq!(reply, b"echo:latency test");
}

#[test]
fn full_sgx_needs_no_authorities() {
    let spec = TorSpec::fast(Phase::FullSgx, 25);
    let dep = TorDeployment::build(spec).unwrap();
    assert!(dep.authorities.is_empty());
    assert!(dep.authority_platforms.is_empty());
}
