//! Integration: properties that cut across the whole workspace — the
//! shared-code model of §4, cost-model consistency between the table
//! harnesses, and determinism of every case study from one master seed.

use teenet::attest::AttestConfig;
use teenet::fmt;
use teenet_crypto::SecureRng;
use teenet_interdomain::{default_policies, run_native, SdnDeployment, Topology};
use teenet_sgx::cost::{CostModel, Counters};
use teenet_sgx::measure_image;
use teenet_tor::deployment::TorServiceEnclave;

#[test]
fn shared_code_model_identical_builds_identical_identities() {
    // §4: "virtually everyone can validate the integrity of the entire
    // project" — a deterministic build of the same source yields the same
    // measurement everywhere, so anyone holding the shared attestation
    // key material can verify any node.
    let a = TorServiceEnclave::honest_measurement("relay", 1);
    let b = TorServiceEnclave::honest_measurement("relay", 1);
    assert_eq!(a, b);
    // Any change — version bump or patch — changes the identity.
    assert_ne!(a, TorServiceEnclave::honest_measurement("relay", 2));
    assert_ne!(a, TorServiceEnclave::honest_measurement("authority", 1));
}

#[test]
fn controller_code_inspection_model() {
    // The inter-domain controller identity is a pure function of its
    // agreed configuration — ASes can compute the expected measurement
    // from source without trusting anyone.
    use teenet_interdomain::InterdomainController;
    let cfg = AttestConfig::fast();
    let m1 = InterdomainController::expected_measurement(&cfg);
    let m2 = InterdomainController::expected_measurement(&cfg);
    assert_eq!(m1, m2);
    let honest = InterdomainController::new(cfg.clone());
    use teenet_sgx::EnclaveProgram;
    assert_eq!(measure_image(&honest.code_image()), m1);
}

#[test]
fn cycle_model_is_the_papers_formula() {
    let model = CostModel::paper();
    let c = Counters {
        sgx_instr: 37,
        normal_instr: 4_463_000_000,
    };
    // 37 × 10_000 + 1.8 × 4463M = 8033.77M (the paper's "8033M cycles").
    assert_eq!(c.cycles(&model), 370_000 + 8_033_400_000);
    assert_eq!(fmt::cycles(c.cycles(&model)), "8033.8M");
}

#[test]
fn master_seed_determinism_across_case_studies() {
    // Re-running the full inter-domain deployment from one seed reproduces
    // counters bit for bit — the property the whole evaluation rests on.
    let run = || {
        let t = Topology::random(10, &mut SecureRng::seed_from_u64(123));
        let p = default_policies(&t);
        let native = run_native(&t, &p);
        let mut d = SdnDeployment::new(&t, &p, AttestConfig::fast(), 5).unwrap();
        let r = d.run().unwrap();
        (
            native.interdomain.normal_instr,
            r.interdomain.normal_instr,
            r.interdomain.sgx_instr,
            r.aslocal_avg().normal_instr,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn table_overheads_are_mutually_consistent() {
    // The overhead reported by instruction counts and the overhead in
    // cycles must be close: SGX(U) instructions are rare enough that the
    // 10K-cycle penalty stays a small correction (paper: 82% instructions
    // vs ~90% cycles).
    let model = CostModel::paper();
    let t = Topology::random(30, &mut SecureRng::seed_from_u64(2015));
    let p = default_policies(&t);
    let native = run_native(&t, &p);
    let mut d = SdnDeployment::new(&t, &p, AttestConfig::fast(), 7).unwrap();
    let r = d.run().unwrap();
    let instr_overhead = r.interdomain.normal_instr as f64 / native.interdomain.normal_instr as f64;
    let cycle_overhead =
        r.interdomain.cycles(&model) as f64 / native.interdomain.cycles(&model) as f64;
    assert!((cycle_overhead - instr_overhead).abs() < 0.25);
    assert!(cycle_overhead >= instr_overhead, "SGX instr add cycles");
}
