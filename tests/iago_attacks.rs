//! Integration: Iago attacks — a malicious host returning adversarial
//! values from ocalls, and the enclave-side sanity checking (§6: "The
//! enclave program must verify/sanity check the return values and output
//! parameters of system calls").

use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
use teenet_crypto::SecureRng;
use teenet_sgx::ocall::{checked, validate_len_le, HostCalls};
use teenet_sgx::{
    deploy_platform, EnclaveCtx, EnclaveProgram, EpidGroup, SgxError, TeeBackend, TeePlatform,
};

/// An enclave that reads data from the host through a *checked* recv: the
/// host returns `len(u64) ‖ data`, and the enclave validates both the
/// claimed length against its buffer size and the framing before use.
struct CheckedReader {
    buffer_size: usize,
    pub received: Vec<u8>,
}

impl EnclaveProgram for CheckedReader {
    fn code_image(&self) -> Vec<u8> {
        b"checked-reader-v1".to_vec()
    }
    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        _fn_id: u64,
        _input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        let raw = ctx.ocall("recv", &[]);
        // Iago discipline: the length header must be 8 bytes, claim no
        // more than the buffer, and match the actual payload length.
        let buffer_size = self.buffer_size;
        let data = checked(raw, "recv length", |raw| {
            if raw.len() < 8 {
                return None;
            }
            let claimed = validate_len_le(&raw[..8], buffer_size)?;
            (raw.len() - 8 == claimed).then(|| raw[8..].to_vec())
        })?;
        self.received = data.clone();
        Ok(data)
    }
}

fn setup() -> (Box<dyn TeePlatform>, u64) {
    let mut rng = SecureRng::seed_from_u64(99);
    let epid = EpidGroup::new(1, &mut rng).unwrap();
    let mut platform = deploy_platform(TeeBackend::Sgx, "iago-host", &epid, 1).unwrap();
    let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
    let enclave = platform
        .create_signed(
            Box::new(CheckedReader {
                buffer_size: 16,
                received: Vec::new(),
            }),
            &author,
            1,
        )
        .unwrap();
    (platform, enclave)
}

fn host_returning(reply: Vec<u8>) -> impl HostCalls {
    move |_name: &str, _payload: &[u8]| reply.clone()
}

#[test]
fn honest_host_passes_checks() {
    let (mut platform, enclave) = setup();
    let mut reply = 5u64.to_le_bytes().to_vec();
    reply.extend_from_slice(b"hello");
    let mut host = host_returning(reply);
    let out = platform.ecall(enclave, 0, &[], &mut host).unwrap();
    assert_eq!(out, b"hello");
}

#[test]
fn oversized_length_claim_rejected() {
    // The classic Iago vector: claim a length beyond the enclave buffer
    // to provoke an overflow. The checked wrapper rejects it.
    let (mut platform, enclave) = setup();
    let mut reply = 1000u64.to_le_bytes().to_vec();
    reply.extend_from_slice(&[0u8; 1000]);
    let mut host = host_returning(reply);
    let err = platform.ecall(enclave, 0, &[], &mut host).unwrap_err();
    assert!(matches!(err, SgxError::IagoViolation(_)));
}

#[test]
fn inconsistent_framing_rejected() {
    // Length header says 4, payload is 12: a confused-deputy setup.
    let (mut platform, enclave) = setup();
    let mut reply = 4u64.to_le_bytes().to_vec();
    reply.extend_from_slice(b"twelve bytes");
    let mut host = host_returning(reply);
    let err = platform.ecall(enclave, 0, &[], &mut host).unwrap_err();
    assert!(matches!(err, SgxError::IagoViolation(_)));
}

#[test]
fn truncated_header_rejected() {
    let (mut platform, enclave) = setup();
    let mut host = host_returning(vec![1, 2, 3]);
    let err = platform.ecall(enclave, 0, &[], &mut host).unwrap_err();
    assert!(matches!(err, SgxError::IagoViolation(_)));
}

#[test]
fn malicious_host_cannot_break_attestation() {
    // The attestation responder never consumes ocall return values, so a
    // host lying on every ocall cannot corrupt the protocol — it can only
    // deny service by refusing to ferry messages (which is in the threat
    // model).
    use teenet::attest::AttestConfig;
    use teenet::identity::IdentityPolicy;
    use teenet::responder::AttestResponder;
    use teenet_sgx::cost::CostModel;

    struct Svc {
        responder: AttestResponder,
    }
    impl EnclaveProgram for Svc {
        fn code_image(&self) -> Vec<u8> {
            b"svc-v1".to_vec()
        }
        fn ecall(
            &mut self,
            ctx: &mut EnclaveCtx<'_>,
            fn_id: u64,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            match fn_id {
                0 => self.responder.handle_begin(ctx, input),
                1 => self.responder.handle_finish(ctx, input),
                _ => Err(SgxError::EcallRejected("unknown")),
            }
        }
    }

    let mut rng = SecureRng::seed_from_u64(5);
    let epid = EpidGroup::new(1, &mut rng).unwrap();
    let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
    let mut platform = deploy_platform(TeeBackend::Sgx, "host", &epid, 2).unwrap();
    let enclave = platform
        .create_signed(
            Box::new(Svc {
                responder: AttestResponder::new(AttestConfig::fast()),
            }),
            &author,
            1,
        )
        .unwrap();

    // Drive the attestation manually with a hostile ocall table.
    let model = CostModel::paper();
    let (challenger, request) = teenet::attest::Challenger::start(
        IdentityPolicy::AcceptAny,
        AttestConfig::fast(),
        &model,
        &mut rng,
    )
    .unwrap();
    let mut evil = |_n: &str, _p: &[u8]| b"\xff\xff lies from the host \xff\xff".to_vec();
    let mut begin_input = request.to_bytes();
    begin_input.extend_from_slice(&platform.attestation_target_info().mrenclave.0);
    let report_bytes = platform.ecall(enclave, 0, &begin_input, &mut evil).unwrap();
    let report = teenet_sgx::Report::from_bytes(&report_bytes).unwrap();
    let quote = platform.evidence(&report).unwrap();
    let mut finish_input = request.nonce.to_vec();
    finish_input.extend_from_slice(&quote.to_bytes());
    let response_bytes = platform
        .ecall(enclave, 1, &finish_input, &mut evil)
        .unwrap();
    let response = teenet::attest::AttestResponse::from_bytes(&response_bytes).unwrap();
    let outcome = challenger
        .verify(&response, &epid.public_key(), None)
        .unwrap();
    assert!(
        outcome.channel.is_some(),
        "attestation unaffected by ocall lies"
    );
}
