//! Workspace-level determinism contract of the load subsystem: the same
//! scenario and seed must produce byte-identical JSON reports — across
//! calibration (real enclaves, real crypto), virtual-time replay, fault
//! injection, and report formatting.

use teenet_load::scenarios::{by_name, NAMES};
use teenet_load::{LoadConfig, LoadMode, LoadRunner};
use teenet_netsim::fault::FaultConfig;

fn run_json(name: &str, seed: u64, sessions: u64, faults: FaultConfig) -> String {
    let mut scenario = by_name(name, seed).expect("known scenario");
    let calibration = scenario.calibrate();
    let mut config = LoadConfig::new(sessions, seed, LoadMode::Open { rate_per_sec: None });
    config.faults = faults;
    LoadRunner::new(config)
        .run(scenario.name(), &calibration)
        .json()
}

#[test]
fn every_scenario_is_byte_deterministic() {
    for name in NAMES {
        let a = run_json(name, 11, 60, FaultConfig::default());
        let b = run_json(name, 11, 60, FaultConfig::default());
        assert_eq!(a, b, "scenario {name} not byte-deterministic");
        assert!(a.contains("\"completed\":60"), "{name}: {a}");
    }
}

#[test]
fn determinism_holds_under_fault_injection() {
    let faults = FaultConfig {
        drop_chance: 0.05,
        corrupt_chance: 0.02,
        duplicate_chance: 0.02,
        ..FaultConfig::default()
    };
    let a = run_json("attest", 3, 80, faults.clone());
    let b = run_json("attest", 3, 80, faults);
    assert_eq!(a, b, "faulty-network runs must still be deterministic");
}

#[test]
fn different_seeds_produce_different_runs() {
    let a = run_json("tls", 1, 50, FaultConfig::default());
    let b = run_json("tls", 2, 50, FaultConfig::default());
    assert_ne!(a, b);
}

#[test]
fn closed_loop_bgp_completes_with_loss() {
    let mut scenario = by_name("bgp", 5).expect("bgp exists");
    let calibration = scenario.calibrate();
    let mut config = LoadConfig::new(120, 5, LoadMode::Closed { concurrency: 12 });
    config.faults = FaultConfig {
        drop_chance: 0.03,
        ..FaultConfig::default()
    };
    let report = LoadRunner::new(config).run(scenario.name(), &calibration);
    assert_eq!(report.completed + report.failed, 120);
    assert!(
        report.completed >= 115,
        "retransmission should recover nearly all sessions: {}",
        report.completed
    );
}
