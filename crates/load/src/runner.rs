//! The virtual-time load engine.
//!
//! Replays a calibrated per-session operation script ([`Calibration`])
//! against a simulated server at scale. The engine owns a driver event
//! heap (arrivals, service completions, retransmission timeouts) and
//! interleaves it with `teenet-netsim` deliveries via
//! [`Network::next_event_at`], so every network leg pays real latency,
//! bandwidth serialisation, FIFO queueing and (optionally) faults, while
//! service time derives from the calibrated SGX cycle cost at a fixed
//! clock rate. Everything — arrival times, fault outcomes, worker
//! assignment, event ordering — is deterministic in the seed.
//!
//! Request/response integrity: each datagram carries a checksummed header
//! `(session, op, attempt)`. Corrupted datagrams fail the check and are
//! discarded at the receiver; the client's retransmission timeout recovers
//! them, exactly like drops. The server keeps an idempotent-response
//! cache per session so a retransmitted request whose response was lost
//! does not pay the service cost twice.
//!
//! ## Streaming vs. reference replay
//!
//! The default engine is *streaming*: sessions are generated lazily from
//! the arrival process, live in a recycled slab of slots sized by the
//! number of *concurrently live* sessions, and are retired (slot and
//! scratch buffer returned to the pool) the moment they complete or fail.
//! Open-loop arrivals are scheduled one at a time — only the next pending
//! arrival ever sits in the heap — so driving N sessions costs
//! O(live sessions) memory, not O(N). Session identity is the global
//! session index, carried in the wire header and in the slot, so slot
//! reuse is invisible to every observable: reports are byte-identical to
//! the retained engine's.
//!
//! [`LoadRunner::run_reference`] keeps the pre-streaming *retained*
//! engine: every session materialised in a `Vec` for the whole run and
//! every open-loop arrival heap-loaded at t=0. It exists as the
//! equivalence oracle (`tests/loadgen_streaming_equiv.rs` and the
//! proptest below hold the two byte-identical) and costs O(N) memory by
//! design.
//!
//! Event-order equivalence of the two paths is by construction: driver
//! events order by `(time, seq)`, and both paths assign the *same* seq to
//! every event. Open-loop arrival `i` always gets seq `i` (the retained
//! path pushes all arrivals first, so its running counter hands arrival
//! `i` exactly `i`; the streaming path pins it explicitly) and both paths
//! start the shared counter for non-arrival events at `sessions`. Since
//! arrival times strictly increase, arrival `i+1` is always scheduled
//! (while handling arrival `i`) before any event ordered after it can
//! fire, so lazy insertion never reorders the heap.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

use bytes::Bytes;
use teenet_crypto::SecureRng;
use teenet_netsim::{FaultConfig, LinkConfig, Network, NodeId, SimDuration, SimTime};
use teenet_sgx::cost::CostModel;

use crate::arrival::{Arrival, ArrivalProcess};
use crate::metrics::{PhaseRollup, RunMetrics};
use crate::report::RunReport;
use crate::scenario::Calibration;

/// How load is injected.
#[derive(Debug, Clone, Copy)]
pub enum LoadMode {
    /// Open loop: Poisson arrivals. `rate_per_sec = None` auto-targets
    /// ~50% of the server's calibrated service capacity.
    Open {
        /// Arrival rate; `None` = auto from calibrated capacity.
        rate_per_sec: Option<f64>,
    },
    /// Closed loop: a fixed number of sessions in flight.
    Closed {
        /// Concurrent in-flight sessions.
        concurrency: u32,
    },
}

/// Knobs of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total sessions to drive.
    pub sessions: u64,
    /// Seed for arrivals and link faults.
    pub seed: u64,
    /// Open or closed loop.
    pub mode: LoadMode,
    /// Parallel service workers at the server (enclave worker threads).
    pub workers: u32,
    /// Distinct client nodes (sessions round-robin across them, each with
    /// its own link, so unrelated sessions don't serialise behind each
    /// other at the sender).
    pub clients: u32,
    /// One-way link propagation latency.
    pub latency: SimDuration,
    /// Link bandwidth in bytes/second (`None` = infinite).
    pub bandwidth_bps: Option<u64>,
    /// Fault injection applied to every link.
    pub faults: FaultConfig,
    /// Server clock rate used to convert calibrated cycles to service
    /// time.
    pub clock_hz: u64,
    /// Retransmission timeout (`None` = derived from latency and the
    /// slowest calibrated op).
    pub timeout: Option<SimDuration>,
    /// Retransmissions before a session is abandoned.
    pub max_retries: u32,
}

impl LoadConfig {
    /// A config with sensible defaults for `sessions` under `mode`.
    pub fn new(sessions: u64, seed: u64, mode: LoadMode) -> Self {
        LoadConfig {
            sessions,
            seed,
            mode,
            workers: 4,
            clients: 8,
            latency: SimDuration::from_micros(500),
            bandwidth_bps: Some(1_250_000_000), // 10 Gbit/s
            faults: FaultConfig::default(),
            clock_hz: 3_000_000_000,
            timeout: None,
            max_retries: 8,
        }
    }
}

/// A load run that cannot start on this target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadError {
    /// The retained reference engine must materialise every session in
    /// one `Vec`, so the session count has to fit the target's address
    /// space. On 32-bit targets a >4G count used to wrap silently in an
    /// `as usize` cast; it is now rejected up front. The streaming engine
    /// has no such limit — its memory scales with *live* sessions only.
    SessionCountOverflow {
        /// The requested session count.
        sessions: u64,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::SessionCountOverflow { sessions } => write!(
                f,
                "{sessions} sessions cannot be materialised by the retained reference \
                 engine on this target (usize is {} bits); use the streaming engine",
                usize::BITS
            ),
        }
    }
}

impl std::error::Error for LoadError {}

/// Driver-side events, interleaved with network deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Arrive { session: u64 },
    ServiceDone { session: u64, op: u32 },
    Timeout { session: u64, op: u32, attempt: u32 },
}

#[derive(PartialEq, Eq)]
struct DriverEvent {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl Ord for DriverEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for DriverEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
struct Session {
    arrived_at: SimTime,
    client: NodeId,
    /// Current op index into the calibration script.
    op: u32,
    /// Retransmission attempt of the current op.
    attempt: u32,
    /// Highest op the server has fully serviced (`None` = none yet).
    serviced_through: Option<u32>,
    /// Op currently occupying a worker, if any.
    in_service: Option<u32>,
    done: bool,
    failed: bool,
}

/// Wire header: session (8) + op (4) + attempt (4) + FNV-1a checksum (8).
pub(crate) const HEADER_LEN: usize = 24;

pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Frames `(session, op, attempt)` plus zero padding to `len` into `buf`,
/// reusing its capacity. The wire format of [`encode`], allocation-free
/// once the buffer has grown to the scenario's largest frame.
fn encode_into(buf: &mut Vec<u8>, session: u64, op: u32, attempt: u32, len: usize) {
    buf.clear();
    buf.resize(len.max(HEADER_LEN), 0);
    buf[0..8].copy_from_slice(&session.to_le_bytes());
    buf[8..12].copy_from_slice(&op.to_le_bytes());
    buf[12..16].copy_from_slice(&attempt.to_le_bytes());
    let sum = fnv1a(&buf[0..16]);
    buf[16..24].copy_from_slice(&sum.to_le_bytes());
}

/// Frames into a fresh allocation — the retained reference engine's path.
fn encode(session: u64, op: u32, attempt: u32, len: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_into(&mut buf, session, op, attempt, len);
    buf
}

fn decode(buf: &[u8]) -> Option<(u64, u32, u32)> {
    if buf.len() < HEADER_LEN {
        return None;
    }
    let sum = u64::from_le_bytes(buf[16..24].try_into().ok()?);
    if fnv1a(&buf[0..16]) != sum {
        return None;
    }
    let session = u64::from_le_bytes(buf[0..8].try_into().ok()?);
    let op = u32::from_le_bytes(buf[8..12].try_into().ok()?);
    let attempt = u32::from_le_bytes(buf[12..16].try_into().ok()?);
    Some((session, op, attempt))
}

/// Peak-resource diagnostics of one engine run. Never part of the
/// [`RunReport`] (reports stay byte-identical across engine paths); used
/// by the retirement and heap-bound regression tests and by callers that
/// want to confirm a run stayed O(live sessions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Most sessions ever live at once. Streaming: live slab entries
    /// (bounded by concurrency + in-flight arrivals). Retained reference:
    /// every arrived session stays live, so this reaches the session
    /// count.
    pub peak_live_sessions: u64,
    /// Most driver events (arrivals, service completions, timeouts) ever
    /// queued at once. Streaming open loop holds a single pending arrival
    /// plus O(live) timeouts; the retained path heap-loads every arrival
    /// at t=0.
    pub peak_heap_events: u64,
    /// Distinct session slots ever allocated (streaming only): how well
    /// retirement recycles. Retained reference reports 0.
    pub slots_allocated: u64,
}

/// One live session's storage: its global identity, protocol state, and
/// the scratch buffer every frame it sends is built in. Recycled (with
/// the scratch capacity) when the slot is reused by a later session.
struct Slot {
    id: u64,
    sess: Session,
    scratch: Vec<u8>,
}

/// Where the engine keeps session state: the streaming slab (O(live))
/// or the retained reference `Vec` (O(total), kept as the equivalence
/// oracle for the streaming path).
enum SessionTable {
    Retained(Vec<Session>),
    Slab {
        slots: Vec<Slot>,
        free: Vec<u32>,
        /// Session id → slot. Deterministic lookups (no hashing RNG);
        /// holds only live sessions, so O(live) nodes.
        index: BTreeMap<u64, u32>,
    },
}

impl SessionTable {
    /// Inserts a newly arrived session; returns the live count after.
    fn insert(&mut self, id: u64, sess: Session, frame_cap: usize, allocated: &mut u64) -> u64 {
        match self {
            SessionTable::Retained(v) => {
                debug_assert_eq!(v.len() as u64, id);
                v.push(sess);
                v.len() as u64
            }
            SessionTable::Slab { slots, free, index } => {
                let slot = match free.pop() {
                    Some(i) => {
                        let s = &mut slots[i as usize];
                        s.id = id;
                        s.sess = sess;
                        i
                    }
                    None => {
                        *allocated += 1;
                        slots.push(Slot {
                            id,
                            sess,
                            scratch: Vec::with_capacity(frame_cap),
                        });
                        (slots.len() - 1) as u32
                    }
                };
                index.insert(id, slot);
                index.len() as u64
            }
        }
    }

    fn get(&self, id: u64) -> Option<&Session> {
        match self {
            SessionTable::Retained(v) => usize::try_from(id).ok().and_then(|i| v.get(i)),
            SessionTable::Slab { slots, index, .. } => {
                index.get(&id).map(|&i| &slots[i as usize].sess)
            }
        }
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut Session> {
        match self {
            SessionTable::Retained(v) => usize::try_from(id).ok().and_then(|i| v.get_mut(i)),
            SessionTable::Slab { slots, index, .. } => {
                index.get(&id).map(|&i| &mut slots[i as usize].sess)
            }
        }
    }

    /// Frames a message for `id` as wire bytes. Streaming: built in the
    /// session's pooled scratch buffer (no per-message `Vec`). Retained:
    /// a fresh allocation, exactly as the pre-streaming engine framed.
    fn frame(&mut self, id: u64, op: u32, attempt: u32, len: usize) -> Option<Bytes> {
        match self {
            SessionTable::Retained(_) => Some(Bytes::from(encode(id, op, attempt, len))),
            SessionTable::Slab { slots, index, .. } => {
                let &slot = index.get(&id)?;
                let scratch = &mut slots[slot as usize].scratch;
                encode_into(scratch, id, op, attempt, len);
                Some(Bytes::copy_from_slice(scratch))
            }
        }
    }

    /// Returns a finished session's slot (and scratch capacity) to the
    /// pool. Stale events looking the id up afterwards find nothing and
    /// are dropped — observationally identical to the retained path's
    /// `done`/`failed` flag checks. No-op for the retained table.
    fn retire(&mut self, id: u64) {
        if let SessionTable::Slab { slots, free, index } = self {
            if let Some(slot) = index.remove(&id) {
                let s = &mut slots[slot as usize];
                s.id = u64::MAX;
                s.scratch.clear();
                free.push(slot);
            }
        }
    }
}

/// The load engine. Construct with a [`LoadConfig`], then [`LoadRunner::run`]
/// a calibrated scenario script through it.
pub struct LoadRunner {
    config: LoadConfig,
}

pub(crate) struct Engine<'a> {
    cfg: &'a LoadConfig,
    cal: &'a Calibration,
    model: &'a CostModel,
    net: Network,
    server: NodeId,
    client_nodes: Vec<NodeId>,
    heap: BinaryHeap<Reverse<DriverEvent>>,
    next_seq: u64,
    table: SessionTable,
    /// Streaming open loop schedules arrivals one ahead; every other
    /// combination heap-loads what [`ArrivalProcess`] hands out up front.
    lazy_arrivals: bool,
    /// Pre-sized capacity for per-slot scratch buffers (largest frame of
    /// the calibrated script).
    frame_cap: usize,
    arrivals: ArrivalProcess,
    /// Earliest-free time per service worker.
    workers: Vec<SimTime>,
    timeout: SimDuration,
    /// Every outcome accumulator, extracted into one mergeable value so
    /// the sharded runner can combine per-shard engines.
    metrics: RunMetrics,
    stats: EngineStats,
}

impl LoadRunner {
    /// A runner for `config`. The cost model is not fixed here: each run
    /// prices cycles with the model of the calibration's TEE backend
    /// ([`Calibration::cost_model`]).
    pub fn new(config: LoadConfig) -> Self {
        LoadRunner { config }
    }

    pub(crate) fn config(&self) -> &LoadConfig {
        &self.config
    }

    /// Drives `calibration`'s per-session script under this runner's
    /// config through the streaming engine and returns the full report.
    /// `scenario` names the run. Memory is O(live sessions), not
    /// O(`sessions`).
    pub fn run(&self, scenario: &str, calibration: &Calibration) -> RunReport {
        self.run_with_stats(scenario, calibration).0
    }

    /// [`LoadRunner::run`], also returning the engine's peak-resource
    /// diagnostics (never part of the report).
    pub fn run_with_stats(
        &self,
        scenario: &str,
        calibration: &Calibration,
    ) -> (RunReport, EngineStats) {
        assert!(
            !calibration.ops.is_empty(),
            "calibration must contain at least one op"
        );
        let cfg = &self.config;
        let model = calibration.cost_model();
        let mut engine = Engine::new(cfg, calibration, &model);
        engine.prime();
        engine.drain();
        let stats = engine.stats();
        (engine.into_report(scenario, cfg), stats)
    }

    /// Drives the run through the retained reference engine: every
    /// session materialised for the whole run, every open-loop arrival
    /// heap-loaded at t=0 — the pre-streaming implementation, kept as the
    /// byte-identity oracle the streaming engine is tested against.
    /// Costs O(`sessions`) memory by design; errors if that cannot even
    /// be addressed on this target.
    pub fn run_reference(
        &self,
        scenario: &str,
        calibration: &Calibration,
    ) -> Result<RunReport, LoadError> {
        Ok(self.run_reference_with_stats(scenario, calibration)?.0)
    }

    /// [`LoadRunner::run_reference`] with peak-resource diagnostics.
    pub fn run_reference_with_stats(
        &self,
        scenario: &str,
        calibration: &Calibration,
    ) -> Result<(RunReport, EngineStats), LoadError> {
        assert!(
            !calibration.ops.is_empty(),
            "calibration must contain at least one op"
        );
        let cfg = &self.config;
        let model = calibration.cost_model();
        let mut engine = Engine::new_reference(cfg, calibration, &model)?;
        engine.prime();
        engine.drain();
        let stats = engine.stats();
        Ok((engine.into_report(scenario, cfg), stats))
    }
}

impl<'a> Engine<'a> {
    /// The streaming engine: slab-of-live-sessions storage and (open
    /// loop) one-ahead arrival scheduling.
    pub(crate) fn new(cfg: &'a LoadConfig, cal: &'a Calibration, model: &'a CostModel) -> Self {
        let table = SessionTable::Slab {
            slots: Vec::new(),
            free: Vec::new(),
            index: BTreeMap::new(),
        };
        Engine::build(cfg, cal, model, table)
    }

    /// The retained reference engine. Checked conversion: a session count
    /// beyond the target's address space is a domain error, not a silent
    /// `as usize` wrap.
    pub(crate) fn new_reference(
        cfg: &'a LoadConfig,
        cal: &'a Calibration,
        model: &'a CostModel,
    ) -> Result<Self, LoadError> {
        let capacity =
            usize::try_from(cfg.sessions).map_err(|_| LoadError::SessionCountOverflow {
                sessions: cfg.sessions,
            })?;
        let mut engine = Engine::build(
            cfg,
            cal,
            model,
            SessionTable::Retained(Vec::with_capacity(capacity)),
        );
        // The reference path heap-loads every open-loop arrival in
        // prime(), handing arrival i seq i from the shared counter.
        engine.lazy_arrivals = false;
        engine.next_seq = 0;
        Ok(engine)
    }

    fn build(
        cfg: &'a LoadConfig,
        cal: &'a Calibration,
        model: &'a CostModel,
        table: SessionTable,
    ) -> Self {
        let mut net = Network::new(cfg.seed ^ 0x6e65_7473_696d); // "netsim"
                                                                 // The engine never reads the packet trace; recording it would be
                                                                 // the one remaining O(total packets) buffer in a streaming run.
        net.set_tracing(false);
        let server = net.add_node();
        let clients = cfg.clients.max(1);
        let link = LinkConfig {
            latency: cfg.latency,
            bandwidth_bps: cfg.bandwidth_bps,
            faults: cfg.faults.clone(),
        };
        let client_nodes: Vec<NodeId> = (0..clients)
            .map(|_| {
                let c = net.add_node();
                net.add_duplex_link(c, server, link.clone());
                c
            })
            .collect();

        // Retransmission timeout: a full round trip plus the slowest op's
        // service time, with 4× headroom for queueing, unless pinned.
        let slowest_op = cal
            .ops
            .iter()
            .map(|op| op.service_nanos(model, cfg.clock_hz))
            .max()
            .unwrap_or(0);
        let timeout = cfg.timeout.unwrap_or_else(|| {
            SimDuration(
                (2 * cfg.latency.as_nanos() + slowest_op)
                    .saturating_mul(4)
                    .max(1_000_000),
            )
        });

        let rate = effective_rate(cfg, cal, model);
        let kind = match cfg.mode {
            LoadMode::Open { .. } => Arrival::OpenLoop { rate_per_sec: rate },
            LoadMode::Closed { concurrency } => Arrival::ClosedLoop {
                concurrency: concurrency.max(1),
            },
        };
        let arrivals = ArrivalProcess::new(
            kind,
            cfg.sessions,
            SecureRng::seed_from_u64(cfg.seed).fork(b"arrivals"),
        );

        let lazy_arrivals = matches!(cfg.mode, LoadMode::Open { .. });
        Engine {
            cfg,
            cal,
            model,
            net,
            server,
            client_nodes,
            heap: BinaryHeap::new(),
            // Open-loop arrival i is pinned to seq i in both engine
            // paths; the shared counter for everything else therefore
            // starts past the arrival block.
            next_seq: if lazy_arrivals { cfg.sessions } else { 0 },
            table,
            lazy_arrivals,
            frame_cap: cal.max_frame_bytes(),
            arrivals,
            workers: vec![SimTime::ZERO; cfg.workers.max(1) as usize],
            timeout,
            metrics: RunMetrics::new(),
            stats: EngineStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> EngineStats {
        self.stats
    }

    fn push_raw(&mut self, at: SimTime, seq: u64, ev: Ev) {
        self.heap.push(Reverse(DriverEvent { at, seq, ev }));
        self.stats.peak_heap_events = self.stats.peak_heap_events.max(self.heap.len() as u64);
    }

    fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_raw(at, seq, ev);
    }

    /// Schedules the next open-loop arrival (streaming path): exactly one
    /// pending arrival in the heap at any time, pinned to seq = index.
    fn schedule_next_arrival(&mut self) {
        if let Some((idx, at)) = self.arrivals.next_arrival() {
            self.push_raw(at, idx, Ev::Arrive { session: idx });
        }
    }

    /// Queues the initial arrivals. Streaming open loop: only the first
    /// (each arrival schedules its successor). Everything else: all the
    /// arrival process hands out up front — every open-loop arrival for
    /// the retained reference path, the initial closed-loop batch
    /// (O(concurrency)) for both paths.
    pub(crate) fn prime(&mut self) {
        if self.lazy_arrivals {
            self.schedule_next_arrival();
        } else {
            while let Some((idx, at)) = self.arrivals.next_arrival() {
                self.push(at, Ev::Arrive { session: idx });
            }
        }
    }

    /// The main event loop: repeatedly handle whichever comes first — the
    /// next network delivery or the next driver event. Network wins ties
    /// so a response arriving at time t beats a timeout firing at t.
    pub(crate) fn drain(&mut self) {
        loop {
            let drv = self.heap.peek().map(|Reverse(e)| e.at);
            let net = self.net.next_event_at();
            match (drv, net) {
                (None, None) => break,
                (Some(d), Some(n)) if n <= d => self.step_network(n),
                (None, Some(n)) => self.step_network(n),
                (Some(d), _) => self.step_driver(d),
            }
        }
    }

    fn step_network(&mut self, until: SimTime) {
        self.net.run_until(until);
        while let Some((at, packet)) = self.net.recv_timed(self.server) {
            match decode(&packet.payload) {
                Some((s, op, attempt)) => self.on_request(at, s, op, attempt),
                None => self.metrics.corrupt_rx += 1,
            }
        }
        for i in 0..self.client_nodes.len() {
            let node = self.client_nodes[i];
            while let Some((at, packet)) = self.net.recv_timed(node) {
                match decode(&packet.payload) {
                    Some((s, op, _)) => self.on_response(at, s, op),
                    None => self.metrics.corrupt_rx += 1,
                }
            }
        }
    }

    fn step_driver(&mut self, at: SimTime) {
        self.net.run_until(at);
        let Some(Reverse(event)) = self.heap.pop() else {
            return;
        };
        match event.ev {
            Ev::Arrive { session } => self.on_arrive(at, session),
            Ev::ServiceDone { session, op } => self.on_service_done(at, session, op),
            Ev::Timeout {
                session,
                op,
                attempt,
            } => self.on_timeout(at, session, op, attempt),
        }
    }

    fn on_arrive(&mut self, at: SimTime, session: u64) {
        if self.lazy_arrivals {
            self.schedule_next_arrival();
        }
        let client = self.client_nodes[(session % self.client_nodes.len() as u64) as usize];
        let live = self.table.insert(
            session,
            Session {
                arrived_at: at,
                client,
                op: 0,
                attempt: 0,
                serviced_through: None,
                in_service: None,
                done: false,
                failed: false,
            },
            self.frame_cap,
            &mut self.stats.slots_allocated,
        );
        self.stats.peak_live_sessions = self.stats.peak_live_sessions.max(live);
        self.send_request(at, session);
    }

    /// Transmits the current op's request for `session` and arms its
    /// retransmission timeout.
    fn send_request(&mut self, at: SimTime, session: u64) {
        let Some(sess) = self.table.get(session).copied() else {
            return;
        };
        let op = &self.cal.ops[sess.op as usize];
        if sess.attempt == 0 {
            self.metrics.steady_client.fold(op.client);
        }
        let request_bytes = op.request_bytes;
        let Some(payload) = self
            .table
            .frame(session, sess.op, sess.attempt, request_bytes)
        else {
            return;
        };
        self.net.send(sess.client, self.server, payload);
        let _ = at;
        self.push(
            self.net.now() + self.timeout,
            Ev::Timeout {
                session,
                op: sess.op,
                attempt: sess.attempt,
            },
        );
    }

    fn on_request(&mut self, at: SimTime, session: u64, op: u32, _attempt: u32) {
        // A miss is a session not yet arrived (stray bytes) or already
        // retired — either way the datagram is stale and dropped, exactly
        // as the retained path's done/failed guards drop it.
        let Some(sess) = self.table.get(session).copied() else {
            return;
        };
        if sess.done || sess.failed || op != sess.op {
            return; // stale or duplicate of a finished op
        }
        if sess.in_service == Some(op) {
            return; // duplicate while a worker is already on it
        }
        if sess.serviced_through.is_some_and(|t| t >= op) {
            // Serviced before but the response was lost: resend from the
            // idempotent cache without paying the service cost again.
            self.send_response(session, op);
            return;
        }
        // Earliest-free worker, lowest index on ties (deterministic).
        let profile = self.cal.ops[op as usize];
        let (widx, _) = self
            .workers
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .expect("workers is non-empty");
        let start = self.workers[widx].max(at);
        let done_at = start + SimDuration(profile.service_nanos(self.model, self.cfg.clock_hz));
        self.workers[widx] = done_at;
        if let Some(sess) = self.table.get_mut(session) {
            sess.in_service = Some(op);
        }
        self.metrics.steady_server.fold(profile.server);
        self.metrics.transitions.merge(profile.transitions);
        self.push(done_at, Ev::ServiceDone { session, op });
    }

    fn on_service_done(&mut self, _at: SimTime, session: u64, op: u32) {
        let Some(sess) = self.table.get_mut(session) else {
            return; // session retired while the op was in service
        };
        if sess.done || sess.failed {
            return;
        }
        sess.in_service = None;
        sess.serviced_through = Some(op);
        self.send_response(session, op);
    }

    fn send_response(&mut self, session: u64, op: u32) {
        let Some(client) = self.table.get(session).map(|s| s.client) else {
            return;
        };
        let response_bytes = self.cal.ops[op as usize].response_bytes;
        let Some(payload) = self.table.frame(session, op, 0, response_bytes) else {
            return;
        };
        self.net.send(self.server, client, payload);
    }

    fn on_response(&mut self, at: SimTime, session: u64, op: u32) {
        let Some(sess) = self.table.get(session).copied() else {
            return; // response to a retired session
        };
        if sess.done || sess.failed || op != sess.op {
            return; // duplicate or stale response
        }
        let finished = {
            let sess = self.table.get_mut(session).expect("session is live");
            sess.op += 1;
            sess.attempt = 0;
            (sess.op as usize) == self.cal.ops.len()
        };
        if finished {
            if let Some(sess) = self.table.get_mut(session) {
                sess.done = true;
            }
            let took = at - sess.arrived_at;
            self.metrics.latency.record(took.as_nanos());
            self.metrics.completed += 1;
            self.metrics.last_done_ns = self.metrics.last_done_ns.max(at.as_nanos());
            self.next_closed_loop_arrival(at);
            self.table.retire(session);
        } else {
            self.send_request(at, session);
        }
    }

    fn on_timeout(&mut self, at: SimTime, session: u64, op: u32, attempt: u32) {
        let Some(sess) = self.table.get(session).copied() else {
            return; // timeout outlived its (retired) session
        };
        if sess.done || sess.failed || sess.op != op || sess.attempt != attempt {
            return; // op already progressed; timeout is stale
        }
        if attempt >= self.cfg.max_retries {
            if let Some(sess) = self.table.get_mut(session) {
                sess.failed = true;
            }
            self.metrics.failed += 1;
            self.metrics.last_done_ns = self.metrics.last_done_ns.max(at.as_nanos());
            self.next_closed_loop_arrival(at);
            self.table.retire(session);
            return;
        }
        self.metrics.retries += 1;
        if let Some(sess) = self.table.get_mut(session) {
            sess.attempt = attempt + 1;
        }
        self.send_request(at, session);
    }

    /// Closed loop replaces each finished session with a new arrival.
    fn next_closed_loop_arrival(&mut self, at: SimTime) {
        if let Some((idx, when)) = self.arrivals.completion_arrival(at) {
            self.push(when, Ev::Arrive { session: idx });
        }
    }

    /// Finishes the run: folds the network's fault totals and queue
    /// high-watermark into the accumulated metrics and returns them.
    pub(crate) fn into_metrics(mut self) -> RunMetrics {
        self.take_metrics()
    }

    /// [`Engine::into_metrics`] without consuming the engine: hands out
    /// the finished run's metrics (network totals folded in) and leaves
    /// a zeroed accumulator behind, so a pooled engine can be
    /// [`Engine::reset_for_session`]-rewound and driven again.
    pub(crate) fn take_metrics(&mut self) -> RunMetrics {
        self.metrics.net.merge(&self.net.fault_totals());
        self.metrics.max_server_queue = self
            .metrics
            .max_server_queue
            .max(self.net.max_queue_depth(self.server) as u64);
        std::mem::take(&mut self.metrics)
    }

    /// Rewinds the engine to the state [`Engine::new`] would produce for
    /// this config with its seed replaced by `seed`, reusing every
    /// allocation: the network topology (and its cleared per-node
    /// inboxes), the session slab with its scratch capacities, and the
    /// event heap's backing storage. The per-session seed is a parameter
    /// because the sharded replay derives it per index while the borrowed
    /// config's own seed stays the run seed.
    pub(crate) fn reset_for_session(&mut self, seed: u64) {
        self.net.reset(seed ^ 0x6e65_7473_696d); // "netsim", as in build()
        self.heap.clear();
        self.next_seq = if self.lazy_arrivals {
            self.cfg.sessions
        } else {
            0
        };
        if let SessionTable::Slab { slots, free, index } = &mut self.table {
            // Drained runs retire every session, but a defensive sweep
            // keeps a partially drained engine from leaking live slots
            // into the next session.
            index.clear();
            free.clear();
            for (i, slot) in slots.iter_mut().enumerate() {
                slot.id = u64::MAX;
                slot.scratch.clear();
                free.push(i as u32);
            }
        }
        let rate = effective_rate(self.cfg, self.cal, self.model);
        let kind = match self.cfg.mode {
            LoadMode::Open { .. } => Arrival::OpenLoop { rate_per_sec: rate },
            LoadMode::Closed { concurrency } => Arrival::ClosedLoop {
                concurrency: concurrency.max(1),
            },
        };
        self.arrivals = ArrivalProcess::new(
            kind,
            self.cfg.sessions,
            SecureRng::seed_from_u64(seed).fork(b"arrivals"),
        );
        for w in &mut self.workers {
            *w = SimTime::ZERO;
        }
        self.metrics = RunMetrics::new();
    }

    fn into_report(self, scenario: &str, cfg: &LoadConfig) -> RunReport {
        let cal = self.cal;
        let model = self.model;
        report_from_metrics(scenario, cfg, cal, model, self.into_metrics())
    }
}

/// Assembles the byte-stable [`RunReport`] from finished run metrics —
/// shared by the serial engine and the sharded runner, so both paths
/// format one identical way.
pub(crate) fn report_from_metrics(
    scenario: &str,
    cfg: &LoadConfig,
    cal: &Calibration,
    model: &CostModel,
    metrics: RunMetrics,
) -> RunReport {
    let duration_ns = metrics.last_done_ns.max(1);
    let throughput = metrics.completed as f64 / (duration_ns as f64 / 1e9);
    let mut calibration_phase = PhaseRollup::new("calibration");
    calibration_phase.fold(cal.setup);
    let mut total = calibration_phase.counters;
    total.merge(metrics.steady_client.counters);
    total.merge(metrics.steady_server.counters);
    let total_cycles = total.cycles(model);
    let (mode, rate, concurrency) = match cfg.mode {
        LoadMode::Open { .. } => ("open", effective_rate(cfg, cal, model), 0u32),
        LoadMode::Closed { concurrency } => ("closed", 0.0, concurrency.max(1)),
    };
    RunReport {
        scenario: scenario.to_string(),
        mode: mode.to_string(),
        transition_mode: cal.mode.as_str().to_string(),
        backend: cal.backend,
        seed: cfg.seed,
        rate_per_sec: rate,
        concurrency,
        sessions: cfg.sessions,
        completed: metrics.completed,
        failed: metrics.failed,
        retries: metrics.retries,
        corrupt_rx: metrics.corrupt_rx,
        duration_ns,
        throughput_per_sec: throughput,
        latency: metrics.latency,
        net: metrics.net,
        max_server_queue: metrics.max_server_queue,
        phases: vec![
            calibration_phase,
            metrics.steady_client,
            metrics.steady_server,
        ],
        total,
        total_cycles,
        transitions: metrics.transitions,
        switchless_workers: cal.switchless.workers.max(1),
    }
}

/// The open-loop arrival rate: the configured one, or 50% of the server's
/// calibrated service capacity (`workers / per-session busy time`).
pub(crate) fn effective_rate(cfg: &LoadConfig, cal: &Calibration, model: &CostModel) -> f64 {
    match cfg.mode {
        LoadMode::Open {
            rate_per_sec: Some(r),
        } => r,
        LoadMode::Open { rate_per_sec: None } => {
            let busy_ns = cal.session_service_nanos(model, cfg.clock_hz);
            if busy_ns == 0 {
                1_000.0
            } else {
                0.5 * cfg.workers.max(1) as f64 / (busy_ns as f64 / 1e9)
            }
        }
        LoadMode::Closed { .. } => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::OpProfile;
    use proptest::prelude::*;
    use teenet_sgx::cost::Counters;
    use teenet_sgx::TransitionStats;

    fn c(sgx: u64, normal: u64) -> Counters {
        Counters {
            sgx_instr: sgx,
            normal_instr: normal,
        }
    }

    /// A synthetic two-op script: a cheap handshake then a pricier body.
    fn toy_calibration() -> Calibration {
        Calibration {
            setup: c(10, 1_000_000),
            ops: vec![
                OpProfile {
                    name: "hello",
                    client: c(0, 50_000),
                    server: c(4, 500_000),
                    request_bytes: 128,
                    response_bytes: 64,
                    transitions: TransitionStats {
                        taken: 2,
                        elided: 0,
                        fallbacks: 0,
                        idle_spins: 0,
                    },
                },
                OpProfile {
                    name: "work",
                    client: c(0, 10_000),
                    server: c(8, 2_000_000),
                    request_bytes: 256,
                    response_bytes: 1024,
                    transitions: TransitionStats {
                        taken: 4,
                        elided: 0,
                        fallbacks: 0,
                        idle_spins: 0,
                    },
                },
            ],
            mode: Default::default(),
            backend: teenet_sgx::TeeBackend::Sgx,
            switchless: Default::default(),
        }
    }

    #[test]
    fn open_loop_completes_all_sessions() {
        let cfg = LoadConfig::new(200, 7, LoadMode::Open { rate_per_sec: None });
        let report = LoadRunner::new(cfg).run("toy", &toy_calibration());
        assert_eq!(report.completed, 200);
        assert_eq!(report.failed, 0);
        assert_eq!(report.latency.count(), 200);
        assert!(report.throughput_per_sec > 0.0);
        // Each session = 2 requests + 2 responses on clean links.
        assert_eq!(report.net.sent, 800);
        assert_eq!(report.net.delivered, 800);
        // Server phase folded both ops per session.
        let server = report
            .phases
            .iter()
            .find(|p| p.name == "steady.server")
            .unwrap();
        assert_eq!(server.ops, 400);
        assert_eq!(server.counters.sgx_instr, 200 * 12);
        // Transition stats accumulate per serviced op: 2 + 4 pairs/session.
        assert_eq!(report.transitions.taken, 200 * 6);
        assert_eq!(report.transitions.elided, 0);
        assert_eq!(report.transition_mode, "classic");
    }

    /// Locks in the documented tie-break: "network wins ties so a response
    /// arriving at time t beats a timeout firing at t". With zero service
    /// time, latency L and timeout exactly 2L, both events land on the
    /// identical `SimTime`; the response must win, so the session completes
    /// with no retransmission and exactly one request/response pair on the
    /// wire. (An inverted tie-break would fire the timeout first and
    /// resend: retries = 1, sent = 3.)
    #[test]
    fn response_at_t_beats_timeout_at_t() {
        let mut cfg = LoadConfig::new(1, 1, LoadMode::Closed { concurrency: 1 });
        cfg.latency = SimDuration::from_millis(1);
        cfg.bandwidth_bps = None; // delivery at exactly send + latency
        cfg.timeout = Some(SimDuration(2_000_000)); // exactly one round trip
        let cal = Calibration {
            setup: c(0, 0),
            ops: vec![OpProfile {
                name: "ping",
                client: c(0, 0),
                server: c(0, 0), // zero service time: response at t = 2L
                request_bytes: 64,
                response_bytes: 64,
                transitions: TransitionStats::default(),
            }],
            mode: Default::default(),
            backend: teenet_sgx::TeeBackend::Sgx,
            switchless: Default::default(),
        };
        let report = LoadRunner::new(cfg).run("tie", &cal);
        assert_eq!(report.completed, 1);
        assert_eq!(report.retries, 0, "timeout at t must lose to response at t");
        assert_eq!(report.net.sent, 2, "no duplicate retransmission");
        assert_eq!(report.net.delivered, 2);
    }

    #[test]
    fn closed_loop_completes_all_sessions() {
        let cfg = LoadConfig::new(150, 3, LoadMode::Closed { concurrency: 16 });
        let report = LoadRunner::new(cfg).run("toy", &toy_calibration());
        assert_eq!(report.completed, 150);
        assert_eq!(report.failed, 0);
        assert_eq!(report.concurrency, 16);
    }

    #[test]
    fn latency_includes_network_and_service() {
        // One session, no queueing: latency = 2 round trips + service.
        let mut cfg = LoadConfig::new(1, 1, LoadMode::Closed { concurrency: 1 });
        cfg.latency = SimDuration::from_millis(1);
        cfg.bandwidth_bps = None;
        let cal = toy_calibration();
        let model = CostModel::paper();
        let service: u64 = cal.session_service_nanos(&model, cfg.clock_hz);
        let report = LoadRunner::new(cfg).run("toy", &cal);
        let expect = 4 * 1_000_000 + service;
        let got = report.latency.max();
        // Histogram bucketing gives ≤ 1/32 relative error.
        assert!(
            got >= expect && got <= expect + expect / 32 + 1,
            "got {got}, expect {expect}"
        );
    }

    #[test]
    fn faulty_links_recover_via_retransmission() {
        let mut cfg = LoadConfig::new(80, 11, LoadMode::Open { rate_per_sec: None });
        cfg.faults = FaultConfig {
            drop_chance: 0.08,
            corrupt_chance: 0.05,
            duplicate_chance: 0.05,
            ..Default::default()
        };
        let report = LoadRunner::new(cfg).run("toy", &toy_calibration());
        assert_eq!(
            report.completed + report.failed,
            80,
            "every session resolves"
        );
        assert!(report.completed >= 78, "retries recover most faults");
        assert!(report.retries > 0, "faults actually fired");
        assert!(report.net.dropped > 0);
    }

    #[test]
    fn same_seed_byte_identical_reports() {
        let run = || {
            let mut cfg = LoadConfig::new(60, 99, LoadMode::Open { rate_per_sec: None });
            cfg.faults = FaultConfig {
                drop_chance: 0.05,
                ..Default::default()
            };
            LoadRunner::new(cfg).run("toy", &toy_calibration()).json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let cfg = LoadConfig::new(50, seed, LoadMode::Open { rate_per_sec: None });
            LoadRunner::new(cfg).run("toy", &toy_calibration()).json()
        };
        assert_ne!(run(1), run(2), "seed must actually drive the run");
    }

    #[test]
    fn open_loop_saturation_grows_latency() {
        // Driving arrivals at 4× capacity must show queueing in the tail
        // relative to a lightly loaded run.
        let run = |rate_scale: f64| {
            let cal = toy_calibration();
            let model = CostModel::paper();
            let base = LoadConfig::new(300, 5, LoadMode::Open { rate_per_sec: None });
            let capacity = base.workers as f64
                / (cal.session_service_nanos(&model, base.clock_hz) as f64 / 1e9);
            let mut cfg = base;
            cfg.mode = LoadMode::Open {
                rate_per_sec: Some(capacity * rate_scale),
            };
            cfg.timeout = Some(SimDuration::from_secs(3600)); // isolate queueing
            LoadRunner::new(cfg).run("toy", &cal)
        };
        let light = run(0.3);
        let heavy = run(4.0);
        assert!(
            heavy.latency.quantile(0.99) > 2 * light.latency.quantile(0.99),
            "p99 {} vs {}",
            heavy.latency.quantile(0.99),
            light.latency.quantile(0.99)
        );
    }

    #[test]
    fn framing_round_trips_through_scratch_buffer() {
        let mut scratch = Vec::new();
        encode_into(&mut scratch, 42, 3, 1, 100);
        assert_eq!(scratch.len(), 100);
        assert_eq!(decode(&scratch), Some((42, 3, 1)));
        assert_eq!(scratch, encode(42, 3, 1, 100), "pooled == allocating path");
        // Reuse with a shorter frame: stale bytes must not leak in.
        let cap = scratch.capacity();
        encode_into(&mut scratch, 7, 0, 0, 10);
        assert_eq!(scratch.len(), HEADER_LEN);
        assert_eq!(scratch, encode(7, 0, 0, 10));
        assert_eq!(scratch.capacity(), cap, "capacity is retained");
    }

    #[test]
    fn streaming_equals_reference_byte_for_byte() {
        let cal = toy_calibration();
        for mode in [
            LoadMode::Open { rate_per_sec: None },
            LoadMode::Closed { concurrency: 12 },
        ] {
            let mut cfg = LoadConfig::new(150, 21, mode);
            cfg.faults = FaultConfig {
                drop_chance: 0.06,
                corrupt_chance: 0.04,
                duplicate_chance: 0.03,
                ..Default::default()
            };
            let runner = LoadRunner::new(cfg);
            let streaming = runner.run("toy", &cal);
            let reference = runner.run_reference("toy", &cal).unwrap();
            assert_eq!(streaming.json(), reference.json());
            assert_eq!(streaming.text(), reference.text());
        }
    }

    #[test]
    fn closed_loop_retires_sessions_slots_bounded_by_concurrency() {
        let concurrency = 16u32;
        let cfg = LoadConfig::new(500, 9, LoadMode::Closed { concurrency });
        let (report, stats) = LoadRunner::new(cfg).run_with_stats("toy", &toy_calibration());
        assert_eq!(report.completed, 500);
        assert_eq!(
            stats.peak_live_sessions, concurrency as u64,
            "a retired session's slot is reused by its replacement"
        );
        assert_eq!(stats.slots_allocated, concurrency as u64);
    }

    #[test]
    fn open_loop_heap_holds_one_pending_arrival_not_all() {
        let n = 4000u64;
        let cfg = LoadConfig::new(n, 3, LoadMode::Open { rate_per_sec: None });
        let runner = LoadRunner::new(cfg);
        let cal = toy_calibration();
        let (report, stream) = runner.run_with_stats("toy", &cal);
        let (_, reference) = runner.run_reference_with_stats("toy", &cal).unwrap();
        assert_eq!(report.completed, n);
        assert!(
            reference.peak_heap_events >= n,
            "reference heap-loads every arrival: {}",
            reference.peak_heap_events
        );
        // Streaming: one pending arrival + O(live) timeouts. At ~50%
        // utilisation live sessions stay far below the total.
        assert!(
            stream.peak_heap_events < n / 8,
            "streaming heap stayed O(live): {} events for {n} sessions",
            stream.peak_heap_events
        );
        assert!(
            stream.peak_live_sessions < n / 8,
            "sessions retire as they complete: {} live peak",
            stream.peak_live_sessions
        );
    }

    #[test]
    fn load_error_reports_the_count() {
        let err = LoadError::SessionCountOverflow { sessions: 1 << 40 };
        let msg = err.to_string();
        assert!(msg.contains("1099511627776"), "{msg}");
        assert!(msg.contains("streaming"), "{msg}");
    }

    #[cfg(target_pointer_width = "32")]
    #[test]
    fn reference_engine_rejects_unaddressable_session_counts() {
        let cfg = LoadConfig::new(u64::MAX, 1, LoadMode::Open { rate_per_sec: None });
        let err = LoadRunner::new(cfg)
            .run_reference("toy", &toy_calibration())
            .unwrap_err();
        assert_eq!(err, LoadError::SessionCountOverflow { sessions: u64::MAX });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The streaming engine is observationally identical to the
        /// retained reference across random seeds, loop disciplines and
        /// fault mixes: same text, same JSON, byte for byte.
        #[test]
        fn streaming_reference_equivalence(
            seed in any::<u64>(),
            closed in any::<bool>(),
            drop in 0u32..10,
            corrupt in 0u32..8,
            duplicate in 0u32..8,
        ) {
            let cal = toy_calibration();
            let mode = if closed {
                LoadMode::Closed { concurrency: 8 }
            } else {
                LoadMode::Open { rate_per_sec: None }
            };
            let mut cfg = LoadConfig::new(60, seed, mode);
            cfg.faults = FaultConfig {
                drop_chance: drop as f64 / 100.0,
                corrupt_chance: corrupt as f64 / 100.0,
                duplicate_chance: duplicate as f64 / 100.0,
                ..Default::default()
            };
            let runner = LoadRunner::new(cfg);
            let streaming = runner.run("toy", &cal);
            let reference = runner.run_reference("toy", &cal).unwrap();
            prop_assert_eq!(streaming.json(), reference.json());
            prop_assert_eq!(streaming.text(), reference.text());
        }
    }
}
