//! Log-bucketed histograms for latency (and any other u64) distributions.
//!
//! HDR-histogram-style layout: values are bucketed by order of magnitude
//! (position of the highest set bit) with a fixed number of linear
//! sub-buckets per octave, giving a bounded relative error (≤ 1/32 ≈ 3.1%
//! here) at every scale from nanoseconds to hours while using a few KiB.
//! Recording is O(1); quantiles are a cumulative scan, so reported
//! percentiles are monotone in the quantile by construction.

/// Linear sub-buckets per power-of-two octave. 32 bounds the relative
/// quantile error at 1/32.
const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = 5;
/// Octaves covered: values up to 2^63 - 1.
const OCTAVES: usize = 64;

/// A log-bucketed histogram over `u64` values.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; OCTAVES * SUB_BUCKETS as usize],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS {
            // The first two octaves are exact (values 0..32 map 1:1).
            return value as usize;
        }
        let octave = 63 - value.leading_zeros();
        let sub = (value >> (octave - SUB_BITS)) - SUB_BUCKETS;
        ((octave - SUB_BITS + 1) as u64 * SUB_BUCKETS + sub) as usize
    }

    /// The inclusive upper bound of bucket `idx` (the value reported for
    /// quantiles landing in it).
    fn bucket_upper(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_BUCKETS {
            return idx;
        }
        let octave = idx / SUB_BUCKETS + SUB_BITS as u64 - 1;
        let sub = idx % SUB_BUCKETS + SUB_BUCKETS;
        // Computed in u128: the top octave's last bucket bound is 2^64 - 1,
        // which overflows the shift in u64.
        let upper = ((sub as u128 + 1) << (octave - SUB_BITS as u64)) - 1;
        upper.min(u64::MAX as u128) as u64
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` observations of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in [0, 1]: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q × count)`. Returns 0
    /// when empty. Monotone in `q` and clamped to `[min, max]`, so
    /// cross-bucket rounding can never report a value outside the observed
    /// range.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The standard percentile summary: (p50, p90, p99, p999).
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0 / 32.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn bucket_upper_bounds_bucket_members() {
        // Every value maps to a bucket whose upper bound is ≥ the value
        // and within the bucket's relative-error envelope.
        for v in [0, 1, 31, 32, 33, 100, 1_000, 65_535, 1 << 20, u64::MAX / 2] {
            let idx = Histogram::bucket_index(v);
            let upper = Histogram::bucket_upper(idx);
            assert!(upper >= v, "upper {upper} < value {v}");
            if v >= 32 {
                // Relative error bound: bucket width / value ≤ 1/32.
                assert!(upper - v <= v / 32 + 1, "v={v} upper={upper}");
            }
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 1_000); // 1µs .. 10ms in ns
        }
        let p50 = h.quantile(0.5);
        let exact = 5_000 * 1_000;
        let err = (p50 as f64 - exact as f64).abs() / exact as f64;
        assert!(err < 0.04, "p50 {p50} vs exact {exact} (err {err})");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for i in 0..500u64 {
            let v = i * i + 17;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), combined.quantile(q));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Percentiles are monotone: p50 ≤ p90 ≤ p99 ≤ p999 ≤ max for any
        /// sample set.
        #[test]
        fn percentiles_monotone(samples in proptest::collection::vec(any::<u64>(), 1..200)) {
            let mut h = Histogram::new();
            for &s in &samples {
                // Keep within the top octave to exercise wide magnitudes.
                h.record(s >> 1);
            }
            let (p50, p90, p99, p999) = h.percentiles();
            prop_assert!(p50 <= p90);
            prop_assert!(p90 <= p99);
            prop_assert!(p99 <= p999);
            prop_assert!(p999 <= h.max());
            prop_assert!(h.min() <= p50);
        }

        /// For small samples the reported quantile brackets the exact
        /// sorted-sample percentile: it is ≥ the exact order statistic and
        /// within the bucket's relative-error envelope above it.
        #[test]
        fn quantile_brackets_exact_order_statistic(
            samples in proptest::collection::vec(0u64..1_000_000_000, 1..50),
            qsel in 0usize..3,
        ) {
            let q = [0.5, 0.9, 0.99][qsel];
            let mut h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let reported = h.quantile(q);
            prop_assert!(reported >= exact, "reported {} < exact {}", reported, exact);
            // Upper envelope: one bucket width above the exact value.
            prop_assert!(
                reported <= exact + exact / 32 + 1,
                "reported {} too far above exact {}",
                reported,
                exact
            );
        }

        /// merge is associative and commutative: (a∪b)∪c = a∪(b∪c) and
        /// a∪b = b∪a observably — the law the sharded runner relies on to
        /// make per-shard histograms partition-independent.
        #[test]
        fn merge_is_associative_and_commutative(
            xs in proptest::collection::vec(any::<u64>(), 0..60),
            ys in proptest::collection::vec(any::<u64>(), 0..60),
            zs in proptest::collection::vec(any::<u64>(), 0..60),
        ) {
            let fill = |vals: &[u64]| {
                let mut h = Histogram::new();
                for &v in vals {
                    h.record(v);
                }
                h
            };
            let same = |a: &Histogram, b: &Histogram| {
                a.count() == b.count()
                    && a.min() == b.min()
                    && a.max() == b.max()
                    && a.sum == b.sum
                    && a.counts == b.counts
            };

            // Associativity.
            let mut left = fill(&xs);
            let mut bc = fill(&ys);
            left.merge(&bc); // (a∪b)
            left.merge(&fill(&zs)); // (a∪b)∪c
            let mut right = fill(&xs);
            bc = fill(&ys);
            bc.merge(&fill(&zs)); // (b∪c)
            right.merge(&bc); // a∪(b∪c)
            prop_assert!(same(&left, &right), "merge not associative");

            // Commutativity.
            let mut ab = fill(&xs);
            ab.merge(&fill(&ys));
            let mut ba = fill(&ys);
            ba.merge(&fill(&xs));
            prop_assert!(same(&ab, &ba), "merge not commutative");
        }

        /// record_n(v, n) is equivalent to n× record(v).
        #[test]
        fn record_n_matches_repeated_record(v in any::<u64>(), n in 1u64..100) {
            let mut a = Histogram::new();
            a.record_n(v, n);
            let mut b = Histogram::new();
            for _ in 0..n {
                b.record(v);
            }
            prop_assert_eq!(a.count(), b.count());
            prop_assert_eq!(a.quantile(0.5), b.quantile(0.5));
            prop_assert_eq!(a.max(), b.max());
        }
    }
}
