//! The workload abstraction: calibrate-then-replay operation profiles.
//!
//! Driving tens of thousands of *real* protocol sessions (each with
//! 1024-bit DH exchanges) is wall-clock infeasible, and — because the
//! repo's SGX cost model is deterministic per operation — unnecessary. A
//! scenario instead runs a handful of real sessions against the actual
//! enclave code, captures each operation's instruction counters and wire
//! sizes as an [`OpProfile`], and the runner replays those profiles at
//! scale on virtual time. The replay is exact, not approximate: a second
//! real session costs precisely what the first did, modulo the keys.

use teenet_sgx::cost::{CostModel, Counters};
use teenet_sgx::{SwitchlessConfig, TeeBackend, TransitionMode, TransitionStats};

/// The calibrated cost of one client→server exchange within a session:
/// the client spends `client` instructions preparing `request_bytes`, the
/// server spends `server` instructions servicing it and replies with
/// `response_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpProfile {
    /// Step name (e.g. `attest.begin`, `record`, `cell`).
    pub name: &'static str,
    /// Client-side instruction cost of the step.
    pub client: Counters,
    /// Server-side instruction cost of the step.
    pub server: Counters,
    /// Request size on the wire, in bytes.
    pub request_bytes: usize,
    /// Response size on the wire, in bytes.
    pub response_bytes: usize,
    /// Server-side enclave boundary crossings during the step.
    pub transitions: TransitionStats,
}

impl OpProfile {
    /// Server-side service time of this step in virtual nanoseconds at
    /// `clock_hz` under `model`.
    pub fn service_nanos(&self, model: &CostModel, clock_hz: u64) -> u64 {
        cycles_to_nanos(self.server.cycles(model), clock_hz)
    }
}

/// Converts a cycle count to nanoseconds at `clock_hz`, rounding up so a
/// nonzero cost always consumes time.
pub fn cycles_to_nanos(cycles: u64, clock_hz: u64) -> u64 {
    let hz = clock_hz.max(1);
    (cycles.saturating_mul(1_000_000_000)).div_ceil(hz)
}

/// The output of calibrating a scenario: a one-time setup cost plus the
/// per-session operation script the runner replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Calibration {
    /// One-time deployment cost (enclave launch, provisioning, topology
    /// attestation) paid before any session traffic.
    pub setup: Counters,
    /// The steps of one session, in order. Each is one request/response
    /// round trip.
    pub ops: Vec<OpProfile>,
    /// The transition mode the scenario was calibrated under.
    pub mode: TransitionMode,
    /// The TEE backend the scenario was calibrated against. Replay must
    /// price cycles with this backend's cost model, or the virtual clock
    /// disagrees with the calibration.
    pub backend: TeeBackend,
    /// The switchless worker-pool configuration the scenario was
    /// calibrated under (surfaces in reports so multi-worker runs are
    /// distinguishable from the single-worker default).
    pub switchless: SwitchlessConfig,
}

impl Calibration {
    /// The cost model any replay of this calibration prices cycles with.
    pub fn cost_model(&self) -> CostModel {
        self.backend.cost_model()
    }

    /// Summed server-side counters of one session.
    pub fn session_server_cost(&self) -> Counters {
        let mut total = Counters::new();
        for op in &self.ops {
            total.merge(op.server);
        }
        total
    }

    /// Summed client-side counters of one session.
    pub fn session_client_cost(&self) -> Counters {
        let mut total = Counters::new();
        for op in &self.ops {
            total.merge(op.client);
        }
        total
    }

    /// Server-side busy time of one session in virtual nanoseconds.
    pub fn session_service_nanos(&self, model: &CostModel, clock_hz: u64) -> u64 {
        self.ops
            .iter()
            .map(|op| op.service_nanos(model, clock_hz))
            .sum()
    }

    /// Summed boundary-crossing statistics of one session.
    pub fn session_transitions(&self) -> TransitionStats {
        let mut total = TransitionStats::new();
        for op in &self.ops {
            total.merge(op.transitions);
        }
        total
    }

    /// The largest frame (request or response, header included) any op of
    /// this script puts on the wire — what a session slot's scratch
    /// buffer is pre-sized to, so framing never reallocates mid-run.
    pub fn max_frame_bytes(&self) -> usize {
        self.ops
            .iter()
            .flat_map(|op| [op.request_bytes, op.response_bytes])
            .max()
            .unwrap_or(0)
            .max(crate::runner::HEADER_LEN)
    }
}

impl From<teenet_app::WorkProfile> for Calibration {
    fn from(profile: teenet_app::WorkProfile) -> Self {
        Calibration {
            setup: profile.setup,
            ops: profile
                .steps
                .into_iter()
                .map(|s| OpProfile {
                    name: s.name,
                    client: s.client,
                    server: s.server,
                    request_bytes: s.request_bytes,
                    response_bytes: s.response_bytes,
                    transitions: s.transitions,
                })
                .collect(),
            mode: profile.mode,
            backend: profile.backend,
            switchless: profile.switchless,
        }
    }
}

/// A workload that can calibrate itself into per-session [`OpProfile`]s.
///
/// Implementations hold their configuration and seed; `calibrate` runs the
/// real protocol (real enclaves, real crypto) a bounded number of times
/// and must be deterministic in the seed.
///
/// `Send` is a supertrait so a boxed scenario (and the deployed service
/// inside it) can move to a load shard's worker thread.
pub trait Scenario: Send {
    /// Stable scenario name (used in reports and JSON).
    fn name(&self) -> &'static str;

    /// One-line description for `loadgen --list`.
    fn describe(&self) -> &'static str;

    /// Runs the real protocol and extracts the per-session script.
    fn calibrate(&mut self) -> Calibration;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(sgx: u64, normal: u64) -> Counters {
        Counters {
            sgx_instr: sgx,
            normal_instr: normal,
        }
    }

    #[test]
    fn session_costs_sum_over_ops() {
        let cal = Calibration {
            setup: c(1, 10),
            ops: vec![
                OpProfile {
                    name: "a",
                    client: c(0, 100),
                    server: c(2, 200),
                    request_bytes: 64,
                    response_bytes: 32,
                    transitions: TransitionStats::default(),
                },
                OpProfile {
                    name: "b",
                    client: c(1, 50),
                    server: c(3, 300),
                    request_bytes: 16,
                    response_bytes: 16,
                    transitions: TransitionStats::default(),
                },
            ],
            mode: TransitionMode::Classic,
            backend: TeeBackend::Sgx,
            switchless: SwitchlessConfig::default(),
        };
        assert_eq!(cal.session_server_cost(), c(5, 500));
        assert_eq!(cal.session_client_cost(), c(1, 150));
    }

    #[test]
    fn max_frame_spans_requests_and_responses_with_header_floor() {
        let op = |req, resp| OpProfile {
            name: "x",
            client: c(0, 0),
            server: c(0, 0),
            request_bytes: req,
            response_bytes: resp,
            transitions: TransitionStats::default(),
        };
        let cal = |ops| Calibration {
            setup: c(0, 0),
            ops,
            mode: TransitionMode::Classic,
            backend: TeeBackend::Sgx,
            switchless: SwitchlessConfig::default(),
        };
        assert_eq!(cal(vec![op(64, 2048), op(512, 32)]).max_frame_bytes(), 2048);
        // Tiny frames are padded to the wire header; so is the scratch.
        assert_eq!(cal(vec![op(4, 8)]).max_frame_bytes(), 24);
        assert_eq!(cal(vec![]).max_frame_bytes(), 24);
    }

    #[test]
    fn cycles_round_up_to_nanos() {
        // 1 cycle at 3 GHz is a fraction of a nanosecond — still ≥ 1ns.
        assert_eq!(cycles_to_nanos(1, 3_000_000_000), 1);
        assert_eq!(cycles_to_nanos(3, 3_000_000_000), 1);
        assert_eq!(cycles_to_nanos(4, 3_000_000_000), 2);
        assert_eq!(cycles_to_nanos(3_000_000_000, 3_000_000_000), 1_000_000_000);
        assert_eq!(cycles_to_nanos(0, 3_000_000_000), 0);
    }

    #[test]
    fn service_nanos_uses_paper_model() {
        let model = CostModel::paper();
        let op = OpProfile {
            name: "x",
            client: Counters::new(),
            server: c(1, 0), // one SGX instruction = 10_000 cycles
            request_bytes: 1,
            response_bytes: 1,
            transitions: TransitionStats::default(),
        };
        // 10_000 cycles at 1 GHz = 10_000 ns.
        assert_eq!(op.service_nanos(&model, 1_000_000_000), 10_000);
    }
}
