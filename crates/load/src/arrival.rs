//! Seeded arrival processes for the load driver.
//!
//! Open-loop load injects sessions at times drawn from a Poisson process
//! (exponential inter-arrivals), independent of completions — the regime
//! where queueing delay and tail latency actually appear. Closed-loop load
//! keeps a fixed number of sessions in flight; the runner schedules the
//! next arrival on completion, so this module only supplies the initial
//! batch for that mode.

use teenet_crypto::SecureRng;
use teenet_netsim::{SimDuration, SimTime};

/// How sessions are injected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Poisson arrivals at `rate_per_sec`, regardless of completions.
    OpenLoop {
        /// Mean arrival rate in sessions per (virtual) second.
        rate_per_sec: f64,
    },
    /// A fixed number of sessions in flight at all times.
    ClosedLoop {
        /// In-flight session target.
        concurrency: u32,
    },
}

/// Deterministic generator of arrival times for one run.
pub struct ArrivalProcess {
    kind: Arrival,
    rng: SecureRng,
    next_at: SimTime,
    issued: u64,
    total: u64,
}

impl ArrivalProcess {
    /// A process issuing `total` sessions under `kind`; all randomness
    /// comes from `rng` (forked per concern by the caller).
    pub fn new(kind: Arrival, total: u64, rng: SecureRng) -> Self {
        ArrivalProcess {
            kind,
            rng,
            next_at: SimTime::ZERO,
            issued: 0,
            total,
        }
    }

    /// Number of sessions handed out so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total sessions this process will issue.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Next arrival time, or `None` when exhausted.
    ///
    /// Open loop: exponential gaps via inverse-CDF sampling. Closed loop:
    /// the first `concurrency` sessions arrive at t=0; afterwards the
    /// runner calls [`ArrivalProcess::completion_arrival`] instead.
    pub fn next_arrival(&mut self) -> Option<(u64, SimTime)> {
        if self.issued >= self.total {
            return None;
        }
        let idx = self.issued;
        match self.kind {
            Arrival::OpenLoop { rate_per_sec } => {
                let at = self.next_at;
                let gap = exponential_gap(rate_per_sec, &mut self.rng);
                self.next_at += gap;
                self.issued += 1;
                Some((idx, at))
            }
            Arrival::ClosedLoop { concurrency } => {
                if idx >= concurrency as u64 {
                    return None;
                }
                self.issued += 1;
                Some((idx, SimTime::ZERO))
            }
        }
    }

    /// Advances past the next `n` arrivals without handing them out, so a
    /// shard can re-derive the global open-loop schedule and position it
    /// at its own index range in O(n) cheap RNG draws with no per-session
    /// storage. (Closed loop stops at the initial batch like
    /// [`ArrivalProcess::next_arrival`] does.)
    pub fn skip(&mut self, n: u64) {
        for _ in 0..n {
            if self.next_arrival().is_none() {
                break;
            }
        }
    }

    /// Closed loop only: the session replacing a completed one, arriving
    /// at the completion time. Returns `None` when exhausted or open-loop.
    pub fn completion_arrival(&mut self, at: SimTime) -> Option<(u64, SimTime)> {
        match self.kind {
            Arrival::ClosedLoop { .. } if self.issued < self.total => {
                let idx = self.issued;
                self.issued += 1;
                Some((idx, at))
            }
            _ => None,
        }
    }
}

/// One exponential inter-arrival gap at `rate_per_sec` (mean 1/rate),
/// clamped to ≥ 1ns so time always advances.
fn exponential_gap(rate_per_sec: f64, rng: &mut SecureRng) -> SimDuration {
    // Uniform in (0, 1]: avoid ln(0).
    let u = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let secs = -u.ln() / rate_per_sec.max(1e-9);
    SimDuration(((secs * 1e9) as u64).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_mean_gap_matches_rate() {
        let rng = SecureRng::seed_from_u64(42);
        let mut p = ArrivalProcess::new(
            Arrival::OpenLoop {
                rate_per_sec: 100.0,
            },
            5000,
            rng,
        );
        let mut last = SimTime::ZERO;
        let mut n = 0u64;
        while let Some((_, at)) = p.next_arrival() {
            last = at;
            n += 1;
        }
        assert_eq!(n, 5000);
        // 5000 arrivals at 100/s ⇒ ~50s of virtual time (±15%).
        let secs = last.as_secs_f64();
        assert!((42.0..58.0).contains(&secs), "{secs}");
    }

    #[test]
    fn open_loop_times_strictly_increase() {
        let rng = SecureRng::seed_from_u64(7);
        let mut p = ArrivalProcess::new(Arrival::OpenLoop { rate_per_sec: 1e6 }, 1000, rng);
        let mut prev = None;
        while let Some((_, at)) = p.next_arrival() {
            if let Some(prev) = prev {
                assert!(at > prev, "arrivals must advance");
            }
            prev = Some(at);
        }
    }

    #[test]
    fn closed_loop_issues_initial_batch_then_on_completion() {
        let rng = SecureRng::seed_from_u64(1);
        let mut p = ArrivalProcess::new(Arrival::ClosedLoop { concurrency: 4 }, 6, rng);
        let initial: Vec<_> = std::iter::from_fn(|| p.next_arrival()).collect();
        assert_eq!(initial.len(), 4);
        assert!(initial.iter().all(|&(_, at)| at == SimTime::ZERO));
        let t = SimTime(55);
        assert_eq!(p.completion_arrival(t), Some((4, t)));
        assert_eq!(p.completion_arrival(t), Some((5, t)));
        assert_eq!(p.completion_arrival(t), None, "exhausted");
    }

    #[test]
    fn skip_positions_a_fresh_stream_mid_schedule() {
        let make = || {
            ArrivalProcess::new(
                Arrival::OpenLoop { rate_per_sec: 75.0 },
                200,
                SecureRng::seed_from_u64(5),
            )
        };
        let mut full = make();
        full.skip(120);
        let tail: Vec<_> = std::iter::from_fn(|| full.next_arrival()).collect();
        let mut reference = make();
        let all: Vec<_> = std::iter::from_fn(|| reference.next_arrival()).collect();
        assert_eq!(tail, all[120..], "skip ≡ discarding the first n draws");
        let mut past_end = make();
        past_end.skip(10_000);
        assert_eq!(past_end.next_arrival(), None, "skip clamps at exhaustion");
    }

    #[test]
    fn same_seed_same_schedule() {
        let make = || {
            let rng = SecureRng::seed_from_u64(99);
            let mut p = ArrivalProcess::new(Arrival::OpenLoop { rate_per_sec: 50.0 }, 100, rng);
            std::iter::from_fn(move || p.next_arrival()).collect::<Vec<_>>()
        };
        assert_eq!(make(), make());
    }
}
