//! The four paper workloads as [`crate::scenario::Scenario`] impls.

pub mod attest;
pub mod bgp;
pub mod tls;
pub mod tor;

pub use attest::AttestScenario;
pub use bgp::BgpScenario;
pub use tls::TlsScenario;
pub use tor::TorScenario;

use teenet_sgx::TransitionMode;

use crate::scenario::Scenario;

/// All scenario names `loadgen` accepts.
pub const NAMES: [&str; 4] = ["attest", "tls", "tor", "bgp"];

/// Builds a scenario by name with its default shape, seeded with `seed`.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Scenario>> {
    by_name_mode(name, seed, TransitionMode::Classic)
}

/// [`by_name`] with an explicit transition mode (`loadgen --switchless`).
pub fn by_name_mode(name: &str, seed: u64, mode: TransitionMode) -> Option<Box<dyn Scenario>> {
    match name {
        "attest" => Some(Box::new(AttestScenario::with_mode(seed, mode))),
        "tls" => Some(Box::new(TlsScenario::with_mode(seed, mode))),
        "tor" => Some(Box::new(TorScenario::with_mode(seed, mode))),
        "bgp" => Some(Box::new(BgpScenario::with_mode(seed, mode))),
        _ => None,
    }
}
