//! The four paper workloads as load scenarios, all driven through one
//! generic [`ServiceScenario`].
//!
//! Each workload crate implements [`EnclaveService`]; this module only
//! wraps a service in the calibrate-then-replay [`Scenario`] contract and
//! registers it in [`REGISTRY`], from which [`NAMES`] and the `by_name`
//! lookups derive. Adding a fifth workload is one service impl plus one
//! registry entry — no new scenario struct.

use teenet::driver::AttestService;
use teenet_app::{AppHarness, EnclaveService};
use teenet_interdomain::driver::BgpService;
use teenet_keystore::KeystoreService;
use teenet_mbox::driver::TlsMboxService;
use teenet_sgx::{SwitchlessConfig, TeeBackend, TransitionMode};
use teenet_tor::driver::TorService;

use crate::scenario::{Calibration, Scenario};

/// A load scenario that drives any [`EnclaveService`] through
/// [`AppHarness`] for calibration.
pub struct ServiceScenario<S: EnclaveService> {
    service: S,
    seed: u64,
    mode: TransitionMode,
    backend: TeeBackend,
    switchless: SwitchlessConfig,
}

impl<S: EnclaveService> ServiceScenario<S> {
    /// Wraps `service`, calibrating at `seed` in classic mode on SGX.
    pub fn new(service: S, seed: u64) -> Self {
        Self::with_mode(service, seed, TransitionMode::Classic)
    }

    /// Same, under an explicit transition mode (`loadgen --switchless`).
    pub fn with_mode(service: S, seed: u64, mode: TransitionMode) -> Self {
        Self::with_backend(service, seed, mode, TeeBackend::Sgx)
    }

    /// Same, deployed against an explicit TEE backend
    /// (`loadgen --backend vmtee`).
    pub fn with_backend(service: S, seed: u64, mode: TransitionMode, backend: TeeBackend) -> Self {
        Self::with_switchless(service, seed, mode, backend, SwitchlessConfig::default())
    }

    /// Same, with an explicit switchless worker-pool configuration
    /// (`loadgen --switchless-workers N --spin-budget K`).
    pub fn with_switchless(
        service: S,
        seed: u64,
        mode: TransitionMode,
        backend: TeeBackend,
        switchless: SwitchlessConfig,
    ) -> Self {
        ServiceScenario {
            service,
            seed,
            mode,
            backend,
            switchless,
        }
    }
}

impl<S: EnclaveService> Scenario for ServiceScenario<S> {
    fn name(&self) -> &'static str {
        self.service.name()
    }

    fn describe(&self) -> &'static str {
        self.service.describe()
    }

    fn calibrate(&mut self) -> Calibration {
        AppHarness::with_switchless(self.seed, self.mode, self.backend, self.switchless)
            .calibrate(&mut self.service)
            .expect("calibration cannot fail on an honest deployment")
            .into()
    }
}

/// One registered workload: its name, listing description, and builder.
pub struct ScenarioEntry {
    /// Stable scenario name (what `loadgen` accepts).
    pub name: &'static str,
    /// One-line description for `loadgen --list`.
    pub describe: &'static str,
    build: fn(u64, TransitionMode, TeeBackend, SwitchlessConfig) -> Box<dyn Scenario>,
}

impl ScenarioEntry {
    /// Builds this entry's scenario with its default shape on SGX.
    pub fn build(&self, seed: u64, mode: TransitionMode) -> Box<dyn Scenario> {
        self.build_backend(seed, mode, TeeBackend::Sgx)
    }

    /// [`ScenarioEntry::build`] against an explicit TEE backend.
    pub fn build_backend(
        &self,
        seed: u64,
        mode: TransitionMode,
        backend: TeeBackend,
    ) -> Box<dyn Scenario> {
        self.build_switchless(seed, mode, backend, SwitchlessConfig::default())
    }

    /// [`ScenarioEntry::build_backend`] with an explicit switchless
    /// worker-pool configuration.
    pub fn build_switchless(
        &self,
        seed: u64,
        mode: TransitionMode,
        backend: TeeBackend,
        switchless: SwitchlessConfig,
    ) -> Box<dyn Scenario> {
        (self.build)(seed, mode, backend, switchless)
    }
}

fn build_attest(
    seed: u64,
    mode: TransitionMode,
    backend: TeeBackend,
    switchless: SwitchlessConfig,
) -> Box<dyn Scenario> {
    Box::new(ServiceScenario::with_switchless(
        AttestService::default(),
        seed,
        mode,
        backend,
        switchless,
    ))
}

fn build_tls(
    seed: u64,
    mode: TransitionMode,
    backend: TeeBackend,
    switchless: SwitchlessConfig,
) -> Box<dyn Scenario> {
    Box::new(ServiceScenario::with_switchless(
        TlsMboxService::default(),
        seed,
        mode,
        backend,
        switchless,
    ))
}

fn build_tor(
    seed: u64,
    mode: TransitionMode,
    backend: TeeBackend,
    switchless: SwitchlessConfig,
) -> Box<dyn Scenario> {
    Box::new(ServiceScenario::with_switchless(
        TorService::default(),
        seed,
        mode,
        backend,
        switchless,
    ))
}

fn build_bgp(
    seed: u64,
    mode: TransitionMode,
    backend: TeeBackend,
    switchless: SwitchlessConfig,
) -> Box<dyn Scenario> {
    Box::new(ServiceScenario::with_switchless(
        BgpService::default(),
        seed,
        mode,
        backend,
        switchless,
    ))
}

fn build_keystore(
    seed: u64,
    mode: TransitionMode,
    backend: TeeBackend,
    switchless: SwitchlessConfig,
) -> Box<dyn Scenario> {
    Box::new(ServiceScenario::with_switchless(
        KeystoreService::default(),
        seed,
        mode,
        backend,
        switchless,
    ))
}

/// Every workload `loadgen` can drive, in listing order.
pub const REGISTRY: [ScenarioEntry; 5] = [
    ScenarioEntry {
        name: "attest",
        describe: "remote attestation storm: one Figure-1 attestation per session",
        build: build_attest,
    },
    ScenarioEntry {
        name: "tls",
        describe: "TLS middlebox record traffic: in-enclave DPI on provisioned sessions",
        build: build_tls,
    },
    ScenarioEntry {
        name: "tor",
        describe: "Tor circuit + stream traffic through attested SGX onion routers",
        build: build_tor,
    },
    ScenarioEntry {
        name: "bgp",
        describe: "BGP announcement churn against the SGX inter-domain controller",
        build: build_bgp,
    },
    ScenarioEntry {
        name: "keystore",
        describe: "attested coordinator/worker keystore: sealed key churn across an enclave fleet",
        build: build_keystore,
    },
];

/// All scenario names `loadgen` accepts, derived from [`REGISTRY`].
pub const NAMES: [&str; REGISTRY.len()] = {
    let mut names = [""; REGISTRY.len()];
    let mut i = 0;
    while i < REGISTRY.len() {
        names[i] = REGISTRY[i].name;
        i += 1;
    }
    names
};

/// Builds a scenario by name with its default shape, seeded with `seed`.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Scenario>> {
    by_name_mode(name, seed, TransitionMode::Classic)
}

/// [`by_name`] with an explicit transition mode (`loadgen --switchless`).
pub fn by_name_mode(name: &str, seed: u64, mode: TransitionMode) -> Option<Box<dyn Scenario>> {
    by_name_backend(name, seed, mode, TeeBackend::Sgx)
}

/// [`by_name_mode`] against an explicit TEE backend (`loadgen --backend`).
pub fn by_name_backend(
    name: &str,
    seed: u64,
    mode: TransitionMode,
    backend: TeeBackend,
) -> Option<Box<dyn Scenario>> {
    by_name_switchless(name, seed, mode, backend, SwitchlessConfig::default())
}

/// [`by_name_backend`] with an explicit switchless worker-pool
/// configuration (`loadgen --switchless-workers` / `--spin-budget`).
pub fn by_name_switchless(
    name: &str,
    seed: u64,
    mode: TransitionMode,
    backend: TeeBackend,
    switchless: SwitchlessConfig,
) -> Option<Box<dyn Scenario>> {
    REGISTRY
        .iter()
        .find(|entry| entry.name == name)
        .map(|entry| entry.build_switchless(seed, mode, backend, switchless))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_service_resolves_and_round_trips_its_name() {
        for entry in &REGISTRY {
            let scenario = by_name(entry.name, 1).expect("registered name must resolve");
            assert_eq!(scenario.name(), entry.name);
            assert_eq!(scenario.describe(), entry.describe);
        }
        assert_eq!(NAMES, ["attest", "tls", "tor", "bgp", "keystore"]);
        assert!(by_name("nonesuch", 1).is_none());
    }

    #[test]
    fn by_name_mode_tags_the_calibration() {
        let mut s = by_name_mode("attest", 1, TransitionMode::Switchless).unwrap();
        let cal = s.calibrate();
        assert_eq!(cal.mode, TransitionMode::Switchless);
        assert_eq!(cal.backend, TeeBackend::Sgx);
        assert_eq!(cal.ops.len(), 1);
        assert_eq!(cal.ops[0].name, "attest");
    }

    #[test]
    fn by_name_backend_tags_and_reprices_the_calibration() {
        let classic = TransitionMode::Classic;
        let mut sgx = by_name_backend("attest", 1, classic, TeeBackend::Sgx).unwrap();
        let mut vm = by_name_backend("attest", 1, classic, TeeBackend::VmTee).unwrap();
        let sgx_cal = sgx.calibrate();
        let vm_cal = vm.calibrate();
        assert_eq!(vm_cal.backend, TeeBackend::VmTee);
        assert_eq!(vm_cal.ops.len(), sgx_cal.ops.len());
        // Same protocol, different boundary pricing: the session scripts
        // must not cost the same, and each prices under its own model.
        assert_ne!(
            sgx_cal.session_server_cost().cycles(&sgx_cal.cost_model()),
            vm_cal.session_server_cost().cycles(&vm_cal.cost_model()),
        );
    }

    #[test]
    fn by_name_switchless_tags_the_calibration_and_charges_idle_spins() {
        use teenet_sgx::WorkerScaling;
        let cfg = SwitchlessConfig {
            workers: 3,
            spin_budget: 4,
            scaling: WorkerScaling::Fixed,
            ..SwitchlessConfig::default()
        };
        let mut multi =
            by_name_switchless("tls", 1, TransitionMode::Switchless, TeeBackend::Sgx, cfg).unwrap();
        let multi_cal = multi.calibrate();
        assert_eq!(multi_cal.switchless, cfg);
        let multi_t = multi_cal.session_transitions();
        assert!(multi_t.elided > 0, "the ring must still elide crossings");
        assert!(
            multi_t.idle_spins > 0,
            "idle workers with a spin budget must be charged"
        );

        // The default single-worker/zero-spin shape burns nothing, and its
        // calibration is identical to the pre-refactor `by_name_mode` path.
        let mut single = by_name_mode("tls", 1, TransitionMode::Switchless).unwrap();
        let single_cal = single.calibrate();
        assert_eq!(single_cal.switchless, SwitchlessConfig::default());
        assert_eq!(single_cal.session_transitions().idle_spins, 0);
        // Idle spins cost normal instructions: the over-provisioned pool
        // must be strictly more expensive server-side.
        assert!(
            multi_cal.session_server_cost().normal_instr
                > single_cal.session_server_cost().normal_instr
        );
    }

    #[test]
    fn default_shapes_calibrate() {
        let mut tls = by_name("tls", 2).unwrap();
        let cal = tls.calibrate();
        assert_eq!(cal.ops.len(), 4);
        assert!(cal.ops.iter().all(|op| op.name == "record"));
        assert!(cal.ops[0].request_bytes > 1024);

        let mut tor = by_name("tor", 3).unwrap();
        let cal = tor.calibrate();
        assert_eq!(cal.ops.len(), 5);
        assert_eq!(cal.ops[0].name, "extend");
        assert!(cal.setup.sgx_instr > 0);

        let mut bgp = by_name("bgp", 4).unwrap();
        let cal = bgp.calibrate();
        assert_eq!(cal.ops.len(), 2);
        assert_eq!(cal.ops[0].name, "announce");
        assert_eq!(cal.ops[1].name, "pull");
        assert!(cal.ops[0].server.normal_instr > cal.ops[1].server.normal_instr);

        let mut keystore = by_name("keystore", 5).unwrap();
        let cal = keystore.calibrate();
        // attest + provision + 4×release + revoke.
        assert_eq!(cal.ops.len(), 7);
        assert_eq!(cal.ops[0].name, "attest");
        assert_eq!(cal.ops[6].name, "revoke");
        // Fleet bootstrap (4 attestations + provisions) dominates setup.
        assert!(cal.setup.sgx_instr > 0);
    }
}
