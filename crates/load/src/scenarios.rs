//! The four paper workloads as [`crate::scenario::Scenario`] impls.

pub mod attest;
pub mod bgp;
pub mod tls;
pub mod tor;

pub use attest::AttestScenario;
pub use bgp::BgpScenario;
pub use tls::TlsScenario;
pub use tor::TorScenario;

use crate::scenario::Scenario;

/// All scenario names `loadgen` accepts.
pub const NAMES: [&str; 4] = ["attest", "tls", "tor", "bgp"];

/// Builds a scenario by name with its default shape, seeded with `seed`.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Scenario>> {
    match name {
        "attest" => Some(Box::new(AttestScenario::new(seed))),
        "tls" => Some(Box::new(TlsScenario::new(seed))),
        "tor" => Some(Box::new(TorScenario::new(seed))),
        "bgp" => Some(Box::new(BgpScenario::new(seed))),
        _ => None,
    }
}
