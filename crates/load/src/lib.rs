#![warn(missing_docs)]

//! # teenet-load
//!
//! Scenario-driven load generation and metrics for stress-testing the
//! paper's three applications at scale — the substrate every perf PR
//! measures itself against.
//!
//! The repo's experiment binaries (`table1..table4`, `fig3`) are
//! single-shot: they run one protocol instance and print the paper's
//! numbers. This crate drives *sustained, concurrent* traffic on
//! `teenet-netsim` virtual time and reports latency/throughput
//! distributions plus SGX instruction/cycle rollups:
//!
//! * [`hist`] — log-bucketed latency histograms (p50/p90/p99/p999).
//! * [`metrics`] — monotonic counters, gauges, per-phase SGX cost rollups.
//! * [`arrival`] — seeded open-loop (Poisson) and closed-loop arrival
//!   processes.
//! * [`scenario`] — the workload abstraction: calibrated operation
//!   profiles replayed at scale (calibrate-then-replay, the standard
//!   trace-driven-load technique; exact here because the cost model is
//!   deterministic per operation).
//! * [`scenarios`] — the four paper workloads (attestation storms,
//!   TLS-middlebox record traffic, Tor circuit+stream traffic, BGP
//!   announcement churn), each a `teenet-app` [`EnclaveService`] wrapped
//!   in the generic [`scenarios::ServiceScenario`] and registered in
//!   [`scenarios::REGISTRY`].
//! * [`runner`] — the virtual-time engine: a multi-worker service queue
//!   behind `teenet-netsim` links (with faults, bandwidth and FIFO
//!   queueing), timeouts, and deterministic event ordering. Sessions are
//!   generated lazily and retired into a recycled slab as they finish, so
//!   memory is O(live sessions) — a million-session run fits in a bounded
//!   footprint. A retained reference engine
//!   ([`LoadRunner::run_reference`]) is kept as the byte-identity oracle.
//! * [`shard`] — the sharded replay model: per-session independent
//!   replay partitioned across OS threads, with reports byte-identical
//!   for every thread count.
//! * [`report`] — run reports as an aligned text table and byte-stable
//!   JSON (same scenario + seed ⇒ identical bytes).

pub mod arrival;
pub mod hist;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod scenarios;
pub mod shard;

pub use arrival::{Arrival, ArrivalProcess};
pub use hist::Histogram;
pub use metrics::{Counter, Gauge, PhaseRollup, RunMetrics};
pub use report::RunReport;
pub use runner::{EngineStats, LoadConfig, LoadError, LoadMode, LoadRunner};
pub use scenario::{Calibration, OpProfile, Scenario};
pub use scenarios::{ScenarioEntry, ServiceScenario, NAMES, REGISTRY};
pub use shard::ShardPlan;

pub use teenet_app::EnclaveService;
