//! Sharded deterministic replay: the parallel counterpart of the serial
//! [`crate::LoadRunner::run`] engine.
//!
//! The serial engine is one coupled discrete-event simulation — every
//! session shares the server's worker pool, the links and the fault RNG,
//! so its state cannot be split across threads without changing the
//! answer. The sharded model trades that coupling for per-session
//! independence: each session is replayed as a *pure function* of the run
//! seed and its session index, on its own private two-node network with
//! its own derived RNG and its own virtual clock starting at zero. Global
//! time is then reconstructed analytically:
//!
//! * **Partitioning** — session indices `0..sessions` are split into
//!   contiguous, balanced blocks, one per shard ([`ShardPlan::range`]).
//!   Which shard replays a session never changes what the session does.
//! * **Seed derivation** — session `i` replays under
//!   `fnv1a(seed.to_le_bytes() ‖ i.to_le_bytes())`
//!   ([`ShardPlan::session_seed`]), so per-session randomness (link
//!   faults) is identical no matter which thread runs it.
//! * **Scheduling** — open loop draws the global Poisson arrival times
//!   exactly as the serial engine does (each shard re-derives the stream
//!   and [`ArrivalProcess::skip`]s to its own range) and places session
//!   `i`'s completion at `arrival_i + duration_i`; closed loop assigns
//!   session `i` to lane `i mod concurrency` and runs each lane
//!   back-to-back. Both reduce *as the shard streams through its range*:
//!   open loop keeps only the latest completion seen, closed loop keeps
//!   per-lane partial busy-time sums — no shard (and no merge step) ever
//!   materialises a per-session array, so sharded replay is
//!   constant-memory in the session count just like the streaming serial
//!   engine.
//! * **Merging** — per-shard [`RunMetrics`] are merged in fixed shard
//!   order, per-lane busy times are summed, and completion maxima are
//!   maxed. Because every merge is associative and commutative and
//!   contiguous blocks cover `0..sessions` in index order, the merged
//!   result — and therefore the rendered report — is byte-identical for
//!   *any* shard count.
//!
//! The sharded model is a different (documented) replay model from the
//! serial engine: sessions never contend for the server's worker pool or
//! a shared link, so under faults or saturation its numbers differ from
//! [`crate::LoadRunner::run`]. What it guarantees is determinism in the
//! seed and independence from the thread count.

use std::ops::Range;
use std::thread;

use teenet_crypto::SecureRng;
use teenet_sgx::cost::CostModel;

use crate::arrival::{Arrival, ArrivalProcess};
use crate::metrics::RunMetrics;
use crate::report::RunReport;
use crate::runner::{
    effective_rate, fnv1a, report_from_metrics, Engine, LoadConfig, LoadMode, LoadRunner,
};
use crate::scenario::Calibration;

/// The deterministic partition of a run's sessions across shards.
///
/// Contiguous balanced blocks: with `sessions = q·shards + r`, the first
/// `r` shards get `q + 1` sessions and the rest get `q`, in index order.
/// The plan is a pure function of `(sessions, shards)` so every thread
/// count agrees on which sessions exist and what seeds they use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Total sessions in the run.
    pub sessions: u64,
    /// Number of shards (≥ 1).
    pub shards: u32,
}

impl ShardPlan {
    /// A plan splitting `sessions` across `shards` threads (clamped ≥ 1).
    pub fn new(sessions: u64, shards: u32) -> Self {
        ShardPlan {
            sessions,
            shards: shards.max(1),
        }
    }

    /// The contiguous session-index range shard `shard` replays.
    pub fn range(&self, shard: u32) -> Range<u64> {
        debug_assert!(shard < self.shards);
        let n = self.shards as u64;
        let q = self.sessions / n;
        let r = self.sessions % n;
        let s = shard as u64;
        let start = s * q + s.min(r);
        let len = q + u64::from(s < r);
        start..start + len
    }

    /// The derived seed session `index` replays under: FNV-1a over the
    /// run seed and the index, so shards need no shared RNG state.
    pub fn session_seed(seed: u64, index: u64) -> u64 {
        let mut buf = [0u8; 16];
        buf[0..8].copy_from_slice(&seed.to_le_bytes());
        buf[8..16].copy_from_slice(&index.to_le_bytes());
        fnv1a(&buf)
    }
}

/// What one shard hands back: its merged metrics (the session-local
/// `last_done_ns` in it is meaningless and overwritten by the scheduler)
/// plus the constant-size scheduling aggregates its range reduced to —
/// per-lane busy-time partial sums (closed loop) or the latest completion
/// time (open loop). Never a per-session array.
struct ShardResult {
    metrics: RunMetrics,
    /// Closed loop: this shard's busy-time contribution per lane
    /// (`len == concurrency`); empty for open loop.
    lane_busy: Vec<u64>,
    /// Open loop: `max(arrival_i + duration_i)` over this shard's range;
    /// 0 for closed loop.
    last_completion: u64,
}

/// Replays every session in `range`, each on a private single-worker,
/// single-client engine whose virtual clock starts at zero, reducing
/// scheduling state on the fly.
fn run_shard(
    cfg: &LoadConfig,
    cal: &Calibration,
    model: &CostModel,
    range: Range<u64>,
) -> ShardResult {
    let mut metrics = RunMetrics::new();
    let (mut lane_busy, mut arrivals) = match cfg.mode {
        LoadMode::Closed { concurrency } => (vec![0u64; concurrency.max(1) as usize], None),
        LoadMode::Open { .. } => {
            // Re-derive the global Poisson schedule (same fork the serial
            // engine uses) and position it at this shard's first index.
            let rate = effective_rate(cfg, cal, model);
            let mut a = ArrivalProcess::new(
                Arrival::OpenLoop { rate_per_sec: rate },
                cfg.sessions,
                SecureRng::seed_from_u64(cfg.seed).fork(b"arrivals"),
            );
            a.skip(range.start);
            (Vec::new(), Some(a))
        }
    };
    let mut last_completion = 0u64;
    // One engine per shard, rewound per session: the private two-node
    // network, the session slab (and its scratch buffer) and the event
    // heap are allocated once and reused across the whole range instead
    // of being rebuilt per session. Only the derived seed changes, so
    // `reset_for_session` takes it as a parameter while the hoisted
    // config keeps the session-replay shape (one session, one closed
    // lane, one worker, one client).
    let mut session_cfg = cfg.clone();
    session_cfg.sessions = 1;
    session_cfg.mode = LoadMode::Closed { concurrency: 1 };
    session_cfg.workers = 1;
    session_cfg.clients = 1;
    let mut engine = Engine::new(&session_cfg, cal, model);
    for index in range {
        engine.reset_for_session(ShardPlan::session_seed(cfg.seed, index));
        engine.prime();
        engine.drain();
        let m = engine.take_metrics();
        // One session from t=0: its local last-done time IS its duration
        // (completion or abandonment).
        let duration = m.last_done_ns;
        match arrivals.as_mut() {
            Some(a) => {
                let (idx, at) = a.next_arrival().expect("stream covers the shard's range");
                debug_assert_eq!(idx, index);
                last_completion = last_completion.max(at.as_nanos() + duration);
            }
            None => {
                let lanes = lane_busy.len() as u64;
                lane_busy[(index % lanes) as usize] += duration;
            }
        }
        metrics.merge(&m);
    }
    ShardResult {
        metrics,
        lane_busy,
        last_completion,
    }
}

/// Merges per-shard results (in fixed shard order) into the run's global
/// metrics, reconstructing the global end time from the shards'
/// scheduling aggregates: open loop ends at the latest completion across
/// shards; closed loop sums each lane's busy time across shards (lanes
/// run back-to-back) and ends at the fullest lane.
fn merge_shards(cfg: &LoadConfig, results: &[ShardResult]) -> RunMetrics {
    let mut metrics = RunMetrics::new();
    let mut lane_busy = match cfg.mode {
        LoadMode::Closed { concurrency } => vec![0u64; concurrency.max(1) as usize],
        LoadMode::Open { .. } => Vec::new(),
    };
    let mut last_completion = 0u64;
    for r in results {
        metrics.merge(&r.metrics);
        for (lane, busy) in r.lane_busy.iter().enumerate() {
            lane_busy[lane] += busy;
        }
        last_completion = last_completion.max(r.last_completion);
    }
    metrics.last_done_ns = match cfg.mode {
        LoadMode::Open { .. } => last_completion,
        LoadMode::Closed { .. } => lane_busy.into_iter().max().unwrap_or(0),
    };
    metrics
}

impl LoadRunner {
    /// Drives `calibration`'s script through the sharded replay model on
    /// `n_threads` OS threads and returns the full report.
    ///
    /// The report is byte-identical for every `n_threads` ≥ 1: sessions
    /// are pure functions of `(seed, index)`, shards cover contiguous
    /// index blocks, and the associative/commutative metric merges are
    /// applied in fixed shard order. Memory is O(shards · live state per
    /// shard) — no per-session array exists anywhere in the path.
    pub fn run_sharded(
        &self,
        scenario: &str,
        calibration: &Calibration,
        n_threads: u32,
    ) -> RunReport {
        assert!(
            !calibration.ops.is_empty(),
            "calibration must contain at least one op"
        );
        let cfg = self.config();
        let model = &calibration.cost_model();
        let plan = ShardPlan::new(cfg.sessions, n_threads);

        let results: Vec<ShardResult> = thread::scope(|scope| {
            let handles: Vec<_> = (0..plan.shards)
                .map(|shard| {
                    let range = plan.range(shard);
                    scope.spawn(move || run_shard(cfg, calibration, model, range))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });

        // Fixed shard-order merge over contiguous blocks ≡ one serial
        // index-order merge, for any shard count.
        let metrics = merge_shards(cfg, &results);
        report_from_metrics(scenario, cfg, calibration, model, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::OpProfile;
    use proptest::prelude::*;
    use teenet_netsim::FaultConfig;
    use teenet_sgx::cost::Counters;
    use teenet_sgx::TransitionStats;

    fn c(sgx: u64, normal: u64) -> Counters {
        Counters {
            sgx_instr: sgx,
            normal_instr: normal,
        }
    }

    fn toy_calibration() -> Calibration {
        Calibration {
            setup: c(10, 1_000_000),
            ops: vec![
                OpProfile {
                    name: "hello",
                    client: c(0, 50_000),
                    server: c(4, 500_000),
                    request_bytes: 128,
                    response_bytes: 64,
                    transitions: TransitionStats {
                        taken: 2,
                        elided: 0,
                        fallbacks: 0,
                        idle_spins: 0,
                    },
                },
                OpProfile {
                    name: "work",
                    client: c(0, 10_000),
                    server: c(8, 2_000_000),
                    request_bytes: 256,
                    response_bytes: 1024,
                    transitions: TransitionStats {
                        taken: 4,
                        elided: 0,
                        fallbacks: 0,
                        idle_spins: 0,
                    },
                },
            ],
            mode: Default::default(),
            backend: teenet_sgx::TeeBackend::Sgx,
            switchless: Default::default(),
        }
    }

    #[test]
    fn plan_partitions_contiguously_and_balanced() {
        let plan = ShardPlan::new(10, 4);
        let ranges: Vec<_> = (0..4).map(|s| plan.range(s)).collect();
        assert_eq!(ranges, vec![0..3, 3..6, 6..8, 8..10]);
        // Cover 0..sessions exactly, in order, for assorted shapes.
        for (sessions, shards) in [(0u64, 3u32), (1, 4), (7, 1), (100, 7), (5, 5), (3, 8)] {
            let plan = ShardPlan::new(sessions, shards);
            let mut next = 0u64;
            for s in 0..plan.shards {
                let r = plan.range(s);
                assert_eq!(r.start, next, "{sessions}s/{shards}sh shard {s}");
                next = r.end;
            }
            assert_eq!(next, sessions);
        }
    }

    #[test]
    fn session_seeds_differ_per_index_and_run_seed() {
        let a = ShardPlan::session_seed(42, 0);
        let b = ShardPlan::session_seed(42, 1);
        let c = ShardPlan::session_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, ShardPlan::session_seed(42, 0), "pure function");
    }

    #[test]
    fn shard_counts_agree_byte_for_byte() {
        let cal = toy_calibration();
        for mode in [
            LoadMode::Open { rate_per_sec: None },
            LoadMode::Closed { concurrency: 16 },
        ] {
            let mut cfg = LoadConfig::new(120, 7, mode);
            cfg.faults = FaultConfig {
                drop_chance: 0.05,
                corrupt_chance: 0.03,
                ..Default::default()
            };
            let runner = LoadRunner::new(cfg);
            let one = runner.run_sharded("toy", &cal, 1);
            let two = runner.run_sharded("toy", &cal, 2);
            let four = runner.run_sharded("toy", &cal, 4);
            let nine = runner.run_sharded("toy", &cal, 9);
            assert_eq!(one.json(), two.json());
            assert_eq!(one.json(), four.json());
            assert_eq!(one.json(), nine.json());
            assert_eq!(one.text(), four.text());
        }
    }

    /// The pooled per-shard engine (one engine rewound per session) must
    /// be byte-identical to the pre-pooling model (a fresh engine built
    /// per session) — `reset_for_session` is an optimisation, not a
    /// different replay.
    #[test]
    fn pooled_reset_matches_fresh_engines() {
        let cal = toy_calibration();
        let mut cfg = LoadConfig::new(5, 17, LoadMode::Closed { concurrency: 2 });
        cfg.faults = FaultConfig {
            drop_chance: 0.2,
            corrupt_chance: 0.1,
            ..Default::default()
        };
        let model = CostModel::paper();

        let pooled = run_shard(&cfg, &cal, &model, 0..5);

        let mut metrics = RunMetrics::new();
        let mut lane_busy = vec![0u64; 2];
        for index in 0..5u64 {
            let mut session_cfg = cfg.clone();
            session_cfg.sessions = 1;
            session_cfg.seed = ShardPlan::session_seed(cfg.seed, index);
            session_cfg.mode = LoadMode::Closed { concurrency: 1 };
            session_cfg.workers = 1;
            session_cfg.clients = 1;
            let mut engine = Engine::new(&session_cfg, &cal, &model);
            engine.prime();
            engine.drain();
            let m = engine.into_metrics();
            lane_busy[(index % 2) as usize] += m.last_done_ns;
            metrics.merge(&m);
        }
        let fresh = ShardResult {
            metrics,
            lane_busy,
            last_completion: 0,
        };

        let a = report_from_metrics("toy", &cfg, &cal, &model, merge_shards(&cfg, &[pooled]));
        let b = report_from_metrics("toy", &cfg, &cal, &model, merge_shards(&cfg, &[fresh]));
        assert_eq!(a.json(), b.json());
        assert_eq!(a.text(), b.text());
    }

    #[test]
    fn sharded_run_completes_all_sessions() {
        let cfg = LoadConfig::new(80, 3, LoadMode::Closed { concurrency: 8 });
        let report = LoadRunner::new(cfg).run_sharded("toy", &toy_calibration(), 4);
        assert_eq!(report.completed, 80);
        assert_eq!(report.failed, 0);
        assert_eq!(report.latency.count(), 80);
        assert!(report.duration_ns > 0);
        // Per-session cost rollups match the serial engine's semantics:
        // both ops fold once per session.
        let server = report
            .phases
            .iter()
            .find(|p| p.name == "steady.server")
            .unwrap();
        assert_eq!(server.ops, 160);
        assert_eq!(server.counters.sgx_instr, 80 * 12);
        assert_eq!(report.transitions.taken, 80 * 6);
    }

    #[test]
    fn seed_still_drives_the_sharded_run() {
        let cal = toy_calibration();
        let json = |seed| {
            let mut cfg = LoadConfig::new(50, seed, LoadMode::Open { rate_per_sec: None });
            cfg.faults = FaultConfig {
                drop_chance: 0.05,
                ..Default::default()
            };
            LoadRunner::new(cfg).run_sharded("toy", &cal, 2).json()
        };
        assert_ne!(json(1), json(2));
        assert_eq!(json(5), json(5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Any 2-way split of the session range merges to the exact
        /// serial (single-shard, in-process) accumulation: replaying
        /// `0..k` and `k..n` separately and merging the streamed
        /// scheduling aggregates equals replaying `0..n` in one pass.
        /// This is the partition-independence the threaded path inherits.
        #[test]
        fn any_two_way_split_matches_serial_fold(split in 0u64..41, closed in any::<bool>()) {
            let cal = toy_calibration();
            let n = 40u64;
            let mode = if closed {
                LoadMode::Closed { concurrency: 4 }
            } else {
                LoadMode::Open { rate_per_sec: None }
            };
            let mut cfg = LoadConfig::new(n, 13, mode);
            cfg.faults = FaultConfig {
                drop_chance: 0.04,
                ..Default::default()
            };
            let model = CostModel::paper();

            let serial = run_shard(&cfg, &cal, &model, 0..n);
            let left = run_shard(&cfg, &cal, &model, 0..split);
            let right = run_shard(&cfg, &cal, &model, split..n);

            let merged = merge_shards(&cfg, &[left, right]);
            let serial_metrics = merge_shards(&cfg, &[serial]);
            prop_assert_eq!(merged.last_done_ns, serial_metrics.last_done_ns);

            let a = report_from_metrics("toy", &cfg, &cal, &model, merged);
            let b = report_from_metrics("toy", &cfg, &cal, &model, serial_metrics);
            prop_assert_eq!(a.json(), b.json());
        }
    }
}
