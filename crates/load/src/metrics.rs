//! Metrics core: monotonic counters, gauges with high-watermarks,
//! per-phase SGX instruction/cycle rollups folding in
//! [`teenet_sgx::cost::Counters`], and the mergeable [`RunMetrics`]
//! accumulator the sharded runner combines across worker threads.
//!
//! Every `merge` in this module is associative and commutative (sums,
//! histogram bucket adds, min/max), so metrics accumulated per shard and
//! merged in any grouping equal the metrics of one serial accumulation —
//! the property the shard-count byte-identity guarantee rests on, and the
//! one the proptests below pin down.

use teenet_netsim::sim::LinkStats;
use teenet_sgx::cost::{CostModel, Counters};
use teenet_sgx::TransitionStats;

use crate::hist::Histogram;

/// A monotonic event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A gauge tracking a current level and its high-watermark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    current: u64,
    max: u64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level, updating the high-watermark.
    pub fn set(&mut self, v: u64) {
        self.current = v;
        self.max = self.max.max(v);
    }

    /// Raises the level by `n`.
    pub fn rise(&mut self, n: u64) {
        self.set(self.current + n);
    }

    /// Lowers the level by `n` (saturating).
    pub fn fall(&mut self, n: u64) {
        self.current = self.current.saturating_sub(n);
    }

    /// Current level.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Highest level ever set.
    pub fn high_watermark(&self) -> u64 {
        self.max
    }
}

/// Accumulated SGX/normal-instruction cost of one named phase of a load
/// run (e.g. `calibration`, `steady.server`, `steady.client`), with the
/// number of operations it covers.
#[derive(Debug, Clone)]
pub struct PhaseRollup {
    /// Phase name (stable across runs; used as the JSON key).
    pub name: &'static str,
    /// Total instruction counters of the phase.
    pub counters: Counters,
    /// Operations folded into the rollup.
    pub ops: u64,
}

impl PhaseRollup {
    /// An empty rollup for `name`.
    pub fn new(name: &'static str) -> Self {
        PhaseRollup {
            name,
            counters: Counters::new(),
            ops: 0,
        }
    }

    /// Folds one operation's counters in.
    pub fn fold(&mut self, c: Counters) {
        self.counters.merge(c);
        self.ops += 1;
    }

    /// Folds `n` operations that each cost `c` (replayed profiles).
    pub fn fold_n(&mut self, c: Counters, n: u64) {
        self.counters.merge(Counters {
            sgx_instr: c.sgx_instr * n,
            normal_instr: c.normal_instr * n,
        });
        self.ops += n;
    }

    /// Merges another rollup of the same phase into this one.
    ///
    /// Associative and commutative (counter and op sums), so per-shard
    /// rollups merged in any order equal the serial rollup.
    pub fn merge(&mut self, other: &PhaseRollup) {
        debug_assert_eq!(self.name, other.name, "merging rollups of different phases");
        self.counters.merge(other.counters);
        self.ops += other.ops;
    }

    /// Cycles under the paper's conversion (§5 fn. 6).
    pub fn cycles(&self, model: &CostModel) -> u64 {
        self.counters.cycles(model)
    }
}

/// Every outcome accumulator of one load run (or one shard of one): the
/// latency distribution, session/recovery counts, per-phase cost rollups,
/// transition statistics, and network fault totals.
///
/// Extracted from the engine so the sharded runner can accumulate one
/// `RunMetrics` per worker thread and [`RunMetrics::merge`] them in fixed
/// shard order. Every field merges associatively and commutatively —
/// sums, histogram bucket adds, and maxima — so the merged result is
/// independent of how sessions were partitioned into shards.
#[derive(Clone)]
pub struct RunMetrics {
    /// Session latency distribution (arrival → final response), ns.
    pub latency: Histogram,
    /// Sessions that completed every operation.
    pub completed: u64,
    /// Sessions abandoned after exhausting retransmissions.
    pub failed: u64,
    /// Request retransmissions triggered by timeouts.
    pub retries: u64,
    /// Packets discarded at the receiver for failed integrity checks.
    pub corrupt_rx: u64,
    /// Virtual nanosecond at which the last session resolved (local to
    /// the accumulating engine's clock; the sharded scheduler maps shard-
    /// local values onto the global timeline before reporting).
    pub last_done_ns: u64,
    /// Client-side steady-state cost rollup.
    pub steady_client: PhaseRollup,
    /// Server-side steady-state cost rollup.
    pub steady_server: PhaseRollup,
    /// Enclave boundary crossings accumulated over all serviced ops.
    pub transitions: TransitionStats,
    /// Fault outcomes summed over all simulated links.
    pub net: LinkStats,
    /// Deepest any server inbox ever got.
    pub max_server_queue: u64,
}

impl RunMetrics {
    /// Empty metrics with the standard steady-state phase names.
    pub fn new() -> Self {
        RunMetrics {
            latency: Histogram::new(),
            completed: 0,
            failed: 0,
            retries: 0,
            corrupt_rx: 0,
            last_done_ns: 0,
            steady_client: PhaseRollup::new("steady.client"),
            steady_server: PhaseRollup::new("steady.server"),
            transitions: TransitionStats::new(),
            net: LinkStats::default(),
            max_server_queue: 0,
        }
    }

    /// Merges another run's (or shard's) metrics into this one.
    ///
    /// Associative and commutative: counts and rollups add, histograms
    /// add bucket-wise, `last_done_ns` and `max_server_queue` take the
    /// maximum. Merging per-shard metrics in any grouping therefore
    /// yields the same result as one serial accumulation — the invariant
    /// behind the shard-count-independent byte-identical reports.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.latency.merge(&other.latency);
        self.completed += other.completed;
        self.failed += other.failed;
        self.retries += other.retries;
        self.corrupt_rx += other.corrupt_rx;
        self.last_done_ns = self.last_done_ns.max(other.last_done_ns);
        self.steady_client.merge(&other.steady_client);
        self.steady_server.merge(&other.steady_server);
        self.transitions.merge(other.transitions);
        self.net.merge(&other.net);
        self.max_server_queue = self.max_server_queue.max(other.max_server_queue);
    }
}

impl Default for RunMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_high_watermark() {
        let mut g = Gauge::new();
        g.rise(3);
        g.rise(4);
        g.fall(6);
        assert_eq!(g.current(), 1);
        assert_eq!(g.high_watermark(), 7);
        g.fall(10);
        assert_eq!(g.current(), 0);
    }

    use proptest::prelude::*;

    fn rollup(sgx: u64, normal: u64, ops: u64) -> PhaseRollup {
        let mut r = PhaseRollup::new("steady.server");
        r.counters.sgx_instr = sgx;
        r.counters.normal_instr = normal;
        r.ops = ops;
        r
    }

    fn metrics(seed: u64) -> RunMetrics {
        // A deterministic but irregular fixture derived from `seed` — the
        // values only need to differ across fields; merging does the rest.
        let mut m = RunMetrics::new();
        m.latency.record(seed.wrapping_mul(97) % 1_000_003 + 1);
        m.latency.record(seed % 7 + 1);
        m.completed = seed % 13;
        m.failed = seed % 3;
        m.retries = seed % 17;
        m.corrupt_rx = seed % 5;
        m.last_done_ns = seed.wrapping_mul(31) % 1_000_000;
        m.steady_client.fold_n(
            Counters {
                sgx_instr: seed % 11,
                normal_instr: seed % 1009,
            },
            seed % 9 + 1,
        );
        m.steady_server.fold_n(
            Counters {
                sgx_instr: seed % 19,
                normal_instr: seed % 2003,
            },
            seed % 4 + 1,
        );
        m.transitions.taken = seed % 23;
        m.transitions.elided = seed % 29;
        m.transitions.fallbacks = seed % 2;
        m.transitions.idle_spins = seed % 31;
        m.net.sent = seed % 37;
        m.net.delivered = seed % 37;
        m.net.dropped = seed % 6;
        m.max_server_queue = seed % 41;
        m
    }

    /// Field-wise equality for merge-law assertions (RunMetrics itself
    /// stays PartialEq-free because Histogram is).
    fn assert_same(a: &RunMetrics, b: &RunMetrics) {
        assert_eq!(a.latency.count(), b.latency.count());
        assert_eq!(a.latency.min(), b.latency.min());
        assert_eq!(a.latency.max(), b.latency.max());
        assert_eq!(a.latency.percentiles(), b.latency.percentiles());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.corrupt_rx, b.corrupt_rx);
        assert_eq!(a.last_done_ns, b.last_done_ns);
        assert_eq!(a.steady_client.counters, b.steady_client.counters);
        assert_eq!(a.steady_client.ops, b.steady_client.ops);
        assert_eq!(a.steady_server.counters, b.steady_server.counters);
        assert_eq!(a.steady_server.ops, b.steady_server.ops);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.net, b.net);
        assert_eq!(a.max_server_queue, b.max_server_queue);
    }

    #[test]
    fn rollup_folds_and_converts() {
        let model = CostModel::paper();
        let mut r = PhaseRollup::new("steady.server");
        let c = Counters {
            sgx_instr: 2,
            normal_instr: 1000,
        };
        r.fold(c);
        r.fold_n(c, 9);
        assert_eq!(r.ops, 10);
        assert_eq!(r.counters.sgx_instr, 20);
        assert_eq!(r.counters.normal_instr, 10_000);
        assert_eq!(r.cycles(&model), 20 * 10_000 + 18_000);
    }

    #[test]
    fn rollup_merge_equals_combined_folding() {
        let c = |sgx: u64, normal: u64| Counters {
            sgx_instr: sgx,
            normal_instr: normal,
        };
        let mut a = PhaseRollup::new("steady.server");
        a.fold(c(2, 100));
        a.fold_n(c(3, 50), 4);
        let mut b = PhaseRollup::new("steady.server");
        b.fold(c(7, 9));
        let mut combined = PhaseRollup::new("steady.server");
        combined.fold(c(2, 100));
        combined.fold_n(c(3, 50), 4);
        combined.fold(c(7, 9));
        a.merge(&b);
        assert_eq!(a.counters, combined.counters);
        assert_eq!(a.ops, combined.ops);
    }

    #[test]
    fn run_metrics_merge_equals_serial_accumulation() {
        // Sharded accumulation (two halves merged) must equal one serial
        // accumulation of the same per-session observations.
        let sessions: Vec<u64> = (1..=20).collect();
        let mut serial = RunMetrics::new();
        for &s in &sessions {
            serial.merge(&metrics(s));
        }
        let mut left = RunMetrics::new();
        for &s in &sessions[..9] {
            left.merge(&metrics(s));
        }
        let mut right = RunMetrics::new();
        for &s in &sessions[9..] {
            right.merge(&metrics(s));
        }
        left.merge(&right);
        assert_same(&left, &serial);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// PhaseRollup::merge is associative and commutative.
        #[test]
        fn rollup_merge_laws(
            sa in 0u64..1 << 40,
            na in 0u64..1 << 40,
            oa in 0u64..1 << 20,
            sb in 0u64..1 << 40,
            nb in 0u64..1 << 40,
            ob in 0u64..1 << 20,
            sz in 0u64..1 << 40,
            nz in 0u64..1 << 40,
            oz in 0u64..1 << 20,
        ) {
            let (ra, rb, rc) = (rollup(sa, na, oa), rollup(sb, nb, ob), rollup(sz, nz, oz));

            let mut left = ra.clone();
            let mut bc = rb.clone();
            left.merge(&bc);
            left.merge(&rc);
            let mut right = ra.clone();
            bc = rb.clone();
            bc.merge(&rc);
            right.merge(&bc);
            prop_assert_eq!(left.counters, right.counters);
            prop_assert_eq!(left.ops, right.ops);

            let mut ab = ra.clone();
            ab.merge(&rb);
            let mut ba = rb.clone();
            ba.merge(&ra);
            prop_assert_eq!(ab.counters, ba.counters);
            prop_assert_eq!(ab.ops, ba.ops);
        }

        /// RunMetrics::merge is associative and commutative — the law that
        /// makes per-shard accumulation partition-independent.
        #[test]
        fn run_metrics_merge_laws(sa in any::<u64>(), sb in any::<u64>(), sc in any::<u64>()) {
            let (ma, mb, mc) = (metrics(sa), metrics(sb), metrics(sc));

            let mut left = ma.clone();
            let mut bc = mb.clone();
            left.merge(&bc);
            left.merge(&mc);
            let mut right = ma.clone();
            bc = mb.clone();
            bc.merge(&mc);
            right.merge(&bc);
            assert_same(&left, &right);

            let mut ab = ma.clone();
            ab.merge(&mb);
            let mut ba = mb.clone();
            ba.merge(&ma);
            assert_same(&ab, &ba);
        }
    }
}
