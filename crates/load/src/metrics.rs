//! Metrics core: monotonic counters, gauges with high-watermarks, and
//! per-phase SGX instruction/cycle rollups folding in
//! [`teenet_sgx::cost::Counters`].

use teenet_sgx::cost::{CostModel, Counters};

/// A monotonic event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A gauge tracking a current level and its high-watermark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    current: u64,
    max: u64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level, updating the high-watermark.
    pub fn set(&mut self, v: u64) {
        self.current = v;
        self.max = self.max.max(v);
    }

    /// Raises the level by `n`.
    pub fn rise(&mut self, n: u64) {
        self.set(self.current + n);
    }

    /// Lowers the level by `n` (saturating).
    pub fn fall(&mut self, n: u64) {
        self.current = self.current.saturating_sub(n);
    }

    /// Current level.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Highest level ever set.
    pub fn high_watermark(&self) -> u64 {
        self.max
    }
}

/// Accumulated SGX/normal-instruction cost of one named phase of a load
/// run (e.g. `calibration`, `steady.server`, `steady.client`), with the
/// number of operations it covers.
#[derive(Debug, Clone)]
pub struct PhaseRollup {
    /// Phase name (stable across runs; used as the JSON key).
    pub name: &'static str,
    /// Total instruction counters of the phase.
    pub counters: Counters,
    /// Operations folded into the rollup.
    pub ops: u64,
}

impl PhaseRollup {
    /// An empty rollup for `name`.
    pub fn new(name: &'static str) -> Self {
        PhaseRollup {
            name,
            counters: Counters::new(),
            ops: 0,
        }
    }

    /// Folds one operation's counters in.
    pub fn fold(&mut self, c: Counters) {
        self.counters.merge(c);
        self.ops += 1;
    }

    /// Folds `n` operations that each cost `c` (replayed profiles).
    pub fn fold_n(&mut self, c: Counters, n: u64) {
        self.counters.merge(Counters {
            sgx_instr: c.sgx_instr * n,
            normal_instr: c.normal_instr * n,
        });
        self.ops += n;
    }

    /// Cycles under the paper's conversion (§5 fn. 6).
    pub fn cycles(&self, model: &CostModel) -> u64 {
        self.counters.cycles(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_high_watermark() {
        let mut g = Gauge::new();
        g.rise(3);
        g.rise(4);
        g.fall(6);
        assert_eq!(g.current(), 1);
        assert_eq!(g.high_watermark(), 7);
        g.fall(10);
        assert_eq!(g.current(), 0);
    }

    #[test]
    fn rollup_folds_and_converts() {
        let model = CostModel::paper();
        let mut r = PhaseRollup::new("steady.server");
        let c = Counters {
            sgx_instr: 2,
            normal_instr: 1000,
        };
        r.fold(c);
        r.fold_n(c, 9);
        assert_eq!(r.ops, 10);
        assert_eq!(r.counters.sgx_instr, 20);
        assert_eq!(r.counters.normal_instr, 10_000);
        assert_eq!(r.cycles(&model), 20 * 10_000 + 18_000);
    }
}
