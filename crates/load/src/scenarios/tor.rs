//! The Tor workload: circuit construction plus stream traffic through a
//! FullSgx deployment (§3.2, Table 3).

use teenet_sgx::TransitionMode;
use teenet_tor::driver::calibrate_tor_mode;

use crate::scenario::{Calibration, Scenario};

/// Tor circuit + stream sessions over SGX relays.
pub struct TorScenario {
    seed: u64,
    mode: TransitionMode,
}

impl TorScenario {
    /// Default shape: FullSgx, 3-hop circuits, one data cell per session.
    pub fn new(seed: u64) -> Self {
        Self::with_mode(seed, TransitionMode::Classic)
    }

    /// Same shape under an explicit transition mode.
    pub fn with_mode(seed: u64, mode: TransitionMode) -> Self {
        TorScenario { seed, mode }
    }
}

impl Scenario for TorScenario {
    fn name(&self) -> &'static str {
        "tor"
    }

    fn describe(&self) -> &'static str {
        "Tor circuit + stream traffic through attested SGX onion routers"
    }

    fn calibrate(&mut self) -> Calibration {
        calibrate_tor_mode(self.seed, self.mode)
            .expect("tor calibration cannot fail on an honest FullSgx deployment")
            .into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tor_scenario_calibrates() {
        let mut s = TorScenario::new(3);
        let cal = s.calibrate();
        assert_eq!(cal.ops.len(), 5);
        assert_eq!(cal.ops[0].name, "extend");
        assert!(cal.setup.sgx_instr > 0);
    }
}
