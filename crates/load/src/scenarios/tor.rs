//! The Tor workload: circuit construction plus stream traffic through a
//! FullSgx deployment (§3.2, Table 3).

use teenet_tor::driver::calibrate_tor;

use crate::scenario::{Calibration, Scenario};

/// Tor circuit + stream sessions over SGX relays.
pub struct TorScenario {
    seed: u64,
}

impl TorScenario {
    /// Default shape: FullSgx, 3-hop circuits, one data cell per session.
    pub fn new(seed: u64) -> Self {
        TorScenario { seed }
    }
}

impl Scenario for TorScenario {
    fn name(&self) -> &'static str {
        "tor"
    }

    fn describe(&self) -> &'static str {
        "Tor circuit + stream traffic through attested SGX onion routers"
    }

    fn calibrate(&mut self) -> Calibration {
        calibrate_tor(self.seed)
            .expect("tor calibration cannot fail on an honest FullSgx deployment")
            .into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tor_scenario_calibrates() {
        let mut s = TorScenario::new(3);
        let cal = s.calibrate();
        assert_eq!(cal.ops.len(), 5);
        assert_eq!(cal.ops[0].name, "extend");
        assert!(cal.setup.sgx_instr > 0);
    }
}
