//! The attestation-storm workload: every session is one full Figure-1
//! remote attestation (nonce + DH challenge, REPORT, QUOTE, verify).

use teenet::driver::calibrate_attest_mode;
use teenet::AttestConfig;
use teenet_sgx::TransitionMode;

use crate::scenario::{Calibration, Scenario};

/// Attestation storm against a single target enclave.
pub struct AttestScenario {
    seed: u64,
    config: AttestConfig,
    mode: TransitionMode,
}

impl AttestScenario {
    /// Default shape: the fast 768-bit group with DH channel bootstrap.
    pub fn new(seed: u64) -> Self {
        Self::with_mode(seed, TransitionMode::Classic)
    }

    /// Same shape under an explicit transition mode.
    pub fn with_mode(seed: u64, mode: TransitionMode) -> Self {
        AttestScenario {
            seed,
            config: AttestConfig::fast(),
            mode,
        }
    }

    /// Overrides the attestation configuration.
    pub fn with_config(seed: u64, config: AttestConfig) -> Self {
        AttestScenario {
            seed,
            config,
            mode: TransitionMode::Classic,
        }
    }
}

impl Scenario for AttestScenario {
    fn name(&self) -> &'static str {
        "attest"
    }

    fn describe(&self) -> &'static str {
        "remote attestation storm: one Figure-1 attestation per session"
    }

    fn calibrate(&mut self) -> Calibration {
        calibrate_attest_mode(&self.config, self.seed, self.mode)
            .expect("attestation calibration cannot fail on an honest platform")
            .into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attest_scenario_calibrates() {
        let mut s = AttestScenario::new(1);
        let cal = s.calibrate();
        assert_eq!(cal.ops.len(), 1);
        assert_eq!(cal.ops[0].name, "attest");
        assert!(cal.ops[0].server.normal_instr > 0);
    }
}
