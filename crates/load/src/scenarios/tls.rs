//! The TLS-middlebox workload: record traffic through an attested,
//! key-provisioned gateway running in-enclave DPI (§3.3).

use teenet_mbox::driver::calibrate_tls_mbox_mode;
use teenet_sgx::TransitionMode;

use crate::scenario::{Calibration, Scenario};

/// TLS records inspected by a unilateral enterprise gateway.
pub struct TlsScenario {
    seed: u64,
    record_bytes: usize,
    records_per_session: u32,
    mode: TransitionMode,
}

impl TlsScenario {
    /// Default shape: 4 records of 1 KiB per session.
    pub fn new(seed: u64) -> Self {
        Self::with_mode(seed, TransitionMode::Classic)
    }

    /// Same shape under an explicit transition mode.
    pub fn with_mode(seed: u64, mode: TransitionMode) -> Self {
        TlsScenario {
            seed,
            record_bytes: 1024,
            records_per_session: 4,
            mode,
        }
    }

    /// Overrides record size and count.
    pub fn with_shape(seed: u64, record_bytes: usize, records_per_session: u32) -> Self {
        TlsScenario {
            seed,
            record_bytes,
            records_per_session,
            mode: TransitionMode::Classic,
        }
    }
}

impl Scenario for TlsScenario {
    fn name(&self) -> &'static str {
        "tls"
    }

    fn describe(&self) -> &'static str {
        "TLS middlebox record traffic: in-enclave DPI on provisioned sessions"
    }

    fn calibrate(&mut self) -> Calibration {
        calibrate_tls_mbox_mode(
            self.seed,
            self.record_bytes,
            self.records_per_session,
            self.mode,
        )
        .expect("middlebox calibration cannot fail on an honest gateway")
        .into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tls_scenario_calibrates() {
        let mut s = TlsScenario::new(2);
        let cal = s.calibrate();
        assert_eq!(cal.ops.len(), 4);
        assert!(cal.ops.iter().all(|op| op.name == "record"));
        assert!(cal.ops[0].request_bytes > 1024);
    }
}
