//! The inter-domain routing workload: BGP announcement churn against the
//! SGX controller (§3.1, Tables 3–4).

use teenet_interdomain::driver::calibrate_bgp_mode;
use teenet_sgx::TransitionMode;

use crate::scenario::{Calibration, Scenario};

/// BGP announcement churn: submit policy, recompute, pull routes.
pub struct BgpScenario {
    seed: u64,
    n_ases: u32,
    mode: TransitionMode,
}

impl BgpScenario {
    /// Default shape: a random three-tier topology of 8 ASes.
    pub fn new(seed: u64) -> Self {
        Self::with_mode(seed, TransitionMode::Classic)
    }

    /// Same shape under an explicit transition mode.
    pub fn with_mode(seed: u64, mode: TransitionMode) -> Self {
        BgpScenario {
            seed,
            n_ases: 8,
            mode,
        }
    }

    /// Overrides the topology size.
    pub fn with_ases(seed: u64, n_ases: u32) -> Self {
        BgpScenario {
            seed,
            n_ases,
            mode: TransitionMode::Classic,
        }
    }
}

impl Scenario for BgpScenario {
    fn name(&self) -> &'static str {
        "bgp"
    }

    fn describe(&self) -> &'static str {
        "BGP announcement churn against the SGX inter-domain controller"
    }

    fn calibrate(&mut self) -> Calibration {
        calibrate_bgp_mode(self.seed, self.n_ases, self.mode)
            .expect("bgp calibration cannot fail on an honest deployment")
            .into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgp_scenario_calibrates() {
        let mut s = BgpScenario::new(4);
        let cal = s.calibrate();
        assert_eq!(cal.ops.len(), 2);
        assert_eq!(cal.ops[0].name, "announce");
        assert_eq!(cal.ops[1].name, "pull");
        assert!(cal.ops[0].server.normal_instr > cal.ops[1].server.normal_instr);
    }
}
