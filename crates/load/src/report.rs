//! Run reports: an aligned human-readable table and byte-stable JSON.
//!
//! The JSON is emitted by hand (stable key order, fixed float precision)
//! rather than through a serialisation framework, because the determinism
//! test in `tests/loadgen_determinism.rs` asserts *byte* equality of two
//! runs with the same scenario and seed — formatting is part of the
//! contract here, not an implementation detail.

use std::fmt::Write as _;

use teenet_netsim::sim::LinkStats;
use teenet_sgx::cost::Counters;
use teenet_sgx::{TeeBackend, TransitionStats};

use crate::hist::Histogram;
use crate::metrics::PhaseRollup;

/// Everything a finished load run reports.
pub struct RunReport {
    /// Scenario name (`attest`, `tls`, `tor`, `bgp`).
    pub scenario: String,
    /// Load mode description (`open`, `closed`).
    pub mode: String,
    /// Transition mode the scenario was calibrated under (`classic`,
    /// `switchless`).
    pub transition_mode: String,
    /// The TEE backend the run was calibrated and priced against. Phase
    /// and total cycles in this report use this backend's cost model.
    pub backend: TeeBackend,
    /// Seed driving all randomness in the run.
    pub seed: u64,
    /// Open-loop arrival rate actually used (0 for closed loop).
    pub rate_per_sec: f64,
    /// Closed-loop concurrency (0 for open loop).
    pub concurrency: u32,
    /// Sessions requested.
    pub sessions: u64,
    /// Sessions that completed every operation.
    pub completed: u64,
    /// Sessions abandoned after exhausting retransmissions.
    pub failed: u64,
    /// Request retransmissions triggered by timeouts.
    pub retries: u64,
    /// Packets discarded at the receiver for failed integrity checks.
    pub corrupt_rx: u64,
    /// Virtual time from first arrival to last completion, in nanoseconds.
    pub duration_ns: u64,
    /// Completed sessions per virtual second.
    pub throughput_per_sec: f64,
    /// Session latency distribution (arrival → final response), ns.
    pub latency: Histogram,
    /// Fault outcomes summed over all simulated links.
    pub net: LinkStats,
    /// Deepest the server inbox ever got.
    pub max_server_queue: u64,
    /// Per-phase SGX instruction/cycle rollups.
    pub phases: Vec<PhaseRollup>,
    /// Instruction totals across all phases.
    pub total: Counters,
    /// `total` converted to cycles under the backend's model.
    pub total_cycles: u64,
    /// Enclave boundary crossings accumulated over all steady-state ops.
    pub transitions: TransitionStats,
    /// Switchless worker-pool size the run was calibrated with. Surfaces
    /// in the transitions block only off the 1-worker default, so
    /// single-worker reports (and the golden fixtures) stay byte-stable.
    pub switchless_workers: usize,
}

impl RunReport {
    /// The human-readable summary table.
    pub fn text(&self) -> String {
        let mut s = String::new();
        let model = self.backend.cost_model();
        let (p50, p90, p99, p999) = self.latency.percentiles();
        let _ = writeln!(s, "== teenet-load: {} ({}) ==", self.scenario, self.mode);
        let _ = writeln!(s, "{:<26} {}", "seed", self.seed);
        let _ = writeln!(s, "{:<26} {}", "transition mode", self.transition_mode);
        // The backend line is emitted only off the SGX default so reports
        // produced before the multi-backend split stay byte-identical.
        if self.backend != TeeBackend::Sgx {
            let _ = writeln!(s, "{:<26} {}", "backend", self.backend.as_str());
        }
        if self.concurrency > 0 {
            let _ = writeln!(s, "{:<26} {}", "concurrency", self.concurrency);
        } else {
            let _ = writeln!(s, "{:<26} {:.2}/s", "arrival rate", self.rate_per_sec);
        }
        let _ = writeln!(
            s,
            "{:<26} {} requested, {} completed, {} failed",
            "sessions", self.sessions, self.completed, self.failed
        );
        let _ = writeln!(
            s,
            "{:<26} {:.6}s virtual",
            "duration",
            self.duration_ns as f64 / 1e9
        );
        let _ = writeln!(
            s,
            "{:<26} {:.2} sessions/s",
            "throughput", self.throughput_per_sec
        );
        let _ = writeln!(
            s,
            "{:<26} p50={} p90={} p99={} p999={} max={}",
            "latency (µs)",
            p50 / 1_000,
            p90 / 1_000,
            p99 / 1_000,
            p999 / 1_000,
            self.latency.max() / 1_000
        );
        let _ = writeln!(
            s,
            "{:<26} sent={} delivered={} dropped={} corrupted={} duplicated={} delayed={}",
            "network",
            self.net.sent,
            self.net.delivered,
            self.net.dropped,
            self.net.corrupted,
            self.net.duplicated,
            self.net.delayed
        );
        let _ = writeln!(
            s,
            "{:<26} retries={} corrupt_rx={} max_server_queue={}",
            "recovery", self.retries, self.corrupt_rx, self.max_server_queue
        );
        if self.multi_worker() {
            let _ = writeln!(
                s,
                "{:<26} taken={} elided={} fallbacks={} workers={} idle_spins={}",
                "transitions",
                self.transitions.taken,
                self.transitions.elided,
                self.transitions.fallbacks,
                self.switchless_workers,
                self.transitions.idle_spins
            );
        } else {
            let _ = writeln!(
                s,
                "{:<26} taken={} elided={} fallbacks={}",
                "transitions",
                self.transitions.taken,
                self.transitions.elided,
                self.transitions.fallbacks
            );
        }
        let _ = writeln!(s, "-- SGX cost rollup --");
        let _ = writeln!(
            s,
            "{:<26} {:>10} {:>14} {:>18} {:>18}",
            "phase", "ops", "sgx instr", "normal instr", "cycles"
        );
        for p in &self.phases {
            let _ = writeln!(
                s,
                "{:<26} {:>10} {:>14} {:>18} {:>18}",
                p.name,
                p.ops,
                p.counters.sgx_instr,
                p.counters.normal_instr,
                p.cycles(&model)
            );
        }
        let _ = writeln!(
            s,
            "{:<26} {:>10} {:>14} {:>18} {:>18}",
            "total", "", self.total.sgx_instr, self.total.normal_instr, self.total_cycles
        );
        s
    }

    /// The byte-stable JSON report: fixed key order, fixed float precision.
    pub fn json(&self) -> String {
        let model = self.backend.cost_model();
        let (p50, p90, p99, p999) = self.latency.percentiles();
        let mut s = String::new();
        s.push('{');
        let _ = write!(s, "\"scenario\":\"{}\"", self.scenario);
        let _ = write!(s, ",\"mode\":\"{}\"", self.mode);
        let _ = write!(s, ",\"transition_mode\":\"{}\"", self.transition_mode);
        // Emitted only off the SGX default: pre-split consumers (and the
        // golden fixtures) never saw this key.
        if self.backend != TeeBackend::Sgx {
            let _ = write!(s, ",\"backend\":\"{}\"", self.backend.as_str());
        }
        let _ = write!(s, ",\"seed\":{}", self.seed);
        let _ = write!(s, ",\"rate_per_sec\":{:.6}", self.rate_per_sec);
        let _ = write!(s, ",\"concurrency\":{}", self.concurrency);
        let _ = write!(s, ",\"sessions\":{}", self.sessions);
        let _ = write!(s, ",\"completed\":{}", self.completed);
        let _ = write!(s, ",\"failed\":{}", self.failed);
        let _ = write!(s, ",\"retries\":{}", self.retries);
        let _ = write!(s, ",\"corrupt_rx\":{}", self.corrupt_rx);
        let _ = write!(s, ",\"duration_ns\":{}", self.duration_ns);
        let _ = write!(s, ",\"throughput_per_sec\":{:.6}", self.throughput_per_sec);
        let _ = write!(
            s,
            ",\"latency_ns\":{{\"count\":{},\"min\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
            self.latency.count(),
            self.latency.min(),
            self.latency.mean(),
            p50,
            p90,
            p99,
            p999,
            self.latency.max()
        );
        let _ = write!(
            s,
            ",\"net\":{{\"sent\":{},\"delivered\":{},\"dropped\":{},\"corrupted\":{},\"duplicated\":{},\"delayed\":{}}}",
            self.net.sent,
            self.net.delivered,
            self.net.dropped,
            self.net.corrupted,
            self.net.duplicated,
            self.net.delayed
        );
        let _ = write!(s, ",\"max_server_queue\":{}", self.max_server_queue);
        s.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"ops\":{},\"sgx_instr\":{},\"normal_instr\":{},\"cycles\":{}}}",
                p.name,
                p.ops,
                p.counters.sgx_instr,
                p.counters.normal_instr,
                p.cycles(&model)
            );
        }
        s.push(']');
        let _ = write!(
            s,
            ",\"total\":{{\"sgx_instr\":{},\"normal_instr\":{},\"cycles\":{}}}",
            self.total.sgx_instr, self.total.normal_instr, self.total_cycles
        );
        if self.multi_worker() {
            let _ = write!(
                s,
                ",\"transitions\":{{\"taken\":{},\"elided\":{},\"fallbacks\":{},\"workers\":{},\"idle_spins\":{}}}",
                self.transitions.taken,
                self.transitions.elided,
                self.transitions.fallbacks,
                self.switchless_workers,
                self.transitions.idle_spins
            );
        } else {
            let _ = write!(
                s,
                ",\"transitions\":{{\"taken\":{},\"elided\":{},\"fallbacks\":{}}}",
                self.transitions.taken, self.transitions.elided, self.transitions.fallbacks
            );
        }
        s.push('}');
        s
    }

    /// Whether the run used a non-default worker pool (or accrued idle
    /// spins, which only a non-default pool can). Pre-refactor consumers
    /// (and the golden fixtures) never saw the worker keys, so the
    /// single-worker default keeps the old shape byte-for-byte.
    fn multi_worker(&self) -> bool {
        self.switchless_workers != 1 || self.transitions.idle_spins != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut latency = Histogram::new();
        for i in 1..=100u64 {
            latency.record(i * 10_000);
        }
        let mut phase = PhaseRollup::new("steady.server");
        phase.fold_n(
            Counters {
                sgx_instr: 4,
                normal_instr: 1_000,
            },
            100,
        );
        let total = phase.counters;
        let total_cycles = total.cycles(&teenet_sgx::cost::CostModel::paper());
        RunReport {
            scenario: "attest".into(),
            mode: "open".into(),
            transition_mode: "classic".into(),
            backend: TeeBackend::Sgx,
            seed: 1,
            rate_per_sec: 100.0,
            concurrency: 0,
            sessions: 100,
            completed: 100,
            failed: 0,
            retries: 2,
            corrupt_rx: 1,
            duration_ns: 1_000_000_000,
            throughput_per_sec: 100.0,
            latency,
            net: LinkStats {
                sent: 200,
                delivered: 198,
                dropped: 2,
                corrupted: 1,
                duplicated: 0,
                delayed: 0,
            },
            max_server_queue: 7,
            phases: vec![phase],
            total,
            total_cycles,
            transitions: TransitionStats {
                taken: 100,
                elided: 300,
                fallbacks: 2,
                idle_spins: 0,
            },
            switchless_workers: 1,
        }
    }

    #[test]
    fn json_is_stable_across_calls() {
        let r = sample_report();
        assert_eq!(r.json(), r.json());
        assert!(r.json().starts_with("{\"scenario\":\"attest\""));
        assert!(r.json().contains("\"p99\":"));
        assert!(r.json().ends_with('}'));
    }

    #[test]
    fn text_mentions_key_figures() {
        let r = sample_report();
        let t = r.text();
        assert!(t.contains("attest"));
        assert!(t.contains("throughput"));
        assert!(t.contains("p99="));
        assert!(t.contains("steady.server"));
    }

    #[test]
    fn json_has_balanced_braces() {
        let j = sample_report().json();
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn backend_key_appears_only_off_the_sgx_default() {
        let sgx = sample_report();
        assert!(!sgx.json().contains("\"backend\""));
        assert!(!sgx.text().contains("backend"));

        let mut vm = sample_report();
        vm.backend = TeeBackend::VmTee;
        vm.total_cycles = vm.total.cycles(&vm.backend.cost_model());
        let j = vm.json();
        assert!(j.contains("\"transition_mode\":\"classic\",\"backend\":\"vmtee\",\"seed\":1"));
        assert!(vm.text().contains("backend"));
        // Same counters, different model: the priced cycles must differ.
        assert_ne!(vm.total_cycles, sgx.total_cycles);
        assert_ne!(j, sgx.json());
    }

    #[test]
    fn worker_keys_appear_only_off_the_single_worker_default() {
        let single = sample_report();
        assert!(!single.json().contains("\"workers\""));
        assert!(!single.json().contains("\"idle_spins\""));
        assert!(!single.text().contains("workers="));

        let mut multi = sample_report();
        multi.switchless_workers = 4;
        multi.transitions.idle_spins = 1_234;
        let j = multi.json();
        assert!(j.contains("\"fallbacks\":2,\"workers\":4,\"idle_spins\":1234}"));
        assert!(multi.text().contains("workers=4 idle_spins=1234"));

        // Idle spins with a nominally single-worker pool still surface —
        // charged work must never be hidden by the default-shape rule.
        let mut spun = sample_report();
        spun.transitions.idle_spins = 9;
        assert!(spun.json().contains("\"workers\":1,\"idle_spins\":9}"));
    }
}
