//! Fault injection: drops, corruption, duplication, reordering, rate
//! limiting.
//!
//! Modelled after the fault-injection options every smoltcp example ships
//! (`--drop-chance`, `--corrupt-chance`, `--tx-rate-limit`, …): adverse
//! network conditions are a first-class test input, driven by a seeded RNG
//! so failures reproduce exactly.

use teenet_crypto::SecureRng;

use crate::time::{SimDuration, SimTime};

/// What the fault injector decided to do with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver unchanged.
    Deliver,
    /// Silently drop.
    Drop,
    /// Deliver with one corrupted byte.
    Corrupt,
    /// Deliver twice.
    Duplicate,
    /// Deliver with extra latency (models reordering).
    Delay(SimDuration),
}

/// Configuration for per-link fault injection.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probability a packet is dropped, in [0, 1].
    pub drop_chance: f64,
    /// Probability one byte of a packet is corrupted.
    pub corrupt_chance: f64,
    /// Probability a packet is duplicated.
    pub duplicate_chance: f64,
    /// Probability a packet is delayed by up to `max_delay`.
    pub reorder_chance: f64,
    /// Maximum extra delay for reordered packets.
    pub max_delay: SimDuration,
    /// Token-bucket rate limit in packets per refill interval
    /// (`None` disables shaping).
    pub rate_limit: Option<RateLimit>,
}

/// Token-bucket shaping parameters.
#[derive(Debug, Clone, Copy)]
pub struct RateLimit {
    /// Tokens added per interval (packets per bucket).
    pub tokens_per_interval: u32,
    /// Refill interval.
    pub interval: SimDuration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            duplicate_chance: 0.0,
            reorder_chance: 0.0,
            max_delay: SimDuration::from_millis(10),
            rate_limit: None,
        }
    }
}

impl FaultConfig {
    /// A lossy link configuration (the smoltcp README's "good starting
    /// value" of 15% drop/corrupt).
    pub fn lossy() -> Self {
        FaultConfig {
            drop_chance: 0.15,
            corrupt_chance: 0.15,
            ..Default::default()
        }
    }

    /// True if every fault mechanism is disabled.
    pub fn is_clean(&self) -> bool {
        self.drop_chance == 0.0
            && self.corrupt_chance == 0.0
            && self.duplicate_chance == 0.0
            && self.reorder_chance == 0.0
            && self.rate_limit.is_none()
    }
}

/// Stateful fault injector for one link direction.
pub struct FaultInjector {
    config: FaultConfig,
    rng: SecureRng,
    bucket_tokens: u32,
    bucket_refill_at: SimTime,
}

impl FaultInjector {
    /// Creates an injector with its own RNG stream.
    pub fn new(config: FaultConfig, rng: SecureRng) -> Self {
        let tokens = config
            .rate_limit
            .map(|r| r.tokens_per_interval)
            .unwrap_or(0);
        FaultInjector {
            config,
            rng,
            bucket_tokens: tokens,
            bucket_refill_at: SimTime::ZERO,
        }
    }

    /// Decides the fate of a packet sent at `now`.
    pub fn decide(&mut self, now: SimTime) -> FaultDecision {
        if let Some(limit) = self.config.rate_limit {
            while now >= self.bucket_refill_at {
                self.bucket_tokens = limit.tokens_per_interval;
                self.bucket_refill_at += limit.interval;
            }
            if self.bucket_tokens == 0 {
                return FaultDecision::Drop;
            }
            self.bucket_tokens -= 1;
        }
        if self.rng.gen_bool(self.config.drop_chance) {
            return FaultDecision::Drop;
        }
        if self.rng.gen_bool(self.config.corrupt_chance) {
            return FaultDecision::Corrupt;
        }
        if self.rng.gen_bool(self.config.duplicate_chance) {
            return FaultDecision::Duplicate;
        }
        if self.rng.gen_bool(self.config.reorder_chance) {
            let extra = self.rng.gen_range(self.config.max_delay.as_nanos().max(1));
            return FaultDecision::Delay(SimDuration(extra));
        }
        FaultDecision::Deliver
    }

    /// Mutates one byte of `payload` (the corruption fault). No-op on an
    /// empty payload.
    pub fn corrupt(&mut self, payload: &mut [u8]) {
        if payload.is_empty() {
            return;
        }
        let idx = self.rng.gen_range(payload.len() as u64) as usize;
        // XOR with a nonzero value guarantees the byte actually changes.
        let bit = 1u8 << self.rng.gen_range(8);
        payload[idx] ^= bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(config: FaultConfig) -> FaultInjector {
        FaultInjector::new(config, SecureRng::seed_from_u64(7))
    }

    #[test]
    fn clean_link_always_delivers() {
        let mut inj = injector(FaultConfig::default());
        for i in 0..100 {
            assert_eq!(inj.decide(SimTime(i)), FaultDecision::Deliver);
        }
    }

    #[test]
    fn full_drop_always_drops() {
        let mut inj = injector(FaultConfig {
            drop_chance: 1.0,
            ..Default::default()
        });
        assert_eq!(inj.decide(SimTime::ZERO), FaultDecision::Drop);
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let mut inj = injector(FaultConfig {
            drop_chance: 0.15,
            ..Default::default()
        });
        let drops = (0..10_000)
            .filter(|&i| inj.decide(SimTime(i)) == FaultDecision::Drop)
            .count();
        assert!((1_200..1_800).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn corruption_changes_exactly_one_byte() {
        let mut inj = injector(FaultConfig::default());
        let original = vec![0u8; 64];
        let mut payload = original.clone();
        inj.corrupt(&mut payload);
        let diffs = original
            .iter()
            .zip(payload.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn corrupt_empty_payload_is_noop() {
        let mut inj = injector(FaultConfig::default());
        let mut payload: Vec<u8> = Vec::new();
        inj.corrupt(&mut payload);
        assert!(payload.is_empty());
    }

    #[test]
    fn rate_limit_enforced_within_interval() {
        let mut inj = injector(FaultConfig {
            rate_limit: Some(RateLimit {
                tokens_per_interval: 4,
                interval: SimDuration::from_millis(50),
            }),
            ..Default::default()
        });
        let t = SimTime(1);
        let delivered = (0..10)
            .filter(|_| inj.decide(t) == FaultDecision::Deliver)
            .count();
        assert_eq!(delivered, 4, "only one bucket of tokens within interval");
        // After a refill interval, tokens return.
        let t2 = t + SimDuration::from_millis(60);
        assert_eq!(inj.decide(t2), FaultDecision::Deliver);
    }

    #[test]
    fn reordering_produces_bounded_delay() {
        let mut inj = injector(FaultConfig {
            reorder_chance: 1.0,
            max_delay: SimDuration::from_millis(5),
            ..Default::default()
        });
        for i in 0..50 {
            match inj.decide(SimTime(i)) {
                FaultDecision::Delay(d) => assert!(d <= SimDuration::from_millis(5)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = FaultConfig::lossy();
        let mut a = FaultInjector::new(cfg.clone(), SecureRng::seed_from_u64(3));
        let mut b = FaultInjector::new(cfg, SecureRng::seed_from_u64(3));
        for i in 0..200 {
            assert_eq!(a.decide(SimTime(i)), b.decide(SimTime(i)));
        }
    }
}
