#![warn(missing_docs)]

//! # teenet-netsim
//!
//! A deterministic discrete-event network simulator — the transport
//! substrate under the case studies of the HotNets '15 TEE-networking
//! reproduction.
//!
//! Design follows the event-driven poll model of embedded network stacks
//! (smoltcp): no threads, no wall clock, explicit [`sim::Network::run_until`]
//! progression, so every experiment replays bit-for-bit from its seed.
//!
//! * [`sim::Network`] — nodes, configurable links (latency, bandwidth,
//!   FIFO serialisation), datagram delivery.
//! * [`fault`] — seeded fault injection: drop, corrupt, duplicate,
//!   reorder, token-bucket rate limiting.
//! * [`stream`] — a reliable, ordered byte stream (ARQ with checksums and
//!   reassembly) for the application protocols that need one.
//! * [`trace`] — packet tracing with libpcap export.

pub mod fault;
pub mod packet;
pub mod sim;
pub mod stream;
pub mod time;
pub mod trace;

pub use fault::{FaultConfig, FaultDecision, FaultInjector, RateLimit};
pub use packet::{NodeId, Packet, MTU};
pub use sim::{LinkConfig, LinkStats, Network};
pub use stream::StreamConn;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceRecord};
