//! Packet tracing, with a pcap-compatible dump.
//!
//! Every packet event the simulator processes can be recorded; the trace
//! doubles as a debugging aid and as a libpcap-format dump (the smoltcp
//! examples' `--pcap` option) that external tools can open.

use crate::packet::{NodeId, Packet};
use crate::time::SimTime;

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Handed to the network by the sender.
    Sent,
    /// Arrived at the destination inbox.
    Delivered,
    /// Dropped by fault injection or missing route.
    Dropped,
    /// Payload corrupted in flight (still delivered).
    Corrupted,
    /// Duplicated in flight.
    Duplicated,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened.
    pub time: SimTime,
    /// The event kind.
    pub event: TraceEvent,
    /// Packet id.
    pub packet_id: u64,
    /// Sender.
    pub src: NodeId,
    /// Destination.
    pub dst: NodeId,
    /// Payload length.
    pub len: usize,
}

/// An in-memory packet trace.
#[derive(Debug)]
pub struct Trace {
    records: Vec<TraceRecord>,
    /// Raw payload snapshots for pcap export (only for delivered packets).
    payloads: Vec<(SimTime, Vec<u8>)>,
    capture_payloads: bool,
    enabled: bool,
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            records: Vec::new(),
            payloads: Vec::new(),
            capture_payloads: false,
            enabled: true,
        }
    }
}

impl Trace {
    /// An empty trace that records metadata only.
    pub fn new() -> Self {
        Trace::default()
    }

    /// An empty trace that also snapshots payloads for pcap export.
    pub fn with_payloads() -> Self {
        Trace {
            capture_payloads: true,
            ..Default::default()
        }
    }

    /// Turns recording on or off. A disabled trace discards events
    /// instead of accumulating a record per packet — the difference
    /// between O(total packets) and O(1) memory on a long run. Already-
    /// recorded events are kept.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether events are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Discards all recorded events and payload snapshots, keeping the
    /// capture mode and enabled flag (and the buffers' capacity). Used
    /// when a network is rewound for reuse.
    pub fn clear(&mut self) {
        self.records.clear();
        self.payloads.clear();
    }

    /// Records an event (dropped silently while disabled).
    pub fn record(&mut self, record: TraceRecord, packet: Option<&Packet>) {
        if !self.enabled {
            return;
        }
        if self.capture_payloads && record.event == TraceEvent::Delivered {
            if let Some(p) = packet {
                self.payloads.push((record.time, p.payload.to_vec()));
            }
        }
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Count of records matching `event`.
    pub fn count(&self, event: TraceEvent) -> usize {
        self.records.iter().filter(|r| r.event == event).count()
    }

    /// Serialises delivered payloads as a libpcap capture file
    /// (LINKTYPE_USER0 = 147, since our frames are simulator datagrams,
    /// not Ethernet).
    pub fn to_pcap(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.payloads.len() * 64);
        // Global header: magic, version 2.4, tz 0, sigfigs 0, snaplen, network.
        out.extend_from_slice(&0xa1b2c3d4u32.to_le_bytes());
        out.extend_from_slice(&2u16.to_le_bytes());
        out.extend_from_slice(&4u16.to_le_bytes());
        out.extend_from_slice(&0i32.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&65_535u32.to_le_bytes());
        out.extend_from_slice(&147u32.to_le_bytes());
        for (time, payload) in &self.payloads {
            let ns = time.as_nanos();
            let secs = (ns / 1_000_000_000) as u32;
            let micros = ((ns % 1_000_000_000) / 1_000) as u32;
            out.extend_from_slice(&secs.to_le_bytes());
            out.extend_from_slice(&micros.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn rec(event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time: SimTime(1_500_000),
            event,
            packet_id: 1,
            src: NodeId(0),
            dst: NodeId(1),
            len: 4,
        }
    }

    fn pkt() -> Packet {
        Packet {
            id: 1,
            src: NodeId(0),
            dst: NodeId(1),
            payload: Bytes::from_static(b"data"),
        }
    }

    #[test]
    fn records_and_counts() {
        let mut t = Trace::new();
        t.record(rec(TraceEvent::Sent), Some(&pkt()));
        t.record(rec(TraceEvent::Delivered), Some(&pkt()));
        t.record(rec(TraceEvent::Dropped), None);
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.count(TraceEvent::Delivered), 1);
        assert_eq!(t.count(TraceEvent::Corrupted), 0);
    }

    #[test]
    fn pcap_header_and_framing() {
        let mut t = Trace::with_payloads();
        t.record(rec(TraceEvent::Delivered), Some(&pkt()));
        let pcap = t.to_pcap();
        // Global header is 24 bytes; one record header is 16 + 4 payload.
        assert_eq!(pcap.len(), 24 + 16 + 4);
        assert_eq!(&pcap[..4], &0xa1b2c3d4u32.to_le_bytes());
        // Linktype USER0.
        assert_eq!(&pcap[20..24], &147u32.to_le_bytes());
        // Captured length field.
        assert_eq!(&pcap[32..36], &4u32.to_le_bytes());
        assert_eq!(&pcap[40..44], b"data");
    }

    #[test]
    fn disabled_trace_discards_events() {
        let mut t = Trace::with_payloads();
        t.record(rec(TraceEvent::Sent), Some(&pkt()));
        t.set_enabled(false);
        assert!(!t.is_enabled());
        t.record(rec(TraceEvent::Delivered), Some(&pkt()));
        assert_eq!(t.records().len(), 1, "prior records kept, new discarded");
        assert_eq!(t.to_pcap().len(), 24, "no payload snapshot while off");
        t.set_enabled(true);
        t.record(rec(TraceEvent::Delivered), Some(&pkt()));
        assert_eq!(t.records().len(), 2);
    }

    #[test]
    fn metadata_only_trace_has_empty_pcap_body() {
        let mut t = Trace::new();
        t.record(rec(TraceEvent::Delivered), Some(&pkt()));
        assert_eq!(t.to_pcap().len(), 24);
    }
}
