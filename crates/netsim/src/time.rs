//! Virtual time for the discrete-event simulator.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since start (lossy, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From microseconds (saturating: a huge config value pins to the
    /// maximum duration instead of silently wrapping to a tiny one, which
    /// would fire spurious timeouts).
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// From milliseconds (saturating, see [`SimDuration::from_micros`]).
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// From seconds (saturating, see [`SimDuration::from_micros`]).
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Nanoseconds in this duration.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating multiply by a count (e.g. per-byte serialisation delay).
    pub fn saturating_mul(self, n: u64) -> Self {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        let t2 = t + SimDuration::from_micros(1);
        assert_eq!((t2 - t).as_nanos(), 1_000);
        assert_eq!(t2 - t2, SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SimTime(1_500_000)), "0.001500s");
    }

    #[test]
    fn constructors_saturate_instead_of_wrapping() {
        assert_eq!(SimDuration::from_secs(u64::MAX), SimDuration(u64::MAX));
        assert_eq!(SimDuration::from_millis(u64::MAX), SimDuration(u64::MAX));
        assert_eq!(SimDuration::from_micros(u64::MAX), SimDuration(u64::MAX));
        // One past the largest exactly-representable input saturates...
        assert_eq!(
            SimDuration::from_secs(u64::MAX / 1_000_000_000 + 1),
            SimDuration(u64::MAX)
        );
        // ...while the largest exact input still converts exactly.
        let max_secs = u64::MAX / 1_000_000_000;
        assert_eq!(
            SimDuration::from_secs(max_secs),
            SimDuration(max_secs * 1_000_000_000)
        );
        assert_eq!(SimDuration::from_micros(3), SimDuration(3_000));
    }
}
