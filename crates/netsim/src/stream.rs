//! A reliable, ordered byte stream over the lossy datagram network.
//!
//! Minimal ARQ in the smoltcp spirit: sequence numbers, cumulative acks,
//! retransmission on timeout, a checksum to reject corrupted segments, and
//! receive-side reassembly of out-of-order data. The Tor and middlebox
//! case studies run their framed protocols over this.
//!
//! The endpoint is driven explicitly (poll model): the application drains
//! its node inbox, feeds packets to [`StreamConn::handle_packet`], then
//! calls [`StreamConn::tick`] to (re)transmit.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::packet::{NodeId, Packet};
use crate::sim::Network;
use crate::time::{SimDuration, SimTime};

/// Maximum payload bytes per segment.
pub const MAX_SEGMENT: usize = 1024;

const TYPE_DATA: u8 = 0;
const TYPE_ACK: u8 = 1;

/// FNV-1a checksum over segment header + payload.
fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(16777619);
    }
    h
}

fn encode_segment(ty: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(13 + payload.len());
    body.push(ty);
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(payload);
    let sum = checksum(&body);
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&sum.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn decode_segment(bytes: &[u8]) -> Option<(u8, u64, &[u8])> {
    if bytes.len() < 13 {
        return None;
    }
    let sum = u32::from_le_bytes(bytes[..4].try_into().ok()?);
    let body = &bytes[4..];
    if checksum(body) != sum {
        return None;
    }
    let ty = body[0];
    let seq = u64::from_le_bytes(body[1..9].try_into().ok()?);
    Some((ty, seq, &body[9..]))
}

struct Outstanding {
    payload: Vec<u8>,
    last_sent: Option<SimTime>,
}

/// One end of a reliable byte-stream connection.
pub struct StreamConn {
    local: NodeId,
    peer: NodeId,
    next_send_seq: u64,
    outstanding: BTreeMap<u64, Outstanding>,
    next_recv_seq: u64,
    reorder: BTreeMap<u64, Vec<u8>>,
    assembled: Vec<u8>,
    /// Retransmission timeout.
    pub rto: SimDuration,
    /// Total segments retransmitted (for tests and stats).
    pub retransmissions: u64,
}

impl StreamConn {
    /// Creates an endpoint on `local` talking to `peer`.
    pub fn new(local: NodeId, peer: NodeId) -> Self {
        StreamConn {
            local,
            peer,
            next_send_seq: 0,
            outstanding: BTreeMap::new(),
            next_recv_seq: 0,
            reorder: BTreeMap::new(),
            assembled: Vec::new(),
            rto: SimDuration::from_millis(20),
            retransmissions: 0,
        }
    }

    /// Queues `data` for reliable transmission (segmented as needed).
    pub fn send(&mut self, data: &[u8]) {
        for chunk in data.chunks(MAX_SEGMENT) {
            self.outstanding.insert(
                self.next_send_seq,
                Outstanding {
                    payload: chunk.to_vec(),
                    last_sent: None,
                },
            );
            self.next_send_seq += 1;
        }
    }

    /// Processes one inbound packet addressed to this connection.
    ///
    /// Corrupted segments fail the checksum and are ignored (retransmission
    /// recovers them). Duplicate data is acked again but not re-delivered.
    pub fn handle_packet(&mut self, packet: &Packet, net: &mut Network) {
        if packet.src != self.peer || packet.dst != self.local {
            return;
        }
        let Some((ty, seq, payload)) = decode_segment(&packet.payload) else {
            return; // checksum failure: drop silently
        };
        match ty {
            TYPE_DATA => {
                if seq >= self.next_recv_seq && !self.reorder.contains_key(&seq) {
                    self.reorder.insert(seq, payload.to_vec());
                    // Pull any now-contiguous prefix into the stream.
                    while let Some(data) = self.reorder.remove(&self.next_recv_seq) {
                        self.assembled.extend_from_slice(&data);
                        self.next_recv_seq += 1;
                    }
                }
                // Cumulative ack: everything below next_recv_seq received.
                let ack = encode_segment(TYPE_ACK, self.next_recv_seq, &[]);
                net.send(self.local, self.peer, Bytes::from(ack));
            }
            TYPE_ACK => {
                // seq is cumulative: all segments < seq are delivered.
                let acked: Vec<u64> = self.outstanding.range(..seq).map(|(&s, _)| s).collect();
                for s in acked {
                    self.outstanding.remove(&s);
                }
            }
            _ => {}
        }
    }

    /// Transmits unsent segments and retransmits timed-out ones.
    pub fn tick(&mut self, net: &mut Network) {
        let now = net.now();
        for (&seq, out) in self.outstanding.iter_mut() {
            let due = match out.last_sent {
                None => true,
                Some(t) => now - t >= self.rto,
            };
            if due {
                if out.last_sent.is_some() {
                    self.retransmissions += 1;
                }
                out.last_sent = Some(now);
                let seg = encode_segment(TYPE_DATA, seq, &out.payload);
                net.send(self.local, self.peer, Bytes::from(seg));
            }
        }
    }

    /// Reads and consumes all contiguous received bytes.
    pub fn read(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.assembled)
    }

    /// True when every queued byte has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.outstanding.is_empty()
    }
}

/// Drives a pair of connected endpoints until both sides have delivered and
/// acknowledged everything (or `max_rounds` elapse). Returns `true` on
/// completion. Each round advances the network by one RTO.
pub fn drive_pair(
    a: &mut StreamConn,
    b: &mut StreamConn,
    net: &mut Network,
    max_rounds: usize,
) -> bool {
    for _ in 0..max_rounds {
        a.tick(net);
        b.tick(net);
        let deadline = net.now() + a.rto.max(b.rto);
        net.run_until(deadline);
        for p in net.recv_all(a.local) {
            a.handle_packet(&p, net);
        }
        for p in net.recv_all(b.local) {
            b.handle_packet(&p, net);
        }
        net.run_to_idle();
        for p in net.recv_all(a.local) {
            a.handle_packet(&p, net);
        }
        for p in net.recv_all(b.local) {
            b.handle_packet(&p, net);
        }
        if a.all_acked() && b.all_acked() {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::sim::LinkConfig;

    fn pair(faults: FaultConfig) -> (Network, StreamConn, StreamConn) {
        let mut net = Network::new(7);
        let a = net.add_node();
        let b = net.add_node();
        net.add_duplex_link(
            a,
            b,
            LinkConfig {
                faults,
                ..Default::default()
            },
        );
        (net, StreamConn::new(a, b), StreamConn::new(b, a))
    }

    #[test]
    fn segment_roundtrip() {
        let seg = encode_segment(TYPE_DATA, 42, b"payload");
        let (ty, seq, payload) = decode_segment(&seg).unwrap();
        assert_eq!(ty, TYPE_DATA);
        assert_eq!(seq, 42);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn segment_rejects_corruption() {
        let mut seg = encode_segment(TYPE_DATA, 1, b"data");
        seg[10] ^= 0x40;
        assert!(decode_segment(&seg).is_none());
        assert!(decode_segment(&seg[..5]).is_none());
    }

    #[test]
    fn transfer_over_clean_link() {
        let (mut net, mut a, mut b) = pair(FaultConfig::default());
        a.send(b"hello reliable world");
        assert!(drive_pair(&mut a, &mut b, &mut net, 10));
        assert_eq!(b.read(), b"hello reliable world");
        assert_eq!(a.retransmissions, 0);
    }

    #[test]
    fn transfer_survives_heavy_loss() {
        let (mut net, mut a, mut b) = pair(FaultConfig {
            drop_chance: 0.30,
            ..Default::default()
        });
        let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        a.send(&data);
        assert!(drive_pair(&mut a, &mut b, &mut net, 500));
        assert_eq!(b.read(), data);
        assert!(a.retransmissions > 0, "loss must have forced retransmits");
    }

    #[test]
    fn transfer_survives_corruption() {
        let (mut net, mut a, mut b) = pair(FaultConfig {
            corrupt_chance: 0.25,
            ..Default::default()
        });
        let data: Vec<u8> = (0..3000).map(|i| (i * 7 % 256) as u8).collect();
        a.send(&data);
        assert!(drive_pair(&mut a, &mut b, &mut net, 500));
        assert_eq!(b.read(), data);
    }

    #[test]
    fn transfer_survives_duplication_and_reordering() {
        let (mut net, mut a, mut b) = pair(FaultConfig {
            duplicate_chance: 0.2,
            reorder_chance: 0.3,
            max_delay: SimDuration::from_millis(30),
            ..Default::default()
        });
        let data: Vec<u8> = (0..4000).map(|i| (i % 256) as u8).collect();
        a.send(&data);
        assert!(drive_pair(&mut a, &mut b, &mut net, 500));
        assert_eq!(b.read(), data, "exactly-once in-order delivery");
    }

    #[test]
    fn bidirectional_transfer() {
        let (mut net, mut a, mut b) = pair(FaultConfig {
            drop_chance: 0.1,
            ..Default::default()
        });
        a.send(b"from a");
        b.send(b"from b, longer message");
        assert!(drive_pair(&mut a, &mut b, &mut net, 200));
        assert_eq!(b.read(), b"from a");
        assert_eq!(a.read(), b"from b, longer message");
    }

    #[test]
    fn large_multisegment_message() {
        let (mut net, mut a, mut b) = pair(FaultConfig::default());
        let data = vec![0xabu8; MAX_SEGMENT * 7 + 13];
        a.send(&data);
        assert!(drive_pair(&mut a, &mut b, &mut net, 50));
        assert_eq!(b.read(), data);
    }

    #[test]
    fn foreign_packets_ignored() {
        let (mut net, mut a, _) = pair(FaultConfig::default());
        let stranger = net.add_node();
        let bogus = Packet {
            id: 999,
            src: stranger,
            dst: NodeId(0),
            payload: Bytes::from(encode_segment(TYPE_DATA, 0, b"injected")),
        };
        a.handle_packet(&bogus, &mut net);
        assert!(
            a.read().is_empty(),
            "packet from wrong peer must be ignored"
        );
    }
}
