//! The deterministic discrete-event network simulator.
//!
//! Event-driven in the smoltcp spirit: no threads, no wall-clock — a
//! binary-heap event queue ordered by `(time, sequence)` so identical
//! inputs replay identically. Nodes exchange datagrams over configured
//! links with latency, bandwidth-derived serialisation delay, and optional
//! fault injection.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use bytes::Bytes;
use teenet_crypto::SecureRng;

use crate::fault::{FaultConfig, FaultDecision, FaultInjector};
use crate::packet::{NodeId, Packet};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent, TraceRecord};

/// Properties of a unidirectional link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Propagation latency.
    pub latency: SimDuration,
    /// Bandwidth in bytes per second (`None` = infinite).
    pub bandwidth_bps: Option<u64>,
    /// Fault injection on this link.
    pub faults: FaultConfig,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: SimDuration::from_millis(1),
            bandwidth_bps: None,
            faults: FaultConfig::default(),
        }
    }
}

/// Per-link delivery and fault-outcome counters, readable while a
/// simulation runs (drive a workload, then assert on what the links did).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Datagrams handed to the link by [`Network::send`].
    pub sent: u64,
    /// Datagrams placed in the destination inbox (includes corrupted and
    /// duplicated copies).
    pub delivered: u64,
    /// Datagrams lost to drop faults or rate limiting.
    pub dropped: u64,
    /// Datagrams delivered with corrupted payloads.
    pub corrupted: u64,
    /// Extra copies delivered by duplication faults.
    pub duplicated: u64,
    /// Datagrams held back by delay faults (beyond latency + serialisation).
    pub delayed: u64,
}

impl LinkStats {
    /// Folds another link's counters into this one.
    pub fn merge(&mut self, other: &LinkStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
    }
}

struct Link {
    config: LinkConfig,
    injector: Option<FaultInjector>,
    /// When the link is next free to begin serialising (FIFO queueing).
    next_free: SimTime,
    stats: LinkStats,
}

#[derive(Default)]
struct Node {
    /// Delivered packets with their delivery timestamps.
    inbox: VecDeque<(SimTime, Packet)>,
    /// Deepest the inbox has ever been (queue-depth high-watermark).
    max_depth: usize,
}

#[derive(PartialEq, Eq)]
struct Delivery {
    at: SimTime,
    seq: u64,
    packet: Packet,
    corrupted: bool,
    duplicated: bool,
}

impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated network.
pub struct Network {
    now: SimTime,
    nodes: Vec<Node>,
    links: HashMap<(NodeId, NodeId), Link>,
    queue: BinaryHeap<Reverse<Delivery>>,
    next_packet_id: u64,
    next_seq: u64,
    rng: SecureRng,
    /// Packet trace (on by default; disable via [`Network::set_tracing`],
    /// payload capture opt-in via [`Network::enable_pcap`]).
    pub trace: Trace,
}

impl Network {
    /// Creates an empty network; `seed` drives all fault randomness.
    pub fn new(seed: u64) -> Self {
        Network {
            now: SimTime::ZERO,
            nodes: Vec::new(),
            links: HashMap::new(),
            queue: BinaryHeap::new(),
            next_packet_id: 0,
            next_seq: 0,
            rng: SecureRng::seed_from_u64(seed),
            trace: Trace::new(),
        }
    }

    /// Switches the trace to payload-capturing mode (for pcap export).
    /// Discards any existing trace records.
    pub fn enable_pcap(&mut self) {
        self.trace = Trace::with_payloads();
    }

    /// Turns packet tracing on or off. The trace accumulates one record
    /// per packet event, so a driver that never reads it (a long load
    /// run) should switch it off to keep the network's memory independent
    /// of how many packets flow through it.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// Rewinds the network to the state `Network::new(seed)` plus the
    /// same nodes and links would produce, without reallocating the
    /// topology: the clock returns to zero, inboxes, the event queue,
    /// link stats/backlogs and the trace are cleared, and every fault
    /// injector is re-derived from the new seed. A shard engine replaying
    /// many sessions reuses one network this way instead of rebuilding
    /// it per session.
    ///
    /// Determinism: injector RNGs are forked per-link from a label of the
    /// link's endpoints, and [`SecureRng::fork`] never perturbs the
    /// parent, so re-forking here (in any map order) reproduces exactly
    /// what [`Network::add_link`] derived at construction.
    pub fn reset(&mut self, seed: u64) {
        self.now = SimTime::ZERO;
        self.queue.clear();
        self.next_packet_id = 0;
        self.next_seq = 0;
        self.rng = SecureRng::seed_from_u64(seed);
        self.trace.clear();
        for node in &mut self.nodes {
            node.inbox.clear();
            node.max_depth = 0;
        }
        for (&(src, dst), link) in &mut self.links {
            link.next_free = SimTime::ZERO;
            link.stats = LinkStats::default();
            link.injector = if link.config.faults.is_clean() {
                None
            } else {
                let label = [
                    b"link".as_slice(),
                    &src.0.to_le_bytes(),
                    &dst.0.to_le_bytes(),
                ]
                .concat();
                Some(FaultInjector::new(
                    link.config.faults.clone(),
                    self.rng.fork(&label),
                ))
            };
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::default());
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Configures the unidirectional link `src → dst`.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, config: LinkConfig) {
        let injector = if config.faults.is_clean() {
            None
        } else {
            let label = [
                b"link".as_slice(),
                &src.0.to_le_bytes(),
                &dst.0.to_le_bytes(),
            ]
            .concat();
            Some(FaultInjector::new(
                config.faults.clone(),
                self.rng.fork(&label),
            ))
        };
        self.links.insert(
            (src, dst),
            Link {
                config,
                injector,
                next_free: SimTime::ZERO,
                stats: LinkStats::default(),
            },
        );
    }

    /// Configures a symmetric (bidirectional) link.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        self.add_link(a, b, config.clone());
        self.add_link(b, a, config);
    }

    /// Fully connects all current nodes with `config` links.
    pub fn connect_all(&mut self, config: LinkConfig) {
        let n = self.nodes.len() as u32;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    self.add_link(NodeId(i), NodeId(j), config.clone());
                }
            }
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends a datagram; returns the packet id, or `None` if no link exists
    /// (the datagram is dropped, mirroring a missing route).
    pub fn send(&mut self, src: NodeId, dst: NodeId, payload: impl Into<Bytes>) -> Option<u64> {
        let payload: Bytes = payload.into();
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        let now = self.now;

        let Some(link) = self.links.get_mut(&(src, dst)) else {
            self.trace.record(
                TraceRecord {
                    time: now,
                    event: TraceEvent::Dropped,
                    packet_id: id,
                    src,
                    dst,
                    len: payload.len(),
                },
                None,
            );
            return None;
        };

        self.trace.record(
            TraceRecord {
                time: now,
                event: TraceEvent::Sent,
                packet_id: id,
                src,
                dst,
                len: payload.len(),
            },
            None,
        );

        link.stats.sent += 1;

        // FIFO serialisation: transmission begins when the link is free.
        let start = link.next_free.max(now);
        let serialisation = match link.config.bandwidth_bps {
            Some(bps) if bps > 0 => {
                SimDuration((payload.len() as u64).saturating_mul(1_000_000_000) / bps)
            }
            _ => SimDuration::ZERO,
        };
        link.next_free = start + serialisation;
        let mut arrival = start + serialisation + link.config.latency;

        let mut corrupted = false;
        let mut duplicated = false;
        if let Some(injector) = &mut link.injector {
            match injector.decide(now) {
                FaultDecision::Drop => {
                    link.stats.dropped += 1;
                    self.trace.record(
                        TraceRecord {
                            time: now,
                            event: TraceEvent::Dropped,
                            packet_id: id,
                            src,
                            dst,
                            len: payload.len(),
                        },
                        None,
                    );
                    return Some(id);
                }
                FaultDecision::Corrupt => {
                    corrupted = true;
                    link.stats.corrupted += 1;
                }
                FaultDecision::Duplicate => {
                    duplicated = true;
                    link.stats.duplicated += 1;
                }
                FaultDecision::Delay(extra) => {
                    arrival += extra;
                    link.stats.delayed += 1;
                }
                FaultDecision::Deliver => {}
            }
        }

        // Reuse the caller's buffer untouched (a cheap refcount clone for
        // an already-shared `Bytes`); only a corrupting fault pays for a
        // mutable copy.
        let payload = if corrupted {
            let mut bytes = payload.to_vec();
            if let Some(injector) = &mut link.injector {
                injector.corrupt(&mut bytes);
            }
            Bytes::from(bytes)
        } else {
            payload
        };
        let packet = Packet {
            id,
            src,
            dst,
            payload,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Delivery {
            at: arrival,
            seq,
            packet: packet.clone(),
            corrupted,
            duplicated: false,
        }));
        if duplicated {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.queue.push(Reverse(Delivery {
                at: arrival + SimDuration::from_micros(1),
                seq,
                packet,
                corrupted: false,
                duplicated: true,
            }));
        }
        Some(id)
    }

    /// Processes events up to and including `until`, advancing the clock.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(Reverse(next)) = self.queue.peek() {
            if next.at > until {
                break;
            }
            let Reverse(delivery) = self.queue.pop().expect("peeked");
            self.now = delivery.at;
            let event = if delivery.corrupted {
                TraceEvent::Corrupted
            } else if delivery.duplicated {
                TraceEvent::Duplicated
            } else {
                TraceEvent::Delivered
            };
            self.trace.record(
                TraceRecord {
                    time: delivery.at,
                    event,
                    packet_id: delivery.packet.id,
                    src: delivery.packet.src,
                    dst: delivery.packet.dst,
                    len: delivery.packet.len(),
                },
                Some(&delivery.packet),
            );
            if let Some(link) = self
                .links
                .get_mut(&(delivery.packet.src, delivery.packet.dst))
            {
                link.stats.delivered += 1;
            }
            let dst = delivery.packet.dst.0 as usize;
            if let Some(node) = self.nodes.get_mut(dst) {
                node.inbox.push_back((delivery.at, delivery.packet));
                node.max_depth = node.max_depth.max(node.inbox.len());
            }
        }
        self.now = self.now.max(until);
    }

    /// Processes all queued events (runs the network to quiescence).
    pub fn run_to_idle(&mut self) {
        while let Some(Reverse(next)) = self.queue.peek() {
            let at = next.at;
            self.run_until(at);
        }
    }

    /// Pops the next delivered packet at `node`, if any.
    pub fn recv(&mut self, node: NodeId) -> Option<Packet> {
        self.recv_timed(node).map(|(_, p)| p)
    }

    /// Pops the next delivered packet at `node` with its delivery time.
    pub fn recv_timed(&mut self, node: NodeId) -> Option<(SimTime, Packet)> {
        self.nodes.get_mut(node.0 as usize)?.inbox.pop_front()
    }

    /// Drains all delivered packets at `node`.
    pub fn recv_all(&mut self, node: NodeId) -> Vec<Packet> {
        match self.nodes.get_mut(node.0 as usize) {
            Some(n) => n.inbox.drain(..).map(|(_, p)| p).collect(),
            None => Vec::new(),
        }
    }

    /// Number of packets waiting at `node`.
    pub fn pending(&self, node: NodeId) -> usize {
        self.nodes.get(node.0 as usize).map_or(0, |n| n.inbox.len())
    }

    /// Current inbox depth at `node` (alias of [`Network::pending`], named
    /// for observability dashboards).
    pub fn queue_depth(&self, node: NodeId) -> usize {
        self.pending(node)
    }

    /// The deepest `node`'s inbox has ever been.
    pub fn max_queue_depth(&self, node: NodeId) -> usize {
        self.nodes.get(node.0 as usize).map_or(0, |n| n.max_depth)
    }

    /// Delivery/fault counters of the link `src → dst`, if configured.
    pub fn link_stats(&self, src: NodeId, dst: NodeId) -> Option<LinkStats> {
        self.links.get(&(src, dst)).map(|l| l.stats)
    }

    /// Fault outcomes summed over every link in the network.
    pub fn fault_totals(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for link in self.links.values() {
            total.merge(&link.stats);
        }
        total
    }

    /// Time of the earliest in-flight delivery, or `None` when the network
    /// is quiescent. Lets an external event loop interleave its own timers
    /// with network deliveries without overshooting either.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(d)| d.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::RateLimit;

    fn two_node_net(config: LinkConfig) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(1);
        let a = net.add_node();
        let b = net.add_node();
        net.add_duplex_link(a, b, config);
        (net, a, b)
    }

    /// `reset(seed)` on a used network must reproduce exactly what a
    /// fresh `Network::new(seed)` with the same topology produces: same
    /// deliveries, same fault outcomes, same clock, same trace volume.
    #[test]
    fn reset_reproduces_a_fresh_network() {
        let config = LinkConfig {
            faults: FaultConfig {
                drop_chance: 0.3,
                corrupt_chance: 0.2,
                duplicate_chance: 0.1,
                ..Default::default()
            },
            ..Default::default()
        };
        let drive = |net: &mut Network, a: NodeId, b: NodeId| {
            for i in 0..50u8 {
                net.send(a, b, vec![i; 16]);
                net.run_to_idle();
            }
            (
                net.recv_all(b).len(),
                net.fault_totals(),
                net.max_queue_depth(b),
                net.now(),
                net.trace.records().len(),
            )
        };
        let (mut fresh, a, b) = two_node_net(config.clone());
        let baseline = drive(&mut fresh, a, b);

        // Dirty a second identical network under another seed, then
        // rewind it to seed 1 — it must match the fresh run exactly.
        let (mut reused, a2, b2) = two_node_net(config);
        reused.reset(999);
        drive(&mut reused, a2, b2);
        reused.reset(1);
        assert_eq!(drive(&mut reused, a2, b2), baseline);
    }

    /// Compile-time regression: a whole simulated network — virtual
    /// clock, event heap, per-link fault RNGs — must stay `Send`, so each
    /// load-generation shard can own an independent network with its own
    /// virtual clock on its own OS thread.
    #[test]
    fn network_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Network>();
        assert_send::<LinkStats>();
    }

    #[test]
    fn basic_delivery_with_latency() {
        let (mut net, a, b) = two_node_net(LinkConfig {
            latency: SimDuration::from_millis(5),
            ..Default::default()
        });
        net.send(a, b, &b"hello"[..]);
        net.run_until(SimTime::ZERO + SimDuration::from_millis(4));
        assert_eq!(net.pending(b), 0, "not yet arrived");
        net.run_until(SimTime::ZERO + SimDuration::from_millis(5));
        let p = net.recv(b).expect("delivered");
        assert_eq!(&p.payload[..], b"hello");
        assert_eq!(net.now(), SimTime::ZERO + SimDuration::from_millis(5));
    }

    #[test]
    fn no_link_means_drop() {
        let mut net = Network::new(1);
        let a = net.add_node();
        let b = net.add_node();
        assert_eq!(net.send(a, b, &b"x"[..]), None);
        net.run_to_idle();
        assert_eq!(net.pending(b), 0);
        assert_eq!(net.trace.count(TraceEvent::Dropped), 1);
    }

    #[test]
    fn bandwidth_adds_serialisation_delay() {
        // 1000 bytes at 1 MB/s = 1 ms serialisation + 1 ms latency.
        let (mut net, a, b) = two_node_net(LinkConfig {
            latency: SimDuration::from_millis(1),
            bandwidth_bps: Some(1_000_000),
            ..Default::default()
        });
        net.send(a, b, vec![0u8; 1000]);
        net.run_until(SimTime::ZERO + SimDuration::from_micros(1_999));
        assert_eq!(net.pending(b), 0);
        net.run_until(SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(net.pending(b), 1);
    }

    #[test]
    fn fifo_queueing_on_shared_link() {
        // Two back-to-back 1000-byte packets: the second waits for the
        // first to serialise.
        let (mut net, a, b) = two_node_net(LinkConfig {
            latency: SimDuration::ZERO,
            bandwidth_bps: Some(1_000_000),
            ..Default::default()
        });
        net.send(a, b, vec![1u8; 1000]);
        net.send(a, b, vec![2u8; 1000]);
        net.run_until(SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(net.pending(b), 1);
        net.run_until(SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(net.pending(b), 2);
        // Order preserved.
        assert_eq!(net.recv(b).unwrap().payload[0], 1);
        assert_eq!(net.recv(b).unwrap().payload[0], 2);
    }

    #[test]
    fn run_to_idle_delivers_everything() {
        let (mut net, a, b) = two_node_net(LinkConfig::default());
        for i in 0..10u8 {
            net.send(a, b, vec![i]);
        }
        net.run_to_idle();
        assert_eq!(net.recv_all(b).len(), 10);
    }

    #[test]
    fn drop_faults_lose_packets() {
        let (mut net, a, b) = two_node_net(LinkConfig {
            faults: FaultConfig {
                drop_chance: 1.0,
                ..Default::default()
            },
            ..Default::default()
        });
        net.send(a, b, &b"doomed"[..]);
        net.run_to_idle();
        assert_eq!(net.pending(b), 0);
        assert_eq!(net.trace.count(TraceEvent::Dropped), 1);
    }

    #[test]
    fn corruption_faults_flip_a_byte() {
        let (mut net, a, b) = two_node_net(LinkConfig {
            faults: FaultConfig {
                corrupt_chance: 1.0,
                ..Default::default()
            },
            ..Default::default()
        });
        net.send(a, b, &b"pristine"[..]);
        net.run_to_idle();
        let p = net.recv(b).unwrap();
        assert_ne!(&p.payload[..], b"pristine");
        assert_eq!(p.len(), 8);
        assert_eq!(net.trace.count(TraceEvent::Corrupted), 1);
    }

    #[test]
    fn duplication_faults_deliver_twice() {
        let (mut net, a, b) = two_node_net(LinkConfig {
            faults: FaultConfig {
                duplicate_chance: 1.0,
                ..Default::default()
            },
            ..Default::default()
        });
        net.send(a, b, &b"twice"[..]);
        net.run_to_idle();
        assert_eq!(net.pending(b), 2);
    }

    #[test]
    fn rate_limited_link_drops_excess() {
        let (mut net, a, b) = two_node_net(LinkConfig {
            faults: FaultConfig {
                rate_limit: Some(RateLimit {
                    tokens_per_interval: 3,
                    interval: SimDuration::from_secs(1),
                }),
                ..Default::default()
            },
            ..Default::default()
        });
        for _ in 0..10 {
            net.send(a, b, &b"p"[..]);
        }
        net.run_to_idle();
        assert_eq!(net.pending(b), 3);
    }

    #[test]
    fn identical_seeds_identical_traces() {
        let build = || {
            let (mut net, a, b) = two_node_net(LinkConfig {
                faults: FaultConfig::lossy(),
                ..Default::default()
            });
            for i in 0..50u8 {
                net.send(a, b, vec![i]);
            }
            net.run_to_idle();
            net.recv_all(b)
                .iter()
                .map(|p| p.payload.to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn bidirectional_traffic() {
        let (mut net, a, b) = two_node_net(LinkConfig::default());
        net.send(a, b, &b"ping"[..]);
        net.run_to_idle();
        assert_eq!(&net.recv(b).unwrap().payload[..], b"ping");
        net.send(b, a, &b"pong"[..]);
        net.run_to_idle();
        assert_eq!(&net.recv(a).unwrap().payload[..], b"pong");
    }

    #[test]
    fn connect_all_creates_full_mesh() {
        let mut net = Network::new(1);
        let nodes: Vec<NodeId> = (0..4).map(|_| net.add_node()).collect();
        net.connect_all(LinkConfig::default());
        for &x in &nodes {
            for &y in &nodes {
                if x != y {
                    assert!(net.send(x, y, &b"m"[..]).is_some());
                }
            }
        }
        net.run_to_idle();
        for &n in &nodes {
            assert_eq!(net.pending(n), 3);
        }
    }

    #[test]
    fn link_stats_track_clean_traffic() {
        let (mut net, a, b) = two_node_net(LinkConfig::default());
        for i in 0..5u8 {
            net.send(a, b, vec![i]);
        }
        net.run_to_idle();
        let stats = net.link_stats(a, b).unwrap();
        assert_eq!(stats.sent, 5);
        assert_eq!(stats.delivered, 5);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.corrupted, 0);
        // Reverse direction untouched.
        assert_eq!(net.link_stats(b, a).unwrap(), LinkStats::default());
        assert!(net.link_stats(b, NodeId(99)).is_none());
    }

    #[test]
    fn link_stats_track_fault_outcomes() {
        let (mut net, a, b) = two_node_net(LinkConfig {
            faults: FaultConfig {
                drop_chance: 0.3,
                corrupt_chance: 0.2,
                duplicate_chance: 0.2,
                ..Default::default()
            },
            ..Default::default()
        });
        for i in 0..200u8 {
            net.send(a, b, vec![i]);
        }
        net.run_to_idle();
        let stats = net.link_stats(a, b).unwrap();
        assert_eq!(stats.sent, 200);
        assert!(stats.dropped > 0, "{stats:?}");
        assert!(stats.corrupted > 0, "{stats:?}");
        assert!(stats.duplicated > 0, "{stats:?}");
        // Every sent packet either dropped or delivered; duplicates add
        // extra deliveries on top.
        assert_eq!(
            stats.delivered,
            stats.sent - stats.dropped + stats.duplicated
        );
        assert_eq!(net.fault_totals(), stats, "only one active link");
    }

    #[test]
    fn queue_depth_watermark_persists_after_drain() {
        let (mut net, a, b) = two_node_net(LinkConfig::default());
        for i in 0..7u8 {
            net.send(a, b, vec![i]);
        }
        net.run_to_idle();
        assert_eq!(net.queue_depth(b), 7);
        assert_eq!(net.max_queue_depth(b), 7);
        net.recv_all(b);
        assert_eq!(net.queue_depth(b), 0);
        assert_eq!(net.max_queue_depth(b), 7, "watermark survives drain");
        assert_eq!(net.max_queue_depth(a), 0);
    }

    #[test]
    fn recv_timed_reports_delivery_time() {
        let (mut net, a, b) = two_node_net(LinkConfig {
            latency: SimDuration::from_millis(3),
            ..Default::default()
        });
        net.send(a, b, &b"x"[..]);
        assert_eq!(
            net.next_event_at(),
            Some(SimTime::ZERO + SimDuration::from_millis(3))
        );
        net.run_to_idle();
        let (at, p) = net.recv_timed(b).unwrap();
        assert_eq!(at, SimTime::ZERO + SimDuration::from_millis(3));
        assert_eq!(&p.payload[..], b"x");
        assert_eq!(net.next_event_at(), None, "quiescent again");
    }

    #[test]
    fn pcap_capture_contains_delivered_payloads() {
        let mut net = Network::new(1);
        net.enable_pcap();
        let a = net.add_node();
        let b = net.add_node();
        net.add_duplex_link(a, b, LinkConfig::default());
        net.send(a, b, &b"captured"[..]);
        net.run_to_idle();
        let pcap = net.trace.to_pcap();
        assert!(pcap.len() > 24);
        assert!(pcap.windows(8).any(|w| w == b"captured"));
    }
}
