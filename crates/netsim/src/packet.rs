//! Packets and node addressing.

use bytes::Bytes;

/// Identifies a node (host) in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The conventional Ethernet MTU; the paper's Table 2 measures "an MTU
/// sized packet".
pub const MTU: usize = 1500;

/// A datagram in flight or delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Monotonic per-simulation id (assigned at send).
    pub id: u64,
    /// Sender.
    pub src: NodeId,
    /// Destination.
    pub dst: NodeId,
    /// Payload bytes (cheaply clonable).
    pub payload: Bytes,
}

impl Packet {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let p = Packet {
            id: 1,
            src: NodeId(0),
            dst: NodeId(1),
            payload: Bytes::from_static(b"hello"),
        };
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(format!("{}", p.src), "n0");
    }
}
