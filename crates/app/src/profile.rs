//! The calibrated-workload profile types shared by every application.
//!
//! A load run does not execute tens of thousands of real protocol
//! sessions — it runs a handful against the real enclaves (via
//! [`crate::AppHarness`]), captures each operation's instruction counters
//! and wire sizes as a [`WorkProfile`], and replays that profile at scale
//! on virtual time. These types live here (rather than in the
//! attestation core or the load driver) so every application crate can
//! expose a calibration service without depending on either.

use teenet_sgx::cost::Counters;
use teenet_sgx::{SwitchlessConfig, TeeBackend, TransitionMode, TransitionStats};

/// The measured cost of one client→server exchange within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkStep {
    /// Step name (stable; surfaces in load reports).
    pub name: &'static str,
    /// Client-side instruction cost.
    pub client: Counters,
    /// Server-side instruction cost.
    pub server: Counters,
    /// Request size on the wire.
    pub request_bytes: usize,
    /// Response size on the wire.
    pub response_bytes: usize,
    /// Server-side enclave boundary crossings during this step.
    pub transitions: TransitionStats,
}

/// A calibrated workload: one-time setup cost plus the per-session step
/// script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkProfile {
    /// One-time cost (enclave load, provisioning, admission attestations).
    pub setup: Counters,
    /// The steps of one session, in order.
    pub steps: Vec<WorkStep>,
    /// Transition mode the profile was calibrated under.
    pub mode: TransitionMode,
    /// TEE backend the profile was calibrated against (determines the
    /// cost model any replay of this profile must price cycles with).
    pub backend: TeeBackend,
    /// Switchless worker-pool configuration the profile was calibrated
    /// under (pool size, spin budget, scaling policy). The 1-worker /
    /// zero-spin default reproduces the single-worker ring exactly.
    pub switchless: SwitchlessConfig,
}

impl WorkProfile {
    /// Summed server-side counters of one session.
    pub fn session_server(&self) -> Counters {
        let mut total = Counters::new();
        for s in &self.steps {
            total.merge(s.server);
        }
        total
    }

    /// Summed client-side counters of one session.
    pub fn session_client(&self) -> Counters {
        let mut total = Counters::new();
        for s in &self.steps {
            total.merge(s.client);
        }
        total
    }

    /// Summed boundary-crossing statistics of one session.
    pub fn session_transitions(&self) -> TransitionStats {
        let mut total = TransitionStats::new();
        for s in &self.steps {
            total.merge(s.transitions);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(sgx: u64, normal: u64) -> Counters {
        Counters {
            sgx_instr: sgx,
            normal_instr: normal,
        }
    }

    fn step(name: &'static str, client: Counters, server: Counters) -> WorkStep {
        WorkStep {
            name,
            client,
            server,
            request_bytes: 10,
            response_bytes: 20,
            transitions: TransitionStats {
                taken: 1,
                elided: 2,
                fallbacks: 0,
                idle_spins: 0,
            },
        }
    }

    #[test]
    fn session_rollups_sum_over_steps() {
        let p = WorkProfile {
            setup: c(1, 10),
            steps: vec![
                step("a", c(0, 100), c(2, 200)),
                step("b", c(1, 50), c(3, 300)),
            ],
            mode: TransitionMode::Classic,
            backend: TeeBackend::Sgx,
            switchless: SwitchlessConfig::default(),
        };
        assert_eq!(p.session_server(), c(5, 500));
        assert_eq!(p.session_client(), c(1, 150));
        assert_eq!(
            p.session_transitions(),
            TransitionStats {
                taken: 2,
                elided: 4,
                fallbacks: 0,
                idle_spins: 0
            }
        );
    }
}
