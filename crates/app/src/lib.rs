#![warn(missing_docs)]

//! # teenet-app
//!
//! The unified enclave-application service layer.
//!
//! The paper's thesis is that *one* SGX abstraction serves three very
//! different network applications (inter-domain routing, Tor, TLS
//! middleboxes). This crate is that abstraction's harness side: the
//! machinery every workload needs — deployment, attestation-gated
//! provisioning, transition-mode plumbing, uniform instruction and
//! transition metering, and calibration into replayable work profiles —
//! written once, so an application crate only implements the
//! [`EnclaveService`] trait.
//!
//! * [`service::EnclaveService`] — the trait contract: name, deploy,
//!   provision, typed step execution ([`service::StepRequest`] →
//!   [`service::StepOutcome`]), metering accessors, teardown.
//! * [`harness::AppHarness`] — owns the cross-cutting flow: deploy →
//!   provision → transition-mode switch → setup metering → per-step
//!   calibration (including the batched-ecall marginal-cost measurement
//!   used under [`teenet_sgx::TransitionMode::Switchless`]).
//! * [`profile`] — [`WorkProfile`]/[`WorkStep`], the calibrated output
//!   every load scenario replays (moved here from `teenet::driver` so
//!   application crates no longer depend on the attestation core just
//!   for profile structs).
//! * [`ledger`] — attestation accounting (moved here from `teenet` for
//!   the same layering reason; the harness wires a fresh ledger into
//!   every calibration).
//!
//! Adding a fifth workload is one [`EnclaveService`] impl plus a registry
//! entry in `teenet-load` — no new deploy/provision/calibrate code.

pub mod harness;
pub mod ledger;
pub mod profile;
pub mod service;

pub use harness::AppHarness;
pub use ledger::{AttestKind, AttestLedger};
pub use profile::{WorkProfile, WorkStep};
pub use service::{
    AppError, EnclaveService, ServiceEnv, StepExecution, StepKind, StepOutcome, StepRequest,
    StepSpec,
};
