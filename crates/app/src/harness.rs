//! [`AppHarness`]: the one deploy → provision → calibrate flow shared by
//! every enclave application.
//!
//! The harness owns everything that used to be copy-pasted across the
//! four per-application `driver.rs` files: lifecycle ordering, uniform
//! instruction/transition metering around each step, the batched-ecall
//! marginal-cost measurement for switchless calibration, and assembly of
//! the final [`WorkProfile`].

use teenet_sgx::cost::Counters;
use teenet_sgx::{SwitchlessConfig, TeeBackend, TransitionMode, TransitionStats};

use crate::profile::{WorkProfile, WorkStep};
use crate::service::{
    AppError, EnclaveService, ServiceEnv, StepExecution, StepKind, StepOutcome, StepRequest,
    StepSpec,
};

/// Point-in-time snapshot of a service's cumulative meters.
#[derive(Debug, Clone, Copy)]
struct Meters {
    server: Counters,
    client: Counters,
    transitions: TransitionStats,
}

impl Meters {
    fn read<S: EnclaveService>(svc: &S) -> Result<Meters, S::Error> {
        Ok(Meters {
            server: svc.server_counters()?,
            client: svc.client_counters()?,
            transitions: svc.transition_stats()?,
        })
    }

    /// The delta accumulated since `earlier`.
    fn since(&self, earlier: &Meters) -> Meters {
        Meters {
            server: self.server.since(earlier.server),
            client: self.client.since(earlier.client),
            transitions: self.transitions.since(earlier.transitions),
        }
    }
}

/// The generic calibrator: drives an [`EnclaveService`] through its
/// lifecycle and meters every step into a replayable [`WorkProfile`].
#[derive(Debug)]
pub struct AppHarness {
    env: ServiceEnv,
}

impl AppHarness {
    /// A harness for one calibration run at `seed` under `mode`, on the
    /// SGX backend.
    pub fn new(seed: u64, mode: TransitionMode) -> Self {
        AppHarness {
            env: ServiceEnv::new(seed, mode),
        }
    }

    /// A harness calibrating against `backend`.
    pub fn with_backend(seed: u64, mode: TransitionMode, backend: TeeBackend) -> Self {
        AppHarness {
            env: ServiceEnv::with_backend(seed, mode, backend),
        }
    }

    /// A harness calibrating with an explicit switchless worker-pool
    /// configuration.
    pub fn with_switchless(
        seed: u64,
        mode: TransitionMode,
        backend: TeeBackend,
        switchless: SwitchlessConfig,
    ) -> Self {
        AppHarness {
            env: ServiceEnv::with_switchless(seed, mode, backend, switchless),
        }
    }

    /// The environment the harness wires into the service (readable after
    /// calibration, e.g. for ledger accounting).
    pub fn env(&self) -> &ServiceEnv {
        &self.env
    }

    /// Runs the full lifecycle — deploy, provision, mode switch, setup
    /// metering, per-step calibration, teardown — and returns the
    /// calibrated profile.
    pub fn calibrate<S: EnclaveService>(&mut self, svc: &mut S) -> Result<WorkProfile, S::Error> {
        svc.deploy(&mut self.env)?;
        svc.provision(&mut self.env)?;
        svc.set_transition_mode(self.env.mode, self.env.switchless)?;
        let setup = svc.setup_counters()?;

        let script = svc.session_script(&self.env)?;
        if script.is_empty() {
            return Err(AppError::Harness("session script must not be empty").into());
        }

        let mut steps = Vec::new();
        for spec in &script {
            match spec.kind {
                StepKind::Repeat(n) => self.repeat_step(svc, spec, n, &mut steps)?,
                StepKind::AmortisedBatch(n) => self.amortised_step(svc, spec, n, &mut steps)?,
                StepKind::Computed => match svc.run_step(spec, StepRequest::Once, &mut self.env)? {
                    StepOutcome::Computed(step) => steps.push(step),
                    StepOutcome::Executed(_) => {
                        return Err(AppError::Harness(
                            "computed step returned an executed outcome",
                        )
                        .into());
                    }
                },
            }
        }

        svc.teardown(&mut self.env)?;
        Ok(WorkProfile {
            setup,
            steps,
            mode: self.env.mode,
            backend: self.env.backend,
            switchless: self.env.switchless,
        })
    }

    /// Measures `spec` once and replays the measured step `n` times.
    fn repeat_step<S: EnclaveService>(
        &mut self,
        svc: &mut S,
        spec: &StepSpec,
        n: u32,
        steps: &mut Vec<WorkStep>,
    ) -> Result<(), S::Error> {
        if n == 0 {
            return Err(AppError::Calibration("step repeat must be at least 1").into());
        }
        let before = Meters::read(svc)?;
        let exec = self.executed(svc, spec, StepRequest::Once)?;
        let delta = Meters::read(svc)?.since(&before);
        let step = assemble(spec, &delta, &exec);
        for _ in 0..n {
            steps.push(step);
        }
        Ok(())
    }

    /// The batched-ecall marginal-cost measurement: a batch of one pays
    /// the full per-batch boundary cost; a batch of two reveals the pure
    /// marginal per-operation cost. The profile carries the batch-of-one
    /// step once and the marginal step `n - 1` times.
    fn amortised_step<S: EnclaveService>(
        &mut self,
        svc: &mut S,
        spec: &StepSpec,
        n: u32,
        steps: &mut Vec<WorkStep>,
    ) -> Result<(), S::Error> {
        if n == 0 {
            return Err(AppError::Calibration("step repeat must be at least 1").into());
        }
        let before_one = Meters::read(svc)?;
        let exec_one = self.executed(svc, spec, StepRequest::Batch(1))?;
        let delta_one = Meters::read(svc)?.since(&before_one);
        let first = assemble(spec, &delta_one, &exec_one);

        let before_two = Meters::read(svc)?;
        let exec_two = self.executed(svc, spec, StepRequest::Batch(2))?;
        let delta_two = Meters::read(svc)?.since(&before_two);

        // Marginal cost of one more operation inside the same batch:
        // batch-of-two minus batch-of-one, on every meter.
        let marginal = WorkStep {
            name: spec.name,
            client: {
                let mut two = delta_two.client;
                two.merge(exec_two.client);
                let mut one = delta_one.client;
                one.merge(exec_one.client);
                two.since(one)
            },
            server: delta_two.server.since(delta_one.server),
            request_bytes: exec_two.request_bytes,
            response_bytes: exec_two.response_bytes,
            transitions: delta_two.transitions.since(delta_one.transitions),
        };

        steps.push(first);
        for _ in 1..n {
            steps.push(marginal);
        }
        Ok(())
    }

    /// Runs one metered step and unwraps the executed outcome.
    fn executed<S: EnclaveService>(
        &mut self,
        svc: &mut S,
        spec: &StepSpec,
        request: StepRequest,
    ) -> Result<StepExecution, S::Error> {
        match svc.run_step(spec, request, &mut self.env)? {
            StepOutcome::Executed(exec) => Ok(exec),
            StepOutcome::Computed(_) => {
                Err(AppError::Harness("executed step returned a computed outcome").into())
            }
        }
    }
}

/// Builds a profile step from a metered delta plus the service's
/// execution report.
fn assemble(spec: &StepSpec, delta: &Meters, exec: &StepExecution) -> WorkStep {
    let mut client = delta.client;
    client.merge(exec.client);
    WorkStep {
        name: spec.name,
        client,
        server: delta.server,
        request_bytes: exec.request_bytes,
        response_bytes: exec.response_bytes,
        transitions: delta.transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_sgx::SgxError;

    /// A synthetic service whose meters advance by fixed amounts per
    /// operation, so the harness arithmetic is checkable exactly.
    struct FakeService {
        deployed: bool,
        provisioned: bool,
        mode: Option<TransitionMode>,
        server: Counters,
        client: Counters,
        transitions: TransitionStats,
        script: Vec<StepSpec>,
        torn_down: bool,
    }

    impl FakeService {
        fn new(script: Vec<StepSpec>) -> Self {
            FakeService {
                deployed: false,
                provisioned: false,
                mode: None,
                server: Counters::new(),
                client: Counters::new(),
                transitions: TransitionStats::new(),
                script,
                torn_down: false,
            }
        }

        fn advance(&mut self, ops: u64) {
            // Per operation: 100 sgx + 10 normal server-side, 5 normal
            // client-side, one transition pair; plus a per-batch fixed
            // boundary cost of 40 sgx.
            self.server.sgx_instr += 40 + 100 * ops;
            self.server.normal_instr += 10 * ops;
            self.client.normal_instr += 5 * ops;
            self.transitions.taken += 1;
        }
    }

    impl EnclaveService for FakeService {
        type Error = SgxError;

        fn name(&self) -> &'static str {
            "fake"
        }

        fn describe(&self) -> &'static str {
            "synthetic fixed-cost service"
        }

        fn deploy(&mut self, _env: &mut ServiceEnv) -> Result<(), SgxError> {
            self.deployed = true;
            self.server.sgx_instr += 1000; // enclave load cost
            Ok(())
        }

        fn provision(&mut self, _env: &mut ServiceEnv) -> Result<(), SgxError> {
            self.provisioned = true;
            self.server.sgx_instr += 500;
            Ok(())
        }

        fn set_transition_mode(
            &mut self,
            mode: TransitionMode,
            _switchless: SwitchlessConfig,
        ) -> Result<(), SgxError> {
            self.mode = Some(mode);
            Ok(())
        }

        fn server_counters(&self) -> Result<Counters, SgxError> {
            Ok(self.server)
        }

        fn client_counters(&self) -> Result<Counters, SgxError> {
            Ok(self.client)
        }

        fn transition_stats(&self) -> Result<TransitionStats, SgxError> {
            Ok(self.transitions)
        }

        fn session_script(&self, _env: &ServiceEnv) -> Result<Vec<StepSpec>, SgxError> {
            Ok(self.script.clone())
        }

        fn run_step(
            &mut self,
            spec: &StepSpec,
            request: StepRequest,
            env: &mut ServiceEnv,
        ) -> Result<StepOutcome, SgxError> {
            match request {
                StepRequest::Once => {
                    if spec.kind == StepKind::Computed {
                        return Ok(StepOutcome::Computed(WorkStep {
                            name: spec.name,
                            client: Counters::new(),
                            server: Counters {
                                sgx_instr: spec.arg,
                                normal_instr: 0,
                            },
                            request_bytes: 7,
                            response_bytes: 7,
                            transitions: TransitionStats::new(),
                        }));
                    }
                    self.advance(1);
                    let mut client = Counters::new();
                    client.normal(env.model.hmac_short);
                    Ok(StepOutcome::Executed(StepExecution {
                        request_bytes: 16,
                        response_bytes: 8,
                        client,
                    }))
                }
                StepRequest::Batch(k) => {
                    self.advance(u64::from(k));
                    let mut client = Counters::new();
                    client.normal(u64::from(k) * env.model.hmac_short);
                    Ok(StepOutcome::Executed(StepExecution {
                        request_bytes: 16,
                        response_bytes: 8,
                        client,
                    }))
                }
            }
        }

        fn teardown(&mut self, _env: &mut ServiceEnv) -> Result<(), SgxError> {
            self.torn_down = true;
            Ok(())
        }
    }

    #[test]
    fn lifecycle_runs_in_order_and_meters_setup() {
        let mut svc = FakeService::new(vec![StepSpec::repeat("op", 3)]);
        let profile = AppHarness::new(7, TransitionMode::Classic)
            .calibrate(&mut svc)
            .unwrap();
        assert!(svc.deployed && svc.provisioned && svc.torn_down);
        assert_eq!(svc.mode, Some(TransitionMode::Classic));
        // Setup = deploy (1000) + provision (500), nothing else.
        assert_eq!(profile.setup.sgx_instr, 1500);
        assert_eq!(profile.steps.len(), 3);
        // Each repeated step carries the single real measurement:
        // per-batch 40 + per-op 100 sgx server-side.
        for s in &profile.steps {
            assert_eq!(s.server.sgx_instr, 140);
            assert_eq!(s.server.normal_instr, 10);
            assert_eq!(s.transitions.taken, 1);
            assert_eq!(s.request_bytes, 16);
        }
    }

    #[test]
    fn amortised_batch_isolates_marginal_cost() {
        let mut svc = FakeService::new(vec![StepSpec::amortised("rec", 4)]);
        let profile = AppHarness::new(7, TransitionMode::Switchless)
            .calibrate(&mut svc)
            .unwrap();
        assert_eq!(profile.steps.len(), 4);
        // First step: full batch-of-one cost (40 fixed + 100 marginal).
        assert_eq!(profile.steps[0].server.sgx_instr, 140);
        assert_eq!(profile.steps[0].transitions.taken, 1);
        // Remaining steps: pure marginal cost, no boundary crossing.
        for s in &profile.steps[1..] {
            assert_eq!(s.server.sgx_instr, 100);
            assert_eq!(s.server.normal_instr, 10);
            assert_eq!(s.transitions.taken, 0);
        }
    }

    #[test]
    fn computed_steps_pass_through() {
        let mut svc = FakeService::new(vec![StepSpec::computed("model", 42)]);
        let profile = AppHarness::new(7, TransitionMode::Classic)
            .calibrate(&mut svc)
            .unwrap();
        assert_eq!(profile.steps.len(), 1);
        assert_eq!(profile.steps[0].server.sgx_instr, 42);
    }

    #[test]
    fn empty_script_is_a_harness_error() {
        let mut svc = FakeService::new(Vec::new());
        let err = AppHarness::new(7, TransitionMode::Classic)
            .calibrate(&mut svc)
            .unwrap_err();
        assert!(matches!(err, SgxError::EcallRejected(_)));
    }

    #[test]
    fn zero_repeat_is_a_calibration_error() {
        let mut svc = FakeService::new(vec![StepSpec::repeat("op", 0)]);
        let err = AppHarness::new(7, TransitionMode::Classic)
            .calibrate(&mut svc)
            .unwrap_err();
        assert!(matches!(err, SgxError::EcallRejected(_)));
    }
}
