//! Attestation accounting — the data behind Table 3.
//!
//! "The number of remote attestations required is proportional to the size
//! of each network. Note, remote attestation occurs only at the beginning
//! when two parties communicate for the first time." (paper §5)
//!
//! Every case study records its attestations here; the ledger deduplicates
//! by session pair, mirroring the occurs-once-per-first-contact property.

use std::collections::{HashMap, HashSet};

/// Why an attestation happened (one label per case-study edge type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttestKind {
    /// AS-local controller ↔ inter-domain controller (§3.1).
    InterdomainController,
    /// Directory authority ↔ directory authority (§3.2).
    TorAuthorityPeer,
    /// Directory authority → onion router admission check (§3.2).
    TorRouterAdmission,
    /// Client → exit node (or other OR) verification (§3.2).
    TorClientCircuit,
    /// TLS endpoint → in-path middlebox (§3.3).
    MiddleboxProvision,
    /// Keystore coordinator → fleet worker before sealed key release
    /// (the fifth workload's admission edge).
    KeystoreWorker,
    /// Anything else (tests, extensions).
    Other,
}

/// Records who attested whom, how often, and deduplicates repeats.
#[derive(Debug, Default)]
pub struct AttestLedger {
    counts: HashMap<AttestKind, u64>,
    seen_pairs: HashSet<(AttestKind, u64, u64)>,
    repeats_avoided: u64,
}

impl AttestLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an attestation of `target` by `challenger`.
    ///
    /// Returns `true` if this is a *new* attestation (first contact); a
    /// repeat is counted separately as avoided work.
    pub fn record(&mut self, kind: AttestKind, challenger: u64, target: u64) -> bool {
        if self.seen_pairs.insert((kind, challenger, target)) {
            *self.counts.entry(kind).or_insert(0) += 1;
            true
        } else {
            self.repeats_avoided += 1;
            false
        }
    }

    /// Attestations of one kind.
    pub fn count(&self, kind: AttestKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total first-contact attestations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Repeat contacts that did *not* require re-attestation.
    pub fn repeats_avoided(&self) -> u64 {
        self.repeats_avoided
    }

    /// All (kind, count) rows, sorted by kind for stable output.
    pub fn rows(&self) -> Vec<(AttestKind, u64)> {
        let mut rows: Vec<_> = self.counts.iter().map(|(&k, &v)| (k, v)).collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_first_contacts() {
        let mut l = AttestLedger::new();
        assert!(l.record(AttestKind::TorClientCircuit, 1, 2));
        assert!(l.record(AttestKind::TorClientCircuit, 1, 3));
        assert_eq!(l.count(AttestKind::TorClientCircuit), 2);
        assert_eq!(l.total(), 2);
    }

    #[test]
    fn repeats_deduplicated() {
        let mut l = AttestLedger::new();
        assert!(l.record(AttestKind::MiddleboxProvision, 1, 2));
        assert!(!l.record(AttestKind::MiddleboxProvision, 1, 2));
        assert_eq!(l.count(AttestKind::MiddleboxProvision), 1);
        assert_eq!(l.repeats_avoided(), 1);
    }

    #[test]
    fn direction_matters() {
        // Mutual attestation is two attestations (each side challenges).
        let mut l = AttestLedger::new();
        assert!(l.record(AttestKind::TorAuthorityPeer, 1, 2));
        assert!(l.record(AttestKind::TorAuthorityPeer, 2, 1));
        assert_eq!(l.count(AttestKind::TorAuthorityPeer), 2);
    }

    #[test]
    fn kinds_separated() {
        let mut l = AttestLedger::new();
        l.record(AttestKind::InterdomainController, 1, 2);
        l.record(AttestKind::TorRouterAdmission, 1, 2);
        assert_eq!(l.count(AttestKind::InterdomainController), 1);
        assert_eq!(l.count(AttestKind::TorRouterAdmission), 1);
        assert_eq!(l.rows().len(), 2);
    }
}
