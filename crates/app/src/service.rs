//! The [`EnclaveService`] trait: the contract between an enclave
//! application and the [`crate::AppHarness`].
//!
//! Every paper workload used to re-implement the same lifecycle by hand:
//! deploy enclaves, attest and provision, switch the transition mode,
//! snapshot counters around each protocol step, and assemble a
//! [`crate::WorkProfile`]. The trait splits that lifecycle into the parts
//! only the application knows (what to deploy, how to provision, how to
//! run one step) and leaves the cross-cutting parts — ordering, metering,
//! the switchless marginal-cost measurement, profile assembly — to the
//! harness.

use core::fmt;

use teenet_sgx::cost::{CostModel, Counters};
use teenet_sgx::{SwitchlessConfig, TeeBackend, TransitionMode, TransitionStats};

use crate::ledger::AttestLedger;
use crate::profile::WorkStep;

/// Harness-side failures surfaced through a service's own error type
/// (every [`EnclaveService::Error`] must be `From<AppError>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppError {
    /// A calibration precondition failed (bad workload shape, e.g. a
    /// session of zero records).
    Calibration(&'static str),
    /// The harness and the service disagreed about the protocol (empty
    /// session script, wrong step-outcome kind, accessor use before
    /// deployment).
    Harness(&'static str),
}

impl AppError {
    /// The underlying message.
    pub fn message(self) -> &'static str {
        match self {
            AppError::Calibration(m) | AppError::Harness(m) => m,
        }
    }
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Calibration(m) => write!(f, "calibration rejected: {m}"),
            AppError::Harness(m) => write!(f, "harness protocol violation: {m}"),
        }
    }
}

impl std::error::Error for AppError {}

// `teenet-interdomain`'s deployment layer reports errors directly as
// `SgxError`; give it a lossless-enough lowering so its service impl can
// use the shared harness without a new error enum.
impl From<AppError> for teenet_sgx::SgxError {
    fn from(e: AppError) -> Self {
        teenet_sgx::SgxError::EcallRejected(e.message())
    }
}

/// Cross-cutting state the harness wires into every calibration: the
/// seed, the transition mode under test, the paper cost model, and a
/// fresh attestation ledger for provisioning accounting.
#[derive(Debug)]
pub struct ServiceEnv {
    /// Seed for all service-side randomness (services derive their own
    /// [`teenet_crypto`-style] rngs from it so profiles are deterministic).
    pub seed: u64,
    /// The transition mode this calibration runs under.
    pub mode: TransitionMode,
    /// The TEE backend services deploy their platforms against.
    pub backend: TeeBackend,
    /// The switchless worker-pool configuration services apply to their
    /// steady-state enclaves (pool size, spin budget, scaling policy).
    /// Irrelevant under [`TransitionMode::Classic`].
    pub switchless: SwitchlessConfig,
    /// The backend's calibrated cost model (client-side modelled costs).
    pub model: CostModel,
    /// Attestation accounting for the provisioning phase.
    pub ledger: AttestLedger,
}

impl ServiceEnv {
    /// A fresh environment for one calibration run on the SGX backend.
    pub fn new(seed: u64, mode: TransitionMode) -> Self {
        Self::with_backend(seed, mode, TeeBackend::Sgx)
    }

    /// A fresh environment for one calibration run on `backend`.
    pub fn with_backend(seed: u64, mode: TransitionMode, backend: TeeBackend) -> Self {
        Self::with_switchless(seed, mode, backend, SwitchlessConfig::default())
    }

    /// A fresh environment with an explicit switchless worker-pool
    /// configuration.
    pub fn with_switchless(
        seed: u64,
        mode: TransitionMode,
        backend: TeeBackend,
        switchless: SwitchlessConfig,
    ) -> Self {
        ServiceEnv {
            seed,
            mode,
            backend,
            switchless,
            model: backend.cost_model(),
            ledger: AttestLedger::new(),
        }
    }
}

/// How the harness turns one scripted step into profile steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Execute once ([`StepRequest::Once`]), meter the delta, and emit
    /// the measured step `n` times (one real measurement replayed —
    /// exact, because the cost model is deterministic per operation).
    Repeat(u32),
    /// The batched-ecall marginal-cost measurement: execute a batch of
    /// one then a batch of two ([`StepRequest::Batch`]); the first
    /// profile step is the batch-of-one cost (it carries the batch's
    /// lone transition pair), and the marginal cost (batch-of-two minus
    /// batch-of-one) is emitted `n - 1` times.
    AmortisedBatch(u32),
    /// The service derives the full [`WorkStep`] from the cost model
    /// itself (for paths that run outside the counter-instrumented
    /// platform, e.g. Tor's per-cell relay loop).
    Computed,
}

/// One entry of a service's session script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepSpec {
    /// Step name (stable; surfaces in load reports).
    pub name: &'static str,
    /// How the harness measures and replays this step.
    pub kind: StepKind,
    /// Service-defined argument (e.g. the hop index of a Tor extend).
    pub arg: u64,
}

impl StepSpec {
    /// A step measured once and replayed `n` times.
    pub fn repeat(name: &'static str, n: u32) -> Self {
        StepSpec {
            name,
            kind: StepKind::Repeat(n),
            arg: 0,
        }
    }

    /// A step measured via the batched marginal-cost trick.
    pub fn amortised(name: &'static str, n: u32) -> Self {
        StepSpec {
            name,
            kind: StepKind::AmortisedBatch(n),
            arg: 0,
        }
    }

    /// A model-derived step with a service-defined argument.
    pub fn computed(name: &'static str, arg: u64) -> Self {
        StepSpec {
            name,
            kind: StepKind::Computed,
            arg,
        }
    }
}

/// The typed request the harness hands to [`EnclaveService::run_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepRequest {
    /// Run the step once ([`StepKind::Repeat`] and [`StepKind::Computed`]).
    Once,
    /// Run `n` identical operations as one batched ecall
    /// ([`StepKind::AmortisedBatch`]).
    Batch(u32),
}

/// The typed response of one executed (harness-metered) step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepExecution {
    /// Request size on the wire, per operation.
    pub request_bytes: usize,
    /// Response size on the wire, per operation.
    pub response_bytes: usize,
    /// Client-side cost *not* captured by [`EnclaveService::client_counters`]
    /// (model-derived or challenger-measured). For [`StepRequest::Batch`]
    /// this is the cost of the whole batch.
    pub client: Counters,
}

/// What running one step produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step ran against real enclaves; the harness meters the
    /// server/client deltas around it.
    Executed(StepExecution),
    /// The service computed the full step from the cost model
    /// ([`StepKind::Computed`] only).
    Computed(WorkStep),
}

/// An enclave application the [`crate::AppHarness`] can deploy,
/// provision, calibrate and tear down.
///
/// The harness drives the lifecycle strictly in this order:
///
/// 1. [`deploy`](EnclaveService::deploy) — load platforms and enclaves.
/// 2. [`provision`](EnclaveService::provision) — attestation-gated key
///    release / admission / topology bootstrap (records into
///    [`ServiceEnv::ledger`]).
/// 3. [`set_transition_mode`](EnclaveService::set_transition_mode) — put
///    steady-state paths into the calibration's mode (setup always runs
///    classic, as the paper excludes it from steady state).
/// 4. [`setup_counters`](EnclaveService::setup_counters) — one-time cost.
/// 5. [`session_script`](EnclaveService::session_script) +
///    [`run_step`](EnclaveService::run_step) — per-step calibration, with
///    the harness reading [`server_counters`](EnclaveService::server_counters),
///    [`client_counters`](EnclaveService::client_counters) and
///    [`transition_stats`](EnclaveService::transition_stats) around each
///    execution.
/// 6. [`teardown`](EnclaveService::teardown).
///
/// Implementations must be deterministic in [`ServiceEnv::seed`] and must
/// surface failures as errors — calibration paths never panic.
///
/// `Send` is a supertrait: a deployed service (platforms, enclaves, keys)
/// must be movable to another OS thread so each load-generation shard can
/// own its own deployment. Services hold only owned emulator state, so
/// the bound is free — and it keeps future impls from silently capturing
/// thread-bound handles.
pub trait EnclaveService: Send {
    /// The service's error type; harness failures lower into it.
    type Error: From<AppError> + fmt::Debug;

    /// Stable service name (doubles as the load-scenario name).
    fn name(&self) -> &'static str;

    /// One-line description for listings.
    fn describe(&self) -> &'static str;

    /// Loads platforms and enclaves. Must reset any previous deployment.
    fn deploy(&mut self, env: &mut ServiceEnv) -> Result<(), Self::Error>;

    /// Attestation-gated provisioning (key release, admission, topology
    /// attestation). Default: nothing to provision.
    fn provision(&mut self, env: &mut ServiceEnv) -> Result<(), Self::Error> {
        let _ = env;
        Ok(())
    }

    /// Switches steady-state paths to `mode` under `switchless` (worker
    /// pool size, per-post spin budget, scaling policy). Implementations
    /// must configure the ring *before* switching the mode, so the worker
    /// pool initialises from the new configuration.
    fn set_transition_mode(
        &mut self,
        mode: TransitionMode,
        switchless: SwitchlessConfig,
    ) -> Result<(), Self::Error>;

    /// One-time setup cost (enclave load, provisioning, admission),
    /// read by the harness after provisioning. Default: everything the
    /// server and client meters have accumulated so far.
    fn setup_counters(&self) -> Result<Counters, Self::Error> {
        let mut total = self.server_counters()?;
        total.merge(self.client_counters()?);
        Ok(total)
    }

    /// Cumulative server-side counters (all server platforms), read by
    /// the harness around each executed step.
    fn server_counters(&self) -> Result<Counters, Self::Error>;

    /// Cumulative client-side *platform* counters; services whose client
    /// is unmetered (modelled in [`StepExecution::client`]) keep the
    /// zero default.
    fn client_counters(&self) -> Result<Counters, Self::Error> {
        Ok(Counters::new())
    }

    /// Cumulative boundary-crossing statistics of the metered enclaves.
    fn transition_stats(&self) -> Result<TransitionStats, Self::Error>;

    /// The per-session step script for this calibration.
    fn session_script(&self, env: &ServiceEnv) -> Result<Vec<StepSpec>, Self::Error>;

    /// Executes one scripted step against the deployed enclaves.
    fn run_step(
        &mut self,
        spec: &StepSpec,
        request: StepRequest,
        env: &mut ServiceEnv,
    ) -> Result<StepOutcome, Self::Error>;

    /// Releases deployment resources. Default: dropping the service is
    /// enough.
    fn teardown(&mut self, env: &mut ServiceEnv) -> Result<(), Self::Error> {
        let _ = env;
        Ok(())
    }
}
