//! Workspace-spanning integration tests.
//!
//! This crate exists to compile the integration suites in the repository's
//! top-level `tests/` directory (declared via `[[test]]` path entries in
//! `Cargo.toml`), exercising the public APIs of every `teenet-*` crate
//! together.
