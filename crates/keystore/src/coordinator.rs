//! The coordinator enclave: the trust anchor of the keystore fleet.
//!
//! The coordinator holds the master secret and dispatches per-worker,
//! per-epoch keys — but only to workers that pass remote attestation
//! against the expected worker measurement. It runs the challenger side
//! of the paper's Figure-1 protocol *inside* its own enclave: the
//! [`teenet::Challenger`] state machine lives in coordinator memory, and
//! a failed verify is an ecall rejection ([`ATTEST_REJECTED`]) the host
//! cannot paper over.
//!
//! Key release is epoch-based: every provision (and every revocation,
//! which is a forced rotation) bumps the worker's monotonic epoch
//! counter. The released [`ProvisionRecord`] carries that counter plus
//! the freshness nonce of the attestation session it is sealed into, so
//! workers can reject both cross-session replay and sealed-state
//! rollback.

use std::collections::HashMap;

use teenet::attest::{AttestConfig, AttestResponse, Challenger};
use teenet::channel::SecureChannel;
use teenet::identity::IdentityPolicy;
use teenet::responder::SessionNonce;
use teenet_crypto::hmac::hmac_sha256;
use teenet_crypto::schnorr::VerifyingKey;
use teenet_crypto::SecureRng;
use teenet_sgx::cost::CostModel;
use teenet_sgx::{EnclaveCtx, EnclaveProgram, Measurement, SgxError};

use crate::record::{Job, ProvisionRecord, KEY_LEN};

/// Ecall: start attesting a worker (emit message 1).
pub const FN_START_ATTEST: u64 = 0;
/// Ecall: verify a worker's attestation response (message 9).
pub const FN_FINISH_ATTEST: u64 = 1;
/// Ecall: mint a provision record for an attested worker (epoch bump).
pub const FN_PROVISION: u64 = 2;
/// Ecall: mint a signed job against a worker's current epoch.
pub const FN_SIGN_JOB: u64 = 3;
/// Ecall: revoke a worker's current epoch and re-provision (rotation).
pub const FN_REVOKE: u64 = 4;

/// Rejection message when a worker fails attestation — the coordinator
/// releases nothing.
pub const ATTEST_REJECTED: &str = "worker attestation rejected: no key release";
/// Rejection message for a finish with no matching start.
pub const NO_PENDING_ATTEST: &str = "no pending attestation for this worker";
/// Rejection message for provisioning a worker that never attested.
pub const UNKNOWN_WORKER: &str = "no attested channel for this worker";
/// Rejection message for signing a job before any provision.
pub const NO_EPOCH: &str = "worker has no provisioned key epoch";

/// The coordinator enclave program.
pub struct CoordinatorEnclave {
    config: AttestConfig,
    expected: Measurement,
    group_public: VerifyingKey,
    model: CostModel,
    rng: SecureRng,
    master: [u8; 32],
    pending: HashMap<u32, Challenger>,
    sessions: HashMap<u32, SessionNonce>,
    channels: HashMap<u32, SecureChannel>,
    epochs: HashMap<u32, u64>,
    jobs_minted: u64,
}

impl CoordinatorEnclave {
    /// A coordinator releasing keys only to enclaves measuring
    /// `expected`, verifying quotes under `group_public`.
    pub fn new(
        config: AttestConfig,
        expected: Measurement,
        group_public: VerifyingKey,
        mut rng: SecureRng,
    ) -> Self {
        let mut master = [0u8; 32];
        rng.fill_bytes(&mut master);
        CoordinatorEnclave {
            config,
            expected,
            group_public,
            model: CostModel::paper(),
            rng,
            master,
            pending: HashMap::new(),
            sessions: HashMap::new(),
            channels: HashMap::new(),
            epochs: HashMap::new(),
            jobs_minted: 0,
        }
    }

    /// Per-worker, per-epoch key derivation from the master secret.
    fn epoch_key(&self, worker: u32, epoch: u64) -> [u8; KEY_LEN] {
        let mut input = Vec::with_capacity(32);
        input.extend_from_slice(b"teenet-keystore-epoch");
        input.extend_from_slice(&worker.to_le_bytes());
        input.extend_from_slice(&epoch.to_le_bytes());
        hmac_sha256(&self.master, &input)
    }

    fn start_attest(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        let (worker, _) = parse_worker(input)?;
        let (challenger, request) = Challenger::start(
            IdentityPolicy::Mrenclave(self.expected),
            self.config.clone(),
            &self.model,
            &mut self.rng,
        )
        .map_err(|_| SgxError::EcallRejected("challenger start failed"))?;
        self.sessions.insert(worker, request.nonce);
        self.pending.insert(worker, challenger);
        let bytes = request.to_bytes();
        // Message 1 leaves the coordinator for the worker.
        ctx.ocall("send", &bytes);
        Ok(bytes)
    }

    fn finish_attest(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        let (worker, rest) = parse_worker(input)?;
        // Messages 5-8 arrive from the worker's platform.
        ctx.ocall("recv", &[]);
        let challenger = self
            .pending
            .remove(&worker)
            .ok_or(SgxError::EcallRejected(NO_PENDING_ATTEST))?;
        let response = AttestResponse::from_bytes(rest)
            .map_err(|_| SgxError::EcallRejected("bad attestation response"))?;
        let outcome = match challenger.verify(&response, &self.group_public, None) {
            Ok(outcome) => outcome,
            Err(_) => {
                // A failed worker gets no channel and no session: every
                // later release attempt fails closed with UNKNOWN_WORKER.
                self.sessions.remove(&worker);
                self.channels.remove(&worker);
                return Err(SgxError::EcallRejected(ATTEST_REJECTED));
            }
        };
        // The challenger's crypto ran inside this enclave; its real
        // transitions are already metered by the platform.
        ctx.charge(outcome.counters.normal_instr);
        let channel = outcome
            .channel
            .ok_or(SgxError::EcallRejected("attestation derived no channel"))?;
        self.channels.insert(worker, channel);
        let nonce = self
            .sessions
            .get(&worker)
            .ok_or(SgxError::EcallRejected(NO_PENDING_ATTEST))?;
        Ok(nonce.to_vec())
    }

    /// Mints the next epoch for `worker` and seals the provision record
    /// into the worker's attested channel. Shared by provisioning and
    /// revocation — a revoke *is* a forced rotation to a fresh epoch.
    fn mint_provision(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        let (worker, _) = parse_worker(input)?;
        let nonce = *self
            .sessions
            .get(&worker)
            .ok_or(SgxError::EcallRejected(UNKNOWN_WORKER))?;
        let next = self.epochs.get(&worker).copied().unwrap_or(0) + 1;
        let record = ProvisionRecord {
            key_id: worker,
            counter: next,
            nonce,
            key: self.epoch_key(worker, next),
        };
        let plain = record.to_bytes();
        // One key derivation plus the channel seal (encrypt + MAC).
        ctx.charge(2 * self.model.hmac_short + self.model.aes_bytes(plain.len()));
        let channel = self
            .channels
            .get_mut(&worker)
            .ok_or(SgxError::EcallRejected(UNKNOWN_WORKER))?;
        self.epochs.insert(worker, next);
        let mut out = nonce.to_vec();
        out.extend_from_slice(&channel.seal(&plain));
        // The sealed record leaves for the worker's platform.
        ctx.ocall("send", &out);
        Ok(out)
    }

    fn sign_job(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        let (worker, payload) = parse_worker(input)?;
        let epoch = self
            .epochs
            .get(&worker)
            .copied()
            .ok_or(SgxError::EcallRejected(NO_EPOCH))?;
        let job_id = self.jobs_minted;
        self.jobs_minted += 1;
        ctx.charge(self.model.hmac_short + self.model.sha256_bytes(payload.len()));
        let job = Job::mint(
            &self.epoch_key(worker, epoch),
            epoch,
            job_id,
            payload.to_vec(),
        );
        let bytes = job.to_bytes();
        // The signed job leaves for the worker's platform.
        ctx.ocall("send", &bytes);
        Ok(bytes)
    }
}

fn parse_worker(input: &[u8]) -> core::result::Result<(u32, &[u8]), SgxError> {
    let id = input
        .get(..4)
        .and_then(|b| <[u8; 4]>::try_from(b).ok())
        .ok_or(SgxError::EcallRejected("short worker id"))?;
    let rest = input.get(4..).unwrap_or(&[]);
    Ok((u32::from_le_bytes(id), rest))
}

impl EnclaveProgram for CoordinatorEnclave {
    fn code_image(&self) -> Vec<u8> {
        // The expected worker measurement is behaviour-defining policy:
        // it belongs in the coordinator's own measurement.
        let mut image = b"teenet-keystore-coordinator-v1".to_vec();
        image.extend_from_slice(&self.expected.0);
        image
    }

    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        fn_id: u64,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        match fn_id {
            FN_START_ATTEST => self.start_attest(ctx, input),
            FN_FINISH_ATTEST => self.finish_attest(ctx, input),
            FN_PROVISION | FN_REVOKE => self.mint_provision(ctx, input),
            FN_SIGN_JOB => self.sign_job(ctx, input),
            _ => Err(SgxError::EcallRejected("unknown coordinator fn")),
        }
    }
}
