//! Wire formats of the keystore protocol.
//!
//! Three messages cross the enclave boundary: the [`ProvisionRecord`] the
//! coordinator seals into the attested channel, the [`SealedSlot`] a
//! worker persists inside its sealed blob, and the [`Job`] the
//! coordinator signs for release. All three parse inside enclaves, so
//! every read is length-guarded — malformed input is an
//! [`SgxError::EcallRejected`], never a panic.

use teenet_crypto::hmac::hmac_sha256;
use teenet_sgx::SgxError;

type Result<T> = core::result::Result<T, SgxError>;

/// Key material length (HMAC-SHA256 output).
pub const KEY_LEN: usize = 32;
/// Freshness nonce length (the attestation session nonce).
pub const NONCE_LEN: usize = 32;

fn arr<const N: usize>(buf: &[u8], off: usize, err: impl Fn() -> SgxError) -> Result<[u8; N]> {
    let slice = buf.get(off..off + N).ok_or_else(&err)?;
    let mut out = [0u8; N];
    out.copy_from_slice(slice);
    Ok(out)
}

/// What the coordinator releases to an attested worker: a key bound to a
/// monotonic epoch counter and to the freshness nonce of the attestation
/// session it travels over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvisionRecord {
    /// Which fleet slot this key belongs to.
    pub key_id: u32,
    /// Monotonic epoch counter; a worker only adopts strictly newer ones.
    pub counter: u64,
    /// The attestation session nonce the record is fresh for.
    pub nonce: [u8; NONCE_LEN],
    /// The released key material.
    pub key: [u8; KEY_LEN],
}

impl ProvisionRecord {
    /// Wire encoding (travels channel-sealed, coordinator → worker).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 + NONCE_LEN + KEY_LEN);
        out.extend_from_slice(&self.key_id.to_le_bytes());
        out.extend_from_slice(&self.counter.to_le_bytes());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.key);
        out
    }

    /// Parses [`ProvisionRecord::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let err = || SgxError::EcallRejected("malformed provision record");
        if buf.len() != 4 + 8 + NONCE_LEN + KEY_LEN {
            return Err(err());
        }
        Ok(ProvisionRecord {
            key_id: u32::from_le_bytes(arr(buf, 0, err)?),
            counter: u64::from_le_bytes(arr(buf, 4, err)?),
            nonce: arr(buf, 12, err)?,
            key: arr(buf, 12 + NONCE_LEN, err)?,
        })
    }
}

/// What a worker persists inside its sealed blob: the adopted key and its
/// epoch counter. The freshness nonce is deliberately *not* kept — a
/// blob outlives the attestation session that delivered it; only the
/// counter gates re-activation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedSlot {
    /// Which fleet slot this key belongs to.
    pub key_id: u32,
    /// The epoch counter the rollback gate compares against.
    pub counter: u64,
    /// The key material.
    pub key: [u8; KEY_LEN],
}

impl SealedSlot {
    /// Plaintext encoding (only ever exists inside the enclave or sealed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 + KEY_LEN);
        out.extend_from_slice(&self.key_id.to_le_bytes());
        out.extend_from_slice(&self.counter.to_le_bytes());
        out.extend_from_slice(&self.key);
        out
    }

    /// Parses [`SealedSlot::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let err = || SgxError::EcallRejected("malformed sealed key slot");
        if buf.len() != 4 + 8 + KEY_LEN {
            return Err(err());
        }
        Ok(SealedSlot {
            key_id: u32::from_le_bytes(arr(buf, 0, err)?),
            counter: u64::from_le_bytes(arr(buf, 4, err)?),
            key: arr(buf, 12, err)?,
        })
    }
}

/// A signed job the coordinator dispatches for a worker to execute under
/// its provisioned key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// The key epoch the job was minted against.
    pub epoch: u64,
    /// Dispatch sequence number (unique per coordinator).
    pub job_id: u64,
    /// Opaque job payload.
    pub payload: Vec<u8>,
    /// HMAC over epoch, job id and payload under the epoch key.
    pub mac: [u8; 32],
}

impl Job {
    /// The MAC preimage binding a job to its epoch key.
    pub fn mac_input(epoch: u64, job_id: u64, payload: &[u8]) -> Vec<u8> {
        let mut input = Vec::with_capacity(24 + 16 + payload.len());
        input.extend_from_slice(b"teenet-keystore-job1");
        input.extend_from_slice(&epoch.to_le_bytes());
        input.extend_from_slice(&job_id.to_le_bytes());
        input.extend_from_slice(payload);
        input
    }

    /// Mints a job: MACs the payload under `key` for `epoch`.
    pub fn mint(key: &[u8; KEY_LEN], epoch: u64, job_id: u64, payload: Vec<u8>) -> Self {
        let mac = hmac_sha256(key, &Job::mac_input(epoch, job_id, &payload));
        Job {
            epoch,
            job_id,
            payload,
            mac,
        }
    }

    /// Wire encoding (travels in the clear, host-ferried to the worker).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 + 4 + self.payload.len() + 32);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.job_id.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses [`Job::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let err = || SgxError::EcallRejected("malformed job");
        let epoch = u64::from_le_bytes(arr(buf, 0, err)?);
        let job_id = u64::from_le_bytes(arr(buf, 8, err)?);
        let plen = u32::from_le_bytes(arr(buf, 16, err)?) as usize;
        let payload = buf.get(20..20 + plen).ok_or_else(err)?.to_vec();
        let mac: [u8; 32] = arr(buf, 20 + plen, err)?;
        if 20 + plen + 32 != buf.len() {
            return Err(err());
        }
        Ok(Job {
            epoch,
            job_id,
            payload,
            mac,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provision_record_roundtrip() {
        let r = ProvisionRecord {
            key_id: 7,
            counter: 99,
            nonce: [3u8; 32],
            key: [4u8; 32],
        };
        assert_eq!(ProvisionRecord::from_bytes(&r.to_bytes()).unwrap(), r);
        let bytes = r.to_bytes();
        assert!(ProvisionRecord::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(ProvisionRecord::from_bytes(&long).is_err());
    }

    #[test]
    fn sealed_slot_roundtrip() {
        let s = SealedSlot {
            key_id: 2,
            counter: 5,
            key: [9u8; 32],
        };
        assert_eq!(SealedSlot::from_bytes(&s.to_bytes()).unwrap(), s);
        assert!(SealedSlot::from_bytes(&[]).is_err());
    }

    #[test]
    fn job_roundtrip_and_mac() {
        let key = [6u8; 32];
        let job = Job::mint(&key, 3, 41, b"rotate tls ticket key".to_vec());
        let parsed = Job::from_bytes(&job.to_bytes()).unwrap();
        assert_eq!(parsed, job);
        assert_eq!(
            parsed.mac,
            hmac_sha256(&key, &Job::mac_input(3, 41, b"rotate tls ticket key"))
        );
        // Truncation and trailing garbage rejected.
        let bytes = job.to_bytes();
        assert!(Job::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes;
        long.push(0);
        assert!(Job::from_bytes(&long).is_err());
    }

    #[test]
    fn job_mac_binds_epoch() {
        let key = [6u8; 32];
        let a = Job::mint(&key, 1, 0, b"p".to_vec());
        let b = Job::mint(&key, 2, 0, b"p".to_vec());
        assert_ne!(a.mac, b.mac);
    }
}
