//! Keystore domain errors.
//!
//! Every protocol failure the fleet can hit — a worker that fails
//! attestation, a stale sealed blob replayed at a worker, a job minted
//! against a revoked epoch — is a distinct variant, never a silent
//! drop: the misuse literature's top TEE bugs (unchecked attestation
//! results, sealed-state rollback) must surface in reports.

use core::fmt;

use teenet_app::AppError;
use teenet_sgx::SgxError;

use crate::coordinator;
use crate::worker;

/// Everything the keystore workload can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeystoreError {
    /// A worker failed remote attestation against the coordinator's
    /// identity policy; the worker gets no key material.
    Attestation(&'static str),
    /// A provision record's freshness nonce did not match the worker's
    /// live attestation session.
    Freshness(&'static str),
    /// A sealed blob with a non-advancing monotonic counter was replayed
    /// at a worker (stale re-provision) and the worker rejected it.
    Rollback(&'static str),
    /// A worker *accepted* a stale sealed blob during the revoke-step
    /// rollback probe — the monotonic-counter gate is broken.
    RollbackNotEnforced,
    /// A job referenced a revoked key epoch.
    Revoked(&'static str),
    /// Wire-format or fleet-protocol violation.
    Protocol(&'static str),
    /// A calibration precondition failed (e.g. an empty fleet).
    Calibration(&'static str),
    /// An emulator-level failure underneath the protocol.
    Sgx(SgxError),
}

impl fmt::Display for KeystoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeystoreError::Attestation(m) => write!(f, "worker attestation failed: {m}"),
            KeystoreError::Freshness(m) => write!(f, "freshness check failed: {m}"),
            KeystoreError::Rollback(m) => write!(f, "rollback rejected: {m}"),
            KeystoreError::RollbackNotEnforced => {
                write!(
                    f,
                    "worker accepted a stale sealed blob (rollback gate broken)"
                )
            }
            KeystoreError::Revoked(m) => write!(f, "revoked epoch: {m}"),
            KeystoreError::Protocol(m) => write!(f, "keystore protocol violation: {m}"),
            KeystoreError::Calibration(m) => write!(f, "calibration rejected: {m}"),
            KeystoreError::Sgx(e) => write!(f, "sgx failure: {e}"),
        }
    }
}

impl std::error::Error for KeystoreError {}

impl From<AppError> for KeystoreError {
    fn from(e: AppError) -> Self {
        match e {
            AppError::Calibration(m) => KeystoreError::Calibration(m),
            AppError::Harness(m) => KeystoreError::Protocol(m),
        }
    }
}

impl From<SgxError> for KeystoreError {
    fn from(e: SgxError) -> Self {
        // Enclave-side domain rejections travel through the emulator as
        // `EcallRejected` with a known message; lift them back into their
        // domain variant so callers never have to string-match.
        match e {
            SgxError::EcallRejected(m) if m == worker::ROLLBACK_REJECTED => {
                KeystoreError::Rollback(m)
            }
            SgxError::EcallRejected(m) if m == worker::FRESHNESS_MISMATCH => {
                KeystoreError::Freshness(m)
            }
            SgxError::EcallRejected(m) if m == worker::EPOCH_REVOKED => KeystoreError::Revoked(m),
            SgxError::EcallRejected(m) if m == coordinator::ATTEST_REJECTED => {
                KeystoreError::Attestation(m)
            }
            other => KeystoreError::Sgx(other),
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, KeystoreError>;
