//! The keystore fleet as an [`EnclaveService`].
//!
//! Topology: one coordinator enclave on its own platform, and a fleet of
//! `fleet_size` worker enclaves sharing a second platform — the
//! many-enclaves-per-platform shape none of the other four workloads
//! exercises. Setup attests and provisions every fleet member (an
//! attestation storm proportional to fleet size); one steady-state
//! session then walks one worker through the full churn cycle:
//!
//! `attest` × `provision` × `release`(×jobs) × `revoke`
//!
//! The `revoke` step doubles as a security self-check: after rotating
//! the worker to a fresh epoch it replays the *superseded* sealed blob
//! and requires the worker to reject it with
//! [`worker::ROLLBACK_REJECTED`] — a worker that accepts the stale blob
//! fails the whole calibration with
//! [`KeystoreError::RollbackNotEnforced`]. Rollback rejection is thus
//! exercised deterministically in every report, not just in tests.
//!
//! Under [`TransitionMode::Switchless`] the release step dispatches jobs
//! through batched ecalls on both platforms (the Table-2 amortisation);
//! all enclave ocalls ride the switchless ring.

use teenet::attest::AttestRequest;
use teenet::AttestConfig;
use teenet_app::ledger::AttestKind;
use teenet_app::{
    AttestLedger, EnclaveService, ServiceEnv, StepExecution, StepOutcome, StepRequest, StepSpec,
};
use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
use teenet_crypto::SecureRng;
use teenet_sgx::cost::Counters;
use teenet_sgx::{
    deploy_platform, EnclaveId, EpidGroup, Report, SgxError, SwitchlessConfig, TeePlatform,
    TransitionMode, TransitionStats,
};

use crate::coordinator::{
    CoordinatorEnclave, FN_FINISH_ATTEST, FN_PROVISION, FN_REVOKE, FN_SIGN_JOB, FN_START_ATTEST,
};
use crate::error::{KeystoreError, Result};
use crate::worker::{
    WorkerEnclave, FN_ACTIVATE, FN_ATTEST_BEGIN, FN_ATTEST_FINISH, FN_JOB, FN_STAGE,
    ROLLBACK_REJECTED,
};

/// Ledger tag for the coordinator as a challenger.
const COORDINATOR_TAG: u64 = 70_000;

/// Per-worker sealed-blob history the host persists: the active blob and
/// the one it superseded (the revoke step's rollback-probe input).
#[derive(Default)]
struct BlobSlot {
    current: Option<Vec<u8>>,
    previous: Option<Vec<u8>>,
}

struct Deployed {
    coordinator_platform: Box<dyn TeePlatform>,
    coordinator: EnclaveId,
    worker_platform: Box<dyn TeePlatform>,
    workers: Vec<EnclaveId>,
    blobs: Vec<BlobSlot>,
    cursor: usize,
    next_job: u64,
}

/// The attested coordinator/worker keystore workload, driven through
/// [`teenet_app::AppHarness`].
pub struct KeystoreService {
    fleet_size: u32,
    jobs_per_session: u32,
    job_payload_bytes: usize,
    deployed: Option<Deployed>,
}

impl KeystoreService {
    /// A fleet of `fleet_size` workers releasing `jobs_per_session`
    /// signed jobs per session.
    pub fn new(fleet_size: u32, jobs_per_session: u32) -> Self {
        KeystoreService {
            fleet_size,
            jobs_per_session,
            job_payload_bytes: 64,
            deployed: None,
        }
    }

    fn state(&self) -> Result<&Deployed> {
        self.deployed
            .as_ref()
            .ok_or(KeystoreError::Protocol("keystore service not deployed"))
    }
}

impl Default for KeystoreService {
    fn default() -> Self {
        KeystoreService::new(4, 4)
    }
}

fn worker_at(state: &Deployed, idx: usize) -> Result<EnclaveId> {
    state
        .workers
        .get(idx)
        .copied()
        .ok_or(KeystoreError::Protocol("worker index out of range"))
}

/// Runs the full Figure-1 attestation of fleet member `idx` with the
/// coordinator enclave as challenger, ferrying the messages between the
/// two platforms. Returns the wire sizes of messages 1 and 5-8.
fn attest_fleet_member(
    state: &mut Deployed,
    idx: usize,
    ledger: &mut AttestLedger,
) -> Result<(usize, usize)> {
    let worker = worker_at(state, idx)?;
    let wid = (idx as u32).to_le_bytes();
    let request_wire =
        state
            .coordinator_platform
            .ecall_nohost(state.coordinator, FN_START_ATTEST, &wid)?;
    let request = AttestRequest::from_bytes(&request_wire)
        .map_err(|_| KeystoreError::Protocol("coordinator emitted a bad attest request"))?;
    let mut begin_input = request_wire.clone();
    begin_input.extend_from_slice(&state.worker_platform.attestation_target_info().mrenclave.0);
    let report_bytes = state
        .worker_platform
        .ecall_nohost(worker, FN_ATTEST_BEGIN, &begin_input)?;
    let report = Report::from_bytes(&report_bytes)?;
    let evidence = state.worker_platform.evidence(&report)?;
    let mut finish_input = request.nonce.to_vec();
    finish_input.extend_from_slice(&evidence.to_bytes());
    let response_wire =
        state
            .worker_platform
            .ecall_nohost(worker, FN_ATTEST_FINISH, &finish_input)?;
    let mut verify_input = wid.to_vec();
    verify_input.extend_from_slice(&response_wire);
    // A verify failure surfaces here as KeystoreError::Attestation via
    // the From<SgxError> lifting — never swallowed.
    state
        .coordinator_platform
        .ecall_nohost(state.coordinator, FN_FINISH_ATTEST, &verify_input)?;
    ledger.record(AttestKind::KeystoreWorker, COORDINATOR_TAG, idx as u64);
    Ok((request_wire.len(), response_wire.len()))
}

/// Mints the next epoch for worker `idx` (provision or revoke-rotation),
/// stages the channel-sealed record through the worker and activates the
/// resulting sealed blob. Returns the wire sizes of the sealed release
/// and the persisted blob.
fn provision_fleet_member(
    state: &mut Deployed,
    idx: usize,
    revoke: bool,
) -> Result<(usize, usize)> {
    let worker = worker_at(state, idx)?;
    let wid = (idx as u32).to_le_bytes();
    let fn_id = if revoke { FN_REVOKE } else { FN_PROVISION };
    let release_wire = state
        .coordinator_platform
        .ecall_nohost(state.coordinator, fn_id, &wid)?;
    let blob_wire = state
        .worker_platform
        .ecall_nohost(worker, FN_STAGE, &release_wire)?;
    state
        .worker_platform
        .ecall_nohost(worker, FN_ACTIVATE, &blob_wire)?;
    let slot = state
        .blobs
        .get_mut(idx)
        .ok_or(KeystoreError::Protocol("worker index out of range"))?;
    slot.previous = slot.current.take();
    slot.current = Some(blob_wire.clone());
    Ok((release_wire.len(), blob_wire.len()))
}

/// Replays the superseded sealed blob at worker `idx` and demands the
/// rollback rejection. A worker that *accepts* stale sealed state is a
/// broken deployment: fail the calibration loudly.
fn probe_rollback(state: &mut Deployed, idx: usize) -> Result<()> {
    let worker = worker_at(state, idx)?;
    let stale = state
        .blobs
        .get(idx)
        .and_then(|slot| slot.previous.clone())
        .ok_or(KeystoreError::Protocol("no superseded blob to probe"))?;
    match state
        .worker_platform
        .ecall_nohost(worker, FN_ACTIVATE, &stale)
    {
        Err(SgxError::EcallRejected(m)) if m == ROLLBACK_REJECTED => Ok(()),
        Ok(_) => Err(KeystoreError::RollbackNotEnforced),
        Err(e) => Err(e.into()),
    }
}

impl EnclaveService for KeystoreService {
    type Error = KeystoreError;

    fn name(&self) -> &'static str {
        "keystore"
    }

    fn describe(&self) -> &'static str {
        "attested coordinator/worker keystore: sealed key churn across an enclave fleet"
    }

    fn deploy(&mut self, env: &mut ServiceEnv) -> Result<()> {
        if self.fleet_size == 0 {
            return Err(KeystoreError::Calibration(
                "keystore fleet needs at least one worker",
            ));
        }
        let mut rng = SecureRng::seed_from_u64(env.seed).fork(b"keystore");
        let epid = EpidGroup::new(9, &mut rng).map_err(KeystoreError::Sgx)?;
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng)
            .map_err(|_| KeystoreError::Protocol("author keygen failed"))?;
        let mut worker_platform = deploy_platform(env.backend, "keystore-fleet", &epid, env.seed)
            .map_err(KeystoreError::Sgx)?;
        let mut workers = Vec::with_capacity(self.fleet_size as usize);
        for _ in 0..self.fleet_size {
            let id = worker_platform
                .create_signed(
                    Box::new(WorkerEnclave::new(AttestConfig::fast())),
                    &author,
                    1,
                )
                .map_err(KeystoreError::Sgx)?;
            workers.push(id);
        }
        let first = workers
            .first()
            .copied()
            .ok_or(KeystoreError::Protocol("empty fleet after deploy"))?;
        let expected = worker_platform
            .measurement_of(first)
            .map_err(KeystoreError::Sgx)?;
        let mut coordinator_platform = deploy_platform(
            env.backend,
            "keystore-coordinator",
            &epid,
            env.seed.wrapping_add(1),
        )
        .map_err(KeystoreError::Sgx)?;
        let coordinator = coordinator_platform
            .create_signed(
                Box::new(CoordinatorEnclave::new(
                    AttestConfig::fast(),
                    expected,
                    epid.public_key(),
                    rng.fork(b"coordinator"),
                )),
                &author,
                1,
            )
            .map_err(KeystoreError::Sgx)?;
        let fleet = workers.len();
        self.deployed = Some(Deployed {
            coordinator_platform,
            coordinator,
            worker_platform,
            workers,
            blobs: (0..fleet).map(|_| BlobSlot::default()).collect(),
            cursor: 0,
            next_job: 0,
        });
        Ok(())
    }

    /// The attestation storm: every fleet member attests to the
    /// coordinator and receives its first sealed key epoch.
    fn provision(&mut self, env: &mut ServiceEnv) -> Result<()> {
        let state = self
            .deployed
            .as_mut()
            .ok_or(KeystoreError::Protocol("keystore service not deployed"))?;
        for idx in 0..state.workers.len() {
            attest_fleet_member(state, idx, &mut env.ledger)?;
            provision_fleet_member(state, idx, false)?;
        }
        Ok(())
    }

    fn set_transition_mode(
        &mut self,
        mode: TransitionMode,
        switchless: SwitchlessConfig,
    ) -> Result<()> {
        let state = self
            .deployed
            .as_mut()
            .ok_or(KeystoreError::Protocol("keystore service not deployed"))?;
        let coordinator = state.coordinator;
        // Configure before switching: entering switchless initialises each
        // worker pool from the configuration in force at that moment.
        state
            .coordinator_platform
            .configure_switchless(coordinator, switchless)
            .map_err(KeystoreError::Sgx)?;
        state
            .coordinator_platform
            .set_transition_mode(coordinator, mode)
            .map_err(KeystoreError::Sgx)?;
        for idx in 0..state.workers.len() {
            let worker = worker_at(state, idx)?;
            state
                .worker_platform
                .configure_switchless(worker, switchless)
                .map_err(KeystoreError::Sgx)?;
            state
                .worker_platform
                .set_transition_mode(worker, mode)
                .map_err(KeystoreError::Sgx)?;
        }
        Ok(())
    }

    fn server_counters(&self) -> Result<Counters> {
        Ok(self.state()?.worker_platform.total_counters())
    }

    fn client_counters(&self) -> Result<Counters> {
        Ok(self.state()?.coordinator_platform.total_counters())
    }

    fn transition_stats(&self) -> Result<TransitionStats> {
        let state = self.state()?;
        let mut stats = state.worker_platform.total_transition_stats();
        stats.merge(state.coordinator_platform.total_transition_stats());
        Ok(stats)
    }

    fn session_script(&self, env: &ServiceEnv) -> Result<Vec<StepSpec>> {
        if self.jobs_per_session == 0 {
            return Err(KeystoreError::Calibration(
                "a session needs at least 1 job release",
            ));
        }
        let release = match env.mode {
            TransitionMode::Classic => StepSpec::repeat("release", self.jobs_per_session),
            TransitionMode::Switchless => StepSpec::amortised("release", self.jobs_per_session),
        };
        Ok(vec![
            StepSpec::repeat("attest", 1),
            StepSpec::repeat("provision", 1),
            release,
            StepSpec::repeat("revoke", 1),
        ])
    }

    fn run_step(
        &mut self,
        spec: &StepSpec,
        request: StepRequest,
        env: &mut ServiceEnv,
    ) -> Result<StepOutcome> {
        let payload_bytes = self.job_payload_bytes;
        let state = self
            .deployed
            .as_mut()
            .ok_or(KeystoreError::Protocol("keystore service not deployed"))?;
        let idx = state.cursor;
        let (request_bytes, response_bytes) = match spec.name {
            // Session churn re-attests the session's worker; the ledger
            // records the repeat as avoided first-contact work.
            "attest" => attest_fleet_member(state, idx, &mut env.ledger)?,
            "provision" => provision_fleet_member(state, idx, false)?,
            "release" => {
                let worker = worker_at(state, idx)?;
                let wid = (idx as u32).to_le_bytes();
                let payload = vec![0x6bu8; payload_bytes];
                let mut sign_input = wid.to_vec();
                sign_input.extend_from_slice(&payload);
                match request {
                    StepRequest::Once => {
                        state.next_job += 1;
                        let job_wire = state.coordinator_platform.ecall_nohost(
                            state.coordinator,
                            FN_SIGN_JOB,
                            &sign_input,
                        )?;
                        let receipt = state
                            .worker_platform
                            .ecall_nohost(worker, FN_JOB, &job_wire)?;
                        (job_wire.len(), receipt.len())
                    }
                    StepRequest::Batch(k) => {
                        state.next_job += u64::from(k);
                        let sign_calls: Vec<(u64, Vec<u8>)> =
                            (0..k).map(|_| (FN_SIGN_JOB, sign_input.clone())).collect();
                        let job_wires = state
                            .coordinator_platform
                            .ecall_batch_nohost(state.coordinator, &sign_calls)?;
                        let release_calls: Vec<(u64, Vec<u8>)> =
                            job_wires.iter().map(|j| (FN_JOB, j.clone())).collect();
                        let receipts = state
                            .worker_platform
                            .ecall_batch_nohost(worker, &release_calls)?;
                        let job_len = job_wires.first().map(Vec::len).unwrap_or(0);
                        let receipt_len = receipts.first().map(Vec::len).unwrap_or(0);
                        (job_len, receipt_len)
                    }
                }
            }
            "revoke" => {
                let sizes = provision_fleet_member(state, idx, true)?;
                probe_rollback(state, idx)?;
                state.cursor = (state.cursor + 1) % state.workers.len().max(1);
                sizes
            }
            _ => return Err(KeystoreError::Protocol("unknown keystore step")),
        };
        Ok(StepOutcome::Executed(StepExecution {
            request_bytes,
            response_bytes,
            // Both sides run on metered platforms; there is no modelled
            // client remainder.
            client: Counters::new(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_app::{AppHarness, WorkProfile};

    fn calibrate(seed: u64, fleet: u32, jobs: u32, mode: TransitionMode) -> Result<WorkProfile> {
        AppHarness::new(seed, mode).calibrate(&mut KeystoreService::new(fleet, jobs))
    }

    #[test]
    fn keystore_profile_shape() {
        let profile = calibrate(7, 4, 4, TransitionMode::Classic).unwrap();
        // attest + provision + 4×release + revoke.
        assert_eq!(profile.steps.len(), 7);
        assert_eq!(profile.steps[0].name, "attest");
        assert_eq!(profile.steps[1].name, "provision");
        assert!(profile.steps[2..6].iter().all(|s| s.name == "release"));
        assert_eq!(profile.steps[6].name, "revoke");
        // Setup bootstraps the whole fleet: it dwarfs one session step.
        assert!(profile.setup.normal_instr > profile.steps[1].server.normal_instr);
        // The attest step is the expensive one (quote verify on the
        // coordinator side, quote sign on the worker platform).
        assert!(profile.steps[0].client.normal_instr > profile.steps[2].client.normal_instr);
    }

    #[test]
    fn fleet_setup_scales_with_size() {
        let small = calibrate(7, 2, 1, TransitionMode::Classic).unwrap();
        let large = calibrate(7, 6, 1, TransitionMode::Classic).unwrap();
        assert!(
            large.setup.normal_instr > small.setup.normal_instr,
            "a bigger fleet must cost more to bootstrap"
        );
    }

    #[test]
    fn attestation_storm_is_ledgered() {
        let mut svc = KeystoreService::new(5, 1);
        let mut env = ServiceEnv::new(3, TransitionMode::Classic);
        svc.deploy(&mut env).unwrap();
        svc.provision(&mut env).unwrap();
        assert_eq!(env.ledger.count(AttestKind::KeystoreWorker), 5);
    }

    #[test]
    fn empty_fleet_is_a_domain_error() {
        let err = calibrate(3, 0, 1, TransitionMode::Classic).unwrap_err();
        assert_eq!(
            err,
            KeystoreError::Calibration("keystore fleet needs at least one worker")
        );
    }

    #[test]
    fn zero_jobs_is_a_domain_error() {
        let err = calibrate(3, 2, 0, TransitionMode::Classic).unwrap_err();
        assert_eq!(
            err,
            KeystoreError::Calibration("a session needs at least 1 job release")
        );
    }

    #[test]
    fn switchless_elides_fleet_transitions() {
        let classic = calibrate(9, 3, 4, TransitionMode::Classic).unwrap();
        let sw = calibrate(9, 3, 4, TransitionMode::Switchless).unwrap();
        assert_eq!(classic.session_transitions().elided, 0);
        assert!(sw.session_transitions().elided > 0);
        let sgx = |p: &WorkProfile| p.session_server().sgx_instr + p.session_client().sgx_instr;
        assert!(sgx(&sw) < sgx(&classic));
    }
}
