#![warn(missing_docs)]

//! # teenet-keystore
//!
//! The fifth paper workload: an attested coordinator/worker keystore.
//! A coordinator enclave holds a master secret and dispatches signed
//! jobs to a fleet of worker enclaves sharing one platform — the
//! many-enclaves-per-platform topology fleet deployments actually run.
//! Key release is gated on remote attestation (measurement policy +
//! freshness nonce), and sealed key blobs carry a monotonic epoch
//! counter so stale re-provision (sealed-state rollback) is rejected
//! inside the worker.
//!
//! The protocol per worker:
//!
//! 1. **Attest** — the coordinator runs the paper's Figure-1 challenge
//!    in-enclave against the worker's measurement; failure is a domain
//!    error, never silent.
//! 2. **Provision** — the coordinator bumps the worker's epoch and
//!    seals a [`record::ProvisionRecord`] into the attested channel;
//!    the worker checks freshness, re-seals the slot under its own
//!    MRENCLAVE key, and activates it only if the counter advanced.
//! 3. **Release** — signed [`record::Job`]s execute under the active
//!    epoch key; jobs against revoked epochs are rejected.
//! 4. **Revoke** — a forced rotation to a fresh epoch, followed by a
//!    rollback probe replaying the superseded blob (which must fail).
//!
//! [`KeystoreService`] drives all of this through the
//! [`teenet_app::AppHarness`] lifecycle so the workload calibrates,
//! replays, shards and reports like the other four.

pub mod coordinator;
pub mod error;
pub mod record;
pub mod service;
pub mod worker;

pub use coordinator::CoordinatorEnclave;
pub use error::{KeystoreError, Result};
pub use record::{Job, ProvisionRecord, SealedSlot};
pub use service::KeystoreService;
pub use worker::WorkerEnclave;
