//! The worker enclave: one member of the keystore fleet.
//!
//! A worker holds at most one active key slot. It answers the two
//! standard attestation-responder ecalls, then gates key adoption behind
//! a two-phase stage/activate protocol:
//!
//! 1. **Stage** ([`FN_STAGE`]): a channel-sealed [`ProvisionRecord`]
//!    arrives over the live attestation session. The worker checks the
//!    record's freshness nonce against that session, re-seals the key
//!    slot under its own MRENCLAVE seal key, and hands the sealed blob
//!    back to the host for persistence — *without* adopting the key.
//! 2. **Activate** ([`FN_ACTIVATE`]): the host loads a sealed blob back
//!    in. The worker unseals it and adopts the slot only if its
//!    monotonic epoch counter is strictly newer than the last accepted
//!    one — a replayed (stale) blob is rejected with
//!    [`ROLLBACK_REJECTED`], the sealed-state rollback defence the
//!    misuse literature calls out.
//!
//! Signed jobs ([`FN_JOB`]) release work only under the active epoch:
//! a job minted against a revoked epoch fails with [`EPOCH_REVOKED`].

use teenet::responder::AttestResponder;
use teenet::AttestConfig;
use teenet_crypto::hmac::{hmac_sha256, hmac_verify};
use teenet_sgx::cost::CostModel;
use teenet_sgx::keys::KeyRequest;
use teenet_sgx::seal::SealedBlob;
use teenet_sgx::{EnclaveCtx, EnclaveProgram, SgxError};

use crate::record::{Job, ProvisionRecord, SealedSlot, KEY_LEN, NONCE_LEN};

/// Ecall: attestation begin (standard responder message 1→3).
pub const FN_ATTEST_BEGIN: u64 = 0;
/// Ecall: attestation finish (standard responder message 4→8).
pub const FN_ATTEST_FINISH: u64 = 1;
/// Ecall: stage a channel-sealed provision record into a sealed blob.
pub const FN_STAGE: u64 = 2;
/// Ecall: activate a sealed blob (the monotonic-counter gate).
pub const FN_ACTIVATE: u64 = 3;
/// Ecall: execute one signed job under the active key.
pub const FN_JOB: u64 = 4;

/// Rejection message for a stale sealed blob (counter not advancing).
pub const ROLLBACK_REJECTED: &str = "stale sealed slot: monotonic counter did not advance";
/// Rejection message for a provision record minted for another session.
pub const FRESHNESS_MISMATCH: &str = "provision record not fresh for this attestation session";
/// Rejection message for a job minted against a non-active epoch.
pub const EPOCH_REVOKED: &str = "job epoch is not the active key epoch";
/// Rejection message for a job whose MAC fails under the active key.
pub const JOB_MAC_INVALID: &str = "job MAC invalid under the active key";
/// Rejection message for job release before any activation.
pub const NO_ACTIVE_KEY: &str = "no active key slot on this worker";

/// Seal label binding blobs to the keystore slot format.
const SLOT_LABEL: &[u8] = b"teenet-keystore-slot-v1";

struct ActiveSlot {
    key_id: u32,
    material: [u8; KEY_LEN],
}

/// The worker enclave program.
pub struct WorkerEnclave {
    responder: AttestResponder,
    model: CostModel,
    last_counter: u64,
    active: Option<ActiveSlot>,
}

impl WorkerEnclave {
    /// A fresh worker answering attestations under `config`.
    pub fn new(config: AttestConfig) -> Self {
        WorkerEnclave {
            responder: AttestResponder::new(config),
            model: CostModel::paper(),
            last_counter: 0,
            active: None,
        }
    }

    fn stage(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        if input.len() < NONCE_LEN + 1 {
            return Err(SgxError::EcallRejected("short stage input"));
        }
        let (nonce_bytes, sealed_msg) = input.split_at(NONCE_LEN);
        let nonce: [u8; NONCE_LEN] = nonce_bytes
            .try_into()
            .map_err(|_| SgxError::EcallRejected("bad session nonce"))?;
        // The record arrives over the attested channel of that session;
        // opening it costs one decrypt + MAC check.
        ctx.charge(self.model.aes_bytes(sealed_msg.len()) + self.model.hmac_short);
        let channel = self.responder.channel_mut(&nonce)?;
        let plain = channel
            .open(sealed_msg)
            .map_err(|_| SgxError::EcallRejected("provision record failed channel open"))?;
        let record = ProvisionRecord::from_bytes(&plain)?;
        // Freshness: the record must be minted for *this* session, not
        // replayed from an earlier attestation of this worker.
        if record.nonce != nonce {
            return Err(SgxError::EcallRejected(FRESHNESS_MISMATCH));
        }
        let slot = SealedSlot {
            key_id: record.key_id,
            counter: record.counter,
            key: record.key,
        };
        let blob = ctx.seal(KeyRequest::SealEnclave, SLOT_LABEL, &slot.to_bytes());
        let bytes = blob.to_bytes();
        // The sealed blob goes out for host persistence.
        ctx.ocall("persist", &bytes);
        Ok(bytes)
    }

    fn activate(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        let blob = SealedBlob::from_bytes(input)?;
        let plain = ctx.unseal(KeyRequest::SealEnclave, &blob)?;
        let slot = SealedSlot::from_bytes(&plain)?;
        // The rollback gate: only a strictly advancing counter is adopted.
        if slot.counter <= self.last_counter {
            return Err(SgxError::EcallRejected(ROLLBACK_REJECTED));
        }
        self.last_counter = slot.counter;
        self.active = Some(ActiveSlot {
            key_id: slot.key_id,
            material: slot.key,
        });
        let ack = slot.counter.to_le_bytes().to_vec();
        // Acknowledge the adopted epoch back to the coordinator.
        ctx.ocall("send", &ack);
        Ok(ack)
    }

    fn release(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        let job = Job::from_bytes(input)?;
        let slot = self
            .active
            .as_ref()
            .ok_or(SgxError::EcallRejected(NO_ACTIVE_KEY))?;
        if job.epoch != self.last_counter {
            return Err(SgxError::EcallRejected(EPOCH_REVOKED));
        }
        // Verify the job, then produce the keyed execution receipt.
        ctx.charge(2 * (self.model.hmac_short + self.model.sha256_bytes(job.payload.len())));
        if !hmac_verify(
            &slot.material,
            &Job::mac_input(job.epoch, job.job_id, &job.payload),
            &job.mac,
        ) {
            return Err(SgxError::EcallRejected(JOB_MAC_INVALID));
        }
        let mut receipt_input = Vec::with_capacity(28 + job.payload.len());
        receipt_input.extend_from_slice(b"teenet-keystore-rcpt");
        receipt_input.extend_from_slice(&slot.key_id.to_le_bytes());
        receipt_input.extend_from_slice(&job.job_id.to_le_bytes());
        receipt_input.extend_from_slice(&job.payload);
        let receipt = hmac_sha256(&slot.material, &receipt_input).to_vec();
        // The receipt travels back to the dispatcher.
        ctx.ocall("send", &receipt);
        Ok(receipt)
    }
}

impl EnclaveProgram for WorkerEnclave {
    fn code_image(&self) -> Vec<u8> {
        b"teenet-keystore-worker-v1".to_vec()
    }

    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        fn_id: u64,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        match fn_id {
            FN_ATTEST_BEGIN => self.responder.handle_begin(ctx, input),
            FN_ATTEST_FINISH => self.responder.handle_finish(ctx, input),
            FN_STAGE => self.stage(ctx, input),
            FN_ACTIVATE => self.activate(ctx, input),
            FN_JOB => self.release(ctx, input),
            _ => Err(SgxError::EcallRejected("unknown worker fn")),
        }
    }
}
