//! `teenet-analyze`: correctness tooling for the teenet workspace.
//!
//! Two engines (see DESIGN.md §"Static analysis and model checking"):
//!
//! 1. An **enclave-invariant linter** — a hand-rolled token scanner
//!    (no `syn`, no network) enforcing the repo's enclave hygiene
//!    rules: no aborts or data-dependent indexing in enclave-resident
//!    code, no secret key material reaching egress sinks outside the
//!    sealing API, no floating point in cycle-accounting paths, and no
//!    wall-clock/ambient-entropy use outside the netsim virtual clock.
//!    Findings are waivable in-source with an auditable reason
//!    (`// teenet-analyze: allow(<rule>) -- <reason>`).
//! 2. A **switchless-ring model checker** — a bounded
//!    exhaustive-interleaving explorer over the concurrent design that
//!    `teenet_sgx::switchless` emulates sequentially, proving no lost
//!    wakeups, no dropped or double-executed calls, and post
//!    conservation across every interleaving within the bounds.
//!
//! The binary (`cargo run -p teenet-analyze`) runs the linter; CI runs
//! it with `--deny-findings` plus `--model-check` and fails on any
//! unwaived finding or ring-invariant violation.

pub mod config;
pub mod flow;
pub mod lexer;
pub mod report;
pub mod ring;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::AnalyzeConfig;
use report::LintReport;

/// Scans every non-excluded `.rs` file under `root` and returns the
/// report. File order (and therefore finding order) is sorted, so the
/// report is byte-stable for a given tree.
pub fn scan_workspace(root: &Path, config: &AnalyzeConfig) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        findings.extend(rules::scan_file(config, rel, &src));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    Ok(LintReport {
        files_scanned: files.len(),
        findings,
    })
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &AnalyzeConfig,
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = rel_path(root, &path);
        if config.is_excluded(&rel) {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs_files(root, &path, config, out)?;
        } else if ty.is_file() && path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path (the form the config matches).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_path_is_slash_separated() {
        let root = Path::new("/w");
        assert_eq!(rel_path(root, Path::new("/w/a/b/c.rs")), "a/b/c.rs");
        assert_eq!(rel_path(root, Path::new("/w/c.rs")), "c.rs");
    }
}
