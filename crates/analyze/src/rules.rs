//! The enclave-invariant rules and the waiver grammar.
//!
//! Eight rules, each defending a specific property the paper's argument
//! rests on (see DESIGN.md for the full rationale):
//!
//! * **`enclave-abort`** (L1a) — no `unwrap()` / `expect()` /
//!   `panic!` / `unreachable!` / `todo!` / `unimplemented!` in
//!   enclave-resident code. Untrusted input must surface as `Result`,
//!   never abort the enclave ("What You Trust Is Insecure": crashing an
//!   enclave on hostile input is a denial-of-service primitive and often
//!   an oracle).
//! * **`enclave-index`** (L1b) — no *data-dependent* indexing or
//!   slicing in enclave-resident code: `buf[off..off + n]` panics when a
//!   hostile length check was forgotten. All-literal indices
//!   (`buf[0]`, `buf[..32]`) and named constants (`buf[..CELL_LEN]`)
//!   are allowed — they fail loudly and deterministically in tests, not
//!   data-dependently in production. Use `.get(..)` and return an error.
//! * **`secret-egress`** (L2) — secret key material must not reach a
//!   boundary-crossing call (`ocall`, `send_packets`) except through
//!   the sealing API. Flow-aware: on top of the original token-adjacency
//!   check, taint from secret-named bindings is propagated through
//!   intermediate `let` bindings and helper-call arguments (see
//!   [`crate::flow`]), so renaming a secret no longer hides the leak.
//! * **`float-accounting`** (L3) — no floating point in
//!   instruction/cycle accounting files (the exact class of precision
//!   bug PR 2 fixed in `Counters::cycles`).
//! * **`wall-clock`** (L4) — no wall-clock or ambient-entropy APIs
//!   (`Instant`, `SystemTime`, `thread_rng`, ...) outside the netsim
//!   virtual clock; determinism of the load reports depends on it.
//! * **`attestation-unchecked`** (L5) — a call to an attestation-verify
//!   function (`verify`, `attest_enclave`, `mutual_attest`) whose
//!   `Result` is discarded — `let _ =`, a trailing `.ok()`/`.err()`, a
//!   bare `;`, an empty `if let Err(_) = .. {}` body, or a
//!   `.unwrap_or_default()` that fabricates a default verdict — is a
//!   finding. An unchecked verdict is worse than no attestation: the
//!   caller proceeds as if the peer were measured.
//! * **`seal-rollback`** (L6) — in enclave-resident code, a value
//!   recovered by `unseal` must have a counter/epoch field compared
//!   with an ordered (strictly-greater) check before any use of its key
//!   material (a `.key`/`.material` projection or adoption into
//!   `self.<field>`). This is keystore `activate`'s gate, generalized:
//!   without it the host can replay an old sealed blob ("What You Trust
//!   Is Insecure" finds sealed-state rollback the most common real
//!   sealing misuse).
//! * **`seal-nonce-reuse`** (L7) — the same nonce/IV identifier,
//!   projection or array literal reaching two distinct seal/encrypt
//!   call sites (`seal`, `ctr_apply`, `apply`) in one function without
//!   re-derivation in between (a reassignment or `&mut` refresh). CTR
//!   keystreams XOR plaintext, so one nonce reuse under the same key
//!   reveals the XOR of two plaintexts.
//!
//! **Test code** (`#[cfg(test)]` modules, `#[test]` functions) is
//! exempt from L1a/L1b by construction: a test aborting on a failed
//! expectation is the assertion mechanism, not an enclave abort — and
//! from L6, because rollback tests must construct the very replays the
//! rule forbids. The other rules still apply in tests (tests must stay
//! deterministic and must not leak secrets either); a CTR round-trip
//! test that deliberately reuses a nonce carries an explicit waiver.
//!
//! ## Waiver grammar
//!
//! ```text
//! // teenet-analyze: allow(rule-a, rule-b) -- why this is sound
//! // teenet-analyze: allow-block(rule) -- covers the next braced block
//! // teenet-analyze: allow-file(rule) -- covers the whole file
//! ```
//!
//! `allow` covers its own line and the line below the comment. Every
//! waiver needs a non-empty reason after `--`; a malformed waiver is
//! itself a finding (`bad-waiver`), and a waiver that suppresses
//! nothing is a finding too (`unused-waiver`) so stale waivers cannot
//! accumulate.

use crate::config::AnalyzeConfig;
use crate::flow::{function_bodies, FlowAnalysis, FnBody};
use crate::lexer::{lex, Token, TokenKind};

/// Stable rule identifiers (used in reports, JSON and waivers).
pub mod rule {
    /// L1a: aborts in enclave-resident code.
    pub const ENCLAVE_ABORT: &str = "enclave-abort";
    /// L1b: data-dependent indexing in enclave-resident code.
    pub const ENCLAVE_INDEX: &str = "enclave-index";
    /// L2: secret material reaching an egress sink.
    pub const SECRET_EGRESS: &str = "secret-egress";
    /// L3: floating point in accounting paths.
    pub const FLOAT_ACCOUNTING: &str = "float-accounting";
    /// L4: wall-clock/entropy outside the virtual clock.
    pub const WALL_CLOCK: &str = "wall-clock";
    /// L5: a discarded attestation-verify `Result`.
    pub const ATTEST_UNCHECKED: &str = "attestation-unchecked";
    /// L6: unsealed state used before a monotonic-counter check.
    pub const SEAL_ROLLBACK: &str = "seal-rollback";
    /// L7: a nonce/IV reaching two seal/encrypt call sites.
    pub const SEAL_NONCE_REUSE: &str = "seal-nonce-reuse";
    /// A syntactically invalid waiver comment.
    pub const BAD_WAIVER: &str = "bad-waiver";
    /// A waiver that suppressed no finding.
    pub const UNUSED_WAIVER: &str = "unused-waiver";

    /// All waivable rule ids (the two meta rules are not waivable).
    pub const WAIVABLE: [&str; 8] = [
        ENCLAVE_ABORT,
        ENCLAVE_INDEX,
        SECRET_EGRESS,
        FLOAT_ACCOUNTING,
        WALL_CLOCK,
        ATTEST_UNCHECKED,
        SEAL_ROLLBACK,
        SEAL_NONCE_REUSE,
    ];
}

/// Static metadata for one rule, backing `--list-rules` / `--explain`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id.
    pub id: &'static str,
    /// Rule level (`L1a` … `L7`, or `meta` for the waiver rules).
    pub level: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Why the rule exists — the property it defends.
    pub rationale: &'static str,
    /// Example waiver syntax, or `None` for non-waivable meta rules.
    pub waiver: Option<&'static str>,
}

/// All rules, in level order (the `--list-rules` order).
pub const RULES: [RuleInfo; 10] = [
    RuleInfo {
        id: rule::ENCLAVE_ABORT,
        level: "L1a",
        summary: "no unwrap/expect/panic in enclave-resident code",
        rationale: "crashing an enclave on hostile input is a denial-of-service \
                    primitive and often an oracle; untrusted input must surface \
                    as Result, never abort",
        waiver: Some("// teenet-analyze: allow(enclave-abort) -- <why this cannot abort>"),
    },
    RuleInfo {
        id: rule::ENCLAVE_INDEX,
        level: "L1b",
        summary: "no data-dependent indexing/slicing in enclave-resident code",
        rationale: "buf[off..off + n] panics when a hostile length check was \
                    forgotten; all-literal and named-constant indices fail \
                    deterministically in tests instead",
        waiver: Some("// teenet-analyze: allow(enclave-index) -- <why the bound holds>"),
    },
    RuleInfo {
        id: rule::SECRET_EGRESS,
        level: "L2",
        summary: "secrets must not reach ocall/send_packets except via sealing",
        rationale: "flow-aware: taint from secret-named bindings is tracked \
                    through intermediate lets and helper-call arguments into \
                    egress sinks, so renaming a secret does not hide the leak",
        waiver: Some("// teenet-analyze: allow(secret-egress) -- <why this egress is sealed>"),
    },
    RuleInfo {
        id: rule::FLOAT_ACCOUNTING,
        level: "L3",
        summary: "no floating point in instruction/cycle accounting",
        rationale: "float rounding drifts the calibrated cost model; accounting \
                    must be exact integer arithmetic",
        waiver: Some("// teenet-analyze: allow(float-accounting) -- <why exactness is kept>"),
    },
    RuleInfo {
        id: rule::WALL_CLOCK,
        level: "L4",
        summary: "no wall-clock/ambient-entropy outside the virtual clock",
        rationale: "byte-identical reports depend on every time source and RNG \
                    being seeded and virtual",
        waiver: Some("// teenet-analyze: allow(wall-clock) -- <why determinism survives>"),
    },
    RuleInfo {
        id: rule::ATTEST_UNCHECKED,
        level: "L5",
        summary: "an attestation verdict must be handled, not discarded",
        rationale: "a dropped verify() Result — let _ =, .ok(), a bare ;, an \
                    empty if-let-Err body, or .unwrap_or_default() — means the \
                    caller proceeds as if the peer were measured",
        waiver: Some(
            "// teenet-analyze: allow(attestation-unchecked) -- <why the verdict is irrelevant>",
        ),
    },
    RuleInfo {
        id: rule::SEAL_ROLLBACK,
        level: "L6",
        summary: "unsealed state must pass a monotonic-counter gate before use",
        rationale: "without a strictly-greater counter comparison the host can \
                    replay an old sealed blob and roll the enclave back to a \
                    revoked key or stale policy",
        waiver: Some("// teenet-analyze: allow(seal-rollback) -- <why replay is impossible>"),
    },
    RuleInfo {
        id: rule::SEAL_NONCE_REUSE,
        level: "L7",
        summary: "a nonce/IV must not reach two seal/encrypt sites unrefreshed",
        rationale: "CTR keystreams XOR plaintext: one nonce reuse under the \
                    same key reveals the XOR of two plaintexts; every seal \
                    needs a fresh nonce",
        waiver: Some(
            "// teenet-analyze: allow(seal-nonce-reuse) -- <why both sites share one keystream \
             by design>",
        ),
    },
    RuleInfo {
        id: rule::BAD_WAIVER,
        level: "meta",
        summary: "a syntactically invalid waiver comment",
        rationale: "a waiver that does not parse would silently suppress \
                    nothing; it must be fixed or removed",
        waiver: None,
    },
    RuleInfo {
        id: rule::UNUSED_WAIVER,
        level: "meta",
        summary: "a waiver that suppresses no finding",
        rationale: "stale waivers accumulate into blind spots; every waiver \
                    must cover a live finding",
        waiver: None,
    },
];

/// One linter finding, before or after waiver resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule id (see [`rule`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(reason)` when an explicit waiver covers this finding.
    pub waived: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaiverScope {
    /// The waiver's own line and the line directly below it.
    Line,
    /// A line range `[from, to]` (the braced block after the comment).
    Block(u32, u32),
    /// The whole file.
    File,
}

#[derive(Debug)]
struct Waiver {
    rules: Vec<String>,
    reason: String,
    line: u32,
    scope: WaiverScope,
    used: bool,
}

impl Waiver {
    fn covers(&self, rule_id: &str, line: u32) -> bool {
        if !self.rules.iter().any(|r| r == rule_id) {
            return false;
        }
        match self.scope {
            WaiverScope::Line => line == self.line || line == self.line + 1,
            WaiverScope::Block(from, to) => (from..=to).contains(&line),
            WaiverScope::File => true,
        }
    }
}

/// Scans one file's source, returning all findings (waived ones carry
/// their reason). `rel_path` selects which rules apply per the config.
pub fn scan_file(config: &AnalyzeConfig, rel_path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    // Significant tokens (comments stripped) drive the rule patterns;
    // comments drive waivers and block/test scoping.
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
        .collect();

    let mut findings = Vec::new();
    let mut waivers = parse_waivers(&tokens, &sig, rel_path, &mut findings);
    let test_spans = test_scopes(&sig);

    let in_tests = |line: u32| test_spans.iter().any(|&(a, b)| (a..=b).contains(&line));

    let mut raw: Vec<(u32, &'static str, String)> = Vec::new();

    let bodies = function_bodies(&sig);

    if config.is_enclave_resident(rel_path) {
        rule_enclave_abort(&sig, &mut raw);
        rule_enclave_index(&sig, &mut raw);
        rule_seal_rollback(config, &sig, &bodies, &mut raw);
    }
    rule_secret_egress(config, &sig, &bodies, &mut raw);
    rule_seal_nonce_reuse(config, &sig, &bodies, &mut raw);
    rule_attest_unchecked(config, &sig, &mut raw);
    if config.is_accounting(rel_path) {
        rule_float_accounting(&sig, &mut raw);
    }
    if !config.is_clock_exempt(rel_path) {
        rule_wall_clock(config, &sig, &mut raw);
    }

    for (line, rule_id, message) in raw {
        // L1 is exempt in test scopes: aborting on a failed expectation
        // is what tests do. L6 is exempt too: a rollback test must
        // construct the very replay the rule forbids.
        if (rule_id == rule::ENCLAVE_ABORT
            || rule_id == rule::ENCLAVE_INDEX
            || rule_id == rule::SEAL_ROLLBACK)
            && in_tests(line)
        {
            continue;
        }
        let waived = waivers
            .iter_mut()
            .find(|w| w.covers(rule_id, line))
            .map(|w| {
                w.used = true;
                w.reason.clone()
            });
        findings.push(Finding {
            file: rel_path.to_owned(),
            line,
            rule: rule_id,
            message,
            waived,
        });
    }

    for w in &waivers {
        if !w.used {
            findings.push(Finding {
                file: rel_path.to_owned(),
                line: w.line,
                rule: rule::UNUSED_WAIVER,
                message: format!(
                    "waiver for ({}) suppresses nothing — remove it or move it next to the finding",
                    w.rules.join(", ")
                ),
                waived: None,
            });
        }
    }

    findings.sort_by(|a, b| {
        (a.line, a.rule, a.message.as_str()).cmp(&(b.line, b.rule, b.message.as_str()))
    });
    findings
}

// ---------------------------------------------------------------------
// Waiver parsing
// ---------------------------------------------------------------------

const WAIVER_MARKER: &str = "teenet-analyze:";

fn parse_waivers(
    tokens: &[Token],
    sig: &[&Token],
    rel_path: &str,
    findings: &mut Vec<Finding>,
) -> Vec<Waiver> {
    let mut out = Vec::new();
    for t in tokens {
        let TokenKind::Comment(text) = &t.kind else {
            continue;
        };
        // Doc comments never carry live waivers — they are where the
        // waiver grammar gets *documented*, with examples that must not
        // fire.
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = text.find(WAIVER_MARKER) else {
            continue;
        };
        let directive = text[at + WAIVER_MARKER.len()..].trim();
        match parse_directive(directive) {
            Ok((kind, rules, reason)) => {
                let scope = match kind {
                    DirectiveKind::Line => WaiverScope::Line,
                    DirectiveKind::File => WaiverScope::File,
                    DirectiveKind::Block => match block_after(sig, t.line) {
                        Some((from, to)) => WaiverScope::Block(from, to),
                        None => {
                            findings.push(Finding {
                                file: rel_path.to_owned(),
                                line: t.line,
                                rule: rule::BAD_WAIVER,
                                message: "allow-block with no braced block below it".to_owned(),
                                waived: None,
                            });
                            continue;
                        }
                    },
                };
                out.push(Waiver {
                    rules,
                    reason,
                    line: t.line,
                    scope,
                    used: false,
                });
            }
            Err(why) => findings.push(Finding {
                file: rel_path.to_owned(),
                line: t.line,
                rule: rule::BAD_WAIVER,
                message: why,
                waived: None,
            }),
        }
    }
    out
}

enum DirectiveKind {
    Line,
    Block,
    File,
}

fn parse_directive(directive: &str) -> Result<(DirectiveKind, Vec<String>, String), String> {
    let (kind, rest) = if let Some(r) = directive.strip_prefix("allow-block") {
        (DirectiveKind::Block, r)
    } else if let Some(r) = directive.strip_prefix("allow-file") {
        (DirectiveKind::File, r)
    } else if let Some(r) = directive.strip_prefix("allow") {
        (DirectiveKind::Line, r)
    } else {
        return Err(format!(
            "unknown directive {directive:?} (expected allow / allow-block / allow-file)"
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("missing ( after allow".to_owned());
    };
    let Some(close) = rest.find(')') else {
        return Err("missing ) in waiver rule list".to_owned());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("empty rule list in waiver".to_owned());
    }
    for r in &rules {
        if !rule::WAIVABLE.contains(&r.as_str()) {
            return Err(format!("unknown rule {r:?} in waiver"));
        }
    }
    let after = rest[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix("--") else {
        return Err("waiver must end with `-- <reason>`".to_owned());
    };
    let reason = reason.trim().trim_end_matches("*/").trim();
    if reason.is_empty() {
        return Err("waiver reason is empty".to_owned());
    }
    Ok((kind, rules, reason.to_owned()))
}

/// Line span of the first braced block starting at or after `line`.
/// Stops at a `;` seen before any `{` (the next item has no block).
fn block_after(sig: &[&Token], line: u32) -> Option<(u32, u32)> {
    let start = sig.iter().position(|t| t.line > line)?;
    let mut i = start;
    while i < sig.len() {
        if sig[i].is_punct(';') {
            return None;
        }
        if sig[i].is_punct('{') {
            let close = matching(sig, i, '{', '}')?;
            return Some((sig[i].line, sig[close].line));
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Test-scope detection
// ---------------------------------------------------------------------

/// Line spans of `#[cfg(test)]` / `#[test]`-gated items.
fn test_scopes(sig: &[&Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if sig[i].is_punct('#') && i + 1 < sig.len() && sig[i + 1].is_punct('[') {
            if let Some(close) = matching(sig, i + 1, '[', ']') {
                let attr: Vec<&str> = sig[i + 2..close].iter().filter_map(|t| t.ident()).collect();
                let is_test_gate =
                    attr == ["test"] || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
                if is_test_gate {
                    if let Some((from, to)) = block_after(sig, sig[close].line.saturating_sub(1))
                        .filter(|&(from, _)| from >= sig[close].line)
                    {
                        spans.push((sig[i].line, to));
                        let _ = from;
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

// ---------------------------------------------------------------------
// Rule implementations
// ---------------------------------------------------------------------

fn rule_enclave_abort(sig: &[&Token], out: &mut Vec<(u32, &'static str, String)>) {
    for i in 0..sig.len() {
        let Some(name) = sig[i].ident() else { continue };
        match name {
            "unwrap" | "expect" => {
                let method = i > 0 && sig[i - 1].is_punct('.');
                let called = i + 1 < sig.len() && sig[i + 1].is_punct('(');
                if method && called {
                    out.push((
                        sig[i].line,
                        rule::ENCLAVE_ABORT,
                        format!(".{name}() aborts the enclave — return a Result instead"),
                    ));
                }
            }
            // `#[allow(unreachable_...)]`-style attribute idents are
            // not followed by `!`, so the guard keeps this to macros.
            "panic" | "unreachable" | "todo" | "unimplemented"
                if i + 1 < sig.len() && sig[i + 1].is_punct('!') =>
            {
                out.push((
                    sig[i].line,
                    rule::ENCLAVE_ABORT,
                    format!("{name}! aborts the enclave — return a Result instead"),
                ));
            }
            _ => {}
        }
    }
}

/// Keywords that can directly precede `[` without being an indexing base.
const NON_BASE_KEYWORDS: [&str; 23] = [
    "mut", "ref", "dyn", "impl", "in", "as", "return", "break", "else", "match", "if", "while",
    "for", "loop", "move", "static", "const", "where", "box", "await", "yield", "become", "pub",
];

fn rule_enclave_index(sig: &[&Token], out: &mut Vec<(u32, &'static str, String)>) {
    for i in 0..sig.len() {
        if !sig[i].is_punct('[') || i == 0 {
            continue;
        }
        // The token before `[` decides whether this is an indexing
        // expression: an identifier (not a keyword), a `)` or a `]`.
        let base_ok = match &sig[i - 1].kind {
            TokenKind::Ident(name) => !NON_BASE_KEYWORDS.contains(&name.as_str()),
            TokenKind::Punct(')') | TokenKind::Punct(']') => true,
            _ => false,
        };
        if !base_ok {
            continue;
        }
        // Macro invocation `name![...]` is not indexing.
        if i >= 2 && sig[i - 1].ident().is_some() && sig[i - 2].is_punct('!') {
            continue;
        }
        let Some(close) = matching(sig, i, '[', ']') else {
            continue;
        };
        if close == i + 1 {
            continue; // `[]` — not indexing
        }
        let index = &sig[i + 1..close];
        if index_is_static(index) {
            continue;
        }
        let base = sig[i - 1].ident().unwrap_or("(expr)");
        out.push((
            sig[i].line,
            rule::ENCLAVE_INDEX,
            format!(
                "data-dependent index on `{base}` can panic on untrusted input — \
                 use .get(..) and return an error"
            ),
        ));
    }
}

/// An index expression is statically safe when it is built only from
/// integer literals, named constants (no lowercase letters), range dots
/// and arithmetic on those — it can still be out of bounds, but it
/// fails the same way on every input, so tests catch it.
fn index_is_static(index: &[&Token]) -> bool {
    index.iter().all(|t| match &t.kind {
        TokenKind::Int(_) => true,
        TokenKind::Ident(name) => !name.chars().any(|c| c.is_ascii_lowercase()),
        TokenKind::Punct('.')
        | TokenKind::Punct('+')
        | TokenKind::Punct('-')
        | TokenKind::Punct('*')
        | TokenKind::Punct('/')
        | TokenKind::Punct('=') => true,
        _ => false,
    })
}

/// The original token-adjacency engine: a secret identifier literally
/// inside a sink's argument list. Kept as the first layer of the flow
/// rule and exported (via [`secret_egress_adjacency_scan`]) so a test
/// can prove what the flow upgrade catches that this engine misses.
fn rule_secret_egress_adjacent(
    config: &AnalyzeConfig,
    sig: &[&Token],
    out: &mut Vec<(u32, &'static str, String)>,
) {
    for i in 0..sig.len() {
        let Some(name) = sig[i].ident() else { continue };
        if !config.egress_sinks.iter().any(|s| s == name) {
            continue;
        }
        if i + 1 >= sig.len() || !sig[i + 1].is_punct('(') {
            continue;
        }
        // Skip the sink's own definition (`fn ocall(...)`).
        if i > 0 && sig[i - 1].ident() == Some("fn") {
            continue;
        }
        let Some(close) = matching(sig, i + 1, '(', ')') else {
            continue;
        };
        let mut j = i + 2;
        while j < close {
            if let Some(ident) = sig[j].ident() {
                // A sanctioned call (sealing API) may consume secrets.
                if config.sanctioned_egress.iter().any(|s| s == ident)
                    && j + 1 < close
                    && sig[j + 1].is_punct('(')
                {
                    if let Some(inner_close) = matching(sig, j + 1, '(', ')') {
                        j = inner_close + 1;
                        continue;
                    }
                }
                if config.secret_idents.iter().any(|s| s == ident) {
                    out.push((
                        sig[j].line,
                        rule::SECRET_EGRESS,
                        format!(
                            "secret `{ident}` reaches egress sink `{name}` — \
                             only sealed blobs may cross the boundary"
                        ),
                    ));
                }
            }
            j += 1;
        }
    }
}

/// Runs only the pre-flow token-adjacency secret-egress engine over
/// `src`, returning the lines it flags. Exists solely so tests can
/// demonstrate the flow upgrade's delta against the old engine.
pub fn secret_egress_adjacency_scan(config: &AnalyzeConfig, src: &str) -> Vec<u32> {
    let tokens = lex(src);
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
        .collect();
    let mut out = Vec::new();
    rule_secret_egress_adjacent(config, &sig, &mut out);
    out.into_iter().map(|(line, _, _)| line).collect()
}

/// L2, flow-aware: the adjacency layer above, plus taint propagation —
/// a binding derived from a secret-named value (through `let` chains
/// and helper-call arguments) reaching a sink argument is flagged even
/// though the secret's name no longer appears at the call site. Calls
/// into the sanctioned sealing API are taint barriers: their results
/// are clean and their argument lists are skipped.
fn rule_secret_egress(
    config: &AnalyzeConfig,
    sig: &[&Token],
    bodies: &[FnBody],
    out: &mut Vec<(u32, &'static str, String)>,
) {
    rule_secret_egress_adjacent(config, sig, out);

    let barriers: Vec<&str> = config
        .sanctioned_egress
        .iter()
        .map(|s| s.as_str())
        .collect();
    for body in bodies {
        let fa = FlowAnalysis::of(sig, body, &barriers);
        let taint = fa.taint_from(|v| config.secret_idents.iter().any(|s| s == &v.name));
        if taint.iter().all(|t| t.is_none()) {
            continue;
        }
        for site in sink_sites(sig, body, &config.egress_sinks) {
            let (i, close) = (site.ident, site.close);
            let sink = sig[i].ident().unwrap_or_default();
            for (j, tok) in sig.iter().enumerate().take(close).skip(i + 2) {
                let Some(ident) = tok.ident() else {
                    continue;
                };
                // Direct secret names are the adjacency layer's job;
                // reporting them here too would double-count.
                if config.secret_idents.iter().any(|s| s == ident) {
                    continue;
                }
                let Some(vid) = fa.value_at(j) else { continue };
                let Some(root) = taint[vid] else { continue };
                out.push((
                    sig[j].line,
                    rule::SECRET_EGRESS,
                    format!(
                        "secret `{}` reaches egress sink `{sink}` via `{ident}` \
                         (bound on line {}) — only sealed blobs may cross the boundary",
                        fa.values[root].name, fa.values[vid].def_line
                    ),
                ));
            }
        }
    }
}

/// One sink call site inside a function body.
struct SinkSite {
    /// Index of the sink's identifier token.
    ident: usize,
    /// Index of the matching `)` of its argument list.
    close: usize,
}

/// All call sites of `sinks` inside `body`, skipping definitions.
fn sink_sites(sig: &[&Token], body: &FnBody, sinks: &[String]) -> Vec<SinkSite> {
    let mut out = Vec::new();
    for i in body.body.0 + 1..body.body.1 {
        let Some(name) = sig[i].ident() else { continue };
        if !sinks.iter().any(|s| s == name) {
            continue;
        }
        if i + 1 >= sig.len() || !sig[i + 1].is_punct('(') {
            continue;
        }
        if i > 0 && sig[i - 1].ident() == Some("fn") {
            continue;
        }
        if let Some(close) = matching(sig, i + 1, '(', ')') {
            out.push(SinkSite { ident: i, close });
        }
    }
    out
}

/// Is the token at `k` an ordered comparison (`<`, `>`, `<=`, `>=`)?
/// Excludes shifts (`<<`, `>>`), arrows (`->`, `=>`) and equality.
fn ordered_cmp_at(sig: &[&Token], k: usize) -> bool {
    let Some(t) = sig.get(k) else { return false };
    if t.is_punct('<') {
        return !(sig.get(k + 1).is_some_and(|n| n.is_punct('<'))
            || k > 0 && sig[k - 1].is_punct('<'));
    }
    if t.is_punct('>') {
        return !sig.get(k + 1).is_some_and(|n| n.is_punct('>'))
            && !(k > 0
                && (sig[k - 1].is_punct('>')
                    || sig[k - 1].is_punct('-')
                    || sig[k - 1].is_punct('=')));
    }
    false
}

/// L6: in every function, values tainted by an `unseal` call must have
/// a counter/epoch field flow into an ordered comparison before any use
/// of the recovered key material. A *gate* is `tainted.counter`
/// adjacent to `<`/`>`/`<=`/`>=` (either side); a *use* is a
/// `tainted.key`-style projection or a `self.<field> = tainted`
/// adoption. Equality (`==`) is not a gate: it cannot order a replayed
/// counter against the current one.
fn rule_seal_rollback(
    config: &AnalyzeConfig,
    sig: &[&Token],
    bodies: &[FnBody],
    out: &mut Vec<(u32, &'static str, String)>,
) {
    for body in bodies {
        let fa = FlowAnalysis::of(sig, body, &[]);
        let taint = fa.taint_from(|v| {
            v.callees
                .iter()
                .any(|c| config.unseal_idents.iter().any(|u| u == c))
        });
        if taint.iter().all(|t| t.is_none()) {
            continue;
        }
        let mut gated: Vec<usize> = Vec::new();
        for (tok, vid) in fa.occurrences() {
            let Some(root) = taint[vid] else { continue };
            let vname = fa.values[vid].name.as_str();
            let projected = sig.get(tok + 1).is_some_and(|t| t.is_punct('.'));
            let field = if projected {
                sig.get(tok + 2).and_then(|t| t.ident())
            } else {
                None
            };
            if let Some(field) = field {
                if config.counter_fields.iter().any(|c| c == field)
                    && (ordered_cmp_at(sig, tok + 3)
                        || (tok > 0
                            && (ordered_cmp_at(sig, tok - 1)
                                || (sig[tok - 1].is_punct('=') && ordered_cmp_at(sig, tok - 2)))))
                {
                    gated.push(root);
                    continue;
                }
                if config.key_fields.iter().any(|k| k == field) && !gated.contains(&root) {
                    out.push((
                        sig[tok].line,
                        rule::SEAL_ROLLBACK,
                        format!(
                            "unsealed `{vname}` exposes key material `.{field}` before any \
                             rollback check — compare its monotonic counter (strictly \
                             greater) against the last-seen value first"
                        ),
                    ));
                    continue;
                }
            }
            if !gated.contains(&root) {
                if let Some(state_field) = adopted_into_state(sig, tok) {
                    out.push((
                        sig[tok].line,
                        rule::SEAL_ROLLBACK,
                        format!(
                            "unsealed `{vname}` is adopted into `self.{state_field}` before \
                             any rollback check — compare its monotonic counter (strictly \
                             greater) against the last-seen value first"
                        ),
                    ));
                }
            }
        }
    }
}

/// When the statement containing the occurrence at `tok` has the exact
/// shape `self . <field> = <expr>`, returns the field name — adopting a
/// tainted value into enclave state.
fn adopted_into_state<'a>(sig: &[&'a Token], tok: usize) -> Option<&'a str> {
    let mut start = tok;
    while start > 0 {
        let t = sig[start - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    if sig.get(start)?.ident() != Some("self")
        || !sig.get(start + 1)?.is_punct('.')
        || !sig.get(start + 3)?.is_punct('=')
        || sig.get(start + 4).is_some_and(|t| t.is_punct('='))
    {
        return None;
    }
    // The occurrence must be on the right-hand side, not the target.
    if tok <= start + 3 {
        return None;
    }
    sig.get(start + 2)?.ident()
}

/// A nonce-ish name: any `_`-separated segment that is `nonce` or `iv`
/// once trailing digits are stripped (`nonce`, `iv2`, `session_nonce`,
/// `iv_bytes` — but not `derive` or `receiver`).
fn nonce_like(name: &str) -> bool {
    name.split('_').any(|seg| {
        let stem = seg.trim_end_matches(|c: char| c.is_ascii_digit());
        stem.eq_ignore_ascii_case("nonce") || stem.eq_ignore_ascii_case("iv")
    })
}

/// How one seal/encrypt argument is keyed for reuse detection.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum NonceKey {
    /// A resolved local value (alias chains followed).
    Value(usize),
    /// An unresolved nonce-named identifier (a const or static).
    Name(String),
    /// A projection path rooted at a value or unresolved name.
    Path(String, String),
    /// An array literal, rendered token-exactly (`[0u8;16]`).
    ArrayLit(String),
}

/// L7: within one function, the same nonce/IV — an identifier (alias
/// chains followed), a `x.nonce` projection, or an array literal —
/// reaching two distinct seal/encrypt call sites with no re-derivation
/// in between. Reassignment and `&mut` refreshes create new value
/// generations in the flow graph, so a refreshed nonce never collides
/// with its previous generation.
fn rule_seal_nonce_reuse(
    config: &AnalyzeConfig,
    sig: &[&Token],
    bodies: &[FnBody],
    out: &mut Vec<(u32, &'static str, String)>,
) {
    for body in bodies {
        let fa = FlowAnalysis::of(sig, body, &[]);
        let mut seen: std::collections::HashMap<NonceKey, (u32, usize)> =
            std::collections::HashMap::new();
        for (site_no, site) in sink_sites(sig, body, &config.nonce_sinks)
            .into_iter()
            .enumerate()
        {
            let sink = sig[site.ident].ident().unwrap_or_default();
            for (astart, aend) in split_args(sig, site.ident + 1, site.close) {
                let Some((key, desc)) = classify_nonce_arg(sig, &fa, astart, aend) else {
                    continue;
                };
                let line = sig[astart].line;
                match seen.get(&key) {
                    Some(&(first_line, first_site)) if first_site != site_no => {
                        out.push((
                            line,
                            rule::SEAL_NONCE_REUSE,
                            format!(
                                "nonce `{desc}` reaches a second `{sink}` call site \
                                 (first used on line {first_line}) without re-derivation \
                                 from a fresh source — every seal needs a fresh nonce"
                            ),
                        ));
                    }
                    Some(_) => {}
                    None => {
                        seen.insert(key, (line, site_no));
                    }
                }
            }
        }
    }
}

/// Splits the argument list between `open` (the `(`) and `close` into
/// top-level `(start, end)` token ranges, skipping empty arguments.
fn split_args(sig: &[&Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = open + 1;
    for (k, tok) in sig.iter().enumerate().take(close).skip(open + 1) {
        match &tok.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1)
            }
            TokenKind::Punct(',') if depth == 0 => {
                if start < k {
                    out.push((start, k));
                }
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < close {
        out.push((start, close));
    }
    out
}

/// Classifies one argument as a trackable nonce, returning its reuse
/// key and display name. Arguments that are fresh by construction
/// (calls) or untrackable (string literals, whose contents the lexer
/// drops) return `None`.
fn classify_nonce_arg(
    sig: &[&Token],
    fa: &FlowAnalysis,
    start: usize,
    end: usize,
) -> Option<(NonceKey, String)> {
    // Strip leading `&`, `mut`, `*`.
    let mut s = start;
    while s < end && (sig[s].is_punct('&') || sig[s].is_punct('*') || sig[s].ident() == Some("mut"))
    {
        s += 1;
    }
    if s >= end {
        return None;
    }
    // Array literal: render token-exactly.
    if sig[s].is_punct('[') {
        let mut rendered = String::new();
        for t in &sig[s..end] {
            match &t.kind {
                TokenKind::Ident(name) => rendered.push_str(name),
                TokenKind::Int(text) => rendered.push_str(text),
                TokenKind::Punct(c) => rendered.push(*c),
                _ => return None,
            }
        }
        return Some((NonceKey::ArrayLit(rendered.clone()), rendered));
    }
    let name = sig[s].ident()?;
    // A call (`fresh_nonce()`, `rng.gen()`) derives a fresh value.
    if sig[s + 1..end].iter().any(|t| t.is_punct('(')) {
        return None;
    }
    // Projection chain `x.nonce` / `self.iv`: keyed by root + path when
    // the last segment is nonce-named.
    if s + 2 < end && sig[s + 1].is_punct('.') {
        let segments: Vec<&str> = sig[s..end].iter().filter_map(|t| t.ident()).collect();
        let last = segments.last()?;
        if !nonce_like(last) {
            return None;
        }
        let path = segments.join(".");
        let root = match fa.value_at(s) {
            Some(vid) => format!("v{}", fa.resolve_alias(vid)),
            None => name.to_string(),
        };
        return Some((NonceKey::Path(root, path.clone()), path));
    }
    if s + 1 != end {
        return None; // something more complex than a bare identifier
    }
    match fa.value_at(s) {
        Some(vid) => {
            let rid = fa.resolve_alias(vid);
            if nonce_like(name) || nonce_like(&fa.values[rid].name) {
                Some((NonceKey::Value(rid), name.to_string()))
            } else {
                None
            }
        }
        None if nonce_like(name) => Some((NonceKey::Name(name.to_string()), name.to_string())),
        None => None,
    }
}

fn rule_float_accounting(sig: &[&Token], out: &mut Vec<(u32, &'static str, String)>) {
    for t in sig {
        match &t.kind {
            TokenKind::Float => out.push((
                t.line,
                rule::FLOAT_ACCOUNTING,
                "float literal in an accounting path — use exact integer arithmetic".to_owned(),
            )),
            TokenKind::Ident(name) if name == "f64" || name == "f32" => out.push((
                t.line,
                rule::FLOAT_ACCOUNTING,
                format!("{name} in an accounting path — use exact integer arithmetic"),
            )),
            _ => {}
        }
    }
}

fn rule_wall_clock(
    config: &AnalyzeConfig,
    sig: &[&Token],
    out: &mut Vec<(u32, &'static str, String)>,
) {
    for t in sig {
        let Some(name) = t.ident() else { continue };
        if config.clock_idents.iter().any(|c| c == name) {
            out.push((
                t.line,
                rule::WALL_CLOCK,
                format!(
                    "`{name}` breaks determinism — all time/randomness must come from \
                     the netsim virtual clock or a seeded RNG"
                ),
            ));
        }
    }
}

/// How the statement containing a call sinks the call's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StatementSink {
    /// Bound to a named place or returned — somebody can still check it.
    Named,
    /// `let _ =` / `_ =` — explicitly thrown away.
    Underscore,
    /// A bare expression statement: nothing receives the value.
    Bare,
}

/// Classifies the statement whose last expression is the call starting
/// at `call_start`, scanning back to the statement boundary (`;`, `{`
/// or `}`).
fn statement_sink(sig: &[&Token], call_start: usize) -> StatementSink {
    let mut start = call_start;
    while start > 0 {
        let t = sig[start - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    let prefix = &sig[start..call_start];
    let Some(eq) = prefix.iter().rposition(|t| t.is_punct('=')) else {
        let returns = prefix
            .iter()
            .any(|t| matches!(t.ident(), Some("return" | "break")));
        return if returns {
            StatementSink::Named
        } else {
            StatementSink::Bare
        };
    };
    if eq > 0 && prefix[eq - 1].ident() == Some("_") {
        StatementSink::Underscore
    } else {
        StatementSink::Named
    }
}

fn rule_attest_unchecked(
    config: &AnalyzeConfig,
    sig: &[&Token],
    out: &mut Vec<(u32, &'static str, String)>,
) {
    for i in 0..sig.len() {
        let Some(name) = sig[i].ident() else { continue };
        if !config.attest_verify_idents.iter().any(|v| v == name) {
            continue;
        }
        if i + 1 >= sig.len() || !sig[i + 1].is_punct('(') {
            continue;
        }
        // Skip the definition itself (`fn verify(...)`).
        if i > 0 && sig[i - 1].ident() == Some("fn") {
            continue;
        }
        let Some(close) = matching(sig, i + 1, '(', ')') else {
            continue;
        };
        // `.unwrap_or_default()` fabricates a default verdict on
        // failure — discarding the error no matter what receives the
        // fabricated value.
        if sig.get(close + 1).is_some_and(|t| t.is_punct('.'))
            && sig.get(close + 2).and_then(|t| t.ident()) == Some("unwrap_or_default")
            && sig.get(close + 3).is_some_and(|t| t.is_punct('('))
        {
            out.push((
                sig[i].line,
                rule::ATTEST_UNCHECKED,
                format!(
                    "attestation result of `{name}(...)` is discarded via \
                     `.unwrap_or_default()` — a failed verification must be \
                     handled, not replaced by a fabricated default"
                ),
            ));
            continue;
        }
        // `if let Err(_) = verify(..) {}` with an empty body and no
        // `else`: the failure branch exists but does nothing.
        if empty_if_let_err(sig, i, close) {
            out.push((
                sig[i].line,
                rule::ATTEST_UNCHECKED,
                format!(
                    "attestation result of `{name}(...)` is discarded via an empty \
                     `if let Err(_)` body — a failed verification must be handled, \
                     not dropped"
                ),
            ));
            continue;
        }
        // A trailing `.ok()` / `.err()` converts the `Result` away;
        // dropping the conversion is still discarding the verdict.
        let mut end = close;
        let mut via = "a bare `;`";
        if close + 3 < sig.len() && sig[close + 1].is_punct('.') {
            if let Some(m) = sig[close + 2].ident() {
                if (m == "ok" || m == "err") && sig[close + 3].is_punct('(') {
                    if let Some(mclose) = matching(sig, close + 3, '(', ')') {
                        end = mclose;
                        via = if m == "ok" { "`.ok()`" } else { "`.err()`" };
                    }
                }
            }
        }
        // Anything but `;` next — `?`, a longer chain, a match/if
        // scrutinee, an argument position — consumes the result.
        if !sig.get(end + 1).is_some_and(|t| t.is_punct(';')) {
            continue;
        }
        match statement_sink(sig, i) {
            StatementSink::Named => continue,
            StatementSink::Underscore => via = "`let _ =`",
            StatementSink::Bare => {}
        }
        out.push((
            sig[i].line,
            rule::ATTEST_UNCHECKED,
            format!(
                "attestation result of `{name}(...)` is discarded via {via} — \
                 a failed verification must be handled, not dropped"
            ),
        ));
    }
}

/// True when the call whose identifier is at `call_start` (argument
/// list closing at `close`) is the scrutinee of an
/// `if let Err(_) = .. { }` with an empty body and no `else`.
fn empty_if_let_err(sig: &[&Token], call_start: usize, close: usize) -> bool {
    let mut start = call_start;
    while start > 0 {
        let t = sig[start - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    let prefix = &sig[start..call_start];
    let header = prefix.len() >= 7
        && prefix[0].ident() == Some("if")
        && prefix[1].ident() == Some("let")
        && prefix[2].ident() == Some("Err")
        && prefix[3].is_punct('(')
        && prefix[4].ident() == Some("_")
        && prefix[5].is_punct(')')
        && prefix[6].is_punct('=');
    header
        && sig.get(close + 1).is_some_and(|t| t.is_punct('{'))
        && sig.get(close + 2).is_some_and(|t| t.is_punct('}'))
        && sig.get(close + 3).and_then(|t| t.ident()) != Some("else")
}

/// Index of the token matching the opener at `open` (which must be
/// `open_c`), honouring nesting.
fn matching(sig: &[&Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in sig.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AnalyzeConfig {
        let mut c = AnalyzeConfig::repo();
        c.enclave_resident = vec!["enclave.rs".to_owned()];
        c.accounting = vec!["cost.rs".to_owned()];
        c
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    fn lines_of(findings: &[Finding]) -> Vec<u32> {
        findings.iter().map(|f| f.line).collect()
    }

    #[test]
    fn unwrap_in_enclave_file_flagged() {
        let f = scan_file(&cfg(), "enclave.rs", "fn f(x: Option<u8>) { x.unwrap(); }");
        assert_eq!(rules_of(&f), vec![rule::ENCLAVE_ABORT]);
    }

    #[test]
    fn unwrap_outside_enclave_set_ignored() {
        let f = scan_file(&cfg(), "host.rs", "fn f(x: Option<u8>) { x.unwrap(); }");
        assert!(f.is_empty());
    }

    #[test]
    fn unwrap_in_test_mod_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) { x.unwrap(); }\n}\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_fn_is_exempt_but_code_after_is_not() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn prod(x: Option<u8>) { x.unwrap(); }\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn panic_macros_flagged() {
        let src = "fn f() { panic!(\"boom\"); }\nfn g() { unreachable!() }\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        assert_eq!(rules_of(&f), vec![rule::ENCLAVE_ABORT, rule::ENCLAVE_ABORT]);
    }

    #[test]
    fn data_dependent_index_flagged_literal_allowed() {
        let src = "fn f(b: &[u8], n: usize) {\n\
                   let a = b[0];\n\
                   let c = &b[..32];\n\
                   let d = &b[2..2 + n];\n\
                   let e = b[n];\n\
                   let g = &b[..CELL_LEN];\n\
                   }\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        assert_eq!(rules_of(&f), vec![rule::ENCLAVE_INDEX, rule::ENCLAVE_INDEX]);
        assert_eq!(f[0].line, 4);
        assert_eq!(f[1].line, 5);
    }

    #[test]
    fn array_types_and_macros_not_flagged() {
        let src = "fn f(x: &mut [u8], y: [u8; 32]) -> Vec<u8> { vec![0u8; 4] }\n\
                   #[cfg(feature = \"x\")]\nfn g() {}\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn secret_into_ocall_flagged_sealed_ok() {
        let src = "fn f(ctx: &mut Ctx, device_key: &[u8; 32]) {\n\
                   ctx.ocall(\"store\", device_key);\n\
                   ctx.ocall(\"store\", &seal(device_key, b\"l\", n, p).to_bytes());\n\
                   }\n";
        let f = scan_file(&cfg(), "anyfile.rs", src);
        assert_eq!(rules_of(&f), vec![rule::SECRET_EGRESS]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn floats_flagged_only_in_accounting_files() {
        let src = "fn f() -> f64 { 1.8 }\n";
        assert_eq!(scan_file(&cfg(), "cost.rs", src).len(), 2);
        assert!(scan_file(&cfg(), "other.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_everywhere_but_exempt_file() {
        let mut c = cfg();
        c.clock_exempt = vec!["time.rs".to_owned()];
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(scan_file(&c, "host.rs", src).len(), 1);
        assert!(scan_file(&c, "time.rs", src).is_empty());
    }

    #[test]
    fn line_waiver_covers_line_below() {
        let src = "// teenet-analyze: allow(enclave-abort) -- infallible by construction\n\
                   fn f(x: Option<u8>) { x.unwrap(); }\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].waived.as_deref(), Some("infallible by construction"));
    }

    #[test]
    fn block_waiver_covers_block_only() {
        let src = "// teenet-analyze: allow-block(enclave-abort) -- host-side helper\n\
                   fn f(x: Option<u8>) {\n x.unwrap();\n}\n\
                   fn g(x: Option<u8>) { x.unwrap(); }\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        let unwaived: Vec<_> = f.iter().filter(|x| x.waived.is_none()).collect();
        assert_eq!(f.len(), 2);
        assert_eq!(unwaived.len(), 1);
        assert_eq!(unwaived[0].line, 5);
    }

    #[test]
    fn file_waiver_covers_everything() {
        let src = "// teenet-analyze: allow-file(enclave-index) -- table indices bounded by construction\n\
                   fn f(t: &[u8], i: usize) { let _ = t[i]; }\n\
                   fn g(t: &[u8], i: usize) { let _ = t[i]; }\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.waived.is_some()));
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let src = "// teenet-analyze: allow(enclave-abort) -- nothing here\nfn f() {}\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        assert_eq!(rules_of(&f), vec![rule::UNUSED_WAIVER]);
    }

    #[test]
    fn malformed_waivers_are_findings() {
        for bad in [
            "// teenet-analyze: allow(enclave-abort)\nfn f() {}\n",
            "// teenet-analyze: allow(no-such-rule) -- reason\nfn f() {}\n",
            "// teenet-analyze: permit(enclave-abort) -- reason\nfn f() {}\n",
            "// teenet-analyze: allow() -- reason\nfn f() {}\n",
        ] {
            let f = scan_file(&cfg(), "enclave.rs", bad);
            assert_eq!(rules_of(&f), vec![rule::BAD_WAIVER], "source: {bad}");
        }
    }

    #[test]
    fn doc_comments_never_carry_live_waivers() {
        let src = "/// teenet-analyze: allow(enclave-abort) -- doc example\n\
                   //! teenet-analyze: allow(bogus-rule) -- doc example\n\
                   fn f(x: Option<u8>) { x.unwrap(); }\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        assert_eq!(rules_of(&f), vec![rule::ENCLAVE_ABORT]);
        assert!(f[0].waived.is_none());
    }

    #[test]
    fn waiver_does_not_cover_other_rule() {
        let src = "// teenet-analyze: allow(enclave-index) -- wrong rule\n\
                   fn f(x: Option<u8>) { x.unwrap(); }\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        // The unwrap stays unwaived AND the waiver is unused.
        assert_eq!(f.len(), 2);
        assert!(f
            .iter()
            .any(|x| x.rule == rule::ENCLAVE_ABORT && x.waived.is_none()));
        assert!(f.iter().any(|x| x.rule == rule::UNUSED_WAIVER));
    }

    #[test]
    fn discarded_attestation_verdicts_flagged() {
        let src = "fn f(challenger: Challenger, r: &Resp, pk: &Key) {\n\
                   let _ = challenger.verify(r, pk, None);\n\
                   gate.verify(r, pk, None).ok();\n\
                   gate.verify(r, pk, None);\n\
                   attest_enclave(&mut p, id, &c).err();\n\
                   mutual_attest(&mut a, &mut b);\n\
                   }\n";
        let f = scan_file(&cfg(), "host.rs", src);
        assert_eq!(rules_of(&f), vec![rule::ATTEST_UNCHECKED; 5], "{f:?}");
        assert_eq!(lines_of(&f), vec![2, 3, 4, 5, 6]);
        assert!(f[0].message.contains("`let _ =`"));
        assert!(f[1].message.contains("`.ok()`"));
        assert!(f[2].message.contains("a bare `;`"));
    }

    #[test]
    fn discarded_attestation_verdict_spanning_lines_flagged() {
        // The regex a grep would use stops at the line break; the
        // token-level scan does not.
        let src = "fn f() {\n\
                   challenger\n  .verify(\n    &response,\n    &pk,\n    None,\n  )\n  .ok();\n\
                   }\n";
        let f = scan_file(&cfg(), "host.rs", src);
        assert_eq!(rules_of(&f), vec![rule::ATTEST_UNCHECKED]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn consumed_attestation_verdicts_pass() {
        let src = "fn verify(x: &Resp) -> Result<(), E> { Ok(()) }\n\
                   fn f(c: Challenger, r: &Resp, pk: &Key) -> Result<Outcome, E> {\n\
                   let outcome = c.verify(r, pk, None)?;\n\
                   quote.verify(pk).map_err(E::from)?;\n\
                   if gate.verify(r, pk, None).is_err() { return Err(E::Bad); }\n\
                   match attest_enclave(&mut p, id, &cfg) {\n Ok(ch) => use_channel(ch),\n Err(e) => reject(e),\n }\n\
                   let maybe = mutual_attest(&mut a, &mut b).ok();\n\
                   record(attest_enclave(&mut p, id, &cfg));\n\
                   return c.verify(r, pk, None);\n\
                   }\n";
        let f = scan_file(&cfg(), "host.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn attest_unchecked_applies_in_tests_and_is_waivable() {
        // Unlike L1, test scopes are NOT exempt: a test that drops the
        // verdict asserts nothing.
        let src = "#[test]\nfn t() { gate.verify(r, pk, None); }\n";
        let f = scan_file(&cfg(), "host.rs", src);
        assert_eq!(rules_of(&f), vec![rule::ATTEST_UNCHECKED]);

        let src = "// teenet-analyze: allow(attestation-unchecked) -- probing the reject path\n\
                   fn t() { gate.verify(r, pk, None); }\n";
        let f = scan_file(&cfg(), "host.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].waived.as_deref(), Some("probing the reject path"));
    }

    #[test]
    fn findings_sorted_and_deterministic() {
        let src = "fn f(x: Option<u8>, b: &[u8], n: usize) { let _ = b[n]; x.unwrap(); }\n";
        let a = scan_file(&cfg(), "enclave.rs", src);
        let b = scan_file(&cfg(), "enclave.rs", src);
        assert_eq!(a, b);
        assert_eq!(rules_of(&a), vec![rule::ENCLAVE_ABORT, rule::ENCLAVE_INDEX]);
    }

    // ---- seal-rollback -------------------------------------------------

    #[test]
    fn gated_unseal_passes_seal_rollback() {
        // The keystore `activate` shape: counter compared before use.
        let src = "fn activate(&mut self, input: &[u8]) -> Result<(), E> {\n\
                       let blob = SealedBlob::from_bytes(input)?;\n\
                       let plain = ctx.unseal(KeyRequest::SealEnclave, &blob)?;\n\
                       let slot = SealedSlot::from_bytes(&plain)?;\n\
                       if slot.counter <= self.last_counter { return Err(E::Rollback); }\n\
                       self.last_counter = slot.counter;\n\
                       self.active = Some(Active { material: slot.key });\n\
                       Ok(())\n\
                   }\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        assert!(
            f.iter().all(|x| x.rule != rule::SEAL_ROLLBACK),
            "gate precedes use: {f:?}"
        );
    }

    #[test]
    fn ungated_key_projection_fires_seal_rollback() {
        let src = "fn activate(&mut self, input: &[u8]) -> Result<(), E> {\n\
                       let plain = ctx.unseal(KeyRequest::SealEnclave, input)?;\n\
                       let slot = SealedSlot::from_bytes(&plain)?;\n\
                       self.active = Some(Active { material: slot.key });\n\
                       Ok(())\n\
                   }\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        let hits: Vec<&Finding> = f.iter().filter(|x| x.rule == rule::SEAL_ROLLBACK).collect();
        assert_eq!(hits.len(), 1, "{f:?}");
        assert_eq!(hits[0].line, 4);
        assert!(hits[0].message.contains("`.key`"));
    }

    #[test]
    fn ungated_state_adoption_fires_seal_rollback() {
        // The tor RESTORE_STATE shape before the fix.
        let src = "fn restore(&mut self, input: &[u8]) -> Result<u32, E> {\n\
                       let blob = SealedBlob::from_bytes(input)?;\n\
                       let plain = ctx.unseal(KeyRequest::SealEnclave, &blob)?;\n\
                       let len = plain.len() as u32;\n\
                       self.state = plain;\n\
                       Ok(len)\n\
                   }\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        let hits: Vec<&Finding> = f.iter().filter(|x| x.rule == rule::SEAL_ROLLBACK).collect();
        assert_eq!(hits.len(), 1, "{f:?}");
        assert_eq!(hits[0].line, 5);
        assert!(hits[0].message.contains("self.state"));
    }

    #[test]
    fn equality_comparison_is_not_a_rollback_gate() {
        let src = "fn restore(&mut self, input: &[u8]) {\n\
                       let slot = ctx.unseal(K::Seal, input);\n\
                       if slot.counter == self.last { return; }\n\
                       self.state = slot;\n\
                   }\n";
        let f = scan_file(&cfg(), "enclave.rs", src);
        assert!(
            f.iter().any(|x| x.rule == rule::SEAL_ROLLBACK),
            "== cannot order a replayed counter: {f:?}"
        );
    }

    #[test]
    fn seal_rollback_only_in_enclave_files_and_not_in_tests() {
        let src = "fn restore(&mut self, input: &[u8]) {\n\
                       let plain = ctx.unseal(K::Seal, input);\n\
                       self.state = plain;\n\
                   }\n";
        assert!(scan_file(&cfg(), "host.rs", src)
            .iter()
            .all(|x| x.rule != rule::SEAL_ROLLBACK));
        let test_src = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
        assert!(scan_file(&cfg(), "enclave.rs", &test_src)
            .iter()
            .all(|x| x.rule != rule::SEAL_ROLLBACK));
    }

    // ---- seal-nonce-reuse ----------------------------------------------

    #[test]
    fn nonce_ident_reaching_two_seals_fires() {
        let src = "fn f(key: &[u8]) {\n\
                       let nonce = [7u8; 16];\n\
                       seal(key, &nonce, b\"a\");\n\
                       seal(key, &nonce, b\"b\");\n\
                   }\n";
        let f = scan_file(&cfg(), "host.rs", src);
        let hits: Vec<&Finding> = f
            .iter()
            .filter(|x| x.rule == rule::SEAL_NONCE_REUSE)
            .collect();
        assert_eq!(hits.len(), 1, "{f:?}");
        assert_eq!(hits[0].line, 4);
        assert!(hits[0].message.contains("`nonce`"));
        assert!(hits[0].message.contains("line 3"));
    }

    #[test]
    fn refreshed_nonce_is_clean() {
        let src = "fn f(key: &[u8]) {\n\
                       let mut nonce = [7u8; 16];\n\
                       seal(key, &nonce, b\"a\");\n\
                       rng.fill(&mut nonce);\n\
                       seal(key, &nonce, b\"b\");\n\
                   }\n";
        let f = scan_file(&cfg(), "host.rs", src);
        assert!(
            f.iter().all(|x| x.rule != rule::SEAL_NONCE_REUSE),
            "&mut refresh re-derives: {f:?}"
        );
    }

    #[test]
    fn reassigned_nonce_is_clean_but_alias_is_not() {
        let clean = "fn f(k: &[u8]) {\n\
                         let mut iv = mk();\n\
                         ctr_apply(k, &iv, data);\n\
                         iv = mk();\n\
                         ctr_apply(k, &iv, data);\n\
                     }\n";
        assert!(scan_file(&cfg(), "host.rs", clean)
            .iter()
            .all(|x| x.rule != rule::SEAL_NONCE_REUSE));

        let alias = "fn f(k: &[u8]) {\n\
                         let nonce = mk();\n\
                         ctr_apply(k, &nonce, data);\n\
                         let same = nonce;\n\
                         ctr_apply(k, &same, data);\n\
                     }\n";
        let f = scan_file(&cfg(), "host.rs", alias);
        let hits: Vec<&Finding> = f
            .iter()
            .filter(|x| x.rule == rule::SEAL_NONCE_REUSE)
            .collect();
        assert_eq!(hits.len(), 1, "alias chains are followed: {f:?}");
        assert_eq!(hits[0].line, 5);
    }

    #[test]
    fn array_literal_nonces_compare_token_exactly() {
        let reused = "fn f(k: &[u8]) { seal(k, [0u8; 16], a); seal(k, [0u8; 16], b); }\n";
        let f = scan_file(&cfg(), "host.rs", reused);
        assert_eq!(
            f.iter()
                .filter(|x| x.rule == rule::SEAL_NONCE_REUSE)
                .count(),
            1,
            "{f:?}"
        );

        let distinct = "fn f(k: &[u8]) { seal(k, [1u8; 16], a); seal(k, [2u8; 16], b); }\n";
        assert!(scan_file(&cfg(), "host.rs", distinct)
            .iter()
            .all(|x| x.rule != rule::SEAL_NONCE_REUSE));
    }

    #[test]
    fn non_nonce_args_are_not_tracked() {
        // `apply` with no nonce-named argument (tor relay crypto).
        let src = "fn f(k: &[u8]) { apply(k, payload); apply(k, payload); }\n";
        assert!(scan_file(&cfg(), "host.rs", src)
            .iter()
            .all(|x| x.rule != rule::SEAL_NONCE_REUSE));
    }

    // ---- flow-aware secret-egress --------------------------------------

    #[test]
    fn renamed_secret_caught_by_flow_missed_by_adjacency() {
        let src = "fn stage(device_key: &[u8], ctx: &mut Ctx) {\n\
                       let staged = device_key.to_vec();\n\
                       ctx.ocall(\"persist\", &staged);\n\
                   }\n";
        // The old token-adjacency engine misses the renamed binding…
        assert_eq!(secret_egress_adjacency_scan(&cfg(), src), Vec::<u32>::new());
        // …the flow engine does not.
        let f = scan_file(&cfg(), "host.rs", src);
        let hits: Vec<&Finding> = f.iter().filter(|x| x.rule == rule::SECRET_EGRESS).collect();
        assert_eq!(hits.len(), 1, "{f:?}");
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].message.contains("`device_key`"));
        assert!(hits[0].message.contains("`staged`"));
        assert!(hits[0].message.contains("line 2"));
    }

    #[test]
    fn sealed_intermediate_stays_clean() {
        let src = "fn stage(device_key: &[u8], ctx: &mut Ctx) {\n\
                       let blob = seal(device_key, b\"slot\");\n\
                       let bytes = blob.to_bytes();\n\
                       ctx.ocall(\"persist\", &bytes);\n\
                   }\n";
        let f = scan_file(&cfg(), "host.rs", src);
        assert!(
            f.iter().all(|x| x.rule != rule::SECRET_EGRESS),
            "the sealing barrier cleans taint: {f:?}"
        );
    }

    #[test]
    fn direct_secret_in_sink_reported_once() {
        let src = "fn f(device_key: &[u8], ctx: &mut Ctx) { ctx.ocall(\"x\", device_key); }\n";
        let f = scan_file(&cfg(), "host.rs", src);
        assert_eq!(
            f.iter().filter(|x| x.rule == rule::SECRET_EGRESS).count(),
            1,
            "adjacency and flow layers must not double-count: {f:?}"
        );
    }

    // ---- hardened attestation-unchecked --------------------------------

    #[test]
    fn empty_if_let_err_body_fires() {
        let src = "fn f() { if let Err(_) = gate.verify(r, pk, None) {} }\n";
        let f = scan_file(&cfg(), "host.rs", src);
        let hits: Vec<&Finding> = f
            .iter()
            .filter(|x| x.rule == rule::ATTEST_UNCHECKED)
            .collect();
        assert_eq!(hits.len(), 1, "{f:?}");
        assert!(hits[0].message.contains("empty `if let Err(_)` body"));
    }

    #[test]
    fn handled_if_let_err_is_clean() {
        let handled = "fn f() { if let Err(e) = gate.verify(r, pk, None) { log(e); } }\n";
        assert!(scan_file(&cfg(), "host.rs", handled)
            .iter()
            .all(|x| x.rule != rule::ATTEST_UNCHECKED));
        let non_empty = "fn f() { if let Err(_) = gate.verify(r, pk, None) { bail(); } }\n";
        assert!(scan_file(&cfg(), "host.rs", non_empty)
            .iter()
            .all(|x| x.rule != rule::ATTEST_UNCHECKED));
        let with_else = "fn f() { if let Err(_) = gate.verify(r, pk, None) {} else { go(); } }\n";
        assert!(scan_file(&cfg(), "host.rs", with_else)
            .iter()
            .all(|x| x.rule != rule::ATTEST_UNCHECKED));
    }

    #[test]
    fn unwrap_or_default_discard_fires() {
        let src = "fn f() { let ch = gate.verify(r, pk, None).unwrap_or_default(); use_it(ch); }\n";
        let f = scan_file(&cfg(), "host.rs", src);
        let hits: Vec<&Finding> = f
            .iter()
            .filter(|x| x.rule == rule::ATTEST_UNCHECKED)
            .collect();
        assert_eq!(hits.len(), 1, "{f:?}");
        assert!(hits[0].message.contains("unwrap_or_default"));
    }

    #[test]
    fn rule_metadata_covers_every_rule_id() {
        let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        for id in rule::WAIVABLE {
            assert!(ids.contains(&id));
        }
        assert!(ids.contains(&rule::BAD_WAIVER));
        assert!(ids.contains(&rule::UNUSED_WAIVER));
        // Waivable rules carry waiver syntax; meta rules do not.
        for info in &RULES {
            assert_eq!(
                info.waiver.is_some(),
                rule::WAIVABLE.contains(&info.id),
                "{}",
                info.id
            );
        }
    }
}
