//! Lint reports: a human-readable listing and byte-stable JSON.
//!
//! Same contract as `teenet-load`'s run reports: the JSON is emitted by
//! hand with stable key order and stable finding order, because the
//! fixture tests assert *byte* equality — formatting is part of the CI
//! contract, not an implementation detail.

use std::fmt::Write as _;

use crate::rules::Finding;

/// Result of scanning a workspace: file count plus every finding,
/// sorted by (file, line, rule, message).
pub struct LintReport {
    /// Number of `.rs` files scanned (excluded prefixes not counted).
    pub files_scanned: usize,
    /// All findings, waived and unwaived, in stable order.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Findings not covered by a waiver — what `--deny-findings` gates on.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_none())
    }

    /// Findings covered by an explicit waiver.
    pub fn waived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_some())
    }

    /// The human-readable report.
    pub fn text(&self) -> String {
        let unwaived: Vec<&Finding> = self.unwaived().collect();
        let waived: Vec<&Finding> = self.waived().collect();
        let mut s = String::new();
        let _ = writeln!(s, "== teenet-analyze: enclave-invariant lint ==");
        let _ = writeln!(s, "{:<26} {}", "files scanned", self.files_scanned);
        let _ = writeln!(
            s,
            "{:<26} {} unwaived, {} waived",
            "findings",
            unwaived.len(),
            waived.len()
        );
        if !unwaived.is_empty() {
            let _ = writeln!(s);
            for f in &unwaived {
                let _ = writeln!(s, "{}:{} [{}] {}", f.file, f.line, f.rule, f.message);
            }
        }
        if !waived.is_empty() {
            let _ = writeln!(s);
            let _ = writeln!(s, "waived:");
            for f in &waived {
                let reason = f.waived.as_deref().unwrap_or("");
                let _ = writeln!(
                    s,
                    "{}:{} [{}] {} -- {}",
                    f.file, f.line, f.rule, f.message, reason
                );
            }
        }
        s
    }

    /// The byte-stable JSON report. `waiver_count` is first-class so the
    /// CI waiver-budget gate can read it without recounting the arrays.
    pub fn json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"files_scanned\":");
        let _ = write!(s, "{}", self.files_scanned);
        let _ = write!(s, ",\"waiver_count\":{}", self.waived().count());
        s.push_str(",\"findings\":[");
        for (i, f) in self.unwaived().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_finding(&mut s, f, None);
        }
        s.push_str("],\"waived\":[");
        for (i, f) in self.waived().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_finding(&mut s, f, f.waived.as_deref());
        }
        s.push_str("]}");
        s.push('\n');
        s
    }
}

fn push_finding(s: &mut String, f: &Finding, reason: Option<&str>) {
    s.push_str("{\"file\":");
    push_json_str(s, &f.file);
    let _ = write!(s, ",\"line\":{}", f.line);
    s.push_str(",\"rule\":");
    push_json_str(s, f.rule);
    s.push_str(",\"message\":");
    push_json_str(s, &f.message);
    if let Some(r) = reason {
        s.push_str(",\"reason\":");
        push_json_str(s, r);
    }
    s.push('}');
}

fn push_json_str(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, waived: Option<&str>) -> Finding {
        Finding {
            file: file.to_owned(),
            line,
            rule: crate::rules::rule::ENCLAVE_ABORT,
            message: "msg with \"quotes\"".to_owned(),
            waived: waived.map(str::to_owned),
        }
    }

    #[test]
    fn json_is_byte_stable_and_escaped() {
        let r = LintReport {
            files_scanned: 3,
            findings: vec![finding("a.rs", 1, None), finding("b.rs", 2, Some("ok"))],
        };
        let j = r.json();
        assert_eq!(j, r.json());
        assert_eq!(
            j,
            "{\"files_scanned\":3,\"waiver_count\":1,\"findings\":[{\"file\":\"a.rs\",\
             \"line\":1,\"rule\":\"enclave-abort\",\"message\":\"msg with \\\"quotes\\\"\"}],\
             \"waived\":[{\"file\":\"b.rs\",\"line\":2,\"rule\":\"enclave-abort\",\
             \"message\":\"msg with \\\"quotes\\\"\",\"reason\":\"ok\"}]}\n"
        );
    }

    #[test]
    fn text_lists_unwaived_then_waived() {
        let r = LintReport {
            files_scanned: 3,
            findings: vec![finding("a.rs", 1, None), finding("b.rs", 2, Some("ok"))],
        };
        let t = r.text();
        assert!(t.contains("1 unwaived, 1 waived"));
        assert!(t.contains("a.rs:1 [enclave-abort]"));
        assert!(t.contains("b.rs:2 [enclave-abort] msg with \"quotes\" -- ok"));
    }

    #[test]
    fn control_chars_escaped() {
        let mut s = String::new();
        push_json_str(&mut s, "a\x01b\nc");
        assert_eq!(s, "\"a\\u0001b\\nc\"");
    }
}
