//! Repo-specific configuration: which files are enclave-resident, which
//! files carry cycle accounting, what counts as a secret, and what the
//! egress sinks are.
//!
//! The configuration is code, not a config file, for the same reason the
//! load reports hand-roll their JSON: the linter's output is part of the
//! CI contract, and a silently edited config file is exactly the kind of
//! unaudited change the waiver grammar exists to prevent. Changing the
//! trusted-file set means changing this module, in a reviewed diff.

/// Everything the rule engine needs to know about the tree it scans.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Path prefixes (relative to the workspace root, `/`-separated) that
    /// are never scanned.
    pub excluded_prefixes: Vec<String>,
    /// Files (or directory prefixes) whose code runs inside an enclave —
    /// rules L1a/L1b apply here.
    pub enclave_resident: Vec<String>,
    /// Files that implement instruction/cycle accounting — rule L3
    /// (no floating point) applies here.
    pub accounting: Vec<String>,
    /// Files allowed to touch wall-clock/OS-entropy APIs — rule L4
    /// exempts these (the virtual clock itself).
    pub clock_exempt: Vec<String>,
    /// Identifiers that carry secret key material (rule L2 sources).
    pub secret_idents: Vec<String>,
    /// Function names whose arguments cross the enclave boundary
    /// (rule L2 sinks).
    pub egress_sinks: Vec<String>,
    /// Function names that are the *sanctioned* way for secrets to leave
    /// (the sealing API); sink calls inside their argument lists are
    /// still checked, but a secret flowing into these is fine.
    pub sanctioned_egress: Vec<String>,
    /// Wall-clock / ambient-entropy identifiers (rule L4).
    pub clock_idents: Vec<String>,
    /// Function names whose return value is an attestation verdict —
    /// discarding it is rule L5 (`attestation-unchecked`).
    pub attest_verify_idents: Vec<String>,
    /// Function names that recover sealed state — their results seed the
    /// rollback taint of rule L6 (`seal-rollback`).
    pub unseal_idents: Vec<String>,
    /// Field names that carry a sealed blob's monotonic counter; a
    /// projection of a tainted value through one of these into an
    /// ordered comparison is the rollback gate (rule L6).
    pub counter_fields: Vec<String>,
    /// Field names that carry unsealed key material; projecting a
    /// tainted value through one of these is a *use* (rule L6).
    pub key_fields: Vec<String>,
    /// Function names that consume a nonce/IV argument (seal/encrypt
    /// call sites for rule L7, `seal-nonce-reuse`).
    pub nonce_sinks: Vec<String>,
}

impl AnalyzeConfig {
    /// The workspace's configuration. File lists name the trusted
    /// protocol surface: `teenet-sgx` in full, each application's
    /// in-enclave modules, and the TLS record layer the middlebox runs
    /// inside its enclave. `teenet-crypto` is deliberately out of scope
    /// for L1: it is the constant-time primitive layer, its inputs are
    /// length-validated at the protocol layer above, and its internals
    /// (bignum limb loops) are covered by their own property tests.
    pub fn repo() -> Self {
        AnalyzeConfig {
            excluded_prefixes: vec![
                s("target"),
                s(".git"),
                s("vendor"),
                // The linter's own known-bad test corpus.
                s("crates/analyze/tests/fixtures"),
            ],
            enclave_resident: vec![
                // The SGX emulator: trusted by definition.
                s("crates/sgx/src"),
                // The service layer: harness + calibration paths shared by
                // every workload; panics here would cross every app.
                s("crates/app/src"),
                // Attestation core: enclave-side protocol + channel.
                s("crates/core/src/attest.rs"),
                s("crates/core/src/responder.rs"),
                s("crates/core/src/mutual.rs"),
                s("crates/core/src/channel.rs"),
                s("crates/core/src/driver.rs"),
                s("crates/core/src/identity.rs"),
                // TLS runs inside the middlebox enclave.
                s("crates/tls/src"),
                // Middlebox enclave program + provisioning + DPI engine.
                s("crates/mbox/src/middlebox.rs"),
                s("crates/mbox/src/provision.rs"),
                s("crates/mbox/src/dpi.rs"),
                // Tor: the service enclave and the in-enclave cell path.
                s("crates/tor/src/deployment.rs"),
                s("crates/tor/src/relay.rs"),
                s("crates/tor/src/cell.rs"),
                s("crates/tor/src/circuit.rs"),
                s("crates/tor/src/crypto.rs"),
                // Interdomain: controller enclave + in-enclave verification.
                s("crates/interdomain/src/controller.rs"),
                s("crates/interdomain/src/verify.rs"),
                s("crates/interdomain/src/compute.rs"),
                s("crates/interdomain/src/predicate.rs"),
                s("crates/interdomain/src/wire.rs"),
                // Keystore: coordinator + fleet-worker enclave programs
                // and their wire records.
                s("crates/keystore/src/coordinator.rs"),
                s("crates/keystore/src/worker.rs"),
                s("crates/keystore/src/record.rs"),
            ],
            accounting: vec![
                s("crates/sgx/src/cost.rs"),
                s("crates/sgx/src/switchless.rs"),
                // The backend abstraction and the VM-TEE profile charge
                // counters directly (ecall pairs, page acceptance, PSP
                // attestation) — accounting code, same as cost.rs.
                s("crates/sgx/src/tee.rs"),
                s("crates/sgx/src/vmtee.rs"),
                s("crates/load/src/metrics.rs"),
            ],
            clock_exempt: vec![
                // The virtual clock is the one sanctioned time source; if
                // a wall-clock adapter is ever added, it goes here.
                s("crates/netsim/src/time.rs"),
                // The loadgen CLI times the sharded replay in wall-clock
                // for BENCH_loadgen.json; the run reports themselves stay
                // on virtual time.
                s("crates/bench/src/bin/loadgen.rs"),
            ],
            secret_idents: vec![
                s("device_key"),
                s("seal_key"),
                s("report_key"),
                s("attestation_key"),
                s("launch_key"),
                s("provisioning_key"),
                s("shared_secret"),
                s("dh_secret"),
                s("enc_key"),
                s("mac_key"),
            ],
            egress_sinks: vec![s("ocall"), s("send_packets")],
            sanctioned_egress: vec![s("seal"), s("egetkey"), s("derive_key")],
            clock_idents: vec![
                s("SystemTime"),
                s("Instant"),
                s("thread_rng"),
                s("from_entropy"),
                s("OsRng"),
                s("getrandom"),
            ],
            attest_verify_idents: vec![
                // `Challenger::verify` / `Quote::verify` /
                // `SoftwareCertificate::verify` / `Signature::verify` —
                // every `verify` in this tree returns a verdict.
                s("verify"),
                // The host-side one-shot attestation driver.
                s("attest_enclave"),
                // The symmetric enclave-to-enclave handshake.
                s("mutual_attest"),
            ],
            unseal_idents: vec![s("unseal")],
            counter_fields: vec![s("counter"), s("epoch")],
            key_fields: vec![s("key"), s("material"), s("key_material"), s("secret")],
            nonce_sinks: vec![
                // The sealing primitive itself (`EnclaveCtx::seal`
                // derives its nonce internally; only call sites that
                // pass an explicit nonce argument are keyed).
                s("seal"),
                // The raw CTR-mode primitives.
                s("ctr_apply"),
                s("apply"),
            ],
        }
    }

    /// True when `rel_path` (workspace-relative, `/`-separated) is
    /// excluded from scanning entirely.
    pub fn is_excluded(&self, rel_path: &str) -> bool {
        has_prefix(&self.excluded_prefixes, rel_path)
    }

    /// True when rules L1a/L1b apply to `rel_path`.
    pub fn is_enclave_resident(&self, rel_path: &str) -> bool {
        has_prefix(&self.enclave_resident, rel_path)
    }

    /// True when rule L3 applies to `rel_path`.
    pub fn is_accounting(&self, rel_path: &str) -> bool {
        has_prefix(&self.accounting, rel_path)
    }

    /// True when rule L4 is suspended for `rel_path`.
    pub fn is_clock_exempt(&self, rel_path: &str) -> bool {
        has_prefix(&self.clock_exempt, rel_path)
    }
}

fn s(x: &str) -> String {
    x.to_owned()
}

/// Prefix match on `/`-separated path components (so `crates/sgx/src`
/// matches `crates/sgx/src/seal.rs` but not `crates/sgx/srcfoo.rs`).
fn has_prefix(prefixes: &[String], rel_path: &str) -> bool {
    prefixes.iter().any(|p| {
        rel_path == p
            || (rel_path.len() > p.len()
                && rel_path.starts_with(p.as_str())
                && rel_path.as_bytes()[p.len()] == b'/')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_is_component_wise() {
        let c = AnalyzeConfig::repo();
        assert!(c.is_enclave_resident("crates/sgx/src/seal.rs"));
        assert!(c.is_enclave_resident("crates/sgx/src/tee.rs"));
        assert!(c.is_enclave_resident("crates/sgx/src/vmtee.rs"));
        assert!(c.is_enclave_resident("crates/sgx/src"));
        assert!(c.is_enclave_resident("crates/app/src/harness.rs"));
        assert!(!c.is_enclave_resident("crates/app/Cargo.toml"));
        assert!(!c.is_enclave_resident("crates/sgx/srcfoo.rs"));
        assert!(!c.is_enclave_resident("crates/netsim/src/sim.rs"));
        // The keystore's enclave programs are in; its host-side service
        // driver is not.
        assert!(c.is_enclave_resident("crates/keystore/src/worker.rs"));
        assert!(c.is_enclave_resident("crates/keystore/src/coordinator.rs"));
        assert!(!c.is_enclave_resident("crates/keystore/src/service.rs"));
        assert!(c.is_excluded("vendor/bytes/src/lib.rs"));
        assert!(c.is_excluded("crates/analyze/tests/fixtures/abort_bad.rs"));
        assert!(!c.is_excluded("crates/analyze/src/lib.rs"));
    }

    #[test]
    fn accounting_and_clock_sets() {
        let c = AnalyzeConfig::repo();
        assert!(c.is_accounting("crates/sgx/src/cost.rs"));
        assert!(c.is_accounting("crates/sgx/src/tee.rs"));
        assert!(c.is_accounting("crates/sgx/src/vmtee.rs"));
        assert!(!c.is_accounting("crates/sgx/src/seal.rs"));
        assert!(c.is_clock_exempt("crates/netsim/src/time.rs"));
        assert!(c.is_clock_exempt("crates/bench/src/bin/loadgen.rs"));
        assert!(!c.is_clock_exempt("crates/netsim/src/sim.rs"));
        assert!(!c.is_clock_exempt("crates/load/src/shard.rs"));
    }
}
