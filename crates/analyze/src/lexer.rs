//! A hand-rolled Rust lexer — the "AST-lite" layer of the linter.
//!
//! Offline-friendly by design: no `syn`, no `proc-macro2`, just enough
//! tokenisation to be *sound about trivia*. The rules in
//! [`crate::rules`] only need identifiers, punctuation and literals with
//! line numbers; what they must never do is fire on the contents of a
//! string literal or a doc comment (`/// see [`foo::bar`]` would
//! otherwise look like an indexing expression). Comments are kept as
//! tokens because the waiver grammar lives in them.
//!
//! Handled: line and (nested) block comments, string/raw-string/
//! byte-string/char literals, lifetimes vs char literals, integer vs
//! float literals, underscore digit separators, multi-`#` raw strings.

/// What a token is, with just enough payload for the rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `fn`, `u8`, ...).
    Ident(String),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Integer literal (`0`, `0x1f`, `4_096`, `32usize`) with its exact
    /// source text, so flow rules can tell `[1u8; 16]` from `[2u8; 16]`.
    Int(String),
    /// Float literal (`1.8`, `1e9`, `0.5f64`).
    Float,
    /// String, raw string, byte string or char literal (contents dropped).
    Literal,
    /// A `//` or `/* */` comment, with its full text (waivers live here).
    Comment(String),
    /// Any single punctuation character (`[`, `]`, `!`, `.`, `#`, ...).
    Punct(char),
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class and payload.
    pub kind: TokenKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is exactly the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenises `src`, keeping comments (for waiver parsing) and dropping
/// only whitespace. Unterminated literals are tolerated: the lexer never
/// panics on malformed input, it just lexes what it can.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                out.push(Token {
                    kind: TokenKind::Comment(text),
                    line,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                out.push(Token {
                    kind: TokenKind::Comment(text),
                    line,
                });
            }
            b'"' => {
                lex_string(&mut cur);
                out.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            b'r' | b'b' if raw_string_ahead(&cur) => {
                lex_raw_or_byte_string(&mut cur);
                out.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            b'\'' => {
                if char_literal_ahead(&cur) {
                    lex_char(&mut cur);
                    out.push(Token {
                        kind: TokenKind::Literal,
                        line,
                    });
                } else {
                    // Lifetime: consume the quote and the identifier.
                    cur.bump();
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    out.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                    });
                }
            }
            b'0'..=b'9' => {
                let start = cur.pos;
                let is_float = lex_number(&mut cur);
                out.push(Token {
                    kind: if is_float {
                        TokenKind::Float
                    } else {
                        let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                        TokenKind::Int(text)
                    },
                    line,
                });
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                out.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                });
            }
            _ => {
                cur.bump();
                out.push(Token {
                    kind: TokenKind::Punct(b as char),
                    line,
                });
            }
        }
    }
    out
}

/// After an `r` or `b`: does a raw/byte string start here (`r"`, `r#`,
/// `b"`, `br"`, `br#`, `rb` is not a thing)?
fn raw_string_ahead(cur: &Cursor<'_>) -> bool {
    let mut i = 1;
    if cur.peek() == Some(b'b') && cur.peek_at(1) == Some(b'r') {
        i = 2;
    } else if cur.peek() == Some(b'r') || cur.peek() == Some(b'b') {
        i = 1;
    }
    // Skip any number of #s (raw strings only).
    let hash_ok = cur.peek() != Some(b'b') || cur.peek_at(1) == Some(b'r');
    let mut j = i;
    while hash_ok && cur.peek_at(j) == Some(b'#') {
        j += 1;
    }
    cur.peek_at(j) == Some(b'"')
}

fn lex_raw_or_byte_string(cur: &mut Cursor<'_>) {
    let mut raw = false;
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'r') {
        raw = true;
        cur.bump();
    }
    let mut hashes = 0usize;
    while raw && cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    if raw {
        // Scan for `"` followed by `hashes` #s.
        while cur.peek().is_some() {
            if cur.peek() == Some(b'"') {
                let mut ok = true;
                for k in 0..hashes {
                    if cur.peek_at(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    cur.bump();
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    return;
                }
            }
            cur.bump();
        }
    } else {
        lex_string_body(cur);
    }
}

fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    lex_string_body(cur);
}

fn lex_string_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        match c {
            b'\\' => {
                cur.bump();
                cur.bump();
            }
            b'"' => {
                cur.bump();
                return;
            }
            _ => {
                cur.bump();
            }
        }
    }
}

/// `'x'` / `'\n'` / `b'x'` are char literals; `'a` (no closing quote
/// nearby) is a lifetime. Escapes always mean char literal.
fn char_literal_ahead(cur: &Cursor<'_>) -> bool {
    match cur.peek_at(1) {
        Some(b'\\') => true,
        Some(c) if c != b'\'' => cur.peek_at(2) == Some(b'\''),
        _ => true, // `''` — malformed, treat as literal and move on
    }
}

fn lex_char(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    if cur.peek() == Some(b'\\') {
        cur.bump();
        cur.bump();
    } else {
        cur.bump();
    }
    if cur.peek() == Some(b'\'') {
        cur.bump();
    }
}

/// Lexes a number, returning true when it is a float. A `.` is part of
/// the number only when not followed by another `.` (range) or an
/// identifier start (method call like `1.max(2)`).
fn lex_number(cur: &mut Cursor<'_>) -> bool {
    let mut is_float = false;
    // Hex/octal/binary prefixes never produce floats.
    if cur.peek() == Some(b'0')
        && matches!(
            cur.peek_at(1),
            Some(b'x') | Some(b'o') | Some(b'b') | Some(b'X')
        )
    {
        cur.bump();
        cur.bump();
        while cur
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            cur.bump();
        }
        return false;
    }
    while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
        cur.bump();
    }
    if cur.peek() == Some(b'.') {
        let next = cur.peek_at(1);
        let part_of_number = match next {
            Some(b'.') => false,                   // range `1..n`
            Some(c) if is_ident_start(c) => false, // method `1.max(..)`
            _ => true,                             // `1.5`, `1.`
        };
        if part_of_number {
            is_float = true;
            cur.bump();
            while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                cur.bump();
            }
        }
    }
    if matches!(cur.peek(), Some(b'e') | Some(b'E')) {
        let mut k = 1;
        if matches!(cur.peek_at(1), Some(b'+') | Some(b'-')) {
            k = 2;
        }
        if cur.peek_at(k).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            cur.bump();
            while cur
                .peek()
                .is_some_and(|c| c.is_ascii_digit() || c == b'_' || c == b'+' || c == b'-')
            {
                cur.bump();
            }
        }
    }
    // Type suffix (`u64`, `usize`, `f64`). An `f32`/`f64` suffix makes
    // the literal a float even without a dot (`1f64`).
    if cur.peek().is_some_and(is_ident_start) {
        let start = cur.pos;
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        let suffix = &cur.src[start..cur.pos];
        if suffix == b"f32" || suffix == b"f64" {
            is_float = true;
        }
    }
    is_float
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = "// unwrap() in a comment\n\
                   /// doc with [`indexing`] link\n\
                   let s = \"unwrap() inside a string\";\n\
                   let r = r#\"raw with \"quotes\" and unwrap()\"#;\n\
                   let b = b\"bytes\";\n\
                   tail";
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"indexing".to_string()));
        assert!(
            ids.contains(&"tail".to_string()),
            "lexing resumed after the raw string"
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = lex("let a = 1.8; let b = 1..8; let c = 1e9; let d = 4_096; let e = 1f64;");
        let floats = toks.iter().filter(|t| t.kind == TokenKind::Float).count();
        let ints = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int(_)))
            .count();
        assert_eq!(floats, 3, "1.8, 1e9 and 1f64");
        assert_eq!(ints, 3, "1, 8 and 4_096");
    }

    #[test]
    fn method_call_on_int_is_not_a_float() {
        let toks = lex("let a = 1.max(2);");
        assert!(toks.iter().all(|t| t.kind != TokenKind::Float));
        assert!(toks.iter().any(|t| t.ident() == Some("max")));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still outer */ ident");
        assert_eq!(toks.len(), 2);
        assert!(matches!(toks[0].kind, TokenKind::Comment(_)));
        assert_eq!(toks[1].ident(), Some("ident"));
    }

    #[test]
    fn hex_is_int() {
        let toks = lex("0x1f_ffu64 0b1010 0o777");
        assert!(toks.iter().all(|t| matches!(t.kind, TokenKind::Int(_))));
    }

    #[test]
    fn int_literals_keep_their_exact_text() {
        let toks = lex("[1u8; 16] [2u8; 16] 0x1f");
        let texts: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Int(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(texts, vec!["1u8", "16", "2u8", "16", "0x1f"]);
    }
}
