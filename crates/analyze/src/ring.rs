//! Bounded exhaustive-interleaving model checker for the switchless
//! call ring (`teenet_sgx::switchless`).
//!
//! Svenningsson et al. ("Speeding up enclave transitions for
//! IO-intensive applications") put the hard bugs of HotCalls-style
//! designs exactly where this module looks: the sleep/wake handshake
//! between the in-enclave poster and the spinning host worker. A worker
//! that re-checks the ring *before* publishing "I am asleep" loses the
//! post that lands in between (**lost wakeup**); a poster that writes
//! the ring entry *before* discovering the ring is full services the
//! call twice (**double execution**). `switchless.rs` is deterministic
//! and sequential, so its unit tests cannot exercise these races — this
//! checker explores the *concurrent design* the emulation stands for.
//!
//! ## The model
//!
//! Two actors over a shared ring, each step atomic:
//!
//! * **Enclave** posts calls `0..calls`, one slot each:
//!   worker asleep → *fallback-wake* (the real transition services the
//!   call itself, wakes the worker, resets its spin budget); ring full →
//!   *fallback-full* (the real transition services the call itself; the
//!   entry is **not** enqueued); otherwise → *elided* (entry enqueued).
//! * **Worker**, while awake: pops and executes the oldest entry
//!   (resetting its spin budget), or burns one unit of spin budget when
//!   the ring is empty, or — with the ring empty **and** the budget
//!   exhausted — goes to sleep. That final "ring empty" re-check is the
//!   crux: dropping it is exactly the lost-wakeup race.
//!
//! The checker runs a depth-first search over *every* interleaving of
//! those steps (memoising visited states, so the exploration is
//! exhaustive over the reachable state space, not just over one run),
//! and validates each terminal state:
//!
//! * every posted call executed **exactly once** (no drops, no double
//!   execution),
//! * the ring is empty (a non-empty ring with the worker asleep and the
//!   enclave done is a lost wakeup — nothing will ever drain it),
//! * conservation: `elided + fallbacks == calls`. In
//!   [`teenet_sgx::TransitionStats`] terms each fallback is one `taken`
//!   pair and one `fallbacks` tick, each elided post one `elided` pair,
//!   so this is the model-side image of the stats invariant that
//!   `taken`, `elided` and `fallbacks` partition the posted pairs (see
//!   [`ModelCounters::as_transition_stats`]).
//!
//! ## Seeded mutations
//!
//! [`Mutation::LostWakeup`] lets the worker sleep on an exhausted spin
//! budget *without* the final ring re-check; [`Mutation::DoubleExecution`]
//! makes the full-ring fallback also leave its entry in the ring (the
//! post-then-check ordering bug). The checker must reject both — that is
//! asserted in `tests/ring_exhaustive.rs`, proving the invariants have
//! teeth rather than passing vacuously.

use std::collections::HashSet;

use teenet_sgx::TransitionStats;

/// Model bounds. State space is exhaustively explored within them.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Ring slots (each posted call occupies one).
    pub ring_capacity: usize,
    /// Worker spin steps tolerated on an empty ring before sleeping.
    pub spin_budget: u32,
    /// Calls the enclave posts (the exploration depth).
    pub calls: u8,
    /// Hard cap on distinct states; exceeding it is an error, never a
    /// silent pass.
    pub max_states: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            ring_capacity: 2,
            spin_budget: 1,
            calls: 4,
            max_states: 1_000_000,
        }
    }
}

/// Which (if any) seeded bug the model runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The faithful model of the switchless design.
    None,
    /// Worker sleeps once its spin budget is exhausted *without*
    /// re-checking the ring — the canonical sleep/post race.
    LostWakeup,
    /// Full-ring fallback both services the call synchronously *and*
    /// leaves the entry in the ring (post-then-check ordering bug), so
    /// the worker services it a second time.
    DoubleExecution,
}

impl Mutation {
    /// Stable lowercase name (used in reports).
    pub fn as_str(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::LostWakeup => "lost-wakeup",
            Mutation::DoubleExecution => "double-execution",
        }
    }
}

/// Post/execution counters of one terminal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelCounters {
    /// Posts absorbed by the ring.
    pub elided: u64,
    /// Posts serviced by a real (fallback) transition.
    pub fallbacks: u64,
}

impl ModelCounters {
    /// The model counters as the real implementation would account them:
    /// each fallback is a real transition pair, each elided post a pair
    /// the ring absorbed. (The enclave's own EENTER/EEXIT pairs are
    /// outside the model — it only covers the ocall path.)
    pub fn as_transition_stats(&self) -> TransitionStats {
        TransitionStats {
            taken: self.fallbacks,
            elided: self.elided,
            fallbacks: self.fallbacks,
        }
    }
}

/// Proof of a violated invariant: what broke, and the exact
/// interleaving (step labels from the initial state) that breaks it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Human-readable description of the broken invariant.
    pub what: String,
    /// The interleaving that reaches the violating state.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "invariant violated: {}", self.what)?;
        writeln!(f, "interleaving:")?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>2}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// Summary of a successful exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct states visited.
    pub states: usize,
    /// Distinct terminal states, all of which passed validation.
    pub terminals: usize,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    next_call: u8,
    ring: Vec<u8>,
    worker_awake: bool,
    spin_left: u32,
    exec: Vec<u8>,
    elided: u8,
    fallbacks: u8,
}

impl State {
    fn initial(cfg: &ModelConfig) -> State {
        State {
            next_call: 0,
            ring: Vec::new(),
            // set_mode(Switchless) starts the worker spinning.
            worker_awake: true,
            spin_left: cfg.spin_budget,
            exec: vec![0; cfg.calls as usize],
            elided: 0,
            fallbacks: 0,
        }
    }
}

/// Explores every interleaving of enclave and worker steps up to the
/// configured bounds. `Ok` means every reachable terminal state passed
/// every invariant; `Err` carries the first violation with its trace.
pub fn check(cfg: &ModelConfig, mutation: Mutation) -> Result<Exploration, Violation> {
    let mut visited = HashSet::new();
    let mut stats = Exploration {
        states: 0,
        terminals: 0,
    };
    let mut trace = Vec::new();
    explore(
        cfg,
        mutation,
        State::initial(cfg),
        &mut visited,
        &mut trace,
        &mut stats,
    )?;
    Ok(stats)
}

fn explore(
    cfg: &ModelConfig,
    mutation: Mutation,
    s: State,
    visited: &mut HashSet<State>,
    trace: &mut Vec<String>,
    stats: &mut Exploration,
) -> Result<(), Violation> {
    if visited.contains(&s) {
        return Ok(());
    }
    stats.states += 1;
    if stats.states > cfg.max_states {
        return Err(Violation {
            what: format!("state space exceeds max_states={}", cfg.max_states),
            trace: trace.clone(),
        });
    }
    let succ = successors(cfg, mutation, &s);
    if succ.is_empty() {
        stats.terminals += 1;
        validate_terminal(cfg, &s, trace)?;
    }
    visited.insert(s);
    for (label, n) in succ {
        trace.push(label);
        explore(cfg, mutation, n, visited, trace, stats)?;
        trace.pop();
    }
    Ok(())
}

/// Every enabled atomic step from `s`, with a label for the trace.
fn successors(cfg: &ModelConfig, mutation: Mutation, s: &State) -> Vec<(String, State)> {
    let mut out = Vec::new();

    // Enclave: post the next call.
    if (s.next_call as usize) < cfg.calls as usize {
        let c = s.next_call;
        let mut n = s.clone();
        n.next_call += 1;
        if !s.worker_awake {
            n.exec[c as usize] += 1;
            n.fallbacks += 1;
            n.worker_awake = true;
            n.spin_left = cfg.spin_budget;
            out.push((format!("enclave: post({c}) -> fallback-wake"), n));
        } else if s.ring.len() >= cfg.ring_capacity {
            n.exec[c as usize] += 1;
            n.fallbacks += 1;
            if mutation == Mutation::DoubleExecution {
                // Bug: the entry was written before the capacity check.
                n.ring.push(c);
            }
            out.push((format!("enclave: post({c}) -> fallback-full"), n));
        } else {
            n.ring.push(c);
            n.elided += 1;
            out.push((format!("enclave: post({c}) -> elided"), n));
        }
    }

    // Worker: pop, spin, or sleep.
    if s.worker_awake {
        if let Some(&c) = s.ring.first() {
            let mut n = s.clone();
            n.ring.remove(0);
            n.exec[c as usize] += 1;
            n.spin_left = cfg.spin_budget;
            out.push((format!("worker: pop({c}) + execute"), n));
        } else if s.spin_left > 0 {
            let mut n = s.clone();
            n.spin_left -= 1;
            out.push(("worker: spin".to_owned(), n));
        }
        let may_sleep = match mutation {
            // Bug: no final ring re-check before publishing "asleep".
            Mutation::LostWakeup => s.spin_left == 0,
            _ => s.ring.is_empty() && s.spin_left == 0,
        };
        if may_sleep {
            let mut n = s.clone();
            n.worker_awake = false;
            out.push(("worker: sleep".to_owned(), n));
        }
    }

    out
}

fn validate_terminal(cfg: &ModelConfig, s: &State, trace: &[String]) -> Result<(), Violation> {
    let fail = |what: String| {
        Err(Violation {
            what,
            trace: trace.to_vec(),
        })
    };
    if !s.ring.is_empty() {
        // Terminal + non-empty ring means the worker is asleep and the
        // enclave is done: nothing will ever drain these entries.
        return fail(format!(
            "lost wakeup: worker asleep with {:?} still in the ring",
            s.ring
        ));
    }
    for (c, &n) in s.exec.iter().enumerate() {
        if n == 0 {
            return fail(format!("call {c} was dropped (never executed)"));
        }
        if n > 1 {
            return fail(format!("call {c} executed {n} times"));
        }
    }
    let total = u64::from(s.elided) + u64::from(s.fallbacks);
    if total != u64::from(cfg.calls) {
        return fail(format!(
            "conservation broken: elided {} + fallbacks {} != posts {}",
            s.elided, s.fallbacks, cfg.calls
        ));
    }
    let stats = ModelCounters {
        elided: u64::from(s.elided),
        fallbacks: u64::from(s.fallbacks),
    }
    .as_transition_stats();
    if stats.fallbacks > stats.taken {
        return fail(format!(
            "stats invariant broken: fallbacks {} exceed taken {}",
            stats.fallbacks, stats.taken
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_model_passes_default_bounds() {
        let e = check(&ModelConfig::default(), Mutation::None).expect("faithful model");
        assert!(e.states > 0 && e.terminals > 0);
    }

    #[test]
    fn lost_wakeup_mutation_caught() {
        let v = check(&ModelConfig::default(), Mutation::LostWakeup)
            .expect_err("mutation must be rejected");
        assert!(
            v.what.contains("lost wakeup") || v.what.contains("dropped"),
            "{v}"
        );
        assert!(!v.trace.is_empty(), "violation must carry a witness trace");
    }

    #[test]
    fn double_execution_mutation_caught() {
        let v = check(&ModelConfig::default(), Mutation::DoubleExecution)
            .expect_err("mutation must be rejected");
        assert!(v.what.contains("executed 2 times"), "{v}");
    }

    #[test]
    fn zero_spin_budget_still_sound() {
        let cfg = ModelConfig {
            spin_budget: 0,
            ..ModelConfig::default()
        };
        check(&cfg, Mutation::None).expect("spin budget 0");
    }

    #[test]
    fn single_slot_ring_still_sound() {
        let cfg = ModelConfig {
            ring_capacity: 1,
            calls: 5,
            ..ModelConfig::default()
        };
        check(&cfg, Mutation::None).expect("1-slot ring");
    }

    #[test]
    fn state_cap_is_an_error_not_a_pass() {
        let cfg = ModelConfig {
            max_states: 3,
            ..ModelConfig::default()
        };
        let v = check(&cfg, Mutation::None).expect_err("cap must fail loudly");
        assert!(v.what.contains("max_states"));
    }

    #[test]
    fn counters_map_onto_transition_stats() {
        let s = ModelCounters {
            elided: 5,
            fallbacks: 2,
        }
        .as_transition_stats();
        assert_eq!(s.taken, 2);
        assert_eq!(s.elided, 5);
        assert_eq!(s.fallbacks, 2);
    }
}
