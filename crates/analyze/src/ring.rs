//! Bounded exhaustive-interleaving model checker for the switchless
//! call ring (`teenet_sgx::switchless`).
//!
//! Svenningsson et al. ("Speeding up enclave transitions for
//! IO-intensive applications") put the hard bugs of HotCalls-style
//! designs exactly where this module looks: the sleep/wake handshake
//! between the in-enclave poster and the pool of spinning host workers.
//! A worker that re-checks the ring *before* publishing "I am asleep"
//! loses the post that lands in between (**lost wakeup**); a poster that
//! writes the ring entry *before* discovering the ring is full services
//! the call twice (**double execution**); and with more than one worker
//! a wake signal grabbed by an already-awake worker leaves the intended
//! sleeper parked while the poster believes capacity was added
//! (**stampede wake** — the thundering-herd semaphore steal).
//! `switchless.rs` is deterministic and sequential, so its unit tests
//! cannot exercise these races — this checker explores the *concurrent
//! design* the emulation stands for.
//!
//! ## The model
//!
//! `1 + N` actors over a shared ring, each step atomic:
//!
//! * **Enclave** posts calls `0..calls`, one slot each:
//!   every worker asleep → *fallback-wake* (the real transition services
//!   the call itself and posts one wake signal — an asynchronous token a
//!   sleeping worker must later consume; a second all-asleep fallback
//!   while the token is still undelivered services itself without
//!   posting another); ring full → *fallback-full* (the real transition
//!   services the call itself; the entry is **not** enqueued; if a
//!   worker is asleep and no wake is in flight, the fallback also posts
//!   a wake — the scale-up-on-fallback path of the implementation);
//!   otherwise → *elided* (entry enqueued).
//! * **Worker i**, while awake: pops and executes the oldest entry
//!   (resetting its spin budget), or burns one unit of spin budget when
//!   the ring is empty, or — with the ring empty **and** the budget
//!   exhausted — goes to sleep. That final "ring empty" re-check is the
//!   crux: dropping it is exactly the lost-wakeup race. While asleep:
//!   consumes a pending wake token and resumes spinning.
//!
//! The checker runs a depth-first search over *every* interleaving of
//! those steps (memoising visited states, so the exploration is
//! exhaustive over the reachable state space, not just over one run),
//! and validates each terminal state:
//!
//! * every posted call executed **exactly once** (no drops, no double
//!   execution),
//! * the ring is empty (a non-empty ring with every worker asleep and
//!   the enclave done is a lost wakeup — nothing will ever drain it),
//! * conservation: `elided + fallbacks == calls`. In
//!   [`teenet_sgx::TransitionStats`] terms each fallback is one `taken`
//!   pair and one `fallbacks` tick, each elided post one `elided` pair,
//!   so this is the model-side image of the stats invariant that
//!   `taken`, `elided` and `fallbacks` partition the posted pairs (see
//!   [`ModelCounters::as_transition_stats`]),
//! * wake accounting: `wakes_delivered == wakes_posted` — every wake
//!   the poster paid for (each one is a charged `switchless_wake`)
//!   actually moved a worker from asleep to spinning. A wake consumed by
//!   an already-awake worker is capacity the enclave paid for and never
//!   received.
//!
//! ## Seeded mutations
//!
//! [`Mutation::LostWakeup`] lets a worker sleep on an exhausted spin
//! budget *without* the final ring re-check; [`Mutation::DoubleExecution`]
//! makes the full-ring fallback also leave its entry in the ring (the
//! post-then-check ordering bug); [`Mutation::StampedeWake`] lets an
//! already-awake worker consume the wake token meant for a sleeper. The
//! checker must reject all three — that is asserted in
//! `tests/ring_exhaustive.rs`, proving the invariants have teeth rather
//! than passing vacuously.

use std::collections::HashSet;

use teenet_sgx::TransitionStats;

/// Model bounds. State space is exhaustively explored within them.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Ring slots (each posted call occupies one).
    pub ring_capacity: usize,
    /// Per-worker spin steps tolerated on an empty ring before sleeping.
    pub spin_budget: u32,
    /// Host workers in the pool (each an independent actor).
    pub workers: usize,
    /// Calls the enclave posts (the exploration depth).
    pub calls: u8,
    /// Hard cap on distinct states; exceeding it is an error, never a
    /// silent pass.
    pub max_states: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            ring_capacity: 2,
            spin_budget: 1,
            workers: 2,
            calls: 4,
            max_states: 1_000_000,
        }
    }
}

/// Which (if any) seeded bug the model runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The faithful model of the switchless design.
    None,
    /// A worker sleeps once its spin budget is exhausted *without*
    /// re-checking the ring — the canonical sleep/post race.
    LostWakeup,
    /// Full-ring fallback both services the call synchronously *and*
    /// leaves the entry in the ring (post-then-check ordering bug), so
    /// a worker services it a second time.
    DoubleExecution,
    /// An already-awake worker may consume the wake signal meant for a
    /// sleeping one (semaphore steal): the sleeper stays parked, the
    /// poster paid a wake that added no capacity. Requires ≥ 2 workers
    /// to be expressible at all.
    StampedeWake,
}

impl Mutation {
    /// Stable lowercase name (used in reports).
    pub fn as_str(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::LostWakeup => "lost-wakeup",
            Mutation::DoubleExecution => "double-execution",
            Mutation::StampedeWake => "stampede-wake",
        }
    }
}

/// Post/execution counters of one terminal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelCounters {
    /// Posts absorbed by the ring.
    pub elided: u64,
    /// Posts serviced by a real (fallback) transition.
    pub fallbacks: u64,
}

impl ModelCounters {
    /// The model counters as the real implementation would account them:
    /// each fallback is a real transition pair, each elided post a pair
    /// the ring absorbed. (The enclave's own EENTER/EEXIT pairs are
    /// outside the model — it only covers the ocall path. So is spin
    /// accounting: `idle_spins` is a cost meter, not a safety quantity,
    /// and the model deliberately keeps burned spins out of its state to
    /// keep the memoised exploration finite.)
    pub fn as_transition_stats(&self) -> TransitionStats {
        TransitionStats {
            taken: self.fallbacks,
            elided: self.elided,
            fallbacks: self.fallbacks,
            idle_spins: 0,
        }
    }
}

/// Proof of a violated invariant: what broke, and the exact
/// interleaving (step labels from the initial state) that breaks it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Human-readable description of the broken invariant.
    pub what: String,
    /// The interleaving that reaches the violating state.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "invariant violated: {}", self.what)?;
        writeln!(f, "interleaving:")?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>2}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// Summary of a successful exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct states visited.
    pub states: usize,
    /// Distinct terminal states, all of which passed validation.
    pub terminals: usize,
}

/// One host worker: spinning on the ring or parked on the wake futex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Worker {
    awake: bool,
    spin_left: u32,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    next_call: u8,
    ring: Vec<u8>,
    workers: Vec<Worker>,
    /// Wake signals posted but not yet consumed by any worker.
    wake_pending: u8,
    /// Wakes the poster paid for (each one a charged `switchless_wake`).
    wakes_posted: u8,
    /// Wakes that actually moved a worker from asleep to spinning.
    wakes_delivered: u8,
    exec: Vec<u8>,
    elided: u8,
    fallbacks: u8,
}

impl State {
    fn initial(cfg: &ModelConfig) -> State {
        State {
            next_call: 0,
            ring: Vec::new(),
            // set_mode(Switchless) starts the pool spinning.
            workers: vec![
                Worker {
                    awake: true,
                    spin_left: cfg.spin_budget,
                };
                cfg.workers.max(1)
            ],
            wake_pending: 0,
            wakes_posted: 0,
            wakes_delivered: 0,
            exec: vec![0; cfg.calls as usize],
            elided: 0,
            fallbacks: 0,
        }
    }

    fn awake_count(&self) -> usize {
        self.workers.iter().filter(|w| w.awake).count()
    }
}

/// Explores every interleaving of enclave and worker steps up to the
/// configured bounds. `Ok` means every reachable terminal state passed
/// every invariant; `Err` carries the first violation with its trace.
pub fn check(cfg: &ModelConfig, mutation: Mutation) -> Result<Exploration, Violation> {
    let mut visited = HashSet::new();
    let mut stats = Exploration {
        states: 0,
        terminals: 0,
    };
    let mut trace = Vec::new();
    explore(
        cfg,
        mutation,
        State::initial(cfg),
        &mut visited,
        &mut trace,
        &mut stats,
    )?;
    Ok(stats)
}

fn explore(
    cfg: &ModelConfig,
    mutation: Mutation,
    s: State,
    visited: &mut HashSet<State>,
    trace: &mut Vec<String>,
    stats: &mut Exploration,
) -> Result<(), Violation> {
    if visited.contains(&s) {
        return Ok(());
    }
    stats.states += 1;
    if stats.states > cfg.max_states {
        return Err(Violation {
            what: format!("state space exceeds max_states={}", cfg.max_states),
            trace: trace.clone(),
        });
    }
    let succ = successors(cfg, mutation, &s);
    if succ.is_empty() {
        stats.terminals += 1;
        validate_terminal(cfg, &s, trace)?;
    }
    visited.insert(s);
    for (label, n) in succ {
        trace.push(label);
        explore(cfg, mutation, n, visited, trace, stats)?;
        trace.pop();
    }
    Ok(())
}

/// Every enabled atomic step from `s`, with a label for the trace.
fn successors(cfg: &ModelConfig, mutation: Mutation, s: &State) -> Vec<(String, State)> {
    let mut out = Vec::new();

    // Enclave: post the next call.
    if (s.next_call as usize) < cfg.calls as usize {
        let c = s.next_call;
        let mut n = s.clone();
        n.next_call += 1;
        if s.awake_count() == 0 {
            n.exec[c as usize] += 1;
            n.fallbacks += 1;
            if s.wake_pending == 0 {
                // The real transition services the call itself and posts
                // one wake signal; a sleeping worker consumes it
                // asynchronously.
                n.wake_pending += 1;
                n.wakes_posted += 1;
                out.push((format!("enclave: post({c}) -> fallback-wake"), n));
            } else {
                // A wake is already in flight: service the call, do not
                // pay for (or post) another.
                out.push((format!("enclave: post({c}) -> fallback-asleep"), n));
            }
        } else if s.ring.len() >= cfg.ring_capacity {
            n.exec[c as usize] += 1;
            n.fallbacks += 1;
            if mutation == Mutation::DoubleExecution {
                // Bug: the entry was written before the capacity check.
                n.ring.push(c);
            }
            if s.awake_count() < s.workers.len() && s.wake_pending == 0 {
                // Scale-up-on-fallback: the overflow is evidence the
                // awake set is too small — pay to wake one more worker.
                n.wake_pending += 1;
                n.wakes_posted += 1;
            }
            out.push((format!("enclave: post({c}) -> fallback-full"), n));
        } else {
            n.ring.push(c);
            n.elided += 1;
            out.push((format!("enclave: post({c}) -> elided"), n));
        }
    }

    // Each worker: pop, spin, sleep, or wake.
    for (i, w) in s.workers.iter().enumerate() {
        if w.awake {
            if let Some(&c) = s.ring.first() {
                let mut n = s.clone();
                n.ring.remove(0);
                n.exec[c as usize] += 1;
                n.workers[i].spin_left = cfg.spin_budget;
                out.push((format!("worker {i}: pop({c}) + execute"), n));
            } else if w.spin_left > 0 {
                let mut n = s.clone();
                n.workers[i].spin_left -= 1;
                out.push((format!("worker {i}: spin"), n));
            }
            let may_sleep = match mutation {
                // Bug: no final ring re-check before publishing "asleep".
                Mutation::LostWakeup => w.spin_left == 0,
                _ => s.ring.is_empty() && w.spin_left == 0,
            };
            if may_sleep {
                let mut n = s.clone();
                n.workers[i].awake = false;
                out.push((format!("worker {i}: sleep"), n));
            }
            if mutation == Mutation::StampedeWake && s.wake_pending > 0 {
                // Bug: the wake semaphore is open to every worker, so a
                // spinning one may grab the token meant for a sleeper —
                // it resets its own spin budget, the sleeper stays
                // parked, and the paid wake delivered nothing.
                let mut n = s.clone();
                n.wake_pending -= 1;
                n.workers[i].spin_left = cfg.spin_budget;
                out.push((format!("worker {i}: steal wake (already awake)"), n));
            }
        } else if s.wake_pending > 0 {
            let mut n = s.clone();
            n.wake_pending -= 1;
            n.wakes_delivered += 1;
            n.workers[i].awake = true;
            n.workers[i].spin_left = cfg.spin_budget;
            out.push((format!("worker {i}: wake"), n));
        }
    }

    out
}

fn validate_terminal(cfg: &ModelConfig, s: &State, trace: &[String]) -> Result<(), Violation> {
    let fail = |what: String| {
        Err(Violation {
            what,
            trace: trace.to_vec(),
        })
    };
    if !s.ring.is_empty() {
        // Terminal + non-empty ring means every worker is asleep and the
        // enclave is done: nothing will ever drain these entries.
        return fail(format!(
            "lost wakeup: all workers asleep with {:?} still in the ring",
            s.ring
        ));
    }
    for (c, &n) in s.exec.iter().enumerate() {
        if n == 0 {
            return fail(format!("call {c} was dropped (never executed)"));
        }
        if n > 1 {
            return fail(format!("call {c} executed {n} times"));
        }
    }
    let total = u64::from(s.elided) + u64::from(s.fallbacks);
    if total != u64::from(cfg.calls) {
        return fail(format!(
            "conservation broken: elided {} + fallbacks {} != posts {}",
            s.elided, s.fallbacks, cfg.calls
        ));
    }
    if s.wakes_delivered != s.wakes_posted {
        // Every wake the poster paid for must have moved a worker from
        // asleep to spinning. (Terminal states have wake_pending == 0 —
        // a sleeper with a pending token always has a successor — so a
        // shortfall here means an awake worker stole the token.)
        return fail(format!(
            "stampede wake: {} wake(s) paid for, only {} delivered to a sleeper",
            s.wakes_posted, s.wakes_delivered
        ));
    }
    let stats = ModelCounters {
        elided: u64::from(s.elided),
        fallbacks: u64::from(s.fallbacks),
    }
    .as_transition_stats();
    if stats.fallbacks > stats.taken {
        return fail(format!(
            "stats invariant broken: fallbacks {} exceed taken {}",
            stats.fallbacks, stats.taken
        ));
    }
    Ok(())
}

/// Documentation cards for `teenet-analyze --explain` covering the ring
/// model itself and its seeded mutations — the model-checker counterpart
/// of the lint-rule pack in [`crate::rules::RULES`].
pub struct ModelTopic {
    /// Stable id (`--explain <id>`).
    pub id: &'static str,
    /// One-line summary for `--list-rules`.
    pub summary: &'static str,
    /// The full rationale card.
    pub rationale: &'static str,
}

/// The `--explain` entries for the model checker.
pub const MODEL_TOPICS: [ModelTopic; 4] = [
    ModelTopic {
        id: "ring-model",
        summary: "exhaustive N-worker interleaving model of the switchless ring",
        rationale: "The checker explores every interleaving of one in-enclave poster and N \
                    host workers over the shared call ring (pop / spin / sleep / wake per \
                    worker, post per call), memoising states so the exploration is exhaustive \
                    over the reachable space. Terminal invariants: every call executed exactly \
                    once, ring drained, elided + fallbacks == calls, and every paid wake \
                    delivered to a sleeper. Run with --model-check; the CI grid sweeps \
                    {workers} x {ring} x {spin}.",
    },
    ModelTopic {
        id: "lost-wakeup",
        summary: "seeded mutation: sleep without the final ring re-check",
        rationale: "A worker must re-check the ring *after* exhausting its spin budget and \
                    immediately before publishing 'asleep'; the mutation drops that re-check, \
                    so a post landing in the window is stranded in the ring forever once \
                    every worker sleeps. The checker must reject this mutation with a witness \
                    interleaving, or it has no teeth.",
    },
    ModelTopic {
        id: "double-execution",
        summary: "seeded mutation: full-ring fallback leaves its entry enqueued",
        rationale: "The poster must check capacity *before* writing the ring entry; the \
                    mutation models the reversed order, so a full-ring fallback services the \
                    call synchronously and a worker later pops the leftover entry and services \
                    it again. Caught as 'call executed 2 times'.",
    },
    ModelTopic {
        id: "stampede-wake",
        summary: "seeded mutation: awake worker steals the wake meant for a sleeper",
        rationale: "With N >= 2 workers the wake path is a semaphore, and a spinning worker \
                    that grabs the token leaves the intended sleeper parked: the enclave paid \
                    switchless_wake for pool capacity it never received. The model counts \
                    wakes_posted vs wakes_delivered and rejects any terminal where they \
                    differ — the thundering-herd bug the single-worker model could never \
                    express.",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_model_passes_default_bounds() {
        let e = check(&ModelConfig::default(), Mutation::None).expect("faithful model");
        assert!(e.states > 0 && e.terminals > 0);
    }

    #[test]
    fn faithful_model_passes_single_worker() {
        let cfg = ModelConfig {
            workers: 1,
            ..ModelConfig::default()
        };
        let e = check(&cfg, Mutation::None).expect("single-worker model");
        assert!(e.states > 0 && e.terminals > 0);
    }

    #[test]
    fn lost_wakeup_mutation_caught() {
        let v = check(&ModelConfig::default(), Mutation::LostWakeup)
            .expect_err("mutation must be rejected");
        assert!(
            v.what.contains("lost wakeup") || v.what.contains("dropped"),
            "{v}"
        );
        assert!(!v.trace.is_empty(), "violation must carry a witness trace");
    }

    #[test]
    fn lost_wakeup_mutation_caught_with_one_worker() {
        let cfg = ModelConfig {
            workers: 1,
            ..ModelConfig::default()
        };
        let v = check(&cfg, Mutation::LostWakeup).expect_err("mutation must be rejected");
        assert!(
            v.what.contains("lost wakeup") || v.what.contains("dropped"),
            "{v}"
        );
    }

    #[test]
    fn double_execution_mutation_caught() {
        let v = check(&ModelConfig::default(), Mutation::DoubleExecution)
            .expect_err("mutation must be rejected");
        assert!(v.what.contains("executed 2 times"), "{v}");
    }

    #[test]
    fn stampede_wake_mutation_caught() {
        let v = check(&ModelConfig::default(), Mutation::StampedeWake)
            .expect_err("mutation must be rejected");
        assert!(v.what.contains("stampede wake"), "{v}");
        assert!(
            v.trace.iter().any(|s| s.contains("steal wake")),
            "witness must show the steal: {v}"
        );
    }

    /// With one worker there is never simultaneously an awake worker and
    /// a sleeper, so the stampede steal is unreachable and the mutation
    /// passes vacuously — the reason the teeth tests (and the CI grid)
    /// exercise it at N >= 2.
    #[test]
    fn stampede_wake_needs_at_least_two_workers() {
        let cfg = ModelConfig {
            workers: 1,
            ..ModelConfig::default()
        };
        check(&cfg, Mutation::StampedeWake).expect("unreachable with one worker");
    }

    #[test]
    fn zero_spin_budget_still_sound() {
        let cfg = ModelConfig {
            spin_budget: 0,
            ..ModelConfig::default()
        };
        check(&cfg, Mutation::None).expect("spin budget 0");
    }

    #[test]
    fn single_slot_ring_still_sound() {
        let cfg = ModelConfig {
            ring_capacity: 1,
            calls: 5,
            ..ModelConfig::default()
        };
        check(&cfg, Mutation::None).expect("1-slot ring");
    }

    #[test]
    fn three_workers_still_sound() {
        let cfg = ModelConfig {
            workers: 3,
            calls: 5,
            max_states: 4_000_000,
            ..ModelConfig::default()
        };
        let e = check(&cfg, Mutation::None).expect("3-worker pool");
        assert!(e.terminals > 0);
    }

    #[test]
    fn state_cap_is_an_error_not_a_pass() {
        let cfg = ModelConfig {
            max_states: 3,
            ..ModelConfig::default()
        };
        let v = check(&cfg, Mutation::None).expect_err("cap must fail loudly");
        assert!(v.what.contains("max_states"));
    }

    #[test]
    fn counters_map_onto_transition_stats() {
        let s = ModelCounters {
            elided: 5,
            fallbacks: 2,
        }
        .as_transition_stats();
        assert_eq!(s.taken, 2);
        assert_eq!(s.elided, 5);
        assert_eq!(s.fallbacks, 2);
        assert_eq!(s.idle_spins, 0, "spin accounting is outside the model");
    }

    #[test]
    fn model_topics_cover_every_mutation() {
        for m in [
            Mutation::LostWakeup,
            Mutation::DoubleExecution,
            Mutation::StampedeWake,
        ] {
            assert!(
                MODEL_TOPICS.iter().any(|t| t.id == m.as_str()),
                "mutation {} has no --explain card",
                m.as_str()
            );
        }
    }
}
