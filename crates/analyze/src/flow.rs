//! Intra-procedural dataflow on top of the token stream — the layer that
//! turns the pattern linter into a flow-aware analysis.
//!
//! [`function_bodies`] splits a comment-stripped token stream into
//! function bodies; [`FlowAnalysis::of`] then walks one body linearly,
//! building a def-use graph over `let` bindings, reassignments and call
//! arguments:
//!
//! - every `let` pattern, `for` pattern and function parameter binds a
//!   fresh *value*; shadowing rebinds the name to a new value;
//! - a reassignment (`x = ..`, `x += ..`) or a `&mut x` call argument
//!   creates a new value derived from the old one — that is what
//!   "re-derivation from a fresh source" means to the nonce-reuse rule;
//! - the defining expression's resolved identifiers become derivation
//!   edges (`sources`) and its called names are recorded (`callees`), so
//!   a rule can seed taint on "values produced by `unseal`";
//! - calls to *barrier* functions (the sanctioned sealing API) are
//!   skipped entirely: their arguments neither taint the result nor
//!   count as uses.
//!
//! What the walker deliberately does **not** see, so rules stay honest
//! about their guarantees: closures are scanned as part of the enclosing
//! function (their parameters are simply unresolved names), `match` arm
//! patterns do not bind, scopes are flat (an `if let` binding survives
//! past its block as an over-approximation), and there is no
//! inter-procedural propagation — a secret that round-trips through a
//! helper's *return value* is out of scope, one passed *into* a sink or
//! helper argument is not.

use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, HashMap};

/// One function body found in the token stream.
#[derive(Debug, Clone)]
pub struct FnBody {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// Token indices of the parameter list `(` and its matching `)`.
    pub params: (usize, usize),
    /// Token indices of the body `{` and its matching `}`.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One value in the def-use graph: a binding generation of some name.
#[derive(Debug, Clone)]
pub struct ValueDef {
    /// The bound name.
    pub name: String,
    /// 1-based line where this generation was defined.
    pub def_line: u32,
    /// Values used in the defining expression (always earlier ids).
    pub sources: Vec<usize>,
    /// Function/method names called in the defining expression.
    pub callees: Vec<String>,
    /// True when this generation came from a `&mut` refresh — it
    /// derives from its predecessor but is *not* an alias of it.
    pub refreshed: bool,
}

/// The def-use graph of one function body.
#[derive(Debug)]
pub struct FlowAnalysis {
    /// All values in definition order (parameters first).
    pub values: Vec<ValueDef>,
    /// Resolved identifier uses: token index → value id, in token order.
    occ_by_token: BTreeMap<usize, usize>,
}

/// Splits `sig` (comment-stripped tokens) into function bodies. Nested
/// functions are reported as their own bodies as well; bodiless trait
/// method declarations are skipped.
pub fn function_bodies(sig: &[&Token]) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if sig[i].ident() != Some("fn") {
            i += 1;
            continue;
        }
        let line = sig[i].line;
        let Some(name) = sig.get(i + 1).and_then(|t| t.ident()) else {
            i += 1;
            continue;
        };
        // Skip generic parameters between the name and the `(`.
        let mut j = i + 2;
        if j < sig.len() && sig[j].is_punct('<') {
            let mut angle = 0i32;
            while j < sig.len() {
                if sig[j].is_punct('<') {
                    angle += 1;
                } else if sig[j].is_punct('>') && !(j > 0 && sig[j - 1].is_punct('-')) {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        let Some(open) = (j..sig.len()).find(|&k| sig[k].is_punct('(')) else {
            i += 1;
            continue;
        };
        let Some(close) = matching(sig, open, '(', ')') else {
            i += 1;
            continue;
        };
        // After the signature: a `{` opens the body, a `;` means a
        // bodiless trait declaration. Neither the return type nor a
        // where clause can contain a top-level `{`.
        let mut k = close + 1;
        let mut depth = 0usize;
        let mut body = None;
        while k < sig.len() {
            match &sig[k].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
                TokenKind::Punct('{') if depth == 0 => {
                    if let Some(end) = matching(sig, k, '{', '}') {
                        body = Some((k, end));
                    }
                    break;
                }
                TokenKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(body) = body {
            out.push(FnBody {
                name: name.to_string(),
                params: (open, close),
                body,
                line,
            });
        }
        i += 2;
    }
    out
}

/// Finds the index of the token matching `open_c` at `open`.
fn matching(sig: &[&Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in sig.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Names that look like bindings in a pattern but are not.
const PATTERN_NON_BINDING: [&str; 4] = ["mut", "ref", "box", "self"];

/// Method names that forward a value unchanged, for alias resolution.
const CLONE_LIKE: [&str; 7] = [
    "clone", "to_vec", "to_owned", "as_ref", "as_slice", "as_bytes", "copy",
];

struct Walker<'s> {
    sig: &'s [&'s Token],
    barriers: &'s [&'s str],
    env: HashMap<String, usize>,
    values: Vec<ValueDef>,
    occ_by_token: BTreeMap<usize, usize>,
}

/// Where an expression scan stops (always at depth 0).
#[derive(Clone, Copy, PartialEq)]
enum Stop {
    /// At `;` — a plain statement.
    Semi,
    /// At `;` or `{` — an `if let` / `while let` / `for` header, where
    /// the block brace ends the scrutinee.
    SemiOrBrace,
}

impl<'s> Walker<'s> {
    fn bind(&mut self, name: &str, def_line: u32, sources: Vec<usize>, callees: Vec<String>) {
        let id = self.values.len();
        self.values.push(ValueDef {
            name: name.to_string(),
            def_line,
            sources,
            callees,
            refreshed: false,
        });
        self.env.insert(name.to_string(), id);
    }

    /// Binds a new generation produced by a `&mut` refresh.
    fn bind_refreshed(&mut self, name: &str, def_line: u32, old: usize) {
        self.bind(name, def_line, vec![old], Vec::new());
        if let Some(v) = self.values.last_mut() {
            v.refreshed = true;
        }
    }

    /// Binds every parameter name (the identifiers before each
    /// top-level `:`) as a fresh source-less value.
    fn bind_params(&mut self, params: (usize, usize)) {
        let (open, close) = params;
        let mut depth = 0usize;
        let mut in_type = false;
        for k in open + 1..close {
            let t = self.sig[k];
            match &t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1)
                }
                TokenKind::Punct(':') if depth == 0 => in_type = true,
                TokenKind::Punct(',') if depth == 0 => in_type = false,
                TokenKind::Ident(name) if !in_type && binds(name) => {
                    self.bind(name, t.line, Vec::new(), Vec::new());
                }
                _ => {}
            }
        }
    }

    /// Scans an expression from `start`, recording occurrences, callees
    /// and `&mut` refreshes. Returns `(stop_index, uses, callees)`; the
    /// stop index points at the terminator (or `limit` if none found).
    fn scan_expr(
        &mut self,
        start: usize,
        limit: usize,
        stop: Stop,
    ) -> (usize, Vec<usize>, Vec<String>) {
        let mut uses = Vec::new();
        let mut callees = Vec::new();
        let mut depth = 0usize;
        let mut i = start;
        while i < limit {
            let t = self.sig[i];
            match &t.kind {
                TokenKind::Punct(';') if depth == 0 => break,
                TokenKind::Punct('{') if depth == 0 && stop == Stop::SemiOrBrace => break,
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    if depth == 0 {
                        break; // fell off the enclosing block — malformed
                    }
                    depth -= 1;
                }
                TokenKind::Punct('&')
                    if self.sig.get(i + 1).and_then(|t| t.ident()) == Some("mut") =>
                {
                    if let Some(name) = self.sig.get(i + 2).and_then(|t| t.ident()) {
                        if let Some(&old) = self.env.get(name) {
                            uses.push(old);
                            let line = self.sig[i + 2].line;
                            self.bind_refreshed(name, line, old);
                            i += 3;
                            continue;
                        }
                    }
                }
                TokenKind::Ident(name) => {
                    let called = self.sig.get(i + 1).is_some_and(|t| t.is_punct('('));
                    if called {
                        callees.push(name.clone());
                        if self.barriers.contains(&name.as_str()) {
                            if let Some(close) = matching(self.sig, i + 1, '(', ')') {
                                i = close + 1;
                                continue;
                            }
                        }
                    } else if !projected_segment(self.sig, i) {
                        if let Some(&id) = self.env.get(name.as_str()) {
                            self.occ_by_token.insert(i, id);
                            uses.push(id);
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        (i, uses, callees)
    }

    /// Handles a `let` statement (or `if let` / `while let` header) at
    /// index `i` ("let"). Returns the index to resume from.
    fn let_stmt(&mut self, i: usize, limit: usize) -> usize {
        let header = i > 0 && matches!(self.sig[i - 1].ident(), Some("if") | Some("while"));
        let let_line = self.sig[i].line;
        // Pattern region: collect bound names until the top-level `=`,
        // skipping an optional `: Type` annotation (angle-aware, since a
        // type may contain `Iterator<Item = u8>`).
        let mut names: Vec<String> = Vec::new();
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut in_type = false;
        let mut angle = 0i32;
        while j < limit {
            let t = self.sig[j];
            match &t.kind {
                TokenKind::Punct('=') if depth == 0 && angle == 0 => {
                    if self.sig.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                        return j + 2; // `==` — not a let initialiser; bail
                    }
                    break;
                }
                TokenKind::Punct(';') if depth == 0 => {
                    // `let x;` — declaration without initialiser.
                    for name in &names {
                        self.bind(name, let_line, Vec::new(), Vec::new());
                    }
                    return j + 1;
                }
                TokenKind::Punct(':') if depth == 0 => in_type = true,
                TokenKind::Punct('<') if in_type => angle += 1,
                TokenKind::Punct('>') if in_type && !self.sig[j - 1].is_punct('-') => angle -= 1,
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1)
                }
                TokenKind::Ident(name) if !in_type && binds(name) => names.push(name.clone()),
                _ => {}
            }
            j += 1;
        }
        if j >= limit {
            return limit;
        }
        let stop = if header {
            Stop::SemiOrBrace
        } else {
            Stop::Semi
        };
        let (end, uses, callees) = self.scan_expr(j + 1, limit, stop);
        for name in &names {
            self.bind(name, let_line, uses.clone(), callees.clone());
        }
        end + 1
    }

    /// Handles `for <pat> in <expr> {`. Returns the resume index (just
    /// past the block-opening `{`), or `i + 1` when this `for` is not a
    /// loop header (`impl Trait for Type`).
    fn for_stmt(&mut self, i: usize, limit: usize) -> usize {
        let mut names: Vec<String> = Vec::new();
        let mut j = i + 1;
        while j < limit {
            match self.sig[j].ident() {
                Some("in") => break,
                Some(name) if binds(name) => names.push(name.to_string()),
                _ => {}
            }
            if self.sig[j].is_punct('{') || self.sig[j].is_punct(';') {
                return i + 1; // `impl .. for ..` — no `in` before the block
            }
            j += 1;
        }
        if j >= limit {
            return limit;
        }
        let for_line = self.sig[i].line;
        let (end, uses, callees) = self.scan_expr(j + 1, limit, Stop::SemiOrBrace);
        for name in &names {
            self.bind(name, for_line, uses.clone(), callees.clone());
        }
        end + 1
    }

    /// Handles `x = expr;` / `x += expr;` where `x` resolves. Returns
    /// the resume index.
    fn reassign_stmt(&mut self, i: usize, limit: usize, compound: bool) -> usize {
        let name = self.sig[i].ident().unwrap().to_string();
        let old = self.env[&name];
        let line = self.sig[i].line;
        let op_len = if compound { 2 } else { 1 };
        let (end, mut uses, callees) = self.scan_expr(i + 1 + op_len, limit, Stop::Semi);
        if compound {
            uses.push(old);
        }
        self.bind(&name, line, uses, callees);
        end + 1
    }

    fn walk(&mut self, body: (usize, usize)) {
        let (open, close) = body;
        let mut i = open + 1;
        while i < close {
            let t = self.sig[i];
            match t.ident() {
                Some("fn") => {
                    // Nested function item: its body is analysed
                    // separately; skip it here so its locals do not leak
                    // into this function's environment.
                    let mut k = i + 1;
                    let mut depth = 0usize;
                    while k < close {
                        match &self.sig[k].kind {
                            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                            TokenKind::Punct(')') | TokenKind::Punct(']') => {
                                depth = depth.saturating_sub(1)
                            }
                            TokenKind::Punct('{') if depth == 0 => {
                                k = matching(self.sig, k, '{', '}').map_or(close, |e| e + 1);
                                break;
                            }
                            TokenKind::Punct(';') if depth == 0 => {
                                k += 1;
                                break;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    i = k;
                }
                Some("let") => i = self.let_stmt(i, close),
                Some("for") => i = self.for_stmt(i, close),
                Some(name)
                    if self.env.contains_key(name)
                        && !(i > 0
                            && (self.sig[i - 1].is_punct('.')
                                || self.sig[i - 1].is_punct(':')))
                        && assign_op(self.sig, i).is_some() =>
                {
                    let compound = assign_op(self.sig, i).unwrap();
                    i = self.reassign_stmt(i, close, compound);
                }
                _ => i = self.process_at(i),
            }
        }
    }

    /// Processes one free token (outside any binding statement):
    /// records occurrences and `&mut` refreshes, skips barrier-call
    /// argument lists. Returns the next index.
    fn process_at(&mut self, i: usize) -> usize {
        let t = self.sig[i];
        match &t.kind {
            TokenKind::Punct('&') if self.sig.get(i + 1).and_then(|t| t.ident()) == Some("mut") => {
                if let Some(name) = self.sig.get(i + 2).and_then(|t| t.ident()) {
                    if let Some(&old) = self.env.get(name) {
                        let line = self.sig[i + 2].line;
                        self.bind_refreshed(name, line, old);
                        return i + 3;
                    }
                }
                i + 1
            }
            TokenKind::Ident(name) => {
                let called = self.sig.get(i + 1).is_some_and(|t| t.is_punct('('));
                if called {
                    if self.barriers.contains(&name.as_str()) {
                        if let Some(close) = matching(self.sig, i + 1, '(', ')') {
                            return close + 1;
                        }
                    }
                } else if !projected_segment(self.sig, i) {
                    if let Some(&id) = self.env.get(name.as_str()) {
                        self.occ_by_token.insert(i, id);
                    }
                }
                i + 1
            }
            _ => i + 1,
        }
    }
}

/// Is the identifier after index `i` an assignment operator? Returns
/// `Some(is_compound)`, or `None` when the tokens are a comparison
/// (`==`), a match arm (`=>`), or no assignment at all.
fn assign_op(sig: &[&Token], i: usize) -> Option<bool> {
    let next = sig.get(i + 1)?;
    if next.is_punct('=') {
        let after = sig.get(i + 2);
        if after.is_some_and(|t| t.is_punct('=') || t.is_punct('>')) {
            return None;
        }
        return Some(false);
    }
    if matches!(
        next.kind,
        TokenKind::Punct('+')
            | TokenKind::Punct('-')
            | TokenKind::Punct('*')
            | TokenKind::Punct('/')
            | TokenKind::Punct('%')
            | TokenKind::Punct('^')
            | TokenKind::Punct('&')
            | TokenKind::Punct('|')
    ) && sig.get(i + 2).is_some_and(|t| t.is_punct('='))
        && !sig.get(i + 3).is_some_and(|t| t.is_punct('='))
    {
        return Some(true);
    }
    None
}

/// Is the identifier at `i` a field/method projection (`x.field`) or a
/// path segment (`mod::name`)? A single `:` (a struct-literal field
/// value, `Active { material: slot }`) does not hide the value.
fn projected_segment(sig: &[&Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    if sig[i - 1].is_punct('.') {
        return true;
    }
    sig[i - 1].is_punct(':') && i > 1 && sig[i - 2].is_punct(':')
}

/// Does this pattern identifier bind a name? PascalCase path segments
/// (`Some`, `SealedSlot`) and pattern keywords do not.
fn binds(name: &str) -> bool {
    !PATTERN_NON_BINDING.contains(&name)
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
}

impl FlowAnalysis {
    /// Analyses one function body. `barriers` are callee names whose
    /// argument lists are opaque (the sanctioned sealing API): their
    /// arguments are neither uses nor taint sources, and their results
    /// are clean.
    pub fn of(sig: &[&Token], body: &FnBody, barriers: &[&str]) -> FlowAnalysis {
        let mut w = Walker {
            sig,
            barriers,
            env: HashMap::new(),
            values: Vec::new(),
            occ_by_token: BTreeMap::new(),
        };
        w.bind_params(body.params);
        w.walk(body.body);
        FlowAnalysis {
            values: w.values,
            occ_by_token: w.occ_by_token,
        }
    }

    /// The value a resolved identifier occurrence at `token_idx` refers
    /// to, if any.
    pub fn value_at(&self, token_idx: usize) -> Option<usize> {
        self.occ_by_token.get(&token_idx).copied()
    }

    /// All resolved occurrences as `(token_idx, value_id)`, token order.
    pub fn occurrences(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.occ_by_token.iter().map(|(&t, &v)| (t, v))
    }

    /// Transitive taint: for each value, the id of the (earliest) seed
    /// it derives from, or `None` when untainted. Sources always point
    /// at earlier values, so one forward pass is a fixpoint.
    pub fn taint_from<F: Fn(&ValueDef) -> bool>(&self, is_seed: F) -> Vec<Option<usize>> {
        let mut root: Vec<Option<usize>> = vec![None; self.values.len()];
        for id in 0..self.values.len() {
            if is_seed(&self.values[id]) {
                root[id] = Some(id);
                continue;
            }
            root[id] = self.values[id].sources.iter().find_map(|&s| root[s]);
        }
        root
    }

    /// Follows pure-alias chains (`let n = nonce;`, `let n = nonce
    /// .clone();`) back to the originating value. Any computation other
    /// than a clone-like forwarding stops the chain.
    pub fn resolve_alias(&self, mut id: usize) -> usize {
        loop {
            let v = &self.values[id];
            let forwarding = v.callees.iter().all(|c| CLONE_LIKE.contains(&c.as_str()));
            if v.sources.len() == 1 && forwarding && !v.refreshed && v.sources[0] != id {
                id = v.sources[0];
            } else {
                return id;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn analysed(src: &str) -> (Vec<crate::lexer::Token>, Vec<FnBody>) {
        let toks = lex(src);
        let sig: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
            .collect();
        let bodies = function_bodies(&sig);
        (toks.clone(), bodies)
    }

    fn flow(src: &str, barriers: &[&str]) -> FlowAnalysis {
        let toks = lex(src);
        let sig: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
            .collect();
        let bodies = function_bodies(&sig);
        assert_eq!(bodies.len(), 1, "expected exactly one fn in {src:?}");
        FlowAnalysis::of(&sig, &bodies[0], barriers)
    }

    fn value<'a>(fa: &'a FlowAnalysis, name: &str) -> &'a ValueDef {
        fa.values
            .iter()
            .rev()
            .find(|v| v.name == name)
            .unwrap_or_else(|| panic!("no value named {name}"))
    }

    #[test]
    fn splits_bodies_and_skips_trait_decls() {
        let src = "trait T { fn decl(&self) -> u8; }\n\
                   fn outer(x: u8) -> u8 { fn inner() {} x }\n\
                   fn generic<F: Fn() -> u8>(f: F) { f(); }";
        let (_, bodies) = analysed(src);
        let names: Vec<&str> = bodies.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "generic"]);
    }

    #[test]
    fn params_and_lets_bind_with_derivation_edges() {
        let fa = flow(
            "fn f(input: &[u8]) { let blob = parse(input); let plain = ctx.unseal(&blob); }",
            &[],
        );
        assert_eq!(value(&fa, "blob").callees, vec!["parse"]);
        let plain = value(&fa, "plain");
        assert_eq!(plain.callees, vec!["unseal"]);
        let blob_id = fa.values.iter().position(|v| v.name == "blob").unwrap();
        assert_eq!(plain.sources, vec![blob_id]);
    }

    #[test]
    fn taint_propagates_through_bindings_and_stops_at_barriers() {
        let fa = flow(
            "fn f(device_key: &[u8]) {\n\
                 let staged = device_key.to_vec();\n\
                 let packed = wrap(&staged);\n\
                 let sealed = seal(device_key, b\"l\");\n\
             }",
            &["seal"],
        );
        let taint = fa.taint_from(|v| v.name == "device_key");
        let id = |n: &str| fa.values.iter().position(|v| v.name == n).unwrap();
        assert!(taint[id("staged")].is_some());
        assert!(taint[id("packed")].is_some());
        assert!(taint[id("sealed")].is_none(), "barrier cleans the result");
    }

    #[test]
    fn shadowing_and_reassignment_make_new_generations() {
        let fa = flow(
            "fn f() { let mut n = fresh(); use_it(n); n = fresh(); use_it(n); let n = n; }",
            &[],
        );
        let gens: Vec<&ValueDef> = fa.values.iter().filter(|v| v.name == "n").collect();
        assert_eq!(gens.len(), 3, "let, reassign, shadow");
        // The shadowing let aliases the reassigned generation.
        let last = fa.values.len() - 1;
        assert_eq!(fa.resolve_alias(last), last - 1);
    }

    #[test]
    fn mut_borrow_in_call_args_refreshes_the_value() {
        let fa = flow(
            "fn f() { let mut nonce = [0u8; 16]; rng.fill(&mut nonce); send(nonce); }",
            &[],
        );
        let gens: Vec<usize> = fa
            .values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.name == "nonce")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(gens.len(), 2, "&mut re-derives");
        // The use inside send(..) resolves to the refreshed generation.
        let last_occ = fa.occurrences().last().unwrap();
        assert_eq!(last_occ.1, gens[1]);
    }

    #[test]
    fn if_let_and_for_patterns_bind() {
        let fa = flow(
            "fn f(items: Vec<u8>) {\n\
                 if let Some(x) = items.first() { use_it(x); }\n\
                 for item in items { use_it(item); }\n\
             }",
            &[],
        );
        assert!(fa.values.iter().any(|v| v.name == "x"));
        assert!(fa.values.iter().any(|v| v.name == "item"));
        let items_id = fa.values.iter().position(|v| v.name == "items").unwrap();
        assert_eq!(value(&fa, "item").sources, vec![items_id]);
    }

    #[test]
    fn alias_resolution_follows_clone_like_chains_only() {
        let fa = flow(
            "fn f(nonce: [u8; 16]) { let a = nonce; let b = a.clone(); let c = derive(b); }",
            &[],
        );
        let id = |n: &str| fa.values.iter().position(|v| v.name == n).unwrap();
        assert_eq!(fa.resolve_alias(id("b")), id("nonce"));
        assert_eq!(fa.resolve_alias(id("c")), id("c"), "derive() is fresh");
    }

    #[test]
    fn type_annotations_do_not_bind_or_use() {
        let fa = flow(
            "fn f() { let x: Box<dyn Iterator<Item = u8>> = mk(); let y: [u8; 4] = [0; 4]; }",
            &[],
        );
        let names: Vec<&str> = fa.values.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn nested_fn_locals_do_not_leak() {
        let src = "fn outer() { fn inner() { let hidden = mk(); } let seen = mk(); }";
        let toks = lex(src);
        let sig: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
            .collect();
        let bodies = function_bodies(&sig);
        assert_eq!(bodies[0].name, "outer");
        let fa = FlowAnalysis::of(&sig, &bodies[0], &[]);
        assert!(fa.values.iter().all(|v| v.name != "hidden"));
        assert!(fa.values.iter().any(|v| v.name == "seen"));
    }

    #[test]
    fn occurrences_are_position_sensitive_under_shadowing() {
        let src = "fn f() { let k = a1(); use1(k); let k = a2(); use2(k); }";
        let fa = flow(src, &[]);
        let occs: Vec<usize> = fa.occurrences().map(|(_, v)| v).collect();
        assert_eq!(occs, vec![0, 1], "each use resolves to its generation");
    }
}
