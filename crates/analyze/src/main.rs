//! CLI for the teenet correctness tooling.
//!
//! ```text
//! teenet-analyze [--root PATH] [--json] [--deny-findings] [--model-check]
//!                [--waiver-budget PATH] [--list-rules] [--explain RULE]
//! ```
//!
//! Default run lints the workspace and prints the text report. With
//! `--deny-findings` any unwaived finding makes the exit code 1 (the CI
//! gate). `--waiver-budget PATH` compares the waiver count against a
//! checked-in baseline and fails if it grew — adding a waiver means
//! updating the baseline in the same reviewed diff. `--model-check`
//! additionally runs the switchless-ring model checker over a
//! `{workers} × {ring} × {spin}` grid *and* verifies that all three
//! seeded mutations are rejected, so a vacuously-passing checker also
//! fails the build.
//! `--list-rules` and `--explain RULE` document the rule pack without
//! scanning anything.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use teenet_analyze::config::AnalyzeConfig;
use teenet_analyze::ring::{check, ModelConfig, Mutation, MODEL_TOPICS};
use teenet_analyze::rules::RULES;
use teenet_analyze::scan_workspace;

struct Args {
    root: PathBuf,
    json: bool,
    deny_findings: bool,
    model_check: bool,
    waiver_budget: Option<PathBuf>,
    list_rules: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: default_root(),
        json: false,
        deny_findings: false,
        model_check: false,
        waiver_budget: None,
        list_rules: false,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = PathBuf::from(v);
            }
            "--json" => args.json = true,
            "--deny-findings" => args.deny_findings = true,
            "--model-check" => args.model_check = true,
            "--waiver-budget" => {
                let v = it.next().ok_or("--waiver-budget needs a path")?;
                args.waiver_budget = Some(PathBuf::from(v));
            }
            "--list-rules" => args.list_rules = true,
            "--explain" => {
                let v = it.next().ok_or("--explain needs a rule id")?;
                args.explain = Some(v);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: teenet-analyze [--root PATH] [--json] [--deny-findings] \
                     [--model-check] [--waiver-budget PATH] [--list-rules] \
                     [--explain RULE]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// `--list-rules`: one line per rule — id, level, summary — plus the
/// model-checker topics `--explain` also covers.
fn list_rules() {
    println!("== teenet-analyze: rule pack ==");
    for r in &RULES {
        println!("{:<22} {:<4} {}", r.id, r.level, r.summary);
    }
    println!();
    println!("== model checker (--model-check) ==");
    for t in &MODEL_TOPICS {
        println!("{:<22} {:<4} {}", t.id, "mc", t.summary);
    }
    println!();
    println!("`--explain <rule>` prints the rationale and waiver syntax.");
}

/// `--explain <rule>`: the full card for one lint rule or model topic.
fn explain_rule(id: &str) -> bool {
    if let Some(r) = RULES.iter().find(|r| r.id == id) {
        println!("rule      {}", r.id);
        println!("level     {}", r.level);
        println!("summary   {}", r.summary);
        println!("rationale {}", r.rationale);
        match r.waiver {
            Some(w) => println!("waiver    {w}"),
            None => println!("waiver    not waivable (meta rule about waivers themselves)"),
        }
        return true;
    }
    if let Some(t) = MODEL_TOPICS.iter().find(|t| t.id == id) {
        println!("topic     {}", t.id);
        println!("level     model-check");
        println!("summary   {}", t.summary);
        println!("rationale {}", t.rationale);
        println!("waiver    not waivable (model invariants gate CI unconditionally)");
        return true;
    }
    eprintln!("teenet-analyze: unknown rule {id:?} (try --list-rules)");
    false
}

/// The waiver-budget gate: the report's waiver count may not exceed the
/// checked-in baseline. Growing the count and updating the baseline must
/// land in the same diff, so every new waiver is a reviewed decision.
fn check_waiver_budget(path: &Path, waivers: usize) -> bool {
    let baseline: usize = match std::fs::read_to_string(path) {
        Ok(s) => match s.trim().parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "teenet-analyze: waiver budget {} is not a number",
                    path.display()
                );
                return false;
            }
        },
        Err(e) => {
            eprintln!(
                "teenet-analyze: cannot read waiver budget {}: {e}",
                path.display()
            );
            return false;
        }
    };
    if waivers > baseline {
        eprintln!(
            "teenet-analyze: waiver count grew to {waivers} (budget {baseline}) — \
             update {} in this PR if every new waiver is justified",
            path.display()
        );
        return false;
    }
    if waivers < baseline {
        println!(
            "waiver count {waivers} is below the budget {baseline} — consider \
             lowering {}",
            path.display()
        );
    }
    true
}

/// When run via `cargo run -p teenet-analyze`, the workspace root is two
/// levels above this crate's manifest; otherwise the current directory.
fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.parent()
                .and_then(|p| p.parent())
                .map(PathBuf::from)
                .unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Documentation modes never scan; they only read the rule table.
    if args.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }
    if let Some(id) = &args.explain {
        return if explain_rule(id) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let config = AnalyzeConfig::repo();
    let report = match scan_workspace(&args.root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("teenet-analyze: cannot scan {}: {e}", args.root.display());
            return ExitCode::FAILURE;
        }
    };

    if args.json {
        print!("{}", report.json());
    } else {
        print!("{}", report.text());
    }

    let mut failed = false;
    if args.deny_findings && report.unwaived().next().is_some() {
        eprintln!(
            "teenet-analyze: {} unwaived finding(s) — fix them or waive with \
             `// teenet-analyze: allow(<rule>) -- <reason>`",
            report.unwaived().count()
        );
        failed = true;
    }

    if let Some(path) = &args.waiver_budget {
        if !check_waiver_budget(path, report.waived().count()) {
            failed = true;
        }
    }

    if args.model_check && !run_model_check() {
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The CI model-check pass: the faithful model must hold over a
/// `{workers} × {ring} × {spin}` grid, and all three seeded mutations
/// must be rejected.
fn run_model_check() -> bool {
    // One axis point per dimension value; calls/max_states sized so each
    // cell stays comfortably exhaustive.
    let mut grid = Vec::new();
    for workers in [1usize, 2, 3] {
        for &(ring_capacity, spin_budget) in &[(1usize, 0u32), (2, 1), (3, 2)] {
            grid.push(ModelConfig {
                ring_capacity,
                spin_budget,
                workers,
                calls: if workers == 3 { 5 } else { 6 },
                max_states: 8_000_000,
            });
        }
    }

    println!();
    println!("== teenet-analyze: switchless-ring model check ==");
    let mut ok = true;
    for cfg in &grid {
        match check(cfg, Mutation::None) {
            Ok(e) => println!(
                "workers={} ring={} spin={} calls={:<2} {:>8} states, {:>6} terminals  ok",
                cfg.workers, cfg.ring_capacity, cfg.spin_budget, cfg.calls, e.states, e.terminals
            ),
            Err(v) => {
                println!(
                    "workers={} ring={} spin={} calls={}  FAILED",
                    cfg.workers, cfg.ring_capacity, cfg.spin_budget, cfg.calls
                );
                println!("{v}");
                ok = false;
            }
        }
    }

    // The checker must have teeth: all three seeded bugs must be caught.
    // The stampede steal needs an awake worker and a sleeper at once, so
    // every mutation runs on the 2-worker default (where all three are
    // expressible).
    for mutation in [
        Mutation::LostWakeup,
        Mutation::DoubleExecution,
        Mutation::StampedeWake,
    ] {
        match check(&ModelConfig::default(), mutation) {
            Err(v) => println!("mutation {:<16} rejected  ({})", mutation.as_str(), v.what),
            Ok(_) => {
                println!(
                    "mutation {:<16} NOT rejected — the checker is vacuous",
                    mutation.as_str()
                );
                ok = false;
            }
        }
    }
    ok
}
