//! Linter fixture tests: a known-good / known-bad corpus per rule under
//! `tests/fixtures/`, asserting exact finding counts, exact lines and
//! byte-stable JSON. The fixture directory is in the workspace config's
//! excluded prefixes, so the real CI lint never scans it — these tests
//! scan it with their own config in which every fixture is (as needed)
//! enclave-resident and/or an accounting path.

use std::fs;
use std::path::{Path, PathBuf};

use teenet_analyze::config::AnalyzeConfig;
use teenet_analyze::report::LintReport;
use teenet_analyze::rules::{rule, scan_file, secret_egress_adjacency_scan, Finding};
use teenet_analyze::scan_workspace;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The fixture view of the workspace config: fixture files are scanned
/// under the role their name implies; nothing is excluded or
/// clock-exempt. `clean.rs` gets *every* role so all rules run on it.
fn fixture_config() -> AnalyzeConfig {
    let mut c = AnalyzeConfig::repo();
    c.excluded_prefixes = Vec::new();
    c.enclave_resident = [
        "abort_bad.rs",
        "index_bad.rs",
        "waivers_mixed.rs",
        "seal_rollback_bad.rs",
        "seal_rollback_good.rs",
        "waivers_flow_mixed.rs",
        "clean.rs",
    ]
    .map(str::to_owned)
    .to_vec();
    c.accounting = vec!["float_bad.rs".to_owned(), "clean.rs".to_owned()];
    c.clock_exempt = Vec::new();
    c
}

fn scan(name: &str) -> Vec<Finding> {
    let src = fs::read_to_string(fixtures_root().join(name)).expect("fixture readable");
    scan_file(&fixture_config(), name, &src)
}

fn lines(f: &[Finding]) -> Vec<u32> {
    f.iter().map(|x| x.line).collect()
}

#[test]
fn abort_fixture_exact_findings() {
    let f = scan("abort_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::ENCLAVE_ABORT && x.waived.is_none()),
        "{f:?}"
    );
    // One per abort construct; the unwrap inside #[cfg(test)] is exempt.
    assert_eq!(lines(&f), vec![5, 9, 13, 17, 21, 25]);
}

#[test]
fn index_fixture_exact_findings() {
    let f = scan("index_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::ENCLAVE_INDEX && x.waived.is_none()),
        "{f:?}"
    );
    // Literal / named-constant indices in static_ok and types_ok pass.
    assert_eq!(lines(&f), vec![7, 11, 15]);
}

#[test]
fn egress_fixture_exact_findings() {
    let f = scan("egress_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::SECRET_EGRESS && x.waived.is_none()),
        "{f:?}"
    );
    // The seal(..)-wrapped secret and the non-secret blob pass.
    assert_eq!(lines(&f), vec![6, 10]);
}

#[test]
fn float_fixture_exact_findings() {
    let f = scan("float_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::FLOAT_ACCOUNTING && x.waived.is_none()),
        "{f:?}"
    );
    // Line 4: return type f64. Line 5: `as f64` plus the 1.45 literal.
    assert_eq!(lines(&f), vec![4, 5, 5]);
}

#[test]
fn clock_fixture_exact_findings() {
    let f = scan("clock_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::WALL_CLOCK && x.waived.is_none()),
        "{f:?}"
    );
    // SystemTime, Instant, thread_rng; the seeded RNG passes.
    assert_eq!(lines(&f), vec![6, 11, 16]);
}

#[test]
fn waiver_fixture_exact_structure() {
    let f = scan("waivers_mixed.rs");
    assert_eq!(f.len(), 7, "{f:?}");

    let waived: Vec<&Finding> = f.iter().filter(|x| x.waived.is_some()).collect();
    let unwaived: Vec<&Finding> = f.iter().filter(|x| x.waived.is_none()).collect();

    // Line waiver covers the unwrap on the next line; the block waiver
    // covers both indices inside the braced block.
    assert_eq!(
        waived.iter().map(|x| (x.line, x.rule)).collect::<Vec<_>>(),
        vec![
            (6, rule::ENCLAVE_ABORT),
            (11, rule::ENCLAVE_INDEX),
            (11, rule::ENCLAVE_INDEX),
        ]
    );
    assert_eq!(
        waived[0].waived.as_deref(),
        Some("fixture: infallible by construction")
    );

    // The uncovered index, the stale waiver, the malformed waiver, and
    // the unwrap the malformed waiver failed to cover.
    assert_eq!(
        unwaived
            .iter()
            .map(|x| (x.line, x.rule))
            .collect::<Vec<_>>(),
        vec![
            (15, rule::ENCLAVE_INDEX),
            (18, rule::UNUSED_WAIVER),
            (21, rule::BAD_WAIVER),
            (23, rule::ENCLAVE_ABORT),
        ]
    );
}

#[test]
fn seal_rollback_bad_fixture_exact_findings() {
    let f = scan("seal_rollback_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::SEAL_ROLLBACK && x.waived.is_none()),
        "{f:?}"
    );
    // The bare `.key` projection, the `self.state` adoption, the use
    // *before* a (real) gate, and the equality pseudo-gate.
    assert_eq!(lines(&f), vec![6, 11, 16, 28]);
    assert!(f[0].message.contains("`.key`"), "{f:?}");
    assert!(f[1].message.contains("self.state"), "{f:?}");
}

#[test]
fn seal_rollback_good_fixture_has_zero_findings() {
    let f = scan("seal_rollback_good.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn nonce_reuse_bad_fixture_exact_findings() {
    let f = scan("nonce_reuse_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::SEAL_NONCE_REUSE && x.waived.is_none()),
        "{f:?}"
    );
    // Second site of: the shared ident, the `.clone()` alias, the
    // repeated array literal, and the `self.nonce` projection.
    assert_eq!(lines(&f), vec![6, 13, 18, 23]);
}

#[test]
fn nonce_reuse_good_fixture_has_zero_findings() {
    let f = scan("nonce_reuse_good.rs");
    assert!(f.is_empty(), "{f:?}");
}

/// The tentpole's delta proof: both engines run over the renamed-secret
/// fixture. The old token-adjacency engine sees nothing (no secret
/// identifier is adjacent to a sink), the flow engine tracks the taint
/// through the rebinding and reports both leaks.
#[test]
fn egress_taint_fixture_proves_flow_over_adjacency() {
    let src = fs::read_to_string(fixtures_root().join("egress_taint_bad.rs")).expect("fixture");
    let adjacency = secret_egress_adjacency_scan(&fixture_config(), &src);
    assert_eq!(
        adjacency,
        Vec::<u32>::new(),
        "adjacency must miss the renames"
    );

    let f = scan("egress_taint_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::SECRET_EGRESS && x.waived.is_none()),
        "{f:?}"
    );
    // The one-hop rename and the two-hop frame; the seal()-wrapped
    // intermediate stays clean.
    assert_eq!(lines(&f), vec![7, 13]);
}

#[test]
fn flow_waiver_fixture_exact_structure() {
    let f = scan("waivers_flow_mixed.rs");

    let waived: Vec<&Finding> = f.iter().filter(|x| x.waived.is_some()).collect();
    let unwaived: Vec<&Finding> = f.iter().filter(|x| x.waived.is_none()).collect();

    // The line-waived nonce reuse and the block-waived rollback.
    assert_eq!(
        waived.iter().map(|x| (x.line, x.rule)).collect::<Vec<_>>(),
        vec![(8, rule::SEAL_NONCE_REUSE), (14, rule::SEAL_ROLLBACK)]
    );
    // The stale rollback waiver (its function is properly gated) and
    // the uncovered reuse.
    assert_eq!(
        unwaived
            .iter()
            .map(|x| (x.line, x.rule))
            .collect::<Vec<_>>(),
        vec![(17, rule::UNUSED_WAIVER), (28, rule::SEAL_NONCE_REUSE)]
    );
}

#[test]
fn attest_unchecked_bad_fixture_exact_findings() {
    let f = scan("attest_unchecked_bad.rs");
    assert!(f.iter().all(|x| x.rule == rule::ATTEST_UNCHECKED), "{f:?}");
    // `let _ =`, `.ok()`, bare `;`, `.err()`, the multi-line chain, the
    // bare mutual_attest, the block-waived probe, the empty
    // `if let Err(_)` body and the `.unwrap_or_default()` discard.
    assert_eq!(lines(&f), vec![6, 7, 8, 9, 14, 19, 24, 28, 32]);
    assert!(f[7].message.contains("empty `if let Err(_)` body"), "{f:?}");
    assert!(f[8].message.contains("unwrap_or_default"), "{f:?}");
    let waived: Vec<&Finding> = f.iter().filter(|x| x.waived.is_some()).collect();
    assert_eq!(waived.len(), 1);
    assert_eq!(waived[0].line, 24);
    assert_eq!(
        waived[0].waived.as_deref(),
        Some("fixture: probing the reject path only")
    );
}

#[test]
fn attest_unchecked_good_fixture_has_zero_findings() {
    let f = scan("attest_unchecked_good.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn clean_fixture_has_zero_findings() {
    let f = scan("clean.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn fixture_workspace_scan_tallies_and_stability() {
    let cfg = fixture_config();
    let a = scan_workspace(&fixtures_root(), &cfg).expect("scan fixtures");
    let b = scan_workspace(&fixtures_root(), &cfg).expect("scan fixtures again");
    assert_eq!(a.json(), b.json(), "report must be byte-stable");
    assert_eq!(a.text(), b.text());

    assert_eq!(a.files_scanned, 15);
    assert_eq!(a.findings.len(), 47);
    assert_eq!(a.unwaived().count(), 41);
    assert_eq!(a.waived().count(), 6);

    let count = |r: &str| a.findings.iter().filter(|f| f.rule == r).count();
    assert_eq!(count(rule::ENCLAVE_ABORT), 8);
    assert_eq!(count(rule::ENCLAVE_INDEX), 6);
    assert_eq!(count(rule::SECRET_EGRESS), 4);
    assert_eq!(count(rule::FLOAT_ACCOUNTING), 3);
    assert_eq!(count(rule::WALL_CLOCK), 3);
    assert_eq!(count(rule::ATTEST_UNCHECKED), 9);
    assert_eq!(count(rule::SEAL_ROLLBACK), 5);
    assert_eq!(count(rule::SEAL_NONCE_REUSE), 6);
    assert_eq!(count(rule::UNUSED_WAIVER), 2);
    assert_eq!(count(rule::BAD_WAIVER), 1);
}

#[test]
fn float_fixture_json_exact_bytes() {
    let r = LintReport {
        files_scanned: 1,
        findings: scan("float_bad.rs"),
    };
    assert_eq!(
        r.json(),
        "{\"files_scanned\":1,\"waiver_count\":0,\"findings\":[\
         {\"file\":\"float_bad.rs\",\"line\":4,\"rule\":\"float-accounting\",\
         \"message\":\"f64 in an accounting path — use exact integer arithmetic\"},\
         {\"file\":\"float_bad.rs\",\"line\":5,\"rule\":\"float-accounting\",\
         \"message\":\"f64 in an accounting path — use exact integer arithmetic\"},\
         {\"file\":\"float_bad.rs\",\"line\":5,\"rule\":\"float-accounting\",\
         \"message\":\"float literal in an accounting path — use exact integer arithmetic\"}\
         ],\"waived\":[]}\n"
    );
}

#[test]
fn real_workspace_has_zero_unwaived_findings() {
    // The CI gate, as a test: the tree this crate sits in must lint
    // clean under the real config (all findings fixed or waived).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = scan_workspace(&root, &AnalyzeConfig::repo()).expect("scan workspace");
    let unwaived: Vec<&Finding> = report.unwaived().collect();
    assert!(
        unwaived.is_empty(),
        "unwaived findings in the tree:\n{}",
        report.text()
    );
}

/// The waiver-budget gate, as a test: the checked-in baseline must equal
/// the tree's actual waiver count *exactly*. Adding or removing a waiver
/// without touching `waiver_budget.txt` in the same PR fails here (the
/// CLI's `--waiver-budget` flag only rejects growth; this keeps the
/// number honest in both directions).
#[test]
fn waiver_budget_baseline_matches_the_tree() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let baseline: usize = fs::read_to_string(manifest.join("waiver_budget.txt"))
        .expect("crates/analyze/waiver_budget.txt is checked in")
        .trim()
        .parse()
        .expect("waiver_budget.txt holds one integer");
    let root = manifest
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = scan_workspace(&root, &AnalyzeConfig::repo()).expect("scan workspace");
    assert_eq!(
        report.waived().count(),
        baseline,
        "the tree's waiver count changed — update crates/analyze/waiver_budget.txt \
         in the same PR"
    );
    // The JSON report carries the count first-class for the CLI gate.
    assert!(report.json().starts_with(&format!(
        "{{\"files_scanned\":{},\"waiver_count\":{baseline}",
        report.files_scanned
    )));
}
