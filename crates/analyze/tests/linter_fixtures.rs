//! Linter fixture tests: a known-good / known-bad corpus per rule under
//! `tests/fixtures/`, asserting exact finding counts, exact lines and
//! byte-stable JSON. The fixture directory is in the workspace config's
//! excluded prefixes, so the real CI lint never scans it — these tests
//! scan it with their own config in which every fixture is (as needed)
//! enclave-resident and/or an accounting path.

use std::fs;
use std::path::{Path, PathBuf};

use teenet_analyze::config::AnalyzeConfig;
use teenet_analyze::report::LintReport;
use teenet_analyze::rules::{rule, scan_file, Finding};
use teenet_analyze::scan_workspace;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The fixture view of the workspace config: fixture files are scanned
/// under the role their name implies; nothing is excluded or
/// clock-exempt. `clean.rs` gets *every* role so all rules run on it.
fn fixture_config() -> AnalyzeConfig {
    let mut c = AnalyzeConfig::repo();
    c.excluded_prefixes = Vec::new();
    c.enclave_resident = [
        "abort_bad.rs",
        "index_bad.rs",
        "waivers_mixed.rs",
        "clean.rs",
    ]
    .map(str::to_owned)
    .to_vec();
    c.accounting = vec!["float_bad.rs".to_owned(), "clean.rs".to_owned()];
    c.clock_exempt = Vec::new();
    c
}

fn scan(name: &str) -> Vec<Finding> {
    let src = fs::read_to_string(fixtures_root().join(name)).expect("fixture readable");
    scan_file(&fixture_config(), name, &src)
}

fn lines(f: &[Finding]) -> Vec<u32> {
    f.iter().map(|x| x.line).collect()
}

#[test]
fn abort_fixture_exact_findings() {
    let f = scan("abort_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::ENCLAVE_ABORT && x.waived.is_none()),
        "{f:?}"
    );
    // One per abort construct; the unwrap inside #[cfg(test)] is exempt.
    assert_eq!(lines(&f), vec![5, 9, 13, 17, 21, 25]);
}

#[test]
fn index_fixture_exact_findings() {
    let f = scan("index_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::ENCLAVE_INDEX && x.waived.is_none()),
        "{f:?}"
    );
    // Literal / named-constant indices in static_ok and types_ok pass.
    assert_eq!(lines(&f), vec![7, 11, 15]);
}

#[test]
fn egress_fixture_exact_findings() {
    let f = scan("egress_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::SECRET_EGRESS && x.waived.is_none()),
        "{f:?}"
    );
    // The seal(..)-wrapped secret and the non-secret blob pass.
    assert_eq!(lines(&f), vec![6, 10]);
}

#[test]
fn float_fixture_exact_findings() {
    let f = scan("float_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::FLOAT_ACCOUNTING && x.waived.is_none()),
        "{f:?}"
    );
    // Line 4: return type f64. Line 5: `as f64` plus the 1.45 literal.
    assert_eq!(lines(&f), vec![4, 5, 5]);
}

#[test]
fn clock_fixture_exact_findings() {
    let f = scan("clock_bad.rs");
    assert!(
        f.iter()
            .all(|x| x.rule == rule::WALL_CLOCK && x.waived.is_none()),
        "{f:?}"
    );
    // SystemTime, Instant, thread_rng; the seeded RNG passes.
    assert_eq!(lines(&f), vec![6, 11, 16]);
}

#[test]
fn waiver_fixture_exact_structure() {
    let f = scan("waivers_mixed.rs");
    assert_eq!(f.len(), 7, "{f:?}");

    let waived: Vec<&Finding> = f.iter().filter(|x| x.waived.is_some()).collect();
    let unwaived: Vec<&Finding> = f.iter().filter(|x| x.waived.is_none()).collect();

    // Line waiver covers the unwrap on the next line; the block waiver
    // covers both indices inside the braced block.
    assert_eq!(
        waived.iter().map(|x| (x.line, x.rule)).collect::<Vec<_>>(),
        vec![
            (6, rule::ENCLAVE_ABORT),
            (11, rule::ENCLAVE_INDEX),
            (11, rule::ENCLAVE_INDEX),
        ]
    );
    assert_eq!(
        waived[0].waived.as_deref(),
        Some("fixture: infallible by construction")
    );

    // The uncovered index, the stale waiver, the malformed waiver, and
    // the unwrap the malformed waiver failed to cover.
    assert_eq!(
        unwaived
            .iter()
            .map(|x| (x.line, x.rule))
            .collect::<Vec<_>>(),
        vec![
            (15, rule::ENCLAVE_INDEX),
            (18, rule::UNUSED_WAIVER),
            (21, rule::BAD_WAIVER),
            (23, rule::ENCLAVE_ABORT),
        ]
    );
}

#[test]
fn attest_unchecked_bad_fixture_exact_findings() {
    let f = scan("attest_unchecked_bad.rs");
    assert!(f.iter().all(|x| x.rule == rule::ATTEST_UNCHECKED), "{f:?}");
    // `let _ =`, `.ok()`, bare `;`, `.err()`, the multi-line chain, and
    // the bare mutual_attest; the block-waived probe is the 7th.
    assert_eq!(lines(&f), vec![6, 7, 8, 9, 14, 19, 24]);
    let waived: Vec<&Finding> = f.iter().filter(|x| x.waived.is_some()).collect();
    assert_eq!(waived.len(), 1);
    assert_eq!(waived[0].line, 24);
    assert_eq!(
        waived[0].waived.as_deref(),
        Some("fixture: probing the reject path only")
    );
}

#[test]
fn attest_unchecked_good_fixture_has_zero_findings() {
    let f = scan("attest_unchecked_good.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn clean_fixture_has_zero_findings() {
    let f = scan("clean.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn fixture_workspace_scan_tallies_and_stability() {
    let cfg = fixture_config();
    let a = scan_workspace(&fixtures_root(), &cfg).expect("scan fixtures");
    let b = scan_workspace(&fixtures_root(), &cfg).expect("scan fixtures again");
    assert_eq!(a.json(), b.json(), "report must be byte-stable");
    assert_eq!(a.text(), b.text());

    assert_eq!(a.files_scanned, 9);
    assert_eq!(a.findings.len(), 31);
    assert_eq!(a.unwaived().count(), 27);
    assert_eq!(a.waived().count(), 4);

    let count = |r: &str| a.findings.iter().filter(|f| f.rule == r).count();
    assert_eq!(count(rule::ENCLAVE_ABORT), 8);
    assert_eq!(count(rule::ENCLAVE_INDEX), 6);
    assert_eq!(count(rule::SECRET_EGRESS), 2);
    assert_eq!(count(rule::FLOAT_ACCOUNTING), 3);
    assert_eq!(count(rule::WALL_CLOCK), 3);
    assert_eq!(count(rule::ATTEST_UNCHECKED), 7);
    assert_eq!(count(rule::UNUSED_WAIVER), 1);
    assert_eq!(count(rule::BAD_WAIVER), 1);
}

#[test]
fn float_fixture_json_exact_bytes() {
    let r = LintReport {
        files_scanned: 1,
        findings: scan("float_bad.rs"),
    };
    assert_eq!(
        r.json(),
        "{\"files_scanned\":1,\"findings\":[\
         {\"file\":\"float_bad.rs\",\"line\":4,\"rule\":\"float-accounting\",\
         \"message\":\"f64 in an accounting path — use exact integer arithmetic\"},\
         {\"file\":\"float_bad.rs\",\"line\":5,\"rule\":\"float-accounting\",\
         \"message\":\"f64 in an accounting path — use exact integer arithmetic\"},\
         {\"file\":\"float_bad.rs\",\"line\":5,\"rule\":\"float-accounting\",\
         \"message\":\"float literal in an accounting path — use exact integer arithmetic\"}\
         ],\"waived\":[]}\n"
    );
}

#[test]
fn real_workspace_has_zero_unwaived_findings() {
    // The CI gate, as a test: the tree this crate sits in must lint
    // clean under the real config (all findings fixed or waived).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = scan_workspace(&root, &AnalyzeConfig::repo()).expect("scan workspace");
    let unwaived: Vec<&Finding> = report.unwaived().collect();
    assert!(
        unwaived.is_empty(),
        "unwaived findings in the tree:\n{}",
        report.text()
    );
}
