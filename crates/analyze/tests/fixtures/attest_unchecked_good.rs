//! Known-good corpus for `attestation-unchecked`: every checked
//! consumption of an attestation verdict, plus the definition form the
//! rule must skip. Not compiled — the linter reads it as text.

fn verify(response: &AttestResponse) -> Result<Outcome, Error> {
    Ok(Outcome::new(response))
}

fn propagated(c: Challenger, r: &AttestResponse, pk: &VerifyingKey) -> Result<Outcome, Error> {
    let outcome = c.verify(r, pk, None)?;
    quote.verify(pk).map_err(Error::from)?;
    Ok(outcome)
}

fn branched(gate: &Gate, r: &AttestResponse, pk: &VerifyingKey) -> Result<(), Error> {
    if gate.verify(r, pk, None).is_err() {
        return Err(Error::AttestRejected);
    }
    match attest_enclave(&mut platform, id, &config) {
        Ok(channel) => adopt(channel),
        Err(e) => reject(e),
    }
    Ok(())
}

fn bound_and_forwarded(a: &mut Platform, b: &mut Platform) -> Result<Channel, Error> {
    let maybe = mutual_attest(a, b).ok();
    record(attest_enclave(&mut platform, id, &config));
    return maybe.ok_or(Error::AttestRejected);
}

fn handled_branch(c: &Challenger, r: &AttestResponse, pk: &VerifyingKey) {
    if let Err(e) = c.verify(r, pk, None) {
        log_reject(e);
    }
    if let Err(_) = c.verify(r, pk, None) {
        bail();
    }
}
