// Known-bad corpus for the `float-accounting` rule (L3). The fixture
// tests scan this file as an accounting path; never compiled.

pub fn cpi_scaled(instr: u64) -> f64 {
    instr as f64 * 1.45
}

pub fn exact_ok(instr: u64) -> u64 {
    instr * 29 / 20
}
