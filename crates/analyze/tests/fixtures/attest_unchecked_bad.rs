//! Known-bad corpus for `attestation-unchecked`: every way this tree
//! could drop an attestation verdict on the floor. Not compiled — the
//! linter reads it as text.

fn drops_everything(challenger: Challenger, response: &AttestResponse, pk: &VerifyingKey) {
    let _ = challenger.verify(response, pk, None);
    client.verify(response, pk, None).ok();
    gate.verify(response, pk, None);
    attest_enclave(&mut platform, id, &config).err();
}

fn multiline_discard(challenger: Challenger, response: &AttestResponse, pk: &VerifyingKey) {
    challenger
        .verify(response, pk, None)
        .ok();
}

fn symmetric_discard(a: &mut Platform, b: &mut Platform) {
    mutual_attest(a, b);
}

// teenet-analyze: allow-block(attestation-unchecked) -- fixture: probing the reject path only
fn waived_probe(gate: &Gate, response: &AttestResponse) {
    gate.verify(response, &GROUP_KEY, None).err();
}

fn silent_branch(challenger: Challenger, response: &AttestResponse, pk: &VerifyingKey) {
    if let Err(_) = challenger.verify(response, pk, None) {}
}

fn fabricated_default(gate: &Gate, response: &AttestResponse) {
    gate.verify(response, &GROUP_KEY, None).unwrap_or_default();
}
