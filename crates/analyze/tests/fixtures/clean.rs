// Known-good corpus: scanned with every rule active (enclave-resident
// AND accounting), expecting zero findings. Never compiled.

pub fn parse(buf: &[u8]) -> Result<u8, Error> {
    buf.first().copied().ok_or(Error::Truncated)
}

pub fn head(buf: &[u8]) -> Option<&[u8]> {
    buf.get(..4)
}

pub fn cycles_exact(instr: u64) -> u64 {
    instr * 29 / 20
}
