// Known-bad corpus for flow-aware `secret-egress` (L2): the secret is
// renamed before it reaches the sink, which the old token-adjacency
// engine provably missed (see the delta test). Never compiled.

pub fn renamed_leak(ctx: &mut Ctx, seal_key: &[u8; 16]) {
    let wrapped = seal_key.to_vec();
    ctx.ocall("persist", &wrapped);
}

pub fn two_hop_leak(net: &mut Net, dh_secret: &[u8]) {
    let shared = dh_secret.to_vec();
    let packet = frame(&shared);
    net.send_packets(&packet);
}

pub fn sealed_intermediate_ok(ctx: &mut Ctx, seal_key: &[u8; 16]) {
    let blob = seal(seal_key, b"label", 0, 0);
    ctx.ocall("persist", &blob.to_bytes());
}
