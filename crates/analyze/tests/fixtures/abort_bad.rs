// Known-bad corpus for the `enclave-abort` rule (L1a). The fixture
// tests scan this file as enclave-resident; it is never compiled.

pub fn opt_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn res_expect(x: Result<u8, ()>) -> u8 {
    x.expect("present")
}

pub fn explicit_panic() {
    panic!("boom");
}

pub fn not_reachable() {
    unreachable!()
}

pub fn todo_later() {
    todo!()
}

pub fn not_implemented() {
    unimplemented!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn aborts_inside_tests_are_the_assertion_mechanism() {
        Some(1u8).unwrap();
    }
}
