// Known-good corpus for `seal-nonce-reuse`: every accepted
// re-derivation shape, plus untracked non-nonce arguments. Never
// compiled.

pub fn refreshed(cipher: &Aes128, rng: &mut SecureRng, a: &mut [u8], b: &mut [u8]) {
    let mut nonce = [0u8; 16];
    rng.fill_bytes(&mut nonce);
    cipher.ctr_apply(&nonce, a);
    rng.fill_bytes(&mut nonce);
    cipher.ctr_apply(&nonce, b);
}

pub fn reassigned(cipher: &Aes128, ctr: &mut Counter, a: &mut [u8], b: &mut [u8]) {
    let mut nonce = ctr.next_nonce();
    cipher.ctr_apply(&nonce, a);
    nonce = ctr.next_nonce();
    cipher.ctr_apply(&nonce, b);
}

pub fn distinct_literals(cipher: &Aes128, a: &mut [u8], b: &mut [u8]) {
    cipher.ctr_apply(&[1u8; 16], a);
    cipher.ctr_apply(&[2u8; 16], b);
}

pub fn fresh_calls(sealer: &Sealer, ctr: &mut Counter, a: &[u8], b: &[u8]) {
    sealer.seal(ctr.next_nonce(), a);
    sealer.seal(ctr.next_nonce(), b);
}

pub fn untracked_payloads(cipher: &Aes128, key: &[u8], a: &mut [u8], b: &mut [u8]) {
    cipher.ctr_apply(key, a);
    cipher.ctr_apply(key, b);
}
