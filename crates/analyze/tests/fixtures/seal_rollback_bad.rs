// Known-bad corpus for `seal-rollback` (L6): unsealed state used
// before any monotonic-counter gate. Never compiled.

pub fn key_before_gate(ctx: &mut Ctx, blob: &SealedBlob) -> Vec<u8> {
    let snap = ctx.unseal(KeyRequest::SealEnclave, blob);
    snap.key.to_vec()
}

pub fn adopted_before_gate(&mut self, ctx: &mut Ctx, blob: &SealedBlob) {
    let plain = ctx.unseal(KeyRequest::SealEnclave, blob);
    self.state = plain;
}

pub fn gate_too_late(ctx: &mut Ctx, blob: &SealedBlob, last: u64) -> Vec<u8> {
    let snap = ctx.unseal(KeyRequest::SealEnclave, blob);
    let key = snap.material.to_vec();
    if snap.counter > last {
        return key;
    }
    Vec::new()
}

pub fn equality_is_no_gate(ctx: &mut Ctx, blob: &SealedBlob, last: u64) -> Vec<u8> {
    let snap = ctx.unseal(KeyRequest::SealEnclave, blob);
    if snap.counter == last {
        return Vec::new();
    }
    snap.key.to_vec()
}
