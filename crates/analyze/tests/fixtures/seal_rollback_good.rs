// Known-good corpus for `seal-rollback`: every accepted gate shape,
// plus untainted look-alikes. Never compiled.

pub fn gated_then_used(ctx: &mut Ctx, blob: &SealedBlob, last: u64) -> Result<Vec<u8>, Error> {
    let snap = ctx.unseal(KeyRequest::SealEnclave, blob)?;
    if snap.counter <= last {
        return Err(Error::Rollback);
    }
    Ok(snap.key.to_vec())
}

pub fn gate_via_derived(&mut self, ctx: &mut Ctx, blob: &SealedBlob) -> Result<(), Error> {
    let plain = ctx.unseal(KeyRequest::SealEnclave, blob)?;
    let snap = Snapshot::parse(&plain)?;
    if snap.epoch <= self.epoch {
        return Err(Error::Rollback);
    }
    self.state = snap.state;
    Ok(())
}

pub fn untainted_key_projection(cfg: &Config) -> Vec<u8> {
    cfg.key.to_vec()
}
