// Known-bad corpus for `seal-nonce-reuse` (L7): one nonce, two
// keystreams. Never compiled.

pub fn ident_reuse(cipher: &Aes128, nonce: &[u8; 16], a: &mut [u8], b: &mut [u8]) {
    cipher.ctr_apply(nonce, a);
    cipher.ctr_apply(nonce, b);
}

pub fn alias_reuse(cipher: &Aes128, a: &mut [u8], b: &mut [u8]) {
    let nonce = derive_nonce();
    let iv = nonce.clone();
    cipher.ctr_apply(&nonce, a);
    cipher.ctr_apply(&iv, b);
}

pub fn literal_reuse(cipher: &Aes128, a: &mut [u8], b: &mut [u8]) {
    cipher.ctr_apply(&[7u8; 16], a);
    cipher.ctr_apply(&[7u8; 16], b);
}

pub fn field_reuse(&mut self, sealer: &Sealer, a: &[u8], b: &[u8]) {
    sealer.seal(self.nonce, a);
    sealer.seal(self.nonce, b);
}
