// Mixed waiver corpus for the flow rules: a line waiver on a nonce
// reuse, a block waiver on a rollback, a stale flow waiver and an
// uncovered finding. Never compiled.

pub fn waived_reuse(cipher: &Aes128, nonce: &[u8; 16], a: &mut [u8], b: &mut [u8]) {
    cipher.ctr_apply(nonce, a);
    // teenet-analyze: allow(seal-nonce-reuse) -- fixture: involution round-trip
    cipher.ctr_apply(nonce, b);
}

// teenet-analyze: allow-block(seal-rollback) -- fixture: single-shot enclave, no persistent counter
pub fn waived_rollback(ctx: &mut Ctx, blob: &SealedBlob) -> Vec<u8> {
    let snap = ctx.unseal(KeyRequest::SealEnclave, blob);
    snap.key.to_vec()
}

// teenet-analyze: allow(seal-rollback) -- fixture: suppresses nothing
pub fn stale_gated(ctx: &mut Ctx, blob: &SealedBlob, last: u64) -> Vec<u8> {
    let snap = ctx.unseal(KeyRequest::SealEnclave, blob);
    if snap.counter > last {
        return snap.key.to_vec();
    }
    Vec::new()
}

pub fn uncovered(cipher: &Aes128, iv: &[u8; 12], a: &mut [u8], b: &mut [u8]) {
    cipher.ctr_apply(iv, a);
    cipher.ctr_apply(iv, b);
}
