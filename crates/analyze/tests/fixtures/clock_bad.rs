// Known-bad corpus for the `wall-clock` rule (L4). Wall-clock and
// ambient-entropy identifiers are findings anywhere outside the netsim
// virtual clock. Never compiled.

pub fn wall_now() -> u128 {
    let t = SystemTime::now();
    duration_ms(t)
}

pub fn elapsed_ns() -> u64 {
    let t0 = Instant::now();
    stop_ns(t0)
}

pub fn ambient_seed() -> u64 {
    thread_rng().next_u64()
}

pub fn seeded_ok(rng: &mut Lcg) -> u64 {
    rng.next_u64()
}
