// Mixed waiver corpus: a line waiver, a block waiver, an unwaived
// finding, a stale waiver and a malformed waiver. Never compiled.

pub fn waived_line(x: Option<u8>) -> u8 {
    // teenet-analyze: allow(enclave-abort) -- fixture: infallible by construction
    x.unwrap()
}

// teenet-analyze: allow-block(enclave-index) -- fixture: indices bounded by caller
pub fn waived_block(buf: &[u8], n: usize) -> (&[u8], u8) {
    (&buf[..n], buf[n])
}

pub fn unwaived(buf: &[u8], n: usize) -> u8 {
    buf[n]
}

// teenet-analyze: allow(enclave-abort) -- fixture: suppresses nothing
pub fn stale() {}

// teenet-analyze: allow(enclave-abort)
pub fn malformed(x: Option<u8>) -> u8 {
    x.unwrap()
}
