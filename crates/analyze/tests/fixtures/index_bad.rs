// Known-bad corpus for the `enclave-index` rule (L1b). Data-dependent
// indices are findings; literal/const indices are not. Never compiled.

pub const HDR: usize = 4;

pub fn tail(buf: &[u8], n: usize) -> &[u8] {
    &buf[n..]
}

pub fn pick(buf: &[u8], i: usize) -> u8 {
    buf[i]
}

pub fn window(buf: &[u8], off: usize) -> &[u8] {
    &buf[off..off + HDR]
}

pub fn static_ok(buf: &[u8]) -> (&[u8], u8) {
    (&buf[..HDR], buf[0])
}

pub fn types_ok(x: [u8; 32], v: &mut Vec<u8>) -> [u8; 32] {
    v.extend_from_slice(&x[..16]);
    x
}
