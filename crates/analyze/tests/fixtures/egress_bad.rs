// Known-bad corpus for the `secret-egress` rule (L2). Secret idents in
// a sink's argument list are findings unless wrapped in a sanctioned
// sealing call. Never compiled.

pub fn leak_ocall(ctx: &mut Ctx, seal_key: &[u8; 16]) {
    ctx.ocall("persist", seal_key);
}

pub fn leak_wire(net: &mut Net, shared_secret: &[u8]) {
    net.send_packets(core::slice::from_ref(&shared_secret));
}

pub fn sealed_ok(ctx: &mut Ctx, seal_key: &[u8; 16]) {
    ctx.ocall("persist", &seal(seal_key, b"label", 0, 0).to_bytes());
}

pub fn plain_ok(ctx: &mut Ctx, blob: &[u8]) {
    ctx.ocall("persist", blob);
}
