//! Exhaustive switchless-ring model check over a `{workers} × {ring} ×
//! {spin}` grid of bounds, plus the teeth test: all three seeded
//! mutations (lost wakeup, double execution, stampede wake) must be
//! rejected with a concrete witness interleaving on every grid point
//! where they are expressible — a checker that only passes the faithful
//! model could be vacuous.

use teenet_analyze::ring::{check, ModelConfig, Mutation};

/// (workers, ring_capacity, spin_budget, calls) grid. Small bounds are
/// the point: the seeded bugs already bite with one ring slot and zero
/// spin, and the multi-worker races need no more than three workers.
const GRID: [(usize, usize, u32, u8); 8] = [
    (1, 1, 0, 4),
    (1, 2, 1, 6),
    (1, 3, 2, 6),
    (2, 1, 0, 4),
    (2, 1, 2, 5),
    (2, 2, 1, 6),
    (2, 2, 2, 4),
    (3, 2, 1, 5),
];

fn cfg(workers: usize, ring_capacity: usize, spin_budget: u32, calls: u8) -> ModelConfig {
    ModelConfig {
        ring_capacity,
        spin_budget,
        workers,
        calls,
        max_states: 8_000_000,
    }
}

#[test]
fn faithful_model_passes_exhaustively_on_every_grid_point() {
    for (workers, ring, spin, calls) in GRID {
        let e = check(&cfg(workers, ring, spin, calls), Mutation::None).unwrap_or_else(|v| {
            panic!("workers={workers} ring={ring} spin={spin} calls={calls}: {v}");
        });
        assert!(e.states > 0, "exploration must visit states");
        assert!(e.terminals > 0, "exploration must reach terminal states");
    }
}

#[test]
fn lost_wakeup_mutation_rejected_on_every_grid_point() {
    for (workers, ring, spin, calls) in GRID {
        let v = check(&cfg(workers, ring, spin, calls), Mutation::LostWakeup).expect_err(
            "worker sleeping without the final ring re-check must violate an invariant",
        );
        assert!(
            v.what.contains("lost wakeup") || v.what.contains("dropped"),
            "workers={workers} ring={ring} spin={spin} calls={calls}: unexpected violation {v}"
        );
        assert!(
            !v.trace.is_empty(),
            "the violation must carry a witness interleaving"
        );
        assert!(
            v.trace
                .iter()
                .any(|s| s.starts_with("worker") && s.ends_with("sleep")),
            "the witness must include the buggy sleep step: {v}"
        );
    }
}

#[test]
fn double_execution_mutation_rejected_on_every_grid_point() {
    for (workers, ring, spin, calls) in GRID {
        let v = check(&cfg(workers, ring, spin, calls), Mutation::DoubleExecution).expect_err(
            "fallback that also enqueues its entry must violate exactly-once execution",
        );
        assert!(
            v.what.contains("executed 2 times"),
            "workers={workers} ring={ring} spin={spin} calls={calls}: unexpected violation {v}"
        );
        assert!(
            v.trace.iter().any(|s| s.contains("fallback-full")),
            "the witness must include the buggy full-ring fallback: {v}"
        );
    }
}

/// The stampede steal needs an awake worker and a sleeper at the same
/// time, so it is only expressible at `workers >= 2` — on those grid
/// points it must be rejected with a witness showing the steal.
#[test]
fn stampede_wake_mutation_rejected_on_every_multiworker_grid_point() {
    for (workers, ring, spin, calls) in GRID {
        let result = check(&cfg(workers, ring, spin, calls), Mutation::StampedeWake);
        if workers < 2 {
            result.unwrap_or_else(|v| {
                panic!("stampede is unreachable with one worker, got: {v}");
            });
            continue;
        }
        let v = result
            .expect_err("an awake worker stealing the sleeper's wake must violate wake accounting");
        assert!(
            v.what.contains("stampede wake"),
            "workers={workers} ring={ring} spin={spin} calls={calls}: unexpected violation {v}"
        );
        assert!(
            v.trace.iter().any(|s| s.contains("steal wake")),
            "the witness must include the steal step: {v}"
        );
    }
}

#[test]
fn witness_traces_are_deterministic() {
    let a = check(&cfg(2, 2, 1, 4), Mutation::LostWakeup).expect_err("rejected");
    let b = check(&cfg(2, 2, 1, 4), Mutation::LostWakeup).expect_err("rejected");
    assert_eq!(a.what, b.what);
    assert_eq!(a.trace, b.trace);

    let a = check(&cfg(2, 1, 1, 4), Mutation::StampedeWake).expect_err("rejected");
    let b = check(&cfg(2, 1, 1, 4), Mutation::StampedeWake).expect_err("rejected");
    assert_eq!(a.what, b.what);
    assert_eq!(a.trace, b.trace);
}
