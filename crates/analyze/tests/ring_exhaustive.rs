//! Exhaustive switchless-ring model check over a grid of bounds, plus
//! the teeth test: both seeded mutations (lost wakeup, double
//! execution) must be rejected with a concrete witness interleaving on
//! every grid point — a checker that only passes the faithful model
//! could be vacuous.

use teenet_analyze::ring::{check, ModelConfig, Mutation};

/// (ring_capacity, spin_budget, calls) grid. Small bounds are the point:
/// both seeded bugs already bite with one ring slot and zero spin.
const GRID: [(usize, u32, u8); 5] = [(1, 0, 4), (1, 2, 5), (2, 1, 6), (2, 2, 4), (3, 2, 6)];

fn cfg(ring_capacity: usize, spin_budget: u32, calls: u8) -> ModelConfig {
    ModelConfig {
        ring_capacity,
        spin_budget,
        calls,
        max_states: 4_000_000,
    }
}

#[test]
fn faithful_model_passes_exhaustively_on_every_grid_point() {
    for (ring, spin, calls) in GRID {
        let e = check(&cfg(ring, spin, calls), Mutation::None).unwrap_or_else(|v| {
            panic!("ring={ring} spin={spin} calls={calls}: {v}");
        });
        assert!(e.states > 0, "exploration must visit states");
        assert!(e.terminals > 0, "exploration must reach terminal states");
    }
}

#[test]
fn lost_wakeup_mutation_rejected_on_every_grid_point() {
    for (ring, spin, calls) in GRID {
        let v = check(&cfg(ring, spin, calls), Mutation::LostWakeup).expect_err(
            "worker sleeping without the final ring re-check must violate an invariant",
        );
        assert!(
            v.what.contains("lost wakeup") || v.what.contains("dropped"),
            "ring={ring} spin={spin} calls={calls}: unexpected violation {v}"
        );
        assert!(
            !v.trace.is_empty(),
            "the violation must carry a witness interleaving"
        );
        assert!(
            v.trace.iter().any(|s| s == "worker: sleep"),
            "the witness must include the buggy sleep step: {v}"
        );
    }
}

#[test]
fn double_execution_mutation_rejected_on_every_grid_point() {
    for (ring, spin, calls) in GRID {
        let v = check(&cfg(ring, spin, calls), Mutation::DoubleExecution).expect_err(
            "fallback that also enqueues its entry must violate exactly-once execution",
        );
        assert!(
            v.what.contains("executed 2 times"),
            "ring={ring} spin={spin} calls={calls}: unexpected violation {v}"
        );
        assert!(
            v.trace.iter().any(|s| s.contains("fallback-full")),
            "the witness must include the buggy full-ring fallback: {v}"
        );
    }
}

#[test]
fn witness_traces_are_deterministic() {
    let a = check(&cfg(2, 1, 4), Mutation::LostWakeup).expect_err("rejected");
    let b = check(&cfg(2, 1, 4), Mutation::LostWakeup).expect_err("rejected");
    assert_eq!(a.what, b.what);
    assert_eq!(a.trace, b.trace);
}
