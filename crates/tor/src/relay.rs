//! Onion routers: cell processing, circuit switching, exit streams.
//!
//! A relay keys its circuit table by `(neighbor, link-local circuit id)`;
//! forward cells have one onion layer stripped, backward cells gain one.
//! A relay with no next hop is the terminal of the circuit and parses the
//! relay payload (EXTEND/BEGIN/DATA/…).
//!
//! [`RelayBehavior`] models the attacks of §3.2: a **BadApple** exit
//! records the plaintext it relays ("when the malicious Tor node is
//! selected as an exit node, an attacker can modify the plain-text"); a
//! **Snooper** middle logs circuit metadata. These behavioural changes are
//! exactly what SGX attestation catches — the tampered binary measures
//! differently (see `deployment`).

use std::collections::HashMap;

use teenet_crypto::dh::{DhGroup, DhKeyPair};
use teenet_crypto::{BigUint, SecureRng};
use teenet_netsim::NodeId;

use crate::cell::{Cell, CellCmd, RelayCmd, RelayPayload, PAYLOAD_LEN};
use crate::crypto::{seal_relay, verify_relay_digest, HopKeys};
use crate::error::{Result, TorError};
use crate::network::{frame_cell, frame_stream, parse_stream};

/// How a relay behaves (its *code identity*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayBehavior {
    /// Faithful implementation.
    Honest,
    /// Malicious exit: records relayed plaintext (the "one bad apple"
    /// attack's vantage point).
    BadApple,
    /// Malicious middle: records circuit metadata (who talks to whom).
    Snooper,
}

struct CircuitState {
    prev: NodeId,
    prev_circ: u32,
    next: Option<(NodeId, u32)>,
    keys: HopKeys,
    /// Set while waiting for CREATED from the next hop during an extend.
    pending_extend: Option<(NodeId, u32)>,
    /// Open stream destination (exit role).
    stream_dest: Option<NodeId>,
}

/// An onion router.
pub struct OnionRouter {
    /// Public relay identifier.
    pub id: u32,
    /// This relay's address in the simulated network.
    pub net_node: NodeId,
    /// Whether the relay allows exit streams.
    pub is_exit: bool,
    /// The behaviour baked into the binary.
    pub behavior: RelayBehavior,
    /// Software version (part of the code identity).
    pub version: u16,
    group: DhGroup,
    rng: SecureRng,
    /// Circuit table keyed by (neighbor, link circuit id).
    circuits: HashMap<(NodeId, u32), u64>,
    states: HashMap<u64, CircuitState>,
    next_internal: u64,
    next_circ_id: u32,
    /// Plaintext recorded by a BadApple exit.
    pub observed_plaintext: Vec<Vec<u8>>,
    /// Metadata recorded by a Snooper (prev node, next node).
    pub observed_metadata: Vec<(NodeId, NodeId)>,
    /// Count of cells this relay processed.
    pub cells_processed: u64,
}

impl OnionRouter {
    /// Creates a relay.
    pub fn new(
        id: u32,
        net_node: NodeId,
        is_exit: bool,
        behavior: RelayBehavior,
        group: DhGroup,
        rng: SecureRng,
    ) -> Self {
        OnionRouter {
            id,
            net_node,
            is_exit,
            behavior,
            version: 1,
            group,
            rng,
            circuits: HashMap::new(),
            states: HashMap::new(),
            next_internal: 0,
            next_circ_id: 0x8000_0000 + id, // relay-chosen ids, distinct space
            observed_plaintext: Vec::new(),
            observed_metadata: Vec::new(),
            cells_processed: 0,
        }
    }

    /// Number of live circuits through this relay.
    pub fn circuit_count(&self) -> usize {
        self.states.len()
    }

    /// Processes one inbound link message; returns messages to transmit.
    pub fn handle(&mut self, from: NodeId, msg: &[u8]) -> Vec<(NodeId, Vec<u8>)> {
        match msg.first() {
            Some(&crate::network::TAG_CELL) => match Cell::from_bytes(&msg[1..]) {
                Ok(cell) => {
                    self.cells_processed += 1;
                    self.handle_cell(from, cell).unwrap_or_default()
                }
                Err(_) => Vec::new(),
            },
            Some(&crate::network::TAG_STREAM) => self.handle_stream_reply(from, &msg[1..]),
            _ => Vec::new(),
        }
    }

    fn handle_cell(&mut self, from: NodeId, cell: Cell) -> Result<Vec<(NodeId, Vec<u8>)>> {
        match cell.cmd {
            CellCmd::Create => self.on_create(from, cell),
            CellCmd::Created => self.on_created(from, cell),
            CellCmd::Relay => self.on_relay(from, cell),
            CellCmd::Destroy => self.on_destroy(from, cell),
        }
    }

    fn on_create(&mut self, from: NodeId, cell: Cell) -> Result<Vec<(NodeId, Vec<u8>)>> {
        // Payload: u16 length ‖ client DH public value.
        let len = u16::from_be_bytes([cell.payload[0], cell.payload[1]]) as usize;
        if len + 2 > PAYLOAD_LEN {
            return Err(TorError::BadCell("CREATE dh length"));
        }
        let client_pub = BigUint::from_bytes_be(
            cell.payload
                .get(2..2 + len)
                .ok_or(TorError::BadCell("CREATE dh length"))?,
        );
        let keypair = DhKeyPair::generate(&self.group, &mut self.rng)?;
        let shared = keypair.shared_secret(&client_pub)?;
        let keys = HopKeys::derive(&shared)?;

        let internal = self.next_internal;
        self.next_internal += 1;
        self.circuits.insert((from, cell.circ_id), internal);
        self.states.insert(
            internal,
            CircuitState {
                prev: from,
                prev_circ: cell.circ_id,
                next: None,
                keys,
                pending_extend: None,
                stream_dest: None,
            },
        );

        let my_pub = keypair.public_bytes();
        let mut data = Vec::with_capacity(2 + my_pub.len());
        data.extend_from_slice(&(my_pub.len() as u16).to_be_bytes());
        data.extend_from_slice(&my_pub);
        let created = Cell::new(cell.circ_id, CellCmd::Created, &data)?;
        Ok(vec![(from, frame_cell(&created))])
    }

    fn on_created(&mut self, from: NodeId, cell: Cell) -> Result<Vec<(NodeId, Vec<u8>)>> {
        // This is the next hop answering an extend we performed.
        let internal = *self
            .circuits
            .get(&(from, cell.circ_id))
            .ok_or(TorError::UnknownCircuit(cell.circ_id))?;
        let state = self
            .states
            .get_mut(&internal)
            .ok_or(TorError::UnknownCircuit(cell.circ_id))?;
        let (next_node, next_circ) = state
            .pending_extend
            .take()
            .ok_or(TorError::CircuitState("CREATED without pending extend"))?;
        if (next_node, next_circ) != (from, cell.circ_id) {
            return Err(TorError::CircuitState("CREATED from unexpected hop"));
        }
        state.next = Some((next_node, next_circ));
        // Wrap the next hop's DH share into RELAY_EXTENDED for the client.
        let len = u16::from_be_bytes([cell.payload[0], cell.payload[1]]) as usize;
        if 2 + len > cell.payload.len() {
            return Err(TorError::BadCell("CREATED dh length"));
        }
        let payload = RelayPayload::new(
            RelayCmd::Extended,
            cell.payload
                .get(..2 + len)
                .ok_or(TorError::BadCell("CREATED dh length"))?,
        )?;
        let mut sealed = seal_relay(&state.keys, false, &payload);
        state.keys.crypt_backward(&mut sealed);
        let relay_cell = Cell {
            circ_id: state.prev_circ,
            cmd: CellCmd::Relay,
            payload: sealed,
        };
        Ok(vec![(state.prev, frame_cell(&relay_cell))])
    }

    fn on_relay(&mut self, from: NodeId, cell: Cell) -> Result<Vec<(NodeId, Vec<u8>)>> {
        let internal = *self
            .circuits
            .get(&(from, cell.circ_id))
            .ok_or(TorError::UnknownCircuit(cell.circ_id))?;
        let state = self
            .states
            .get_mut(&internal)
            .ok_or(TorError::UnknownCircuit(cell.circ_id))?;

        if from == state.prev {
            // Forward direction: strip one layer.
            let mut payload = cell.payload;
            let ctr = state.keys.fwd_ctr;
            state.keys.crypt_forward(&mut payload);
            // Recognised and authenticated → this relay is the terminal.
            if let Ok(parsed) = RelayPayload::decode(&payload) {
                if verify_relay_digest(&state.keys, true, ctr, &parsed).is_ok() {
                    return self.on_terminal_relay(internal, parsed);
                }
            }
            // Otherwise forward along the circuit.
            let state = self
                .states
                .get_mut(&internal)
                .ok_or(TorError::CircuitState("gone"))?;
            if let Some((next_node, next_circ)) = state.next {
                if self.behavior == RelayBehavior::Snooper {
                    self.observed_metadata.push((state.prev, next_node));
                }
                let fwd = Cell {
                    circ_id: next_circ,
                    cmd: CellCmd::Relay,
                    payload,
                };
                return Ok(vec![(next_node, frame_cell(&fwd))]);
            }
            Err(TorError::DigestMismatch)
        } else {
            // Backward direction: add our layer and pass toward the client.
            let mut payload = cell.payload;
            state.keys.crypt_backward(&mut payload);
            let back = Cell {
                circ_id: state.prev_circ,
                cmd: CellCmd::Relay,
                payload,
            };
            Ok(vec![(state.prev, frame_cell(&back))])
        }
    }

    fn on_terminal_relay(
        &mut self,
        internal: u64,
        payload: RelayPayload,
    ) -> Result<Vec<(NodeId, Vec<u8>)>> {
        match payload.cmd {
            RelayCmd::Extend => {
                // data: next relay net node (u32) ‖ u16 len ‖ client DH pub.
                if payload.data.len() < 6 {
                    return Err(TorError::BadCell("EXTEND payload"));
                }
                let next_node = NodeId(u32::from_be_bytes(
                    payload.data[..4]
                        .try_into()
                        .map_err(|_| TorError::BadCell("EXTEND payload"))?,
                ));
                let circ = self.next_circ_id;
                self.next_circ_id += 1;
                let state = self
                    .states
                    .get_mut(&internal)
                    .ok_or(TorError::CircuitState("gone"))?;
                state.pending_extend = Some((next_node, circ));
                self.circuits.insert((next_node, circ), internal);
                let create = Cell::new(circ, CellCmd::Create, &payload.data[4..])?;
                Ok(vec![(next_node, frame_cell(&create))])
            }
            RelayCmd::Begin => {
                if payload.data.len() < 4 {
                    return Err(TorError::BadCell("BEGIN payload"));
                }
                if !self.is_exit {
                    return self.backward_reply(internal, RelayCmd::End, b"not an exit");
                }
                let dest = NodeId(u32::from_be_bytes(
                    payload.data[..4]
                        .try_into()
                        .map_err(|_| TorError::BadCell("BEGIN payload"))?,
                ));
                let state = self
                    .states
                    .get_mut(&internal)
                    .ok_or(TorError::CircuitState("gone"))?;
                state.stream_dest = Some(dest);
                self.backward_reply(internal, RelayCmd::Connected, b"")
            }
            RelayCmd::Data => {
                if self.behavior == RelayBehavior::BadApple {
                    // The bad-apple vantage: the exit sees plaintext.
                    self.observed_plaintext.push(payload.data.clone());
                }
                let state = self
                    .states
                    .get(&internal)
                    .ok_or(TorError::CircuitState("gone"))?;
                let dest = state
                    .stream_dest
                    .ok_or(TorError::CircuitState("no open stream"))?;
                Ok(vec![(dest, frame_stream(internal, &payload.data))])
            }
            RelayCmd::End => {
                if let Some(state) = self.states.get_mut(&internal) {
                    state.stream_dest = None;
                }
                Ok(Vec::new())
            }
            RelayCmd::Extended | RelayCmd::Connected => {
                Err(TorError::BadCell("client-bound relay command at relay"))
            }
        }
    }

    fn backward_reply(
        &mut self,
        internal: u64,
        cmd: RelayCmd,
        data: &[u8],
    ) -> Result<Vec<(NodeId, Vec<u8>)>> {
        let state = self
            .states
            .get_mut(&internal)
            .ok_or(TorError::CircuitState("gone"))?;
        let payload = RelayPayload::new(cmd, data)?;
        let mut sealed = seal_relay(&state.keys, false, &payload);
        state.keys.crypt_backward(&mut sealed);
        let cell = Cell {
            circ_id: state.prev_circ,
            cmd: CellCmd::Relay,
            payload: sealed,
        };
        Ok(vec![(state.prev, frame_cell(&cell))])
    }

    fn handle_stream_reply(&mut self, from: NodeId, msg: &[u8]) -> Vec<(NodeId, Vec<u8>)> {
        let Some((internal, data)) = parse_stream(msg) else {
            return Vec::new();
        };
        let Some(state) = self.states.get(&internal) else {
            return Vec::new();
        };
        if state.stream_dest != Some(from) {
            return Vec::new(); // stream data from an unexpected source
        }
        if self.behavior == RelayBehavior::BadApple {
            self.observed_plaintext.push(data.to_vec());
        }
        self.backward_reply(internal, RelayCmd::Data, data)
            .unwrap_or_default()
    }

    fn on_destroy(&mut self, from: NodeId, cell: Cell) -> Result<Vec<(NodeId, Vec<u8>)>> {
        let Some(internal) = self.circuits.remove(&(from, cell.circ_id)) else {
            return Ok(Vec::new());
        };
        let Some(state) = self.states.remove(&internal) else {
            return Ok(Vec::new());
        };
        // Propagate teardown away from the sender.
        let mut out = Vec::new();
        if from == state.prev {
            if let Some((next_node, next_circ)) = state.next {
                self.circuits.remove(&(next_node, next_circ));
                let destroy = Cell::new(next_circ, CellCmd::Destroy, b"")?;
                out.push((next_node, frame_cell(&destroy)));
            }
        } else {
            self.circuits.remove(&(state.prev, state.prev_circ));
            let destroy = Cell::new(state.prev_circ, CellCmd::Destroy, b"")?;
            out.push((state.prev, frame_cell(&destroy)));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellCmd};
    use crate::network::frame_cell;

    fn relay(id: u32) -> OnionRouter {
        OnionRouter::new(
            id,
            NodeId(100 + id),
            true,
            RelayBehavior::Honest,
            DhGroup::modp768(),
            SecureRng::seed_from_u64(id as u64),
        )
    }

    #[test]
    fn ignores_garbage_frames() {
        let mut r = relay(1);
        assert!(r.handle(NodeId(0), b"").is_empty());
        assert!(r.handle(NodeId(0), &[9, 9, 9]).is_empty());
        assert!(r
            .handle(NodeId(0), &[crate::network::TAG_CELL, 1, 2])
            .is_empty());
        assert_eq!(r.circuit_count(), 0);
    }

    #[test]
    fn relay_cell_on_unknown_circuit_dropped() {
        let mut r = relay(2);
        let cell = Cell::new(42, CellCmd::Relay, b"whatever").unwrap();
        assert!(r.handle(NodeId(0), &frame_cell(&cell)).is_empty());
    }

    #[test]
    fn create_answers_with_created_and_registers_circuit() {
        let mut r = relay(3);
        let group = DhGroup::modp768();
        let mut rng = SecureRng::seed_from_u64(9);
        let dh = DhKeyPair::generate(&group, &mut rng).unwrap();
        let pub_bytes = dh.public_bytes();
        let mut data = Vec::new();
        data.extend_from_slice(&(pub_bytes.len() as u16).to_be_bytes());
        data.extend_from_slice(&pub_bytes);
        let create = Cell::new(7, CellCmd::Create, &data).unwrap();
        let out = r.handle(NodeId(0), &frame_cell(&create));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId(0));
        let reply = Cell::from_bytes(&out[0].1[1..]).unwrap();
        assert_eq!(reply.cmd, CellCmd::Created);
        assert_eq!(reply.circ_id, 7);
        assert_eq!(r.circuit_count(), 1);
    }

    #[test]
    fn create_with_degenerate_dh_share_rejected() {
        // A zero public value must not produce a circuit (invalid key
        // share attack on the hop exchange).
        let mut r = relay(4);
        let mut data = Vec::new();
        data.extend_from_slice(&1u16.to_be_bytes());
        data.push(0); // public value 0
        let create = Cell::new(8, CellCmd::Create, &data).unwrap();
        let out = r.handle(NodeId(0), &frame_cell(&create));
        assert!(out.is_empty());
        assert_eq!(r.circuit_count(), 0);
    }

    #[test]
    fn oversized_length_field_does_not_panic() {
        // A malicious peer claims a DH share longer than the cell payload;
        // the relay must reject, not panic.
        let mut r = relay(9);
        let mut data = Vec::new();
        data.extend_from_slice(&u16::MAX.to_be_bytes());
        data.extend_from_slice(&[7u8; 64]);
        let create = Cell::new(5, CellCmd::Create, &data).unwrap();
        assert!(r.handle(NodeId(0), &frame_cell(&create)).is_empty());
        assert_eq!(r.circuit_count(), 0);
    }

    #[test]
    fn destroy_unknown_circuit_is_noop() {
        let mut r = relay(5);
        let destroy = Cell::new(99, CellCmd::Destroy, b"").unwrap();
        assert!(r.handle(NodeId(0), &frame_cell(&destroy)).is_empty());
    }

    #[test]
    fn stream_reply_from_wrong_source_ignored() {
        let mut r = relay(6);
        // No circuit, no stream: a stray stream frame goes nowhere.
        let frame = crate::network::frame_stream(3, b"spoofed");
        assert!(r.handle(NodeId(55), &frame).is_empty());
    }
}
