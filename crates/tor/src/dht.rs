//! A Chord distributed hash table for directory-less membership.
//!
//! "In fact, a new Tor design is possible that does not require directory
//! authorities that manually maintain and check the membership, because
//! verification is done by hardware through SGX. Tor can utilize a
//! distributed hash table to track the membership, similar to other
//! peer-to-peer systems." (§3.2, citing Chord)
//!
//! Node keys are the first 8 bytes of SHA-256 over the relay id; each node
//! keeps a 64-entry finger table, and lookups walk greedily through
//! fingers in O(log n) hops.

use std::collections::BTreeMap;

use teenet_crypto::sha256::sha256;

use crate::error::{Result, TorError};

/// Hashes an arbitrary identifier onto the 64-bit ring.
pub fn ring_key(id: &[u8]) -> u64 {
    let d = sha256(id);
    u64::from_be_bytes(d[..8].try_into().expect("8 bytes"))
}

/// Is `x` in the half-open ring interval `(a, b]` (wrapping)?
fn in_interval(x: u64, a: u64, b: u64) -> bool {
    if a < b {
        x > a && x <= b
    } else if a > b {
        x > a || x <= b
    } else {
        true // full circle
    }
}

#[derive(Debug, Clone)]
struct ChordNode {
    relay_id: u32,
    fingers: Vec<u64>, // keys of finger targets
}

/// The Chord ring.
#[derive(Debug, Default)]
pub struct ChordRing {
    nodes: BTreeMap<u64, ChordNode>,
}

impl ChordRing {
    /// An empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes joined.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Joins a relay to the ring (its key derives from its id).
    pub fn join(&mut self, relay_id: u32) {
        let key = ring_key(&relay_id.to_le_bytes());
        self.nodes.insert(
            key,
            ChordNode {
                relay_id,
                fingers: Vec::new(),
            },
        );
        self.rebuild_fingers();
    }

    /// Removes a relay (churn / exclusion after failed attestation).
    pub fn leave(&mut self, relay_id: u32) {
        let key = ring_key(&relay_id.to_le_bytes());
        self.nodes.remove(&key);
        self.rebuild_fingers();
    }

    /// All member relay ids.
    pub fn members(&self) -> Vec<u32> {
        self.nodes.values().map(|n| n.relay_id).collect()
    }

    /// Is a relay currently a member?
    pub fn contains(&self, relay_id: u32) -> bool {
        self.nodes.contains_key(&ring_key(&relay_id.to_le_bytes()))
    }

    fn successor_key(&self, key: u64) -> Option<u64> {
        self.nodes
            .range(key..)
            .next()
            .or_else(|| self.nodes.iter().next())
            .map(|(&k, _)| k)
    }

    fn rebuild_fingers(&mut self) {
        let keys: Vec<u64> = self.nodes.keys().copied().collect();
        for &node_key in &keys {
            let mut fingers = Vec::with_capacity(64);
            for i in 0..64u32 {
                let target = node_key.wrapping_add(1u64 << i);
                let succ = self.successor_key(target).expect("nonempty ring");
                fingers.push(succ);
            }
            self.nodes.get_mut(&node_key).expect("exists").fingers = fingers;
        }
    }

    /// The relay responsible for `key` (its successor on the ring).
    pub fn owner(&self, key: u64) -> Result<u32> {
        let k = self.successor_key(key).ok_or(TorError::Dht("empty ring"))?;
        Ok(self.nodes[&k].relay_id)
    }

    /// Performs a greedy finger-table lookup of `key` starting at
    /// `start_relay`; returns `(owner relay id, hop count)`.
    pub fn lookup(&self, start_relay: u32, key: u64) -> Result<(u32, usize)> {
        let start = ring_key(&start_relay.to_le_bytes());
        if !self.nodes.contains_key(&start) {
            return Err(TorError::Dht("start node not a member"));
        }
        let owner_key = self.successor_key(key).ok_or(TorError::Dht("empty ring"))?;
        let mut current = start;
        let mut hops = 0usize;
        let max_hops = self.nodes.len() + 64;
        while current != owner_key {
            if hops > max_hops {
                return Err(TorError::Dht("lookup did not converge"));
            }
            let node = &self.nodes[&current];
            // Closest preceding finger of `key`, else direct successor.
            let mut next = self.successor_key(current.wrapping_add(1)).expect("ring");
            for &f in node.fingers.iter().rev() {
                if f != current && in_interval(f, current, key) {
                    next = f;
                    break;
                }
            }
            if next == current {
                break;
            }
            current = next;
            hops += 1;
        }
        Ok((self.nodes[&owner_key].relay_id, hops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> ChordRing {
        let mut r = ChordRing::new();
        for i in 0..n {
            r.join(i);
        }
        r
    }

    #[test]
    fn join_and_membership() {
        let mut r = ring(10);
        assert_eq!(r.len(), 10);
        assert!(r.contains(3));
        r.leave(3);
        assert!(!r.contains(3));
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn owner_is_successor() {
        let r = ring(8);
        // The owner of any member's own key is that member.
        for i in 0..8u32 {
            let k = ring_key(&i.to_le_bytes());
            assert_eq!(r.owner(k).unwrap(), i);
        }
    }

    #[test]
    fn lookup_finds_owner_from_any_start() {
        let r = ring(32);
        for start in 0..32u32 {
            for target in [0u64, 42, u64::MAX / 2, u64::MAX] {
                let (found, _) = r.lookup(start, target).unwrap();
                assert_eq!(found, r.owner(target).unwrap());
            }
        }
    }

    #[test]
    fn lookup_hops_logarithmic() {
        let r = ring(256);
        let mut max_hops = 0usize;
        for start in (0..256u32).step_by(17) {
            for t in 0..64u64 {
                let key = t.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let (_, hops) = r.lookup(start, key).unwrap();
                max_hops = max_hops.max(hops);
            }
        }
        // log2(256) = 8; allow slack but far below linear.
        assert!(max_hops <= 24, "max hops {max_hops}");
    }

    #[test]
    fn empty_and_singleton_rings() {
        let r = ChordRing::new();
        assert!(r.is_empty());
        assert!(r.owner(5).is_err());
        let mut r = ChordRing::new();
        r.join(7);
        assert_eq!(r.owner(0).unwrap(), 7);
        assert_eq!(r.owner(u64::MAX).unwrap(), 7);
        let (found, hops) = r.lookup(7, 12345).unwrap();
        assert_eq!(found, 7);
        assert_eq!(hops, 0);
    }

    #[test]
    fn lookup_from_non_member_fails() {
        let r = ring(4);
        assert!(r.lookup(99, 0).is_err());
    }

    #[test]
    fn churn_reassigns_keys() {
        let mut r = ring(16);
        let key = 0xdead_beef_dead_beefu64;
        let before = r.owner(key).unwrap();
        r.leave(before);
        let after = r.owner(key).unwrap();
        assert_ne!(before, after);
        // Lookups still converge after churn.
        let member = r.members()[0];
        let (found, _) = r.lookup(member, key).unwrap();
        assert_eq!(found, after);
    }
}
