//! The §3.2 attacks, evaluated under every deployment phase.
//!
//! Each scenario builds a deployment, mounts the attack, and reports
//! whether it succeeded — producing the phase-by-phase defense matrix the
//! paper argues for: vanilla Tor falls to both attacks, the SGX directory
//! stops directory subversion, SGX ORs stop the bad apple, and the fully
//! SGX-enabled design stops everything.

use teenet::ledger::AttestKind;

use crate::deployment::{Phase, TorDeployment, TorSpec, PHANTOM_RELAY};
use crate::error::Result;

/// Outcome of one attack scenario.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Attack name.
    pub attack: &'static str,
    /// Phase it ran under.
    pub phase: Phase,
    /// Did the attacker get what they wanted?
    pub succeeded: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// The "one bad apple" attack: a malicious exit records the plaintext of
/// streams it carries. Succeeds iff the attacker's relay observed the
/// client's secret.
pub fn bad_apple(phase: Phase, seed: u64) -> Result<AttackOutcome> {
    let mut spec = TorSpec::fast(phase, seed);
    spec.bad_apples = vec![0]; // relay 0 is an exit
    let mut dep = TorDeployment::build(spec)?;
    let admission = dep.run_admission()?;

    let secret = b"secret: patient record #42".to_vec();
    // The attacker hopes the client picks their exit; model the unlucky
    // draw directly when the relay was admitted.
    let attack_path = dep.select_path(&admission, Some(0));
    match attack_path {
        Ok(path) => {
            dep.exchange(path, &secret)?;
            let observed = dep.network.relays[0]
                .observed_plaintext
                .iter()
                .any(|p| p == &secret);
            Ok(AttackOutcome {
                attack: "bad-apple exit sniffing",
                phase,
                succeeded: observed,
                detail: format!(
                    "malicious exit admitted; observed {} plaintext record(s)",
                    dep.network.relays[0].observed_plaintext.len()
                ),
            })
        }
        Err(_) => Ok(AttackOutcome {
            attack: "bad-apple exit sniffing",
            phase,
            succeeded: false,
            detail: "malicious exit excluded during admission/attestation".to_owned(),
        }),
    }
}

/// Directory subversion: a majority of authorities is compromised and
/// tries to drop an honest relay and admit a phantom attacker relay
/// ("If directory authorities are subverted, attackers can admit malicious
/// ORs or disable the Tor network").
pub fn directory_subversion(phase: Phase, seed: u64) -> Result<AttackOutcome> {
    let mut spec = TorSpec::fast(phase, seed);
    spec.compromised_authorities = vec![0, 1]; // 2 of 3: a majority
    let mut dep = TorDeployment::build(spec)?;
    let admission = dep.run_admission()?;

    let honest_dropped = !admission.admitted.iter().any(|d| d.relay_id == 1);
    let phantom_admitted = admission
        .admitted
        .iter()
        .any(|d| d.relay_id == PHANTOM_RELAY);
    let succeeded = honest_dropped || phantom_admitted;
    Ok(AttackOutcome {
        attack: "directory subversion (tie-breaking / bad admission)",
        phase,
        succeeded,
        detail: format!(
            "honest relay dropped: {honest_dropped}, phantom admitted: {phantom_admitted}"
        ),
    })
}

/// Runs the full attack × phase matrix (the qualitative "result" of §3.2).
pub fn defense_matrix(seed: u64) -> Result<Vec<AttackOutcome>> {
    let mut out = Vec::new();
    for phase in [
        Phase::Vanilla,
        Phase::SgxDirectory,
        Phase::IncrementalOrs,
        Phase::FullSgx,
    ] {
        out.push(bad_apple(phase, seed)?);
        if phase != Phase::FullSgx {
            out.push(directory_subversion(phase, seed + 1)?);
        }
    }
    Ok(out)
}

/// Count of attestations a deployment performed, for Table 3 reporting.
pub fn attestation_counts(dep: &TorDeployment) -> (u64, u64, u64) {
    (
        dep.ledger.count(AttestKind::TorAuthorityPeer),
        dep.ledger.count(AttestKind::TorRouterAdmission),
        dep.ledger.count(AttestKind::TorClientCircuit),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_apple_succeeds_on_vanilla() {
        let o = bad_apple(Phase::Vanilla, 11).unwrap();
        assert!(o.succeeded, "{}", o.detail);
    }

    #[test]
    fn bad_apple_survives_sgx_directory() {
        // Securing only the directory does NOT stop a malicious exit.
        let o = bad_apple(Phase::SgxDirectory, 12).unwrap();
        assert!(o.succeeded, "{}", o.detail);
    }

    #[test]
    fn bad_apple_stopped_by_incremental_ors() {
        let o = bad_apple(Phase::IncrementalOrs, 13).unwrap();
        assert!(!o.succeeded, "{}", o.detail);
    }

    #[test]
    fn bad_apple_stopped_by_full_sgx() {
        let o = bad_apple(Phase::FullSgx, 14).unwrap();
        assert!(!o.succeeded, "{}", o.detail);
    }

    #[test]
    fn directory_subversion_succeeds_on_vanilla() {
        let o = directory_subversion(Phase::Vanilla, 15).unwrap();
        assert!(o.succeeded, "{}", o.detail);
    }

    #[test]
    fn directory_subversion_stopped_by_sgx_directory() {
        let o = directory_subversion(Phase::SgxDirectory, 16).unwrap();
        assert!(!o.succeeded, "{}", o.detail);
    }

    #[test]
    fn full_matrix_shape() {
        // The qualitative claim of §3.2 in one table: protection grows
        // monotonically with deployment.
        let matrix = defense_matrix(20).unwrap();
        let succeeded: Vec<bool> = matrix.iter().map(|o| o.succeeded).collect();
        // [bad-apple, dir] per phase; FullSgx has bad-apple only.
        assert_eq!(
            succeeded,
            vec![true, true, true, false, false, false, false]
        );
    }
}
