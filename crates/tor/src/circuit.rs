//! The client (onion proxy): telescoping circuit construction and stream
//! use.
//!
//! The client holds one [`HopKeys`] per established hop. Forward cells are
//! sealed for the terminal hop and encrypted innermost-first; backward
//! cells are stripped hop by hop until one hop's keys "recognise" the
//! payload and its digest verifies (leaky-pipe style), which also tells
//! the client which hop originated the cell.

use std::collections::HashMap;

use teenet_crypto::dh::{DhGroup, DhKeyPair};
use teenet_crypto::{BigUint, SecureRng};
use teenet_netsim::NodeId;

use crate::cell::{Cell, CellCmd, RelayCmd, RelayPayload};
use crate::crypto::{seal_relay, verify_relay_digest, HopKeys};
use crate::error::{Result, TorError};
use crate::network::frame_cell;

/// Client-observable circuit events (for tests and reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// First hop established.
    Created {
        /// Circuit id.
        circ: u32,
    },
    /// A hop was added.
    Extended {
        /// Circuit id.
        circ: u32,
        /// Hops established so far.
        hops: usize,
    },
    /// All hops established.
    Ready {
        /// Circuit id.
        circ: u32,
    },
    /// Stream open confirmed by the exit.
    Connected {
        /// Circuit id.
        circ: u32,
    },
    /// Stream data delivered.
    Data {
        /// Circuit id.
        circ: u32,
        /// The delivered bytes.
        data: Vec<u8>,
    },
    /// Stream refused/closed by the exit.
    StreamEnd {
        /// Circuit id.
        circ: u32,
        /// Reason bytes from the exit.
        reason: Vec<u8>,
    },
}

#[derive(Debug, PartialEq, Eq)]
enum CircuitPhase {
    Building,
    Ready,
}

struct ClientCircuit {
    path: Vec<NodeId>,
    hops: Vec<HopKeys>,
    pending_dh: Option<DhKeyPair>,
    phase: CircuitPhase,
}

/// A batch of link-layer sends: `(destination node, wire bytes)` pairs the
/// caller injects into the simulated network.
pub type OutboundMsgs = Vec<(NodeId, Vec<u8>)>;

/// A Tor client.
pub struct TorClient {
    /// The client's network address.
    pub net_node: NodeId,
    group: DhGroup,
    rng: SecureRng,
    circuits: HashMap<u32, ClientCircuit>,
    next_circ: u32,
    /// Event log (latest last).
    pub events: Vec<ClientEvent>,
}

impl TorClient {
    /// Creates a client at `net_node`.
    pub fn new(net_node: NodeId, group: DhGroup, rng: SecureRng) -> Self {
        TorClient {
            net_node,
            group,
            rng,
            circuits: HashMap::new(),
            next_circ: 1,
            events: Vec::new(),
        }
    }

    /// Starts building a circuit through `path` (relay network addresses,
    /// guard first). Returns the circuit id and the initial messages.
    pub fn open_circuit(&mut self, path: Vec<NodeId>) -> Result<(u32, OutboundMsgs)> {
        if path.is_empty() {
            return Err(TorError::NoPath("empty path"));
        }
        let circ = self.next_circ;
        self.next_circ += 1;
        let dh = DhKeyPair::generate(&self.group, &mut self.rng)?;
        let pub_bytes = dh.public_bytes();
        let mut data = Vec::with_capacity(2 + pub_bytes.len());
        data.extend_from_slice(&(pub_bytes.len() as u16).to_be_bytes());
        data.extend_from_slice(&pub_bytes);
        let create = Cell::new(circ, CellCmd::Create, &data)?;
        let guard = path[0];
        self.circuits.insert(
            circ,
            ClientCircuit {
                path,
                hops: Vec::new(),
                pending_dh: Some(dh),
                phase: CircuitPhase::Building,
            },
        );
        Ok((circ, vec![(guard, frame_cell(&create))]))
    }

    /// True once the circuit has all its hops.
    pub fn is_ready(&self, circ: u32) -> bool {
        self.circuits
            .get(&circ)
            .map(|c| c.phase == CircuitPhase::Ready)
            .unwrap_or(false)
    }

    /// Opens a stream to `dest` through a ready circuit.
    pub fn begin(&mut self, circ: u32, dest: NodeId) -> Result<OutboundMsgs> {
        let payload = RelayPayload::new(RelayCmd::Begin, &dest.0.to_be_bytes())?;
        self.send_relay(circ, payload)
    }

    /// Sends stream data through a ready circuit.
    pub fn send_data(&mut self, circ: u32, data: &[u8]) -> Result<OutboundMsgs> {
        let payload = RelayPayload::new(RelayCmd::Data, data)?;
        self.send_relay(circ, payload)
    }

    /// Tears down a circuit.
    pub fn destroy(&mut self, circ: u32) -> Result<OutboundMsgs> {
        let state = self
            .circuits
            .remove(&circ)
            .ok_or(TorError::UnknownCircuit(circ))?;
        let destroy = Cell::new(circ, CellCmd::Destroy, b"")?;
        Ok(vec![(state.path[0], frame_cell(&destroy))])
    }

    fn send_relay(&mut self, circ: u32, payload: RelayPayload) -> Result<OutboundMsgs> {
        let state = self
            .circuits
            .get_mut(&circ)
            .ok_or(TorError::UnknownCircuit(circ))?;
        if state.phase != CircuitPhase::Ready {
            return Err(TorError::CircuitState("circuit not ready"));
        }
        let sealed = Self::onionize(&mut state.hops, &payload);
        let cell = Cell {
            circ_id: circ,
            cmd: CellCmd::Relay,
            payload: sealed,
        };
        Ok(vec![(state.path[0], frame_cell(&cell))])
    }

    /// Seals for the terminal hop, then applies all layers innermost-first.
    fn onionize(hops: &mut [HopKeys], payload: &RelayPayload) -> [u8; crate::cell::PAYLOAD_LEN] {
        // teenet-analyze: allow(enclave-abort) -- internal helper, every caller extends an established (non-empty) circuit
        let terminal = hops.last().expect("at least one hop");
        let mut sealed = seal_relay(terminal, true, payload);
        for hop in hops.iter_mut().rev() {
            hop.crypt_forward(&mut sealed);
        }
        sealed
    }

    /// Processes one inbound link message.
    pub fn handle(&mut self, from: NodeId, msg: &[u8]) -> OutboundMsgs {
        if msg.first() != Some(&crate::network::TAG_CELL) {
            return Vec::new();
        }
        let Ok(cell) = Cell::from_bytes(&msg[1..]) else {
            return Vec::new();
        };
        self.handle_cell(from, cell).unwrap_or_default()
    }

    fn handle_cell(&mut self, from: NodeId, cell: Cell) -> Result<OutboundMsgs> {
        let circ = cell.circ_id;
        let state = self
            .circuits
            .get_mut(&circ)
            .ok_or(TorError::UnknownCircuit(circ))?;
        if state.path.first() != Some(&from) {
            return Err(TorError::BadCell("cell from non-guard"));
        }
        match cell.cmd {
            CellCmd::Created => {
                // Guard's DH answer: establish hop 0.
                let len = u16::from_be_bytes([cell.payload[0], cell.payload[1]]) as usize;
                if 2 + len > cell.payload.len() {
                    return Err(TorError::BadCell("CREATED dh length"));
                }
                let relay_pub = BigUint::from_bytes_be(
                    cell.payload
                        .get(2..2 + len)
                        .ok_or(TorError::BadCell("CREATED dh length"))?,
                );
                let dh = state
                    .pending_dh
                    .take()
                    .ok_or(TorError::CircuitState("no pending DH"))?;
                let shared = dh.shared_secret(&relay_pub)?;
                state.hops.push(HopKeys::derive(&shared)?);
                self.events.push(ClientEvent::Created { circ });
                self.continue_building(circ)
            }
            CellCmd::Relay => {
                // Strip layers until one hop recognises the payload.
                let mut payload = cell.payload;
                let mut consumed: Option<(usize, RelayPayload)> = None;
                for (i, hop) in state.hops.iter_mut().enumerate() {
                    let ctr = hop.back_ctr;
                    hop.crypt_backward(&mut payload);
                    if let Ok(parsed) = RelayPayload::decode(&payload) {
                        if verify_relay_digest(hop, false, ctr, &parsed).is_ok() {
                            consumed = Some((i, parsed));
                            break;
                        }
                    }
                }
                let (_, parsed) = consumed.ok_or(TorError::DigestMismatch)?;
                match parsed.cmd {
                    RelayCmd::Extended => {
                        if parsed.data.len() < 2 {
                            return Err(TorError::BadCell("EXTENDED payload"));
                        }
                        let len = u16::from_be_bytes([parsed.data[0], parsed.data[1]]) as usize;
                        if 2 + len > parsed.data.len() {
                            return Err(TorError::BadCell("EXTENDED dh length"));
                        }
                        let relay_pub = BigUint::from_bytes_be(
                            parsed
                                .data
                                .get(2..2 + len)
                                .ok_or(TorError::BadCell("EXTENDED dh length"))?,
                        );
                        let state = self
                            .circuits
                            .get_mut(&circ)
                            .ok_or(TorError::UnknownCircuit(circ))?;
                        let dh = state
                            .pending_dh
                            .take()
                            .ok_or(TorError::CircuitState("no pending DH"))?;
                        let shared = dh.shared_secret(&relay_pub)?;
                        state.hops.push(HopKeys::derive(&shared)?);
                        self.events.push(ClientEvent::Extended {
                            circ,
                            hops: state.hops.len(),
                        });
                        self.continue_building(circ)
                    }
                    RelayCmd::Connected => {
                        self.events.push(ClientEvent::Connected { circ });
                        Ok(Vec::new())
                    }
                    RelayCmd::Data => {
                        self.events.push(ClientEvent::Data {
                            circ,
                            data: parsed.data,
                        });
                        Ok(Vec::new())
                    }
                    RelayCmd::End => {
                        self.events.push(ClientEvent::StreamEnd {
                            circ,
                            reason: parsed.data,
                        });
                        Ok(Vec::new())
                    }
                    _ => Err(TorError::BadCell("unexpected relay command at client")),
                }
            }
            CellCmd::Destroy => {
                self.circuits.remove(&circ);
                Ok(Vec::new())
            }
            CellCmd::Create => Err(TorError::BadCell("CREATE at client")),
        }
    }

    /// After a hop is established: extend to the next, or mark ready.
    fn continue_building(&mut self, circ: u32) -> Result<OutboundMsgs> {
        let state = self
            .circuits
            .get_mut(&circ)
            .ok_or(TorError::UnknownCircuit(circ))?;
        let established = state.hops.len();
        if established == state.path.len() {
            state.phase = CircuitPhase::Ready;
            self.events.push(ClientEvent::Ready { circ });
            return Ok(Vec::new());
        }
        // Extend to path[established].
        let next = *state
            .path
            .get(established)
            .ok_or(TorError::CircuitState("more hops than path entries"))?;
        let dh = DhKeyPair::generate(&self.group, &mut self.rng)?;
        let pub_bytes = dh.public_bytes();
        state.pending_dh = Some(dh);
        let mut data = Vec::with_capacity(6 + pub_bytes.len());
        data.extend_from_slice(&next.0.to_be_bytes());
        data.extend_from_slice(&(pub_bytes.len() as u16).to_be_bytes());
        data.extend_from_slice(&pub_bytes);
        let payload = RelayPayload::new(RelayCmd::Extend, &data)?;
        let sealed = Self::onionize(&mut state.hops, &payload);
        let cell = Cell {
            circ_id: circ,
            cmd: CellCmd::Relay,
            payload: sealed,
        };
        Ok(vec![(state.path[0], frame_cell(&cell))])
    }

    /// Data received on a circuit so far.
    pub fn received_data(&self, circ: u32) -> Vec<&[u8]> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ClientEvent::Data { circ: c, data } if *c == circ => Some(data.as_slice()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::PAYLOAD_LEN;
    use crate::network::frame_cell;

    fn client() -> TorClient {
        TorClient::new(NodeId(0), DhGroup::modp768(), SecureRng::seed_from_u64(5))
    }

    #[test]
    fn open_circuit_emits_create_to_guard() {
        let mut c = client();
        let (circ, msgs) = c.open_circuit(vec![NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, NodeId(1));
        let cell = Cell::from_bytes(&msgs[0].1[1..]).unwrap();
        assert_eq!(cell.cmd, CellCmd::Create);
        assert_eq!(cell.circ_id, circ);
        assert!(!c.is_ready(circ));
    }

    #[test]
    fn empty_path_rejected() {
        let mut c = client();
        assert!(c.open_circuit(vec![]).is_err());
    }

    #[test]
    fn malicious_guard_oversized_created_does_not_panic() {
        // The guard answers CREATED with a length field larger than the
        // payload; the client must drop it and keep the circuit pending.
        let mut c = client();
        let (circ, _) = c.open_circuit(vec![NodeId(1)]).unwrap();
        let mut payload = [0u8; PAYLOAD_LEN];
        payload[..2].copy_from_slice(&u16::MAX.to_be_bytes());
        let evil = Cell {
            circ_id: circ,
            cmd: CellCmd::Created,
            payload,
        };
        let out = c.handle(NodeId(1), &frame_cell(&evil));
        assert!(out.is_empty());
        assert!(!c.is_ready(circ));
    }

    #[test]
    fn cells_from_non_guard_ignored() {
        // Only the guard may speak to the client on this circuit; an
        // off-path attacker injecting cells is ignored.
        let mut c = client();
        let (circ, _) = c.open_circuit(vec![NodeId(1)]).unwrap();
        let cell = Cell::new(circ, CellCmd::Created, &[0u8, 1, 42]).unwrap();
        let out = c.handle(NodeId(9), &frame_cell(&cell));
        assert!(out.is_empty());
        assert!(!c.is_ready(circ));
    }

    #[test]
    fn unknown_circuit_cells_ignored() {
        let mut c = client();
        let cell = Cell::new(777, CellCmd::Relay, b"").unwrap();
        assert!(c.handle(NodeId(1), &frame_cell(&cell)).is_empty());
    }

    #[test]
    fn sending_before_ready_fails() {
        let mut c = client();
        let (circ, _) = c.open_circuit(vec![NodeId(1)]).unwrap();
        assert!(c.send_data(circ, b"too early").is_err());
        assert!(c.begin(circ, NodeId(5)).is_err());
    }

    #[test]
    fn destroy_removes_circuit() {
        let mut c = client();
        let (circ, _) = c.open_circuit(vec![NodeId(1)]).unwrap();
        let msgs = c.destroy(circ).unwrap();
        assert_eq!(msgs[0].0, NodeId(1));
        assert!(c.destroy(circ).is_err(), "already gone");
    }
}
