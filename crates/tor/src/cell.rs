//! Fixed-size Tor cells and relay sub-payloads.
//!
//! Cells are the 512-byte unit of Tor's wire protocol: a circuit id, a
//! command, and a padded payload. Relay cells carry a second header inside
//! the onion-encrypted payload — command, "recognized" marker, digest and
//! length — which is how the terminal hop of a circuit recognises cells
//! addressed to it.

use crate::error::{Result, TorError};

/// Total cell size on the wire.
pub const CELL_LEN: usize = 512;
/// Payload bytes after the 4-byte circuit id and 1-byte command.
pub const PAYLOAD_LEN: usize = CELL_LEN - 5;
/// Relay sub-header: cmd(1) + recognized(2) + digest(4) + len(2).
pub const RELAY_HEADER_LEN: usize = 9;
/// Maximum data bytes in one relay cell.
pub const RELAY_DATA_LEN: usize = PAYLOAD_LEN - RELAY_HEADER_LEN;

/// Link-level cell commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CellCmd {
    /// First hop of circuit creation (carries a DH share).
    Create = 1,
    /// Response to CREATE (carries the responder DH share).
    Created = 2,
    /// Onion-encrypted relay payload.
    Relay = 3,
    /// Circuit teardown.
    Destroy = 4,
}

impl CellCmd {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(CellCmd::Create),
            2 => Some(CellCmd::Created),
            3 => Some(CellCmd::Relay),
            4 => Some(CellCmd::Destroy),
            _ => None,
        }
    }
}

/// Commands inside a relay payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RelayCmd {
    /// Extend the circuit to another router.
    Extend = 1,
    /// The circuit was extended.
    Extended = 2,
    /// Open a stream to a destination.
    Begin = 3,
    /// The stream is open.
    Connected = 4,
    /// Stream data.
    Data = 5,
    /// Stream closed.
    End = 6,
}

impl RelayCmd {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(RelayCmd::Extend),
            2 => Some(RelayCmd::Extended),
            3 => Some(RelayCmd::Begin),
            4 => Some(RelayCmd::Connected),
            5 => Some(RelayCmd::Data),
            6 => Some(RelayCmd::End),
            _ => None,
        }
    }
}

/// A fixed-size cell.
#[derive(Clone, PartialEq, Eq)]
pub struct Cell {
    /// Link-local circuit id.
    pub circ_id: u32,
    /// Cell command.
    pub cmd: CellCmd,
    /// Padded payload.
    pub payload: [u8; PAYLOAD_LEN],
}

impl core::fmt::Debug for Cell {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Cell(circ={}, cmd={:?})", self.circ_id, self.cmd)
    }
}

impl Cell {
    /// Builds a cell, zero-padding `data` into the payload.
    pub fn new(circ_id: u32, cmd: CellCmd, data: &[u8]) -> Result<Self> {
        if data.len() > PAYLOAD_LEN {
            return Err(TorError::BadCell("payload too large"));
        }
        let mut payload = [0u8; PAYLOAD_LEN];
        // teenet-analyze: allow(enclave-index) -- data.len() <= PAYLOAD_LEN checked above
        payload[..data.len()].copy_from_slice(data);
        Ok(Cell {
            circ_id,
            cmd,
            payload,
        })
    }

    /// Serialises to exactly [`CELL_LEN`] bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CELL_LEN);
        out.extend_from_slice(&self.circ_id.to_be_bytes());
        out.push(self.cmd as u8);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a [`CELL_LEN`]-byte buffer.
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        if buf.len() != CELL_LEN {
            return Err(TorError::BadCell("wrong cell length"));
        }
        let circ_id = u32::from_be_bytes(
            buf[..4]
                .try_into()
                .map_err(|_| TorError::BadCell("wrong cell length"))?,
        );
        let cmd = CellCmd::from_u8(buf[4]).ok_or(TorError::BadCell("unknown command"))?;
        let mut payload = [0u8; PAYLOAD_LEN];
        payload.copy_from_slice(&buf[5..]);
        Ok(Cell {
            circ_id,
            cmd,
            payload,
        })
    }
}

/// A parsed relay sub-payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayPayload {
    /// Relay command.
    pub cmd: RelayCmd,
    /// Digest over the payload (zeroed during computation).
    pub digest: [u8; 4],
    /// The data bytes.
    pub data: Vec<u8>,
}

impl RelayPayload {
    /// Builds a relay payload (digest zero; set by the crypto layer).
    pub fn new(cmd: RelayCmd, data: &[u8]) -> Result<Self> {
        if data.len() > RELAY_DATA_LEN {
            return Err(TorError::BadCell("relay data too large"));
        }
        Ok(RelayPayload {
            cmd,
            digest: [0u8; 4],
            data: data.to_vec(),
        })
    }

    /// Encodes into a fixed [`PAYLOAD_LEN`] buffer.
    pub fn encode(&self) -> [u8; PAYLOAD_LEN] {
        let mut out = [0u8; PAYLOAD_LEN];
        out[0] = self.cmd as u8;
        // bytes 1..3: "recognized" = 0.
        out[3..7].copy_from_slice(&self.digest);
        out[7..9].copy_from_slice(&(self.data.len() as u16).to_be_bytes());
        // teenet-analyze: allow(enclave-index) -- data.len() <= RELAY_DATA_LEN is a RelayPayload invariant (enforced by new and decode)
        out[RELAY_HEADER_LEN..RELAY_HEADER_LEN + self.data.len()].copy_from_slice(&self.data);
        out
    }

    /// Attempts to parse a decrypted payload; fails if the "recognized"
    /// marker is nonzero (meaning: more onion layers remain) or the
    /// structure is invalid.
    pub fn decode(buf: &[u8; PAYLOAD_LEN]) -> Result<Self> {
        if buf[1] != 0 || buf[2] != 0 {
            return Err(TorError::BadCell("not recognized"));
        }
        let cmd = RelayCmd::from_u8(buf[0]).ok_or(TorError::BadCell("unknown relay command"))?;
        let mut digest = [0u8; 4];
        digest.copy_from_slice(&buf[3..7]);
        let len = u16::from_be_bytes([buf[7], buf[8]]) as usize;
        if len > RELAY_DATA_LEN {
            return Err(TorError::BadCell("relay length"));
        }
        Ok(RelayPayload {
            cmd,
            digest,
            data: buf
                .get(RELAY_HEADER_LEN..RELAY_HEADER_LEN + len)
                .ok_or(TorError::BadCell("relay length"))?
                .to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_roundtrip() {
        let c = Cell::new(7, CellCmd::Create, b"dh share bytes").unwrap();
        let bytes = c.to_bytes();
        assert_eq!(bytes.len(), CELL_LEN);
        let parsed = Cell::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn cell_rejects_bad_input() {
        assert!(Cell::from_bytes(&[0u8; 100]).is_err());
        let mut bytes = Cell::new(1, CellCmd::Relay, b"").unwrap().to_bytes();
        bytes[4] = 99;
        assert!(Cell::from_bytes(&bytes).is_err());
        assert!(Cell::new(1, CellCmd::Relay, &[0u8; PAYLOAD_LEN + 1]).is_err());
    }

    #[test]
    fn relay_payload_roundtrip() {
        let p = RelayPayload::new(RelayCmd::Data, b"stream bytes").unwrap();
        let encoded = p.encode();
        let parsed = RelayPayload::decode(&encoded).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn relay_payload_unrecognized_when_encrypted() {
        // Random-looking bytes (still-encrypted layers) have nonzero
        // "recognized" with overwhelming probability; decode must reject.
        let mut buf = [0u8; PAYLOAD_LEN];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i * 37 + 11) as u8;
        }
        assert!(RelayPayload::decode(&buf).is_err());
    }

    #[test]
    fn relay_payload_max_data() {
        let data = vec![0x5au8; RELAY_DATA_LEN];
        let p = RelayPayload::new(RelayCmd::Data, &data).unwrap();
        let parsed = RelayPayload::decode(&p.encode()).unwrap();
        assert_eq!(parsed.data, data);
        assert!(RelayPayload::new(RelayCmd::Data, &vec![0u8; RELAY_DATA_LEN + 1]).is_err());
    }
}
