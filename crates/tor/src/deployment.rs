//! The paper's incremental deployment model (§3.2): vanilla Tor, an
//! SGX-enabled directory, incremental SGX onion routers, and the fully
//! SGX-enabled design with DHT membership.
//!
//! Every SGX-capable entity hosts a [`TorServiceEnclave`] whose code image
//! bakes in its behaviour; the Tor foundation certifies the *honest*
//! images ("the Tor foundation publishes a signed certificate of
//! legitimate software that contains the identities"). Attestation against
//! that certificate is what excludes tampered relays and subverted
//! authorities in the respective phases.

// teenet-analyze: allow-file(enclave-index) -- deployment harness: every index is into vectors this file builds itself (one platform per spec relay/authority, gen_range is len-bounded); no wire bytes select an index
use std::collections::HashMap;

use teenet::attest::AttestConfig;
use teenet::identity::{IdentityPolicy, SoftwareCertificate};
use teenet::ledger::{AttestKind, AttestLedger};
use teenet::responder::{attest_enclave, AttestResponder};
use teenet_crypto::dh::DhGroup;
use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
use teenet_crypto::SecureRng;
use teenet_sgx::cost::CostModel;
use teenet_sgx::{
    deploy_platform, measure_image, EnclaveCtx, EnclaveId, EnclaveProgram, EpidGroup, Measurement,
    SgxError, TeeBackend, TeePlatform,
};

use crate::circuit::TorClient;
use crate::dht::ChordRing;
use crate::directory::{
    form_consensus, AuthorityBehavior, Consensus, DirectoryAuthority, RouterDescriptor, Vote,
};
use crate::error::{Result, TorError};
use crate::network::TorNetwork;
use crate::relay::{OnionRouter, RelayBehavior};

/// The deployment phases, in the paper's order of ease of deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// No SGX anywhere (today's Tor, the attack baseline).
    Vanilla,
    /// "SGX-enabled directory": the nine authorities run in enclaves.
    SgxDirectory,
    /// "Incremental addition of SGX-enabled ORs".
    IncrementalOrs,
    /// "Fully SGX-enabled setting": everything attested, DHT membership,
    /// no directory authorities.
    FullSgx,
}

/// The enclave wrapper every SGX-capable Tor service runs.
///
/// Only the attestation surface executes in the emulator; the relay data
/// path is the simulator logic whose *behaviour marker* is part of this
/// code image — so a behavioural modification changes MRENCLAVE, which is
/// the property all the paper's defenses rest on.
pub struct TorServiceEnclave {
    kind: &'static str,
    version: u16,
    behavior_marker: Vec<u8>,
    responder: AttestResponder,
    /// In-enclave secret state (e.g. a directory authority's signing key).
    state: Vec<u8>,
    /// Monotonic epoch of the current state. Every SEAL_STATE bumps it and
    /// bakes it into the sealed blob; RESTORE_STATE rejects any blob whose
    /// epoch is not strictly greater — a host replaying an old (sealed,
    /// authentic) snapshot cannot roll the authority's keys back.
    epoch: u64,
}

/// The payload inside a SEAL_STATE blob: monotonic epoch + state bytes.
struct StateSnapshot {
    epoch: u64,
    state: Vec<u8>,
}

impl StateSnapshot {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.state.len());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.state);
        out
    }

    fn parse(bytes: &[u8]) -> core::result::Result<StateSnapshot, SgxError> {
        if bytes.len() < 8 {
            return Err(SgxError::EcallRejected("sealed state snapshot too short"));
        }
        let mut epoch_bytes = [0u8; 8];
        epoch_bytes.copy_from_slice(&bytes[..8]);
        Ok(StateSnapshot {
            epoch: u64::from_le_bytes(epoch_bytes),
            state: bytes[8..].to_vec(),
        })
    }
}

impl TorServiceEnclave {
    /// Wraps a service of `kind` ("relay" / "authority") with a behaviour
    /// marker.
    pub fn new(
        kind: &'static str,
        version: u16,
        behavior_marker: Vec<u8>,
        config: AttestConfig,
    ) -> Self {
        TorServiceEnclave {
            kind,
            version,
            behavior_marker,
            responder: AttestResponder::new(config),
            state: Vec::new(),
            epoch: 0,
        }
    }

    fn image(kind: &str, version: u16, marker: &[u8]) -> Vec<u8> {
        let mut image = Vec::new();
        image.extend_from_slice(b"teenet-tor-");
        image.extend_from_slice(kind.as_bytes());
        image.extend_from_slice(&version.to_le_bytes());
        image.extend_from_slice(marker);
        image
    }

    /// Measurement of the honest build of `kind` at `version`.
    pub fn honest_measurement(kind: &str, version: u16) -> Measurement {
        measure_image(&Self::image(kind, version, b""))
    }
}

/// The marker a behaviour compiles down to (empty = honest).
pub fn behavior_marker(behavior: RelayBehavior) -> Vec<u8> {
    match behavior {
        RelayBehavior::Honest => Vec::new(),
        RelayBehavior::BadApple => b"patched: log exit plaintext".to_vec(),
        RelayBehavior::Snooper => b"patched: log circuit metadata".to_vec(),
    }
}

/// The marker an authority behaviour compiles down to.
pub fn authority_marker(behavior: &AuthorityBehavior) -> Vec<u8> {
    match behavior {
        AuthorityBehavior::Honest => Vec::new(),
        AuthorityBehavior::Compromised { .. } => b"patched: subverted voting".to_vec(),
    }
}

impl EnclaveProgram for TorServiceEnclave {
    fn code_image(&self) -> Vec<u8> {
        Self::image(self.kind, self.version, &self.behavior_marker)
    }

    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        fn_id: u64,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        match fn_id {
            0 => self.responder.handle_begin(ctx, input),
            1 => self.responder.handle_finish(ctx, input),
            // SEAL_STATE: store `input` as secret state and return the
            // sealed blob for the host to persist across restarts —
            // "they can keep authority keys and list of Tor nodes inside
            // the enclaves" (§3.2). The blob carries the bumped epoch so
            // RESTORE_STATE can reject rolled-back snapshots.
            2 => {
                self.epoch += 1;
                self.state = input.to_vec();
                let snap = StateSnapshot {
                    epoch: self.epoch,
                    state: input.to_vec(),
                };
                let blob = ctx.seal(
                    teenet_sgx::keys::KeyRequest::SealEnclave,
                    b"tor-service-state",
                    &snap.to_bytes(),
                );
                Ok(blob.to_bytes())
            }
            // RESTORE_STATE: unseal a blob produced by SEAL_STATE on this
            // platform by this exact code identity, rejecting any snapshot
            // whose epoch does not strictly advance (rollback/replay of an
            // authentic but stale blob). Returns the state length (the
            // secret itself never leaves).
            3 => {
                let blob = teenet_sgx::seal::SealedBlob::from_bytes(input)?;
                let plain = ctx.unseal(teenet_sgx::keys::KeyRequest::SealEnclave, &blob)?;
                let snap = StateSnapshot::parse(&plain)?;
                if snap.epoch <= self.epoch {
                    return Err(SgxError::EcallRejected(
                        "stale sealed state (rollback rejected)",
                    ));
                }
                let len = snap.state.len() as u32;
                self.epoch = snap.epoch;
                self.state = snap.state;
                Ok(len.to_le_bytes().to_vec())
            }
            // STATE_DIGEST: a public commitment to the current state (for
            // tests to confirm the restore without exporting the secret).
            4 => Ok(teenet_crypto::sha256::sha256(&self.state).to_vec()),
            _ => Err(SgxError::EcallRejected("unknown tor-service fn")),
        }
    }
}

/// Specification of a Tor deployment to build.
#[derive(Clone)]
pub struct TorSpec {
    /// Number of onion routers.
    pub n_relays: usize,
    /// The first `n_exits` relays allow exit streams.
    pub n_exits: usize,
    /// Number of directory authorities (ignored in [`Phase::FullSgx`]).
    pub n_authorities: usize,
    /// Relay indices running the BadApple build.
    pub bad_apples: Vec<usize>,
    /// Relay indices running the Snooper build.
    pub snoopers: Vec<usize>,
    /// Authority indices that are subverted (admit `phantom_relay`, drop
    /// relay 1).
    pub compromised_authorities: Vec<usize>,
    /// In [`Phase::IncrementalOrs`]: the first `sgx_relay_count` relays are
    /// SGX-capable. [`Phase::FullSgx`] treats all relays as SGX.
    pub sgx_relay_count: usize,
    /// Deployment phase.
    pub phase: Phase,
    /// Master seed.
    pub seed: u64,
    /// DH group for circuit building.
    pub circuit_group: DhGroup,
    /// Attestation configuration.
    pub attest: AttestConfig,
    /// The TEE backend every TEE-capable relay and authority deploys on.
    pub backend: TeeBackend,
}

impl TorSpec {
    /// A small, fast (768-bit groups) deployment for tests.
    pub fn fast(phase: Phase, seed: u64) -> Self {
        TorSpec {
            n_relays: 6,
            n_exits: 3,
            n_authorities: 3,
            bad_apples: Vec::new(),
            snoopers: Vec::new(),
            compromised_authorities: Vec::new(),
            sgx_relay_count: 6,
            phase,
            seed,
            circuit_group: DhGroup::modp768(),
            attest: AttestConfig::fast(),
            backend: TeeBackend::Sgx,
        }
    }
}

/// Outcome of the admission process for one deployment.
pub struct Admission {
    /// Relays usable by clients.
    pub admitted: Vec<RouterDescriptor>,
    /// The signed consensus (directory phases).
    pub consensus: Option<Consensus>,
    /// The membership ring (fully-SGX phase).
    pub dht: Option<ChordRing>,
    /// Relays that failed attestation.
    pub rejected: Vec<u32>,
}

/// A built Tor deployment under a given phase.
pub struct TorDeployment {
    /// The specification it was built from.
    pub spec: TorSpec,
    /// Relays, clients and servers over the packet simulator.
    pub network: TorNetwork,
    /// Directory authorities (empty in FullSgx).
    pub authorities: Vec<DirectoryAuthority>,
    /// TEE platform per relay (None = not TEE-capable in this phase).
    pub relay_platforms: Vec<Option<(Box<dyn TeePlatform>, EnclaveId)>>,
    /// TEE platform per authority.
    pub authority_platforms: Vec<Option<(Box<dyn TeePlatform>, EnclaveId)>>,
    /// The attestation group.
    pub epid: EpidGroup,
    /// Foundation-signed certificate of honest builds.
    pub certificate: SoftwareCertificate,
    foundation_public: teenet_crypto::schnorr::VerifyingKey,
    /// Attestation accounting (Table 3).
    pub ledger: AttestLedger,
    /// Index of the built-in client.
    pub client: usize,
    /// Index of the built-in destination server.
    pub server: usize,
    model: CostModel,
    rng: SecureRng,
}

impl TorDeployment {
    /// Builds the deployment (platforms, enclaves, network, certificate).
    pub fn build(spec: TorSpec) -> Result<Self> {
        let mut rng = SecureRng::seed_from_u64(spec.seed);
        let epid = EpidGroup::new(2015, &mut rng)?;
        let foundation = SigningKey::generate(&SchnorrGroup::small(), &mut rng)?;
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng)?;

        // The foundation certifies the honest relay and authority builds.
        let certificate = SoftwareCertificate::issue(
            "tor-honest-builds-v1",
            1,
            vec![
                TorServiceEnclave::honest_measurement("relay", 1),
                TorServiceEnclave::honest_measurement("authority", 1),
            ],
            &foundation,
            &mut rng,
        )?;

        let mut network = TorNetwork::new(spec.seed);
        let mut relay_platforms = Vec::with_capacity(spec.n_relays);
        for i in 0..spec.n_relays {
            let behavior = if spec.bad_apples.contains(&i) {
                RelayBehavior::BadApple
            } else if spec.snoopers.contains(&i) {
                RelayBehavior::Snooper
            } else {
                RelayBehavior::Honest
            };
            let group = spec.circuit_group.clone();
            let relay_rng = rng.fork(&[b"relay".as_slice(), &i.to_le_bytes()].concat());
            let is_exit = i < spec.n_exits;
            network.add_relay(|node| {
                OnionRouter::new(i as u32, node, is_exit, behavior, group, relay_rng)
            });

            let sgx_capable = match spec.phase {
                Phase::Vanilla | Phase::SgxDirectory => false,
                Phase::IncrementalOrs => i < spec.sgx_relay_count,
                Phase::FullSgx => true,
            };
            if sgx_capable {
                let mut platform = deploy_platform(
                    spec.backend,
                    &format!("relay-{i}"),
                    &epid,
                    spec.seed + 100 + i as u64,
                )?;
                let program = TorServiceEnclave::new(
                    "relay",
                    1,
                    behavior_marker(behavior),
                    spec.attest.clone(),
                );
                let enclave = platform.create_signed(Box::new(program), &author, 1)?;
                relay_platforms.push(Some((platform, enclave)));
            } else {
                relay_platforms.push(None);
            }
        }

        let client_group = spec.circuit_group.clone();
        let client_rng = rng.fork(b"client");
        let client = network.add_client(|node| TorClient::new(node, client_group, client_rng));
        let server = network.add_server();

        // Authorities (none in the fully SGX design).
        let mut authorities = Vec::new();
        let mut authority_platforms = Vec::new();
        if spec.phase != Phase::FullSgx {
            for i in 0..spec.n_authorities {
                let behavior = if spec.compromised_authorities.contains(&i) {
                    AuthorityBehavior::Compromised {
                        admit: vec![PHANTOM_RELAY],
                        drop: vec![1],
                    }
                } else {
                    AuthorityBehavior::Honest
                };
                let authority = DirectoryAuthority::new(i as u32, behavior.clone(), &mut rng)?;
                let sgx_capable = spec.phase != Phase::Vanilla;
                if sgx_capable {
                    let mut platform = deploy_platform(
                        spec.backend,
                        &format!("authority-{i}"),
                        &epid,
                        spec.seed + 500 + i as u64,
                    )?;
                    let program = TorServiceEnclave::new(
                        "authority",
                        1,
                        authority_marker(&behavior),
                        spec.attest.clone(),
                    );
                    let enclave = platform.create_signed(Box::new(program), &author, 1)?;
                    authority_platforms.push(Some((platform, enclave)));
                } else {
                    authority_platforms.push(None);
                }
                authorities.push(authority);
            }
        }

        let foundation_public = foundation.verifying_key();
        let model = spec.backend.cost_model();
        Ok(TorDeployment {
            spec,
            network,
            authorities,
            relay_platforms,
            authority_platforms,
            epid,
            certificate,
            foundation_public,
            ledger: AttestLedger::new(),
            client,
            server,
            model,
            rng,
        })
    }

    /// Attests the enclave of relay `i`; returns whether it passed.
    fn attest_relay(&mut self, challenger: u64, i: usize) -> bool {
        let Some((platform, enclave)) = self.relay_platforms[i].as_mut() else {
            return false;
        };
        self.ledger
            .record(AttestKind::TorRouterAdmission, challenger, i as u64);
        attest_enclave(
            IdentityPolicy::Certified {
                authority: self.foundation_public.clone(),
            },
            self.spec.attest.clone(),
            &self.model,
            &mut self.rng,
            platform.as_mut(),
            *enclave,
            0,
            1,
            &self.epid.public_key(),
            Some(&self.certificate),
        )
        .is_ok()
    }

    /// Attests the enclave of authority `i` on behalf of `challenger`.
    fn attest_authority(&mut self, kind: AttestKind, challenger: u64, i: usize) -> bool {
        let Some((platform, enclave)) = self.authority_platforms[i].as_mut() else {
            return false;
        };
        self.ledger.record(kind, challenger, 10_000 + i as u64);
        attest_enclave(
            IdentityPolicy::Certified {
                authority: self.foundation_public.clone(),
            },
            self.spec.attest.clone(),
            &self.model,
            &mut self.rng,
            platform.as_mut(),
            *enclave,
            0,
            1,
            &self.epid.public_key(),
            Some(&self.certificate),
        )
        .is_ok()
    }

    /// Router descriptors as self-published.
    pub fn descriptors(&self) -> Vec<RouterDescriptor> {
        self.network
            .relays
            .iter()
            .enumerate()
            .map(|(i, r)| RouterDescriptor {
                relay_id: r.id,
                net_node: r.net_node,
                is_exit: r.is_exit,
                version: r.version,
                measurement: self.relay_platforms[i]
                    .as_ref()
                    .and_then(|(p, e)| p.measurement_of(*e).ok()),
            })
            .collect()
    }

    /// Runs the phase-appropriate admission process.
    pub fn run_admission(&mut self) -> Result<Admission> {
        let descriptors = self.descriptors();
        match self.spec.phase {
            Phase::Vanilla => self.admission_with_directories(descriptors, false, false),
            Phase::SgxDirectory => self.admission_with_directories(descriptors, true, false),
            Phase::IncrementalOrs => self.admission_with_directories(descriptors, true, true),
            Phase::FullSgx => self.admission_full_sgx(descriptors),
        }
    }

    fn admission_with_directories(
        &mut self,
        descriptors: Vec<RouterDescriptor>,
        sgx_directory: bool,
        attest_relays: bool,
    ) -> Result<Admission> {
        // Which authorities get to vote?
        let mut voters: Vec<usize> = (0..self.authorities.len()).collect();
        if sgx_directory {
            // Authorities mutually attest; those failing (tampered voting
            // logic) are excluded from the consensus process.
            let mut passed = vec![true; self.authorities.len()];
            for a in 0..self.authorities.len() {
                for (b, pass) in passed.iter_mut().enumerate() {
                    if a != b && !self.attest_authority(AttestKind::TorAuthorityPeer, a as u64, b) {
                        *pass = false;
                    }
                }
            }
            voters.retain(|&i| passed[i]);
            // Clients verify the directory too ("Tor network (Client):
            // number of authority nodes", Table 3).
            for i in 0..self.authorities.len() {
                self.attest_authority(AttestKind::TorClientCircuit, 90_000, i);
            }
        }

        // Attestation verdicts for relays (incremental phase).
        let mut rejected = Vec::new();
        let verdicts: Option<HashMap<u32, bool>> = if attest_relays {
            let mut map = HashMap::new();
            for i in 0..self.network.relays.len() {
                if self.relay_platforms[i].is_some() {
                    // The lowest-id voting authority performs admission.
                    let challenger = voters.first().copied().unwrap_or(0) as u64;
                    let ok = self.attest_relay(challenger, i);
                    map.insert(i as u32, ok);
                    if !ok {
                        rejected.push(i as u32);
                    }
                }
            }
            Some(map)
        } else {
            None
        };

        let mut votes: Vec<Vote> = Vec::with_capacity(voters.len());
        for &i in &voters {
            votes.push(self.authorities[i].vote(&descriptors, verdicts.as_ref(), &mut self.rng)?);
        }
        let consensus = form_consensus(&descriptors, votes);
        let keys: HashMap<u32, teenet_crypto::schnorr::VerifyingKey> = voters
            .iter()
            .map(|&i| (self.authorities[i].id, self.authorities[i].public_key()))
            .collect();
        consensus.validate(&keys, voters.len().div_ceil(2))?;
        Ok(Admission {
            admitted: consensus.routers.clone(),
            consensus: Some(consensus),
            dht: None,
            rejected,
        })
    }

    fn admission_full_sgx(&mut self, descriptors: Vec<RouterDescriptor>) -> Result<Admission> {
        // No directory: every relay is attested directly (here by the
        // client; "problematic Tor nodes are excluded during the remote
        // attestation") and admitted members form a Chord ring.
        let mut ring = ChordRing::new();
        let mut admitted = Vec::new();
        let mut rejected = Vec::new();
        for (i, desc) in descriptors.iter().enumerate() {
            let ok = self.attest_relay(90_000, i);
            self.ledger
                .record(AttestKind::TorClientCircuit, 90_000, i as u64);
            if ok {
                ring.join(desc.relay_id);
                admitted.push(desc.clone());
            } else {
                rejected.push(desc.relay_id);
            }
        }
        Ok(Admission {
            admitted,
            consensus: None,
            dht: Some(ring),
            rejected,
        })
    }

    /// Selects a (guard, middle, exit) path from admitted relays.
    ///
    /// `force_exit`: use this relay as exit if admitted (attack scenarios
    /// model the unlucky selection directly).
    pub fn select_path(
        &mut self,
        admission: &Admission,
        force_exit: Option<u32>,
    ) -> Result<Vec<teenet_netsim::NodeId>> {
        let exits: Vec<&RouterDescriptor> =
            admission.admitted.iter().filter(|d| d.is_exit).collect();
        if exits.is_empty() {
            return Err(TorError::NoPath("no admitted exits"));
        }
        let exit = match force_exit {
            Some(id) => *exits
                .iter()
                .find(|d| d.relay_id == id)
                .ok_or(TorError::NoPath("forced exit not admitted"))?,
            None => exits[self.rng.gen_range(exits.len() as u64) as usize],
        };
        let others: Vec<&RouterDescriptor> = admission
            .admitted
            .iter()
            .filter(|d| d.relay_id != exit.relay_id)
            .collect();
        if others.len() < 2 {
            return Err(TorError::NoPath("not enough relays"));
        }
        let guard = others[self.rng.gen_range(others.len() as u64) as usize];
        let middle = loop {
            let m = others[self.rng.gen_range(others.len() as u64) as usize];
            if m.relay_id != guard.relay_id {
                break m;
            }
        };
        Ok(vec![guard.net_node, middle.net_node, exit.net_node])
    }

    /// Builds a circuit along `path` and exchanges `data` with the
    /// built-in echo server; returns the reply the client received.
    pub fn exchange(&mut self, path: Vec<teenet_netsim::NodeId>, data: &[u8]) -> Result<Vec<u8>> {
        let client_node = self.network.clients[self.client].net_node;
        let server_node = self.network.servers[self.server].net_node;
        let (circ, msgs) = self.network.clients[self.client].open_circuit(path)?;
        self.network.transmit(client_node, msgs);
        if !self.network.pump(200) {
            return Err(TorError::CircuitState("network did not quiesce"));
        }
        if !self.network.clients[self.client].is_ready(circ) {
            return Err(TorError::CircuitState("circuit failed to build"));
        }
        let msgs = self.network.clients[self.client].begin(circ, server_node)?;
        self.network.transmit(client_node, msgs);
        self.network.pump(200);
        let msgs = self.network.clients[self.client].send_data(circ, data)?;
        self.network.transmit(client_node, msgs);
        self.network.pump(200);
        let received = self.network.clients[self.client].received_data(circ);
        received
            .last()
            .map(|d| d.to_vec())
            .ok_or(TorError::CircuitState("no reply received"))
    }
}

/// The relay id compromised authorities try to force-admit (no descriptor
/// exists for it, modelling an attacker-controlled phantom).
pub const PHANTOM_RELAY: u32 = 9_999;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_admits_everyone() {
        let mut dep = TorDeployment::build(TorSpec::fast(Phase::Vanilla, 1)).unwrap();
        let admission = dep.run_admission().unwrap();
        assert_eq!(admission.admitted.len(), 6);
        assert!(admission.consensus.is_some());
        assert!(admission.dht.is_none());
        assert_eq!(dep.ledger.total(), 0, "no attestations in vanilla Tor");
    }

    #[test]
    fn vanilla_circuit_works() {
        let mut dep = TorDeployment::build(TorSpec::fast(Phase::Vanilla, 2)).unwrap();
        let admission = dep.run_admission().unwrap();
        let path = dep.select_path(&admission, None).unwrap();
        let reply = dep.exchange(path, b"hello tor").unwrap();
        assert_eq!(reply, b"echo:hello tor");
    }

    #[test]
    fn sgx_directory_counts_attestations() {
        let mut dep = TorDeployment::build(TorSpec::fast(Phase::SgxDirectory, 3)).unwrap();
        dep.run_admission().unwrap();
        // 3 authorities mutually attest: 3*2 = 6 peer attestations, plus
        // the client attesting each of the 3.
        assert_eq!(dep.ledger.count(AttestKind::TorAuthorityPeer), 6);
        assert_eq!(dep.ledger.count(AttestKind::TorClientCircuit), 3);
    }

    #[test]
    fn compromised_authority_excluded_in_sgx_directory() {
        let mut spec = TorSpec::fast(Phase::SgxDirectory, 4);
        spec.compromised_authorities = vec![0];
        let mut dep = TorDeployment::build(spec).unwrap();
        let admission = dep.run_admission().unwrap();
        // The subverted authority could not drop relay 1: its tampered
        // enclave failed attestation and its vote was never counted.
        assert!(admission.admitted.iter().any(|d| d.relay_id == 1));
        assert!(!admission
            .admitted
            .iter()
            .any(|d| d.relay_id == PHANTOM_RELAY));
    }

    #[test]
    fn incremental_rejects_tampered_sgx_relay() {
        let mut spec = TorSpec::fast(Phase::IncrementalOrs, 5);
        spec.bad_apples = vec![0]; // an exit running the BadApple build
        let mut dep = TorDeployment::build(spec).unwrap();
        let admission = dep.run_admission().unwrap();
        assert!(admission.rejected.contains(&0));
        assert!(!admission.admitted.iter().any(|d| d.relay_id == 0));
        // Honest relays pass and are auto-admitted.
        assert!(admission.admitted.iter().any(|d| d.relay_id == 1));
    }

    #[test]
    fn incremental_nonsgx_malicious_relay_still_admitted() {
        // The interim-deployment tension the paper flags: a malicious
        // relay that is NOT SGX-capable is still admitted by the old
        // manual-trust path.
        let mut spec = TorSpec::fast(Phase::IncrementalOrs, 6);
        spec.sgx_relay_count = 3; // relays 3..6 are legacy
        spec.bad_apples = vec![4]; // legacy malicious relay
        let mut dep = TorDeployment::build(spec).unwrap();
        let admission = dep.run_admission().unwrap();
        assert!(admission.admitted.iter().any(|d| d.relay_id == 4));
    }

    #[test]
    fn full_sgx_uses_dht_and_excludes_malicious() {
        let mut spec = TorSpec::fast(Phase::FullSgx, 7);
        spec.bad_apples = vec![0];
        let mut dep = TorDeployment::build(spec).unwrap();
        let admission = dep.run_admission().unwrap();
        assert!(admission.consensus.is_none(), "no directory in full SGX");
        let ring = admission.dht.as_ref().unwrap();
        assert_eq!(ring.len(), 5);
        assert!(!ring.contains(0));
        assert!(admission.rejected.contains(&0));
        // Lookups work among members.
        let member = ring.members()[0];
        let (owner, _) = ring.lookup(member, 0x1234_5678).unwrap();
        assert!(ring.contains(owner));
    }

    #[test]
    fn full_sgx_circuit_through_attested_relays() {
        let mut dep = TorDeployment::build(TorSpec::fast(Phase::FullSgx, 8)).unwrap();
        let admission = dep.run_admission().unwrap();
        let path = dep.select_path(&admission, None).unwrap();
        let reply = dep.exchange(path, b"fully attested").unwrap();
        assert_eq!(reply, b"echo:fully attested");
    }

    #[test]
    fn attestation_counts_scale_with_network_size() {
        // Table 3's point: attestations ∝ network size.
        let mut small = TorSpec::fast(Phase::FullSgx, 9);
        small.n_relays = 4;
        small.n_exits = 2;
        let mut big = TorSpec::fast(Phase::FullSgx, 9);
        big.n_relays = 8;
        big.n_exits = 4;
        let mut d1 = TorDeployment::build(small).unwrap();
        d1.run_admission().unwrap();
        let mut d2 = TorDeployment::build(big).unwrap();
        d2.run_admission().unwrap();
        assert_eq!(
            d2.ledger.count(AttestKind::TorRouterAdmission),
            2 * d1.ledger.count(AttestKind::TorRouterAdmission)
        );
    }

    #[test]
    fn forced_exit_requires_admission() {
        let mut spec = TorSpec::fast(Phase::FullSgx, 10);
        spec.bad_apples = vec![0];
        let mut dep = TorDeployment::build(spec).unwrap();
        let admission = dep.run_admission().unwrap();
        // The rejected bad apple cannot be forced into a path.
        assert!(dep.select_path(&admission, Some(0)).is_err());
    }
}

#[cfg(test)]
mod sealing_tests {
    use super::*;
    use teenet_crypto::sha256::sha256;

    fn sgx_platform(seed: u64) -> (Box<dyn TeePlatform>, EnclaveId, EpidGroup, SecureRng) {
        let mut rng = SecureRng::seed_from_u64(seed);
        let epid = EpidGroup::new(9, &mut rng).unwrap();
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let mut platform = deploy_platform(TeeBackend::Sgx, "authority-host", &epid, seed).unwrap();
        let enclave = platform
            .create_signed(
                Box::new(TorServiceEnclave::new(
                    "authority",
                    1,
                    Vec::new(),
                    AttestConfig::fast(),
                )),
                &author,
                1,
            )
            .unwrap();
        (platform, enclave, epid, rng)
    }

    #[test]
    fn authority_key_survives_restart_via_sealing() {
        let (mut platform, enclave, _epid, mut rng) = sgx_platform(71);
        let mut authority_key = vec![0u8; 64];
        rng.fill_bytes(&mut authority_key);

        // Seal inside the enclave; the host keeps only the blob.
        let blob = platform.ecall_nohost(enclave, 2, &authority_key).unwrap();
        assert!(
            !blob
                .windows(authority_key.len())
                .any(|w| w == authority_key.as_slice()),
            "the key must not appear in the blob"
        );

        // "Restart": tear the enclave down, load the identical build.
        platform.destroy_enclave(enclave).unwrap();
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let enclave2 = platform
            .create_signed(
                Box::new(TorServiceEnclave::new(
                    "authority",
                    1,
                    Vec::new(),
                    AttestConfig::fast(),
                )),
                &author,
                1,
            )
            .unwrap();
        let len = platform.ecall_nohost(enclave2, 3, &blob).unwrap();
        assert_eq!(u32::from_le_bytes(len.try_into().unwrap()), 64);
        // The restored state matches (checked via a public digest).
        let digest = platform.ecall_nohost(enclave2, 4, &[]).unwrap();
        assert_eq!(digest, sha256(&authority_key).to_vec());
    }

    #[test]
    fn stale_sealed_state_is_rejected_as_rollback() {
        let (mut platform, enclave, _epid, _rng) = sgx_platform(73);
        // Two generations of state: the host keeps both sealed blobs.
        let old_blob = platform
            .ecall_nohost(enclave, 2, b"signing key v1")
            .unwrap();
        let new_blob = platform
            .ecall_nohost(enclave, 2, b"signing key v2")
            .unwrap();

        // Restoring the current generation over itself is a replay: the
        // epoch does not advance, so the enclave refuses.
        assert!(platform.ecall_nohost(enclave, 3, &new_blob).is_err());

        // A fresh instance accepts the latest blob once...
        let (mut p2, e2, _epid2, _rng2) = sgx_platform(73);
        let len = p2.ecall_nohost(e2, 3, &new_blob).unwrap();
        assert_eq!(u32::from_le_bytes(len.try_into().unwrap()), 14);
        let digest = p2.ecall_nohost(e2, 4, &[]).unwrap();
        assert_eq!(digest, sha256(b"signing key v2").to_vec());

        // ...then rejects the older generation: an authentic blob, sealed
        // by this very code on this very platform, but stale.
        assert!(p2.ecall_nohost(e2, 3, &old_blob).is_err());
        // State is untouched by the failed rollback.
        let digest = p2.ecall_nohost(e2, 4, &[]).unwrap();
        assert_eq!(digest, sha256(b"signing key v2").to_vec());
    }

    #[test]
    fn sealed_state_unusable_on_other_platform() {
        let (mut p1, e1, epid, mut rng) = sgx_platform(72);
        let blob = p1.ecall_nohost(e1, 2, b"authority secret").unwrap();
        // Same code, different machine: the device key differs.
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let mut p2 = deploy_platform(TeeBackend::Sgx, "stolen-disk-host", &epid, 999).unwrap();
        let e2 = p2
            .create_signed(
                Box::new(TorServiceEnclave::new(
                    "authority",
                    1,
                    Vec::new(),
                    AttestConfig::fast(),
                )),
                &author,
                1,
            )
            .unwrap();
        assert!(p2.ecall_nohost(e2, 3, &blob).is_err());
    }

    #[test]
    fn sealed_state_unusable_by_different_code() {
        // A tampered build (different MRENCLAVE) cannot unseal the
        // authority's state even on the same platform.
        let (mut platform, enclave, _epid, mut rng) = sgx_platform(73);
        let blob = platform
            .ecall_nohost(enclave, 2, b"keys + OR list")
            .unwrap();
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let evil = platform
            .create_signed(
                Box::new(TorServiceEnclave::new(
                    "authority",
                    1,
                    b"patched: subverted voting".to_vec(),
                    AttestConfig::fast(),
                )),
                &author,
                1,
            )
            .unwrap();
        assert!(platform.ecall_nohost(evil, 3, &blob).is_err());
    }
}
