#![warn(missing_docs)]

//! # teenet-tor
//!
//! An onion-routing network simulator for the paper's second case study
//! (§3.2): how SGX strengthens Tor across incremental deployment phases.
//!
//! * [`cell`] / [`crypto`] — 512-byte cells, layered AES-CTR onion
//!   encryption, relay digests.
//! * [`relay`] — onion routers (honest and malicious variants) with full
//!   circuit switching and exit streams.
//! * [`circuit`] — the client: telescoping circuit construction over DH,
//!   leaky-pipe backward recognition, streams.
//! * [`network`] — the pump wiring relays/clients/servers over
//!   `teenet-netsim`.
//! * [`directory`] — directory authorities, votes and majority consensus.
//! * [`dht`] — a Chord ring for directory-less membership in the fully
//!   SGX-enabled design.
//! * [`deployment`] — the paper's three deployment phases plus vanilla
//!   Tor, with SGX admission and circuit-time attestation.
//! * [`attacks`] — the attacks of §3.2 (bad apple, directory compromise)
//!   evaluated under each phase.

pub mod attacks;
pub mod cell;
pub mod circuit;
pub mod crypto;
pub mod deployment;
pub mod dht;
pub mod directory;
pub mod driver;
pub mod error;
pub mod network;
pub mod relay;

pub use cell::{Cell, CellCmd, RelayCmd, RelayPayload};
pub use circuit::{ClientEvent, TorClient};
pub use deployment::{Phase, TorDeployment, TorSpec};
pub use directory::{AuthorityBehavior, Consensus, DirectoryAuthority, RouterDescriptor};
pub use driver::TorService;
pub use error::{Result, TorError};
pub use network::{EchoServer, TorNetwork};
pub use relay::{OnionRouter, RelayBehavior};
