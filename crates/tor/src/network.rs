//! Link framing, destination servers, and the network pump that drives a
//! whole Tor deployment over the deterministic simulator.

use std::collections::HashMap;

use teenet_netsim::{LinkConfig, Network, NodeId};

use crate::cell::Cell;
use crate::circuit::TorClient;
use crate::relay::OnionRouter;

/// Link-message tag: a 512-byte cell follows.
pub const TAG_CELL: u8 = 1;
/// Link-message tag: exit↔destination stream data follows.
pub const TAG_STREAM: u8 = 2;

/// Frames a cell for transmission.
pub fn frame_cell(cell: &Cell) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + crate::cell::CELL_LEN);
    out.push(TAG_CELL);
    out.extend_from_slice(&cell.to_bytes());
    out
}

/// Frames stream data with its connection id.
pub fn frame_stream(conn: u64, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + data.len());
    out.push(TAG_STREAM);
    out.extend_from_slice(&conn.to_be_bytes());
    out.extend_from_slice(data);
    out
}

/// Parses the body of a stream frame (after the tag byte).
pub fn parse_stream(body: &[u8]) -> Option<(u64, &[u8])> {
    if body.len() < 8 {
        return None;
    }
    let conn = u64::from_be_bytes(body[..8].try_into().ok()?);
    Some((conn, &body[8..]))
}

/// A destination server that answers each request with
/// `"echo:" ‖ request`.
pub struct EchoServer {
    /// The server's network address.
    pub net_node: NodeId,
    /// Requests observed (plaintext reaches the destination by design).
    pub requests: Vec<Vec<u8>>,
}

impl EchoServer {
    /// Creates a server at `net_node`.
    pub fn new(net_node: NodeId) -> Self {
        EchoServer {
            net_node,
            requests: Vec::new(),
        }
    }

    /// Handles one inbound message.
    pub fn handle(&mut self, from: NodeId, msg: &[u8]) -> Vec<(NodeId, Vec<u8>)> {
        if msg.first() != Some(&TAG_STREAM) {
            return Vec::new();
        }
        let Some((conn, data)) = parse_stream(&msg[1..]) else {
            return Vec::new();
        };
        self.requests.push(data.to_vec());
        let mut reply = b"echo:".to_vec();
        reply.extend_from_slice(data);
        vec![(from, frame_stream(conn, &reply))]
    }
}

enum Entity {
    Relay(usize),
    Client(usize),
    Server(usize),
}

/// A complete simulated Tor network: relays, clients, destination servers,
/// all exchanging link messages over `teenet-netsim`.
pub struct TorNetwork {
    /// The underlying packet network.
    pub net: Network,
    /// Onion routers.
    pub relays: Vec<OnionRouter>,
    /// Clients (onion proxies).
    pub clients: Vec<TorClient>,
    /// Destination servers.
    pub servers: Vec<EchoServer>,
    index: HashMap<NodeId, Entity>,
    link: LinkConfig,
}

impl TorNetwork {
    /// An empty network; `seed` drives the simulator.
    pub fn new(seed: u64) -> Self {
        TorNetwork {
            net: Network::new(seed),
            relays: Vec::new(),
            clients: Vec::new(),
            servers: Vec::new(),
            index: HashMap::new(),
            link: LinkConfig::default(),
        }
    }

    /// Sets the link configuration used for subsequently added nodes.
    pub fn set_link_config(&mut self, link: LinkConfig) {
        self.link = link;
    }

    fn add_node(&mut self) -> NodeId {
        let node = self.net.add_node();
        // Fully connect the newcomer to all existing nodes (overlay links).
        for other in 0..node.0 {
            self.net
                .add_duplex_link(NodeId(other), node, self.link.clone());
        }
        node
    }

    /// Adds a relay built by `make` from its assigned network node.
    pub fn add_relay(&mut self, make: impl FnOnce(NodeId) -> OnionRouter) -> usize {
        let node = self.add_node();
        let relay = make(node);
        debug_assert_eq!(relay.net_node, node);
        self.index.insert(node, Entity::Relay(self.relays.len()));
        self.relays.push(relay);
        self.relays.len() - 1
    }

    /// Adds a client built by `make` from its assigned network node.
    pub fn add_client(&mut self, make: impl FnOnce(NodeId) -> TorClient) -> usize {
        let node = self.add_node();
        let client = make(node);
        debug_assert_eq!(client.net_node, node);
        self.index.insert(node, Entity::Client(self.clients.len()));
        self.clients.push(client);
        self.clients.len() - 1
    }

    /// Adds a destination server.
    pub fn add_server(&mut self) -> usize {
        let node = self.add_node();
        self.index.insert(node, Entity::Server(self.servers.len()));
        self.servers.push(EchoServer::new(node));
        self.servers.len() - 1
    }

    /// Queues outbound messages from an entity.
    pub fn transmit(&mut self, src: NodeId, msgs: Vec<(NodeId, Vec<u8>)>) {
        for (dst, bytes) in msgs {
            self.net.send(src, dst, bytes);
        }
    }

    /// Delivers traffic and dispatches handlers until the network
    /// quiesces or `max_rounds` elapse. Returns `true` on quiescence.
    pub fn pump(&mut self, max_rounds: usize) -> bool {
        for _ in 0..max_rounds {
            self.net.run_to_idle();
            let mut any = false;
            let nodes: Vec<NodeId> = self.index.keys().copied().collect();
            let mut sorted = nodes;
            sorted.sort();
            for node in sorted {
                let packets = self.net.recv_all(node);
                for packet in packets {
                    any = true;
                    let outputs = match self.index.get(&node) {
                        Some(Entity::Relay(i)) => {
                            self.relays[*i].handle(packet.src, &packet.payload)
                        }
                        Some(Entity::Client(i)) => {
                            self.clients[*i].handle(packet.src, &packet.payload)
                        }
                        Some(Entity::Server(i)) => {
                            self.servers[*i].handle(packet.src, &packet.payload)
                        }
                        None => Vec::new(),
                    };
                    self.transmit(node, outputs);
                }
            }
            if !any {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{ClientEvent, TorClient};
    use crate::relay::{OnionRouter, RelayBehavior};
    use teenet_crypto::dh::DhGroup;
    use teenet_crypto::SecureRng;

    fn build_net(n_relays: usize) -> (TorNetwork, Vec<NodeId>, usize, usize) {
        let group = DhGroup::modp768();
        let mut tn = TorNetwork::new(42);
        let mut relay_nodes = Vec::new();
        for i in 0..n_relays {
            let g = group.clone();
            let idx = tn.add_relay(|node| {
                OnionRouter::new(
                    i as u32,
                    node,
                    true,
                    RelayBehavior::Honest,
                    g,
                    SecureRng::seed_from_u64(1000 + i as u64),
                )
            });
            relay_nodes.push(tn.relays[idx].net_node);
        }
        let g = group.clone();
        let client = tn.add_client(|node| TorClient::new(node, g, SecureRng::seed_from_u64(7)));
        let server = tn.add_server();
        (tn, relay_nodes, client, server)
    }

    #[test]
    fn three_hop_circuit_and_stream() {
        let (mut tn, relays, client, server) = build_net(3);
        let server_node = tn.servers[server].net_node;
        let (circ, msgs) = tn.clients[client].open_circuit(relays.clone()).unwrap();
        let src = tn.clients[client].net_node;
        tn.transmit(src, msgs);
        assert!(tn.pump(100), "network must quiesce");
        assert!(
            tn.clients[client].is_ready(circ),
            "events: {:?}",
            tn.clients[client].events
        );

        // Open a stream and send data.
        let msgs = tn.clients[client].begin(circ, server_node).unwrap();
        tn.transmit(src, msgs);
        assert!(tn.pump(100));
        assert!(tn.clients[client]
            .events
            .contains(&ClientEvent::Connected { circ }));

        let msgs = tn.clients[client].send_data(circ, b"GET /index").unwrap();
        tn.transmit(src, msgs);
        assert!(tn.pump(100));
        let got = tn.clients[client].received_data(circ);
        assert_eq!(got, vec![b"echo:GET /index".as_slice()]);
        // The destination saw the plaintext (as it must), relays processed cells.
        assert_eq!(tn.servers[server].requests, vec![b"GET /index".to_vec()]);
        assert!(tn.relays.iter().all(|r| r.cells_processed > 0));
    }

    #[test]
    fn single_hop_circuit() {
        let (mut tn, relays, client, server) = build_net(1);
        let server_node = tn.servers[server].net_node;
        let src = tn.clients[client].net_node;
        let (circ, msgs) = tn.clients[client].open_circuit(vec![relays[0]]).unwrap();
        tn.transmit(src, msgs);
        assert!(tn.pump(50));
        assert!(tn.clients[client].is_ready(circ));
        let msgs = tn.clients[client].begin(circ, server_node).unwrap();
        tn.transmit(src, msgs);
        tn.pump(50);
        let msgs = tn.clients[client].send_data(circ, b"hi").unwrap();
        tn.transmit(src, msgs);
        tn.pump(50);
        assert_eq!(
            tn.clients[client].received_data(circ),
            vec![b"echo:hi".as_slice()]
        );
    }

    #[test]
    fn middle_relay_never_sees_plaintext_metadata_only() {
        let (mut tn, relays, client, server) = build_net(3);
        // Make the middle a snooper: it can log topology but not content.
        tn.relays[1].behavior = RelayBehavior::Snooper;
        let server_node = tn.servers[server].net_node;
        let src = tn.clients[client].net_node;
        let (circ, msgs) = tn.clients[client].open_circuit(relays.clone()).unwrap();
        tn.transmit(src, msgs);
        tn.pump(100);
        let msgs = tn.clients[client].begin(circ, server_node).unwrap();
        tn.transmit(src, msgs);
        tn.pump(100);
        let msgs = tn.clients[client]
            .send_data(circ, b"very secret query")
            .unwrap();
        tn.transmit(src, msgs);
        tn.pump(100);
        // Snooper saw link metadata but no plaintext.
        assert!(!tn.relays[1].observed_metadata.is_empty());
        assert!(tn.relays[1].observed_plaintext.is_empty());
        // Client still got the answer.
        assert_eq!(
            tn.clients[client].received_data(circ),
            vec![b"echo:very secret query".as_slice()]
        );
    }

    #[test]
    fn bad_apple_exit_sees_plaintext_without_sgx() {
        // The attack baseline: a malicious exit records everything.
        let (mut tn, relays, client, server) = build_net(3);
        tn.relays[2].behavior = RelayBehavior::BadApple;
        let server_node = tn.servers[server].net_node;
        let src = tn.clients[client].net_node;
        let (circ, msgs) = tn.clients[client].open_circuit(relays.clone()).unwrap();
        tn.transmit(src, msgs);
        tn.pump(100);
        let msgs = tn.clients[client].begin(circ, server_node).unwrap();
        tn.transmit(src, msgs);
        tn.pump(100);
        let msgs = tn.clients[client]
            .send_data(circ, b"password=hunter2")
            .unwrap();
        tn.transmit(src, msgs);
        tn.pump(100);
        assert!(tn.relays[2]
            .observed_plaintext
            .iter()
            .any(|p| p == b"password=hunter2"));
    }

    #[test]
    fn non_exit_relay_refuses_streams() {
        let (mut tn, relays, client, server) = build_net(3);
        tn.relays[2].is_exit = false;
        let server_node = tn.servers[server].net_node;
        let src = tn.clients[client].net_node;
        let (circ, msgs) = tn.clients[client].open_circuit(relays.clone()).unwrap();
        tn.transmit(src, msgs);
        tn.pump(100);
        let msgs = tn.clients[client].begin(circ, server_node).unwrap();
        tn.transmit(src, msgs);
        tn.pump(100);
        assert!(tn.clients[client]
            .events
            .iter()
            .any(|e| matches!(e, ClientEvent::StreamEnd { .. })));
    }

    #[test]
    fn destroy_tears_down_along_path() {
        let (mut tn, relays, client, _) = build_net(3);
        let src = tn.clients[client].net_node;
        let (circ, msgs) = tn.clients[client].open_circuit(relays.clone()).unwrap();
        tn.transmit(src, msgs);
        tn.pump(100);
        assert!(tn.relays.iter().all(|r| r.circuit_count() == 1));
        let msgs = tn.clients[client].destroy(circ).unwrap();
        tn.transmit(src, msgs);
        tn.pump(100);
        assert!(tn.relays.iter().all(|r| r.circuit_count() == 0));
    }

    #[test]
    fn stream_framing_roundtrip() {
        let framed = frame_stream(0xdead_beef, b"payload");
        assert_eq!(framed[0], TAG_STREAM);
        let (conn, data) = parse_stream(&framed[1..]).unwrap();
        assert_eq!(conn, 0xdead_beef);
        assert_eq!(data, b"payload");
        assert!(parse_stream(&[1, 2, 3]).is_none());
    }
}
