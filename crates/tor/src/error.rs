//! Error type for the onion-routing simulator.

use core::fmt;
use teenet::TeenetError;
use teenet_crypto::CryptoError;
use teenet_sgx::SgxError;

/// Errors from circuit building, cell processing or directory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TorError {
    /// A cell failed to parse.
    BadCell(&'static str),
    /// A relay payload failed its digest check where one was required.
    DigestMismatch,
    /// Referenced an unknown circuit id.
    UnknownCircuit(u32),
    /// The circuit is not in the right state for the operation.
    CircuitState(&'static str),
    /// No suitable relays available for path selection.
    NoPath(&'static str),
    /// Consensus could not be formed or validated.
    Consensus(&'static str),
    /// A node failed attestation and was excluded.
    AttestationFailed(&'static str),
    /// DHT lookup failure.
    Dht(&'static str),
    /// Underlying attestation-layer error.
    Teenet(TeenetError),
    /// Underlying SGX error.
    Sgx(SgxError),
    /// Underlying crypto error.
    Crypto(CryptoError),
}

impl fmt::Display for TorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TorError::BadCell(w) => write!(f, "bad cell: {w}"),
            TorError::DigestMismatch => write!(f, "relay digest mismatch"),
            TorError::UnknownCircuit(id) => write!(f, "unknown circuit {id}"),
            TorError::CircuitState(w) => write!(f, "bad circuit state: {w}"),
            TorError::NoPath(w) => write!(f, "no path: {w}"),
            TorError::Consensus(w) => write!(f, "consensus failure: {w}"),
            TorError::AttestationFailed(w) => write!(f, "attestation failed: {w}"),
            TorError::Dht(w) => write!(f, "dht failure: {w}"),
            TorError::Teenet(e) => write!(f, "attestation error: {e}"),
            TorError::Sgx(e) => write!(f, "sgx error: {e}"),
            TorError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl std::error::Error for TorError {}

impl From<TeenetError> for TorError {
    fn from(e: TeenetError) -> Self {
        TorError::Teenet(e)
    }
}

impl From<SgxError> for TorError {
    fn from(e: SgxError) -> Self {
        TorError::Sgx(e)
    }
}

impl From<CryptoError> for TorError {
    fn from(e: CryptoError) -> Self {
        TorError::Crypto(e)
    }
}

/// Result alias.
pub type Result<T> = core::result::Result<T, TorError>;
