//! Onion-layer cryptography: per-hop keys, layered encryption, digests.
//!
//! Each circuit hop derives forward/backward AES-128-CTR keys and digest
//! keys from its DH shared secret with the client. The client applies all
//! layers outermost-last for forward cells; each relay strips (forward) or
//! adds (backward) exactly one layer. The 4-byte digest inside the relay
//! header authenticates payloads end-to-end between the client and the
//! terminal hop.

use teenet_crypto::aes::Aes128;
use teenet_crypto::hkdf;
use teenet_crypto::hmac::HmacSha256;

use crate::cell::PAYLOAD_LEN;
use crate::error::{Result, TorError};

/// Key material for one hop of a circuit (one side's view).
#[derive(Clone)]
pub struct HopKeys {
    fwd_key: [u8; 16],
    back_key: [u8; 16],
    fwd_digest_key: [u8; 32],
    back_digest_key: [u8; 32],
    /// Counter of forward cells processed (keystream position).
    pub fwd_ctr: u64,
    /// Counter of backward cells processed.
    pub back_ctr: u64,
}

impl HopKeys {
    /// Derives hop keys from the circuit-extension DH shared secret.
    pub fn derive(shared_secret: &[u8]) -> Result<Self> {
        let prk = hkdf::extract(b"teenet-tor-hop-v1", shared_secret);
        let mut fwd_key = [0u8; 16];
        let mut back_key = [0u8; 16];
        let mut fwd_digest_key = [0u8; 32];
        let mut back_digest_key = [0u8; 32];
        hkdf::expand(&prk, b"fwd-key", &mut fwd_key).map_err(TorError::Crypto)?;
        hkdf::expand(&prk, b"back-key", &mut back_key).map_err(TorError::Crypto)?;
        hkdf::expand(&prk, b"fwd-digest", &mut fwd_digest_key).map_err(TorError::Crypto)?;
        hkdf::expand(&prk, b"back-digest", &mut back_digest_key).map_err(TorError::Crypto)?;
        Ok(HopKeys {
            fwd_key,
            back_key,
            fwd_digest_key,
            back_digest_key,
            fwd_ctr: 0,
            back_ctr: 0,
        })
    }

    fn apply(key: &[u8; 16], ctr: u64, payload: &mut [u8; PAYLOAD_LEN]) {
        // teenet-analyze: allow(enclave-abort) -- key is statically 16 bytes by the parameter type
        let cipher = Aes128::new(key).expect("16-byte key");
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(&ctr.to_be_bytes());
        cipher.ctr_apply(&nonce, payload);
    }

    /// Applies one forward-direction layer (encrypt == decrypt in CTR),
    /// consuming one forward counter step.
    pub fn crypt_forward(&mut self, payload: &mut [u8; PAYLOAD_LEN]) {
        Self::apply(&self.fwd_key, self.fwd_ctr, payload);
        self.fwd_ctr += 1;
    }

    /// Applies one backward-direction layer, consuming one backward
    /// counter step.
    pub fn crypt_backward(&mut self, payload: &mut [u8; PAYLOAD_LEN]) {
        Self::apply(&self.back_key, self.back_ctr, payload);
        self.back_ctr += 1;
    }

    /// Digest over a relay payload whose digest field is zeroed, bound to
    /// the direction and cell counter.
    pub fn digest(&self, forward: bool, ctr: u64, payload_with_zero_digest: &[u8]) -> [u8; 4] {
        let key = if forward {
            &self.fwd_digest_key
        } else {
            &self.back_digest_key
        };
        let mut mac = HmacSha256::new(key);
        mac.update(&[forward as u8]);
        mac.update(&ctr.to_be_bytes());
        mac.update(payload_with_zero_digest);
        let tag = mac.finalize();
        // teenet-analyze: allow(enclave-abort) -- HMAC-SHA256 output is statically 32 bytes; the first 4 always exist
        tag[..4].try_into().expect("4 bytes")
    }
}

/// Seals a relay payload for the terminal hop: computes the digest at the
/// current counter and returns the encoded payload with digest set.
pub fn seal_relay(
    keys: &HopKeys,
    forward: bool,
    payload: &crate::cell::RelayPayload,
) -> [u8; PAYLOAD_LEN] {
    let mut with_zero = payload.clone();
    with_zero.digest = [0u8; 4];
    let encoded = with_zero.encode();
    let ctr = if forward { keys.fwd_ctr } else { keys.back_ctr };
    let digest = keys.digest(forward, ctr, &encoded);
    let mut sealed = payload.clone();
    sealed.digest = digest;
    sealed.encode()
}

/// Verifies the digest of a decrypted relay payload against `keys` at the
/// just-consumed counter position (`ctr` = counter value *before* the
/// decryption step consumed it).
pub fn verify_relay_digest(
    keys: &HopKeys,
    forward: bool,
    ctr: u64,
    payload: &crate::cell::RelayPayload,
) -> Result<()> {
    let mut with_zero = payload.clone();
    with_zero.digest = [0u8; 4];
    let expected = keys.digest(forward, ctr, &with_zero.encode());
    if teenet_crypto::ct::ct_eq(&expected, &payload.digest) {
        Ok(())
    } else {
        Err(TorError::DigestMismatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{RelayCmd, RelayPayload};

    fn keys(seed: u8) -> HopKeys {
        HopKeys::derive(&[seed; 32]).unwrap()
    }

    #[test]
    fn distinct_keys_per_direction() {
        let k = keys(1);
        let mut fwd = [7u8; PAYLOAD_LEN];
        let mut back = [7u8; PAYLOAD_LEN];
        let mut kf = k.clone();
        let mut kb = k.clone();
        kf.crypt_forward(&mut fwd);
        kb.crypt_backward(&mut back);
        assert_ne!(fwd, back);
    }

    #[test]
    fn three_layer_onion_roundtrip() {
        // Client side: three hop key sets.
        let mut guard = keys(1);
        let mut middle = keys(2);
        let mut exit = keys(3);
        // Relay side: independent copies (derived from the same secrets).
        let mut r_guard = keys(1);
        let mut r_middle = keys(2);
        let mut r_exit = keys(3);

        let plain = {
            let mut p = [0u8; PAYLOAD_LEN];
            p[..5].copy_from_slice(b"DATA!");
            p
        };
        let mut cell = plain;
        // Client encrypts innermost (exit) first, guard last.
        exit.crypt_forward(&mut cell);
        middle.crypt_forward(&mut cell);
        guard.crypt_forward(&mut cell);
        // Each relay strips one layer in path order.
        r_guard.crypt_forward(&mut cell);
        r_middle.crypt_forward(&mut cell);
        r_exit.crypt_forward(&mut cell);
        assert_eq!(cell, plain);
    }

    #[test]
    fn middle_relay_cannot_read() {
        let mut exit = keys(3);
        let mut middle_honest = keys(2);
        let payload = RelayPayload::new(RelayCmd::Data, b"secret browsing").unwrap();
        let mut cell = seal_relay(&exit, true, &payload);
        exit.crypt_forward(&mut cell);
        middle_honest.crypt_forward(&mut cell);
        // After stripping only the middle layer the payload is still
        // encrypted under the exit key: unrecognisable.
        assert!(RelayPayload::decode(&cell).is_err());
    }

    #[test]
    fn digest_seal_verify_roundtrip() {
        let mut client_exit = keys(9);
        let mut relay_exit = keys(9);
        let payload = RelayPayload::new(RelayCmd::Begin, b"dest:80").unwrap();
        let ctr = client_exit.fwd_ctr;
        let mut cell = seal_relay(&client_exit, true, &payload);
        client_exit.crypt_forward(&mut cell);
        relay_exit.crypt_forward(&mut cell);
        let parsed = RelayPayload::decode(&cell).unwrap();
        verify_relay_digest(&relay_exit, true, ctr, &parsed).unwrap();
    }

    #[test]
    fn tampered_payload_fails_digest() {
        let client_exit = keys(9);
        let relay_exit = keys(9);
        let payload = RelayPayload::new(RelayCmd::Data, b"original").unwrap();
        let sealed = seal_relay(&client_exit, true, &payload);
        let mut parsed = RelayPayload::decode(&sealed).unwrap();
        parsed.data = b"tampered".to_vec();
        assert_eq!(
            verify_relay_digest(&relay_exit, true, 0, &parsed),
            Err(TorError::DigestMismatch)
        );
    }

    #[test]
    fn counters_advance_keystream() {
        let mut k = keys(4);
        let mut a = [0u8; PAYLOAD_LEN];
        let mut b = [0u8; PAYLOAD_LEN];
        k.crypt_forward(&mut a);
        k.crypt_forward(&mut b);
        assert_ne!(a, b, "successive cells must use fresh keystream");
    }

    #[test]
    fn different_secrets_different_keys() {
        let mut a = keys(1);
        let mut b = keys(2);
        let mut pa = [0u8; PAYLOAD_LEN];
        let mut pb = [0u8; PAYLOAD_LEN];
        a.crypt_forward(&mut pa);
        b.crypt_forward(&mut pb);
        assert_ne!(pa, pb);
    }
}
