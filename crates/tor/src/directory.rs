//! Directory authorities, votes and majority consensus.
//!
//! "Directory authorities perform admission control, determine the
//! liveness of ORs, flag potentially malicious ORs [...] Tor maintains
//! multiple independent directory servers and builds consensus on
//! active/legitimate ORs through majority vote." (§3.2)
//!
//! A compromised authority is modelled as modified *code*
//! ([`AuthorityBehavior::Compromised`]) that votes to admit attacker
//! relays and drop honest ones — exactly the kind of behavioural change
//! that SGX attestation exposes in the SGX-enabled phases.

use std::collections::{HashMap, HashSet};

use teenet_crypto::schnorr::{SchnorrGroup, Signature, SigningKey, VerifyingKey};
use teenet_crypto::SecureRng;
use teenet_netsim::NodeId;
use teenet_sgx::Measurement;

use crate::error::{Result, TorError};

/// A relay's self-published descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterDescriptor {
    /// Relay identifier.
    pub relay_id: u32,
    /// Network address.
    pub net_node: NodeId,
    /// Whether the relay exits.
    pub is_exit: bool,
    /// Software version.
    pub version: u16,
    /// Enclave measurement, for SGX-capable relays.
    pub measurement: Option<Measurement>,
}

/// How an authority behaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthorityBehavior {
    /// Votes for every relay that passes the checks it can perform.
    Honest,
    /// Subverted: force-admits and force-drops specific relays
    /// (tie-breaking / bad-admission attacks, §3.2).
    Compromised {
        /// Relays to admit regardless of checks.
        admit: Vec<u32>,
        /// Relays to drop regardless of checks.
        drop: Vec<u32>,
    },
}

/// One directory authority.
pub struct DirectoryAuthority {
    /// Authority identifier.
    pub id: u32,
    /// Baked-in behaviour (part of the code identity in SGX phases).
    pub behavior: AuthorityBehavior,
    key: SigningKey,
}

/// An authority's signed vote.
#[derive(Debug, Clone)]
pub struct Vote {
    /// Voting authority.
    pub authority: u32,
    /// Approved relay ids (sorted).
    pub approved: Vec<u32>,
    /// Signature over `(authority, approved)`.
    pub signature: Signature,
}

fn vote_message(authority: u32, approved: &[u32]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(12 + approved.len() * 4);
    msg.extend_from_slice(b"TOR-VOTE");
    msg.extend_from_slice(&authority.to_le_bytes());
    for r in approved {
        msg.extend_from_slice(&r.to_le_bytes());
    }
    msg
}

impl DirectoryAuthority {
    /// Creates an authority with a fresh signing key.
    pub fn new(id: u32, behavior: AuthorityBehavior, rng: &mut SecureRng) -> Result<Self> {
        let key = SigningKey::generate(&SchnorrGroup::small(), rng)?;
        Ok(DirectoryAuthority { id, behavior, key })
    }

    /// The authority's public key (known to all clients).
    pub fn public_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Casts a vote over `descriptors`.
    ///
    /// `attestation_verdicts`, when present (SGX phases), maps relay id →
    /// whether the relay passed remote attestation. Relays with a failing
    /// verdict are never approved by an honest authority; relays with a
    /// passing verdict are approved automatically ("admission of new ORs
    /// can be done automatically", §3.2); relays *absent* from the map are
    /// legacy (non-SGX) nodes that continue through the manual-vetting
    /// path — which is exactly the interim-deployment tension the paper
    /// flags. Without verdicts, honest authorities approve every
    /// descriptor.
    pub fn vote(
        &self,
        descriptors: &[RouterDescriptor],
        attestation_verdicts: Option<&HashMap<u32, bool>>,
        rng: &mut SecureRng,
    ) -> Result<Vote> {
        let mut approved: Vec<u32> = descriptors
            .iter()
            .filter(|d| match attestation_verdicts {
                Some(verdicts) => verdicts.get(&d.relay_id).copied().unwrap_or(true),
                None => true,
            })
            .map(|d| d.relay_id)
            .collect();
        if let AuthorityBehavior::Compromised { admit, drop } = &self.behavior {
            for id in admit {
                if !approved.contains(id) {
                    approved.push(*id);
                }
            }
            approved.retain(|id| !drop.contains(id));
        }
        approved.sort_unstable();
        let signature = self.key.sign(&vote_message(self.id, &approved), rng)?;
        Ok(Vote {
            authority: self.id,
            approved,
            signature,
        })
    }
}

/// The consensus document clients consume.
#[derive(Debug, Clone)]
pub struct Consensus {
    /// Descriptors of relays approved by a majority of counted votes.
    pub routers: Vec<RouterDescriptor>,
    /// The votes backing the consensus.
    pub votes: Vec<Vote>,
}

/// Forms a consensus from `votes`: a relay is admitted when more than half
/// of the votes approve it.
pub fn form_consensus(descriptors: &[RouterDescriptor], votes: Vec<Vote>) -> Consensus {
    let majority = votes.len() / 2 + 1;
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for vote in &votes {
        for &r in &vote.approved {
            *counts.entry(r).or_insert(0) += 1;
        }
    }
    let routers = descriptors
        .iter()
        .filter(|d| counts.get(&d.relay_id).copied().unwrap_or(0) >= majority)
        .cloned()
        .collect();
    Consensus { routers, votes }
}

impl Consensus {
    /// Client-side validation: every counted vote must carry a valid
    /// signature from a distinct known authority, at least
    /// `min_signatures` of them, and the router set must match a recount.
    pub fn validate(
        &self,
        authority_keys: &HashMap<u32, VerifyingKey>,
        min_signatures: usize,
    ) -> Result<()> {
        let mut seen = HashSet::new();
        let mut valid = 0usize;
        for vote in &self.votes {
            let Some(key) = authority_keys.get(&vote.authority) else {
                return Err(TorError::Consensus("vote from unknown authority"));
            };
            if !seen.insert(vote.authority) {
                return Err(TorError::Consensus("duplicate vote"));
            }
            key.verify(
                &vote_message(vote.authority, &vote.approved),
                &vote.signature,
            )
            .map_err(|_| TorError::Consensus("bad vote signature"))?;
            valid += 1;
        }
        if valid < min_signatures {
            return Err(TorError::Consensus("insufficient signatures"));
        }
        // Recount.
        let majority = self.votes.len() / 2 + 1;
        for router in &self.routers {
            let approvals = self
                .votes
                .iter()
                .filter(|v| v.approved.contains(&router.relay_id))
                .count();
            if approvals < majority {
                return Err(TorError::Consensus("router lacks majority"));
            }
        }
        Ok(())
    }

    /// Admitted exit relays.
    pub fn exits(&self) -> Vec<&RouterDescriptor> {
        self.routers.iter().filter(|r| r.is_exit).collect()
    }

    /// Is a relay admitted?
    pub fn contains(&self, relay_id: u32) -> bool {
        self.routers.iter().any(|r| r.relay_id == relay_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptors(n: u32) -> Vec<RouterDescriptor> {
        (0..n)
            .map(|i| RouterDescriptor {
                relay_id: i,
                net_node: NodeId(i),
                is_exit: i % 2 == 0,
                version: 1,
                measurement: None,
            })
            .collect()
    }

    fn authorities(behaviors: Vec<AuthorityBehavior>) -> (Vec<DirectoryAuthority>, SecureRng) {
        let mut rng = SecureRng::seed_from_u64(3);
        let auths = behaviors
            .into_iter()
            .enumerate()
            .map(|(i, b)| DirectoryAuthority::new(i as u32, b, &mut rng).unwrap())
            .collect();
        (auths, rng)
    }

    #[test]
    fn honest_majority_consensus() {
        let descs = descriptors(4);
        let (auths, mut rng) = authorities(vec![
            AuthorityBehavior::Honest,
            AuthorityBehavior::Honest,
            AuthorityBehavior::Honest,
        ]);
        let votes: Vec<Vote> = auths
            .iter()
            .map(|a| a.vote(&descs, None, &mut rng).unwrap())
            .collect();
        let consensus = form_consensus(&descs, votes);
        assert_eq!(consensus.routers.len(), 4);
        let keys: HashMap<u32, VerifyingKey> =
            auths.iter().map(|a| (a.id, a.public_key())).collect();
        consensus.validate(&keys, 2).unwrap();
    }

    #[test]
    fn single_compromised_authority_outvoted() {
        let descs = descriptors(4);
        let (auths, mut rng) = authorities(vec![
            AuthorityBehavior::Honest,
            AuthorityBehavior::Honest,
            AuthorityBehavior::Compromised {
                admit: vec![99],
                drop: vec![0],
            },
        ]);
        let votes: Vec<Vote> = auths
            .iter()
            .map(|a| a.vote(&descs, None, &mut rng).unwrap())
            .collect();
        let consensus = form_consensus(&descs, votes);
        assert!(consensus.contains(0));
        assert!(!consensus.contains(99));
    }

    #[test]
    fn compromised_majority_subverts_vanilla_consensus() {
        // The §3.2 threat: "If directory authorities are subverted,
        // attackers can admit malicious ORs or disable the Tor network."
        let mut descs = descriptors(4);
        descs.push(RouterDescriptor {
            relay_id: 99,
            net_node: NodeId(99),
            is_exit: true,
            version: 1,
            measurement: None,
        });
        let bad = AuthorityBehavior::Compromised {
            admit: vec![99],
            drop: vec![0],
        };
        let (auths, mut rng) = authorities(vec![bad.clone(), bad, AuthorityBehavior::Honest]);
        let votes: Vec<Vote> = auths
            .iter()
            .map(|a| a.vote(&descs, None, &mut rng).unwrap())
            .collect();
        let consensus = form_consensus(&descs, votes);
        assert!(consensus.contains(99), "malicious relay admitted");
        assert!(!consensus.contains(0), "honest relay dropped");
    }

    #[test]
    fn attestation_verdicts_gate_admission() {
        let descs = descriptors(3);
        let (auths, mut rng) = authorities(vec![AuthorityBehavior::Honest]);
        let mut verdicts = HashMap::new();
        verdicts.insert(0u32, true);
        verdicts.insert(1u32, false); // failed attestation
                                      // relay 2 has no verdict (legacy, non-SGX) → manual path admits it.
        let vote = auths[0].vote(&descs, Some(&verdicts), &mut rng).unwrap();
        assert_eq!(vote.approved, vec![0, 2]);
    }

    #[test]
    fn validation_rejects_forged_and_duplicate_votes() {
        let descs = descriptors(2);
        let (auths, mut rng) =
            authorities(vec![AuthorityBehavior::Honest, AuthorityBehavior::Honest]);
        let keys: HashMap<u32, VerifyingKey> =
            auths.iter().map(|a| (a.id, a.public_key())).collect();

        // Tampered approved list.
        let mut votes: Vec<Vote> = auths
            .iter()
            .map(|a| a.vote(&descs, None, &mut rng).unwrap())
            .collect();
        votes[0].approved.push(99);
        let consensus = form_consensus(&descs, votes);
        assert!(consensus.validate(&keys, 2).is_err());

        // Duplicate vote (one authority voting twice).
        let v = auths[0].vote(&descs, None, &mut rng).unwrap();
        let consensus = form_consensus(&descs, vec![v.clone(), v]);
        assert!(consensus.validate(&keys, 2).is_err());

        // Too few signatures.
        let v = auths[0].vote(&descs, None, &mut rng).unwrap();
        let consensus = form_consensus(&descs, vec![v]);
        assert!(consensus.validate(&keys, 2).is_err());
    }

    #[test]
    fn exits_filter() {
        let descs = descriptors(4);
        let (auths, mut rng) = authorities(vec![AuthorityBehavior::Honest]);
        let votes = vec![auths[0].vote(&descs, None, &mut rng).unwrap()];
        let consensus = form_consensus(&descs, votes);
        assert_eq!(consensus.exits().len(), 2);
    }
}
