//! Calibration hook for the load generator: one session is a Tor client
//! building a 3-hop circuit through SGX relays, opening a stream, and
//! exchanging one data cell.
//!
//! Admission (the attestation-heavy part, paper Table 3's FullSgx row) is
//! measured for real against the deployed platforms. Steady-state cell
//! costs are derived from the paper's cost model, because relay cell
//! processing in this codebase runs outside the counter-instrumented
//! platform ecall path.

use teenet::driver::{WorkProfile, WorkStep};
use teenet_sgx::cost::{CostModel, Counters};
use teenet_sgx::{TransitionMode, TransitionStats};

use crate::cell::CELL_LEN;
use crate::deployment::{Phase, TorDeployment, TorSpec};
use crate::error::{Result, TorError};

/// Number of hops in the calibrated circuit (guard, middle, exit).
pub const HOPS: u64 = 3;

/// Calibrates the Tor circuit+stream workload on a FullSgx deployment.
///
/// Setup is the measured cost of admission — every relay attested by the
/// client, quoting enclaves included — plus one end-to-end validation
/// exchange. The session script is three `extend` steps (telescoping DH),
/// one `begin`, and one `data` cell.
pub fn calibrate_tor(seed: u64) -> Result<WorkProfile> {
    calibrate_tor_mode(seed, TransitionMode::Classic)
}

/// [`calibrate_tor`] with an explicit transition mode.
///
/// Under [`TransitionMode::Switchless`] each relay's per-cell enclave
/// crossing is serviced through the shared call ring: the EENTER/EEXIT
/// pair becomes ring-post + worker-poll normal instructions. Admission
/// (the attestation-heavy setup) always runs classic — it is one-time
/// cost the paper excludes from steady state anyway.
pub fn calibrate_tor_mode(seed: u64, mode: TransitionMode) -> Result<WorkProfile> {
    let model = CostModel::paper();
    let mut dep = TorDeployment::build(TorSpec::fast(Phase::FullSgx, seed))?;
    let admission = dep.run_admission()?;

    let mut setup = Counters::new();
    for (platform, _) in dep.relay_platforms.iter().flatten() {
        setup.merge(platform.total_counters());
    }
    for (platform, _) in dep.authority_platforms.iter().flatten() {
        setup.merge(platform.total_counters());
    }

    // Prove the deployment actually carries traffic before profiling it.
    let path = dep.select_path(&admission, None)?;
    let reply = dep.exchange(path, b"calibrate")?;
    if reply != b"echo:calibrate" {
        return Err(TorError::CircuitState("calibration echo mismatch"));
    }

    // Charges `crossings` per-cell enclave crossings to `server`: real
    // transitions in classic mode, ring-post + worker-poll normal work in
    // switchless mode (the relay's cell loop keeps the worker spinning).
    let cell_crossings = |server: &mut Counters, crossings: u64| -> TransitionStats {
        let pairs = crossings * (model.io_packet_sgx / 2).max(1);
        match mode {
            TransitionMode::Classic => {
                server.sgx(crossings * model.io_packet_sgx);
                TransitionStats {
                    taken: pairs,
                    elided: 0,
                    fallbacks: 0,
                }
            }
            TransitionMode::Switchless => {
                server.normal(pairs * (model.switchless_post + model.switchless_poll));
                TransitionStats {
                    taken: 0,
                    elided: pairs,
                    fallbacks: 0,
                }
            }
        }
    };

    let cell = CELL_LEN;
    let mut steps = Vec::with_capacity(HOPS as usize + 2);
    for hop in 0..HOPS {
        // Telescoping extend to hop N: the client runs a fresh DH exchange
        // (two modexps) and onion-wraps the cell once per hop already in
        // the circuit; the target relay runs its DH half inside the
        // enclave and unwraps one layer.
        let mut client = Counters::new();
        client.normal(2 * model.modexp(768) + (hop + 1) * model.aes_bytes(cell));
        let mut server = Counters::new();
        let transitions = cell_crossings(&mut server, 1);
        server.normal(2 * model.modexp(768) + model.aes_bytes(cell));
        steps.push(WorkStep {
            name: "extend",
            client,
            server,
            request_bytes: cell,
            response_bytes: cell,
            transitions,
        });
    }
    for name in ["begin", "data"] {
        // A relayed cell: the client adds all three onion layers; each of
        // the three relays enters its enclave and strips one.
        let mut client = Counters::new();
        client.normal(HOPS * model.aes_bytes(cell));
        let mut server = Counters::new();
        let transitions = cell_crossings(&mut server, HOPS);
        server.normal(HOPS * model.aes_bytes(cell));
        steps.push(WorkStep {
            name,
            client,
            server,
            request_bytes: cell,
            response_bytes: cell,
            transitions,
        });
    }

    Ok(WorkProfile { setup, steps, mode })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tor_profile_shape() {
        let profile = calibrate_tor(11).unwrap();
        assert_eq!(profile.steps.len(), 5);
        assert_eq!(profile.steps[0].name, "extend");
        assert_eq!(profile.steps[4].name, "data");
        // Admission attests 6 relays: the setup dwarfs any single cell.
        assert!(profile.setup.sgx_instr > 0);
        assert!(profile.setup.normal_instr > profile.steps[0].server.normal_instr);
        // Extends carry DH work; data cells are symmetric-only and cheaper.
        assert!(profile.steps[0].server.normal_instr > profile.steps[4].server.normal_instr);
        assert!(profile.steps.iter().all(|s| s.request_bytes == CELL_LEN));
    }

    #[test]
    fn switchless_tor_removes_cell_transitions() {
        let classic = calibrate_tor(11).unwrap();
        let sw = calibrate_tor_mode(11, TransitionMode::Switchless).unwrap();
        let data_c = &classic.steps[4];
        let data_s = &sw.steps[4];
        assert_eq!(data_c.transitions.taken, HOPS);
        assert_eq!(data_s.transitions.taken, 0);
        assert_eq!(data_s.transitions.elided, HOPS);
        assert_eq!(data_s.server.sgx_instr, 0, "no per-cell EENTER/EEXIT");
        assert!(data_s.server.normal_instr > data_c.server.normal_instr);
        // Admission is mode-independent.
        assert_eq!(classic.setup, sw.setup);
    }

    #[test]
    fn tor_calibration_deterministic() {
        let a = calibrate_tor(4).unwrap();
        let b = calibrate_tor(4).unwrap();
        assert_eq!(a.setup, b.setup);
        for (x, y) in a.steps.iter().zip(&b.steps) {
            assert_eq!(x.server, y.server);
            assert_eq!(x.client, y.client);
        }
    }
}
