//! The Tor circuit+stream workload as an [`EnclaveService`]: one session
//! is a Tor client building a 3-hop circuit through SGX relays, opening a
//! stream, and exchanging one data cell.
//!
//! Admission (the attestation-heavy part, paper Table 3's FullSgx row) is
//! measured for real against the deployed platforms. Steady-state cell
//! costs are derived from the paper's cost model, because relay cell
//! processing in this codebase runs outside the counter-instrumented
//! platform ecall path — the session script is therefore all
//! [`StepKind::Computed`] steps.
//!
//! Under [`TransitionMode::Switchless`] each relay's per-cell enclave
//! crossing is serviced through the shared call ring: the EENTER/EEXIT
//! pair becomes ring-post + worker-poll normal instructions. Admission
//! always runs classic — it is one-time cost the paper excludes from
//! steady state anyway.

use teenet_app::{
    AppError, EnclaveService, ServiceEnv, StepKind, StepOutcome, StepRequest, StepSpec,
};
use teenet_sgx::cost::{CostModel, Counters};
use teenet_sgx::{SwitchlessConfig, TransitionMode, TransitionStats};

use crate::cell::CELL_LEN;
use crate::deployment::{Phase, TorDeployment, TorSpec};
use crate::error::{Result, TorError};

pub use teenet_app::{WorkProfile, WorkStep};

/// Number of hops in the calibrated circuit (guard, middle, exit).
pub const HOPS: u64 = 3;

/// The Tor circuit+stream workload on a FullSgx deployment, driven
/// through [`teenet_app::AppHarness`].
///
/// Setup is the measured cost of admission — every relay attested by the
/// client, quoting enclaves included — plus one end-to-end validation
/// exchange. The session script is three `extend` steps (telescoping DH),
/// one `begin`, and one `data` cell.
#[derive(Default)]
pub struct TorService {
    deployed: Option<TorDeployment>,
    setup: Counters,
    mode: TransitionMode,
    switchless: SwitchlessConfig,
}

impl TorService {
    /// A service over the fast FullSgx deployment spec.
    pub fn new() -> Self {
        TorService::default()
    }
}

impl EnclaveService for TorService {
    type Error = TorError;

    fn name(&self) -> &'static str {
        "tor"
    }

    fn describe(&self) -> &'static str {
        "Tor circuit + stream traffic through attested SGX onion routers"
    }

    fn deploy(&mut self, env: &mut ServiceEnv) -> Result<()> {
        let mut spec = TorSpec::fast(Phase::FullSgx, env.seed);
        spec.backend = env.backend;
        self.deployed = Some(TorDeployment::build(spec)?);
        Ok(())
    }

    /// Runs admission (every relay attested), caches the setup cost, then
    /// proves the deployment actually carries traffic with one end-to-end
    /// echo exchange before any profiling.
    fn provision(&mut self, _env: &mut ServiceEnv) -> Result<()> {
        let dep = self
            .deployed
            .as_mut()
            .ok_or(TorError::CircuitState("tor service not deployed"))?;
        let admission = dep.run_admission()?;

        let mut setup = Counters::new();
        for (platform, _) in dep.relay_platforms.iter().flatten() {
            setup.merge(platform.total_counters());
        }
        for (platform, _) in dep.authority_platforms.iter().flatten() {
            setup.merge(platform.total_counters());
        }
        self.setup = setup;

        let path = dep.select_path(&admission, None)?;
        let reply = dep.exchange(path, b"calibrate")?;
        if reply != b"echo:calibrate" {
            return Err(TorError::CircuitState("calibration echo mismatch"));
        }
        Ok(())
    }

    /// The relay cell loop is modelled, not metered, so the mode and the
    /// switchless worker configuration are only recorded here and applied
    /// when computing each step.
    fn set_transition_mode(
        &mut self,
        mode: TransitionMode,
        switchless: SwitchlessConfig,
    ) -> Result<()> {
        self.mode = mode;
        self.switchless = switchless;
        Ok(())
    }

    /// Admission cost, snapshotted before the validation exchange so the
    /// echo traffic never leaks into the profile.
    fn setup_counters(&self) -> Result<Counters> {
        Ok(self.setup)
    }

    fn server_counters(&self) -> Result<Counters> {
        let dep = self
            .deployed
            .as_ref()
            .ok_or(TorError::CircuitState("tor service not deployed"))?;
        let mut total = Counters::new();
        for (platform, _) in dep.relay_platforms.iter().flatten() {
            total.merge(platform.total_counters());
        }
        for (platform, _) in dep.authority_platforms.iter().flatten() {
            total.merge(platform.total_counters());
        }
        Ok(total)
    }

    /// Steady-state cells run outside the instrumented ecall path; their
    /// crossings are part of each computed step, not a platform meter.
    fn transition_stats(&self) -> Result<TransitionStats> {
        Ok(TransitionStats::new())
    }

    fn session_script(&self, _env: &ServiceEnv) -> Result<Vec<StepSpec>> {
        let mut script = Vec::with_capacity(HOPS as usize + 2);
        for hop in 0..HOPS {
            script.push(StepSpec::computed("extend", hop));
        }
        script.push(StepSpec::computed("begin", 0));
        script.push(StepSpec::computed("data", 0));
        Ok(script)
    }

    fn run_step(
        &mut self,
        spec: &StepSpec,
        _request: StepRequest,
        env: &mut ServiceEnv,
    ) -> Result<StepOutcome> {
        let model = &env.model;
        let cell = CELL_LEN;
        let step = match spec.kind {
            StepKind::Computed if spec.name == "extend" => {
                // Telescoping extend to hop N: the client runs a fresh DH
                // exchange (two modexps) and onion-wraps the cell once per
                // hop already in the circuit; the target relay runs its DH
                // half inside the enclave and unwraps one layer.
                let hop = spec.arg;
                let mut client = Counters::new();
                client.normal(2 * model.modexp(768) + (hop + 1) * model.aes_bytes(cell));
                let mut server = Counters::new();
                let transitions = cell_crossings(model, self.mode, self.switchless, &mut server, 1);
                server.normal(2 * model.modexp(768) + model.aes_bytes(cell));
                WorkStep {
                    name: spec.name,
                    client,
                    server,
                    request_bytes: cell,
                    response_bytes: cell,
                    transitions,
                }
            }
            StepKind::Computed => {
                // A relayed cell: the client adds all three onion layers;
                // each of the three relays enters its enclave and strips
                // one.
                let mut client = Counters::new();
                client.normal(HOPS * model.aes_bytes(cell));
                let mut server = Counters::new();
                let transitions =
                    cell_crossings(model, self.mode, self.switchless, &mut server, HOPS);
                server.normal(HOPS * model.aes_bytes(cell));
                WorkStep {
                    name: spec.name,
                    client,
                    server,
                    request_bytes: cell,
                    response_bytes: cell,
                    transitions,
                }
            }
            _ => return Err(TorError::CircuitState("tor steps are model-derived")),
        };
        Ok(StepOutcome::Computed(step))
    }
}

/// Charges `crossings` per-cell enclave crossings to `server`: real
/// transitions in classic mode, ring-post + worker-poll normal work in
/// switchless mode (the relay's cell loop keeps the worker spinning).
/// With a multi-worker pool, every worker beyond the one servicing the
/// post idles through its spin budget per posted pair — modelled exactly
/// like the metered ring's idle-spin charge, so over-provisioned Tor
/// relays pay for their extra spinners too.
fn cell_crossings(
    model: &CostModel,
    mode: TransitionMode,
    switchless: SwitchlessConfig,
    server: &mut Counters,
    crossings: u64,
) -> TransitionStats {
    let pairs = crossings * (model.io_packet_sgx / 2).max(1);
    match mode {
        TransitionMode::Classic => {
            server.sgx(crossings * model.io_packet_sgx);
            TransitionStats {
                taken: pairs,
                elided: 0,
                fallbacks: 0,
                idle_spins: 0,
            }
        }
        TransitionMode::Switchless => {
            let idle_workers = switchless.workers.max(1) as u64 - 1;
            let idle_spins = pairs * idle_workers * u64::from(switchless.spin_budget);
            server.normal(pairs * (model.switchless_post + model.switchless_poll));
            server.normal(idle_spins * model.switchless_idle_spin);
            TransitionStats {
                taken: 0,
                elided: pairs,
                fallbacks: 0,
                idle_spins,
            }
        }
    }
}

impl From<AppError> for TorError {
    fn from(e: AppError) -> Self {
        TorError::CircuitState(e.message())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_app::AppHarness;

    fn calibrate(seed: u64, mode: TransitionMode) -> WorkProfile {
        AppHarness::new(seed, mode)
            .calibrate(&mut TorService::new())
            .unwrap()
    }

    #[test]
    fn tor_profile_shape() {
        let profile = calibrate(11, TransitionMode::Classic);
        assert_eq!(profile.steps.len(), 5);
        assert_eq!(profile.steps[0].name, "extend");
        assert_eq!(profile.steps[4].name, "data");
        // Admission attests 6 relays: the setup dwarfs any single cell.
        assert!(profile.setup.sgx_instr > 0);
        assert!(profile.setup.normal_instr > profile.steps[0].server.normal_instr);
        // Extends carry DH work; data cells are symmetric-only and cheaper.
        assert!(profile.steps[0].server.normal_instr > profile.steps[4].server.normal_instr);
        assert!(profile.steps.iter().all(|s| s.request_bytes == CELL_LEN));
    }

    #[test]
    fn switchless_tor_removes_cell_transitions() {
        let classic = calibrate(11, TransitionMode::Classic);
        let sw = calibrate(11, TransitionMode::Switchless);
        let data_c = &classic.steps[4];
        let data_s = &sw.steps[4];
        assert_eq!(data_c.transitions.taken, HOPS);
        assert_eq!(data_s.transitions.taken, 0);
        assert_eq!(data_s.transitions.elided, HOPS);
        assert_eq!(data_s.server.sgx_instr, 0, "no per-cell EENTER/EEXIT");
        assert!(data_s.server.normal_instr > data_c.server.normal_instr);
        // Admission is mode-independent.
        assert_eq!(classic.setup, sw.setup);
    }
}
