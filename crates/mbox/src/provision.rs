//! The session-key release protocol of §3.3.
//!
//! "The key idea is that endpoints use a remote attestation to
//! authenticate middleboxes and give their session keys through the secure
//! channel to in-path middleboxes." A [`ProvisionMsg`] is what travels
//! that channel: the TLS session keys, the current sequence numbers (so a
//! middlebox can join mid-stream), and which endpoint released them.

use teenet_crypto::sha256::sha256;
use teenet_tls::record::DirectionKeys;
use teenet_tls::session::SessionKeys;
use teenet_tls::CipherSuite;

use crate::error::{MboxError, Result};

/// Which endpoint released the keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EndpointRole {
    /// The TLS client.
    Client = 0,
    /// The TLS server.
    Server = 1,
}

/// A key-release message (sent only over the attestation-bootstrapped
/// secure channel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvisionMsg {
    /// Who is releasing the keys.
    pub role: EndpointRole,
    /// The full session keying material.
    pub keys: SessionKeys,
    /// Client→server records already sent.
    pub seq_c2s: u64,
    /// Server→client records already sent.
    pub seq_s2c: u64,
}

/// Stable 8-byte identifier of a TLS session (derived from its keys, not
/// its sequence state).
pub fn session_id(keys: &SessionKeys) -> [u8; 8] {
    let mut buf = Vec::new();
    buf.push(keys.suite as u8);
    buf.extend_from_slice(&keys.client_write.enc_key);
    buf.extend_from_slice(&keys.client_write.mac_key);
    buf.extend_from_slice(&keys.server_write.enc_key);
    buf.extend_from_slice(&keys.server_write.mac_key);
    // teenet-analyze: allow(enclave-abort) -- sha256 output is statically 32 bytes; the first 8 always exist
    sha256(&buf)[..8].try_into().expect("8 bytes")
}

impl ProvisionMsg {
    /// Wire encoding (travels encrypted inside the secure channel).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.role as u8);
        out.push(self.keys.suite as u8);
        let put_dir = |out: &mut Vec<u8>, d: &DirectionKeys| {
            out.extend_from_slice(&(d.enc_key.len() as u16).to_le_bytes());
            out.extend_from_slice(&d.enc_key);
            out.extend_from_slice(&d.mac_key);
        };
        put_dir(&mut out, &self.keys.client_write);
        put_dir(&mut out, &self.keys.server_write);
        out.extend_from_slice(&self.seq_c2s.to_le_bytes());
        out.extend_from_slice(&self.seq_s2c.to_le_bytes());
        out
    }

    /// Parses [`ProvisionMsg::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut off = 0usize;
        let take = |buf: &[u8], off: &mut usize, n: usize| -> Result<Vec<u8>> {
            let s = buf
                .get(*off..*off + n)
                .ok_or(MboxError::BadProvision("truncated"))?;
            *off += n;
            Ok(s.to_vec())
        };
        let role = match *buf.first().ok_or(MboxError::BadProvision("empty"))? {
            0 => EndpointRole::Client,
            1 => EndpointRole::Server,
            _ => return Err(MboxError::BadProvision("role")),
        };
        off += 1;
        let suite = CipherSuite::from_u8(*buf.get(off).ok_or(MboxError::BadProvision("suite"))?)
            .ok_or(MboxError::BadProvision("suite"))?;
        off += 1;
        let read_dir = |buf: &[u8], off: &mut usize| -> Result<DirectionKeys> {
            let len_bytes = take(buf, off, 2)?;
            let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]) as usize;
            let enc_key = take(buf, off, len)?;
            let mac_key: [u8; 32] = take(buf, off, 32)?
                .try_into()
                .map_err(|_| MboxError::BadProvision("mac key"))?;
            Ok(DirectionKeys { enc_key, mac_key })
        };
        let client_write = read_dir(buf, &mut off)?;
        let server_write = read_dir(buf, &mut off)?;
        let seq_c2s = u64::from_le_bytes(
            take(buf, &mut off, 8)?
                .try_into()
                .map_err(|_| MboxError::BadProvision("seq"))?,
        );
        let seq_s2c = u64::from_le_bytes(
            take(buf, &mut off, 8)?
                .try_into()
                .map_err(|_| MboxError::BadProvision("seq"))?,
        );
        if off != buf.len() {
            return Err(MboxError::BadProvision("trailing bytes"));
        }
        Ok(ProvisionMsg {
            role,
            keys: SessionKeys {
                suite,
                client_write,
                server_write,
            },
            seq_c2s,
            seq_s2c,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> SessionKeys {
        SessionKeys {
            suite: CipherSuite::Aes128CtrHmacSha256,
            client_write: DirectionKeys {
                enc_key: vec![1u8; 16],
                mac_key: [2u8; 32],
            },
            server_write: DirectionKeys {
                enc_key: vec![3u8; 16],
                mac_key: [4u8; 32],
            },
        }
    }

    #[test]
    fn roundtrip() {
        let msg = ProvisionMsg {
            role: EndpointRole::Server,
            keys: keys(),
            seq_c2s: 7,
            seq_s2c: 9,
        };
        let parsed = ProvisionMsg::from_bytes(&msg.to_bytes()).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn rejects_malformed() {
        assert!(ProvisionMsg::from_bytes(&[]).is_err());
        assert!(ProvisionMsg::from_bytes(&[9]).is_err());
        let msg = ProvisionMsg {
            role: EndpointRole::Client,
            keys: keys(),
            seq_c2s: 0,
            seq_s2c: 0,
        };
        let mut bytes = msg.to_bytes();
        bytes.push(0);
        assert!(ProvisionMsg::from_bytes(&bytes).is_err());
        let bytes = msg.to_bytes();
        assert!(ProvisionMsg::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn session_id_stable_and_distinct() {
        let a = session_id(&keys());
        let b = session_id(&keys());
        assert_eq!(a, b);
        let mut other = keys();
        other.client_write.enc_key[0] ^= 1;
        assert_ne!(a, session_id(&other));
    }
}
