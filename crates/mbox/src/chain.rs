//! Chains of in-path middleboxes.
//!
//! Table 3's middlebox row counts attestations per "number of in-path
//! middleboxes": an endpoint attests and provisions *each* box on the
//! path. Records traverse them in order; any box may block, and rewrites
//! re-seal at the same sequence number so downstream boxes (and the far
//! endpoint) stay in sync.

use teenet::ledger::AttestLedger;
use teenet_crypto::SecureRng;
use teenet_tls::session::TlsSession;

use crate::error::Result;
use crate::provision::EndpointRole;
use crate::scenarios::{MiddleboxHost, ProcessResult};

/// A provisioned chain of middleboxes for one TLS session.
pub struct MiddleboxChain {
    hosts: Vec<MiddleboxHost>,
    sids: Vec<[u8; 8]>,
}

impl MiddleboxChain {
    /// Provisions every box on the path from `endpoint_role`'s view of the
    /// session. One attestation per box is recorded in `ledger`.
    pub fn provision(
        mut hosts: Vec<MiddleboxHost>,
        role: EndpointRole,
        session: &TlsSession,
        rng: &mut SecureRng,
        ledger: &mut AttestLedger,
    ) -> Result<Self> {
        let mut sids = Vec::with_capacity(hosts.len());
        for host in hosts.iter_mut() {
            let (sid, active) = host.provision(role, session, rng, ledger)?;
            debug_assert!(active, "chain boxes are unilateral in this helper");
            sids.push(sid);
        }
        Ok(MiddleboxChain { hosts, sids })
    }

    /// Number of boxes on the path.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Pushes one record through every box in order.
    ///
    /// Returns the bytes to deliver to the far endpoint, or `None` if some
    /// box blocked the record. Boxes after a rewrite see (and re-verify)
    /// the rewritten record.
    pub fn process(&mut self, direction: EndpointRole, record: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut current = record.to_vec();
        for (host, sid) in self.hosts.iter_mut().zip(self.sids.iter()) {
            match host.process(*sid, direction, &current)? {
                ProcessResult::Pass(bytes) => current = bytes,
                ProcessResult::Rewritten(bytes) => current = bytes,
                ProcessResult::Blocked => return Ok(None),
            }
        }
        Ok(Some(current))
    }

    /// Aggregate (alerts, blocked, passed) across the chain.
    pub fn stats(&mut self) -> Result<(u64, u64, u64)> {
        let mut totals = (0u64, 0u64, 0u64);
        for (host, sid) in self.hosts.iter_mut().zip(self.sids.iter()) {
            let (a, b, p) = host.stats(*sid)?;
            totals.0 += a;
            totals.1 += b;
            totals.2 += p;
        }
        Ok(totals)
    }
}
