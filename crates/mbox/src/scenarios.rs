//! End-to-end §3.3 scenarios: deploying, attesting and provisioning
//! middleboxes around a live TLS session.
//!
//! "Passing session keys through the secure channel can be also done
//! unilaterally by either of the two end-points [...] For example, TLS
//! traffic in enterprise networks can be sent to the SGX-enabled cloud for
//! deep packet inspection."

use teenet::attest::AttestConfig;
use teenet::identity::IdentityPolicy;
use teenet::ledger::{AttestKind, AttestLedger};
use teenet::responder::attest_enclave;
use teenet_crypto::schnorr::{SchnorrGroup, SigningKey, VerifyingKey};
use teenet_crypto::SecureRng;
use teenet_sgx::{
    deploy_platform, measure_image, EnclaveId, EpidGroup, Measurement, TeeBackend, TeePlatform,
};
use teenet_tls::handshake::{handshake, TlsConfig};
use teenet_tls::session::TlsSession;

use crate::dpi::{DpiEngine, Rule};
use crate::error::{MboxError, Result};
use crate::middlebox::{mb_fn, process_status, MiddleboxEnclave, ProvisionPolicy};
use crate::provision::{EndpointRole, ProvisionMsg};

/// A deployed middlebox: its platform, enclave, and pinned identity.
pub struct MiddleboxHost {
    /// The TEE machine hosting the middlebox.
    pub platform: Box<dyn TeePlatform>,
    /// The middlebox enclave.
    pub enclave: EnclaveId,
    /// The identity endpoints pin (honest build of name+policy+rules).
    pub expected: Measurement,
    /// The attestation group's public key.
    pub group_public: VerifyingKey,
    /// Attestation configuration in use.
    pub attest: AttestConfig,
}

impl MiddleboxHost {
    /// Deploys a middlebox with the given rules onto a fresh SGX platform.
    pub fn deploy(
        name: &str,
        policy: ProvisionPolicy,
        rules: Vec<Rule>,
        attest: AttestConfig,
        epid: &EpidGroup,
        seed: u64,
        rng: &mut SecureRng,
    ) -> Result<Self> {
        Self::deploy_backend(
            TeeBackend::Sgx,
            name,
            policy,
            rules,
            attest,
            epid,
            seed,
            rng,
        )
    }

    /// [`MiddleboxHost::deploy`] onto an explicit TEE backend.
    #[allow(clippy::too_many_arguments)]
    pub fn deploy_backend(
        backend: TeeBackend,
        name: &str,
        policy: ProvisionPolicy,
        rules: Vec<Rule>,
        attest: AttestConfig,
        epid: &EpidGroup,
        seed: u64,
        rng: &mut SecureRng,
    ) -> Result<Self> {
        let engine = DpiEngine::build(rules);
        let expected = measure_image(&MiddleboxEnclave::image_for(name, 1, policy, &engine));
        let author = SigningKey::generate(&SchnorrGroup::small(), rng)
            .map_err(|e| MboxError::Teenet(teenet::TeenetError::Crypto(e)))?;
        let mut platform = deploy_platform(backend, &format!("mbox-{name}"), epid, seed)
            .map_err(MboxError::Sgx)?;
        let program = MiddleboxEnclave::new(name, 1, policy, engine, attest.clone());
        let enclave = platform.create_signed(Box::new(program), &author, 1)?;
        Ok(MiddleboxHost {
            platform,
            enclave,
            expected,
            group_public: epid.public_key(),
            attest,
        })
    }

    /// An endpoint attests this middlebox and releases its session keys.
    ///
    /// Returns the session id and whether the session is now active.
    pub fn provision(
        &mut self,
        role: EndpointRole,
        session: &TlsSession,
        rng: &mut SecureRng,
        ledger: &mut AttestLedger,
    ) -> Result<([u8; 8], bool)> {
        let model = self.platform.model().clone();
        // Ledger target id: derived from the pinned identity so distinct
        // middleboxes count separately even across platforms.
        let target_tag = u64::from_le_bytes(self.expected.0[..8].try_into().expect("8"));
        ledger.record(AttestKind::MiddleboxProvision, role as u64, target_tag);
        let (outcome, nonce) = attest_enclave(
            IdentityPolicy::Mrenclave(self.expected),
            self.attest.clone(),
            &model,
            rng,
            self.platform.as_mut(),
            self.enclave,
            mb_fn::ATTEST_BEGIN,
            mb_fn::ATTEST_FINISH,
            &self.group_public,
            None,
        )?;
        let mut channel = outcome
            .channel
            .ok_or(MboxError::Session("no channel from attestation"))?;
        let (seq_tx, seq_rx) = session.seqs();
        let (seq_c2s, seq_s2c) = match role {
            EndpointRole::Client => (seq_tx, seq_rx),
            EndpointRole::Server => (seq_rx, seq_tx),
        };
        let msg = ProvisionMsg {
            role,
            keys: session.export_keys(),
            seq_c2s,
            seq_s2c,
        };
        let mut input = nonce.to_vec();
        input.extend_from_slice(&channel.seal(&msg.to_bytes()));
        let reply = self
            .platform
            .ecall_nohost(self.enclave, mb_fn::PROVISION, &input)?;
        if reply.len() != 9 {
            return Err(MboxError::Session("bad provision reply"));
        }
        Ok((reply[..8].try_into().expect("8"), reply[8] == 1))
    }

    /// Runs one record through the middlebox.
    pub fn process(
        &mut self,
        sid: [u8; 8],
        direction: EndpointRole,
        record: &[u8],
    ) -> Result<ProcessResult> {
        let mut input = sid.to_vec();
        input.push(match direction {
            EndpointRole::Client => 0, // client→server records
            EndpointRole::Server => 1,
        });
        input.extend_from_slice(record);
        let reply = self
            .platform
            .ecall_nohost(self.enclave, mb_fn::PROCESS, &input)?;
        match reply.first() {
            Some(&process_status::PASS) => Ok(ProcessResult::Pass(reply[1..].to_vec())),
            Some(&process_status::BLOCKED) => Ok(ProcessResult::Blocked),
            Some(&process_status::REWRITTEN) => Ok(ProcessResult::Rewritten(reply[1..].to_vec())),
            _ => Err(MboxError::Session("bad process reply")),
        }
    }

    /// Runs several records through the middlebox under a **single**
    /// EENTER/EEXIT pair (batched ecall) — the switchless/batched hot path.
    /// Records are processed in order; sequence-number discipline is the
    /// same as calling [`MiddleboxHost::process`] repeatedly.
    pub fn process_batch(
        &mut self,
        sid: [u8; 8],
        direction: EndpointRole,
        records: &[&[u8]],
    ) -> Result<Vec<ProcessResult>> {
        let dir_byte = match direction {
            EndpointRole::Client => 0,
            EndpointRole::Server => 1,
        };
        let calls: Vec<(u64, Vec<u8>)> = records
            .iter()
            .map(|record| {
                let mut input = sid.to_vec();
                input.push(dir_byte);
                input.extend_from_slice(record);
                (mb_fn::PROCESS, input)
            })
            .collect();
        let replies = self.platform.ecall_batch_nohost(self.enclave, &calls)?;
        replies
            .iter()
            .map(|reply| match reply.first() {
                Some(&process_status::PASS) => Ok(ProcessResult::Pass(reply[1..].to_vec())),
                Some(&process_status::BLOCKED) => Ok(ProcessResult::Blocked),
                Some(&process_status::REWRITTEN) => {
                    Ok(ProcessResult::Rewritten(reply[1..].to_vec()))
                }
                _ => Err(MboxError::Session("bad process reply")),
            })
            .collect()
    }

    /// (alerts, blocked, passed) counters for a session.
    pub fn stats(&mut self, sid: [u8; 8]) -> Result<(u64, u64, u64)> {
        let reply = self
            .platform
            .ecall_nohost(self.enclave, mb_fn::STATS, &sid)?;
        if reply.len() != 24 {
            return Err(MboxError::Session("bad stats reply"));
        }
        Ok((
            u64::from_le_bytes(reply[..8].try_into().expect("8")),
            u64::from_le_bytes(reply[8..16].try_into().expect("8")),
            u64::from_le_bytes(reply[16..24].try_into().expect("8")),
        ))
    }
}

/// Result of processing one record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessResult {
    /// Forward these bytes (unchanged ciphertext).
    Pass(Vec<u8>),
    /// Drop the record.
    Blocked,
    /// Forward these re-sealed bytes.
    Rewritten(Vec<u8>),
}

/// Report from a scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Rule matches observed by the middlebox.
    pub alerts: u64,
    /// Records blocked.
    pub blocked: u64,
    /// Records passed.
    pub passed: u64,
    /// Remote attestations performed.
    pub attestations: u64,
    /// Plaintexts the server actually received.
    pub server_received: Vec<Vec<u8>>,
}

/// The enterprise-outbound-inspection scenario: the *client side*
/// unilaterally provisions a gateway middlebox that blocks exfiltration
/// patterns; the server needs no changes.
pub fn enterprise_outbound(seed: u64) -> Result<ScenarioReport> {
    let mut rng = SecureRng::seed_from_u64(seed);
    let epid = EpidGroup::new(33, &mut rng).map_err(MboxError::Sgx)?;
    let mut ledger = AttestLedger::new();

    let mut gateway = MiddleboxHost::deploy(
        "enterprise-gw",
        ProvisionPolicy::Unilateral,
        vec![
            Rule::new(b"EXFIL", crate::dpi::Action::Block),
            Rule::new(b"password", crate::dpi::Action::Alert),
        ],
        AttestConfig::fast(),
        &epid,
        seed,
        &mut rng,
    )?;

    // A TLS session between an enterprise client and an external server.
    let mut srng = rng.fork(b"server");
    let (mut client, mut server) = handshake(TlsConfig::fast(), &mut rng, &mut srng)?;
    let (sid, active) = gateway.provision(EndpointRole::Client, &client, &mut rng, &mut ledger)?;
    assert!(active, "unilateral provisioning activates immediately");

    // The exfiltration attempt comes last: blocking a record tears the
    // TLS stream's sequence alignment, which in deployment means the
    // gateway kills the connection — so nothing can follow the block.
    let mut server_received = Vec::new();
    for plaintext in [
        b"GET /public".as_slice(),
        b"password reset request",
        b"regular traffic",
        b"EXFIL: customer database dump",
    ] {
        let record = client.send(plaintext)?;
        match gateway.process(sid, EndpointRole::Client, &record)? {
            ProcessResult::Pass(bytes) | ProcessResult::Rewritten(bytes) => {
                server_received.push(server.recv(&bytes)?);
            }
            ProcessResult::Blocked => break, // connection terminated
        }
    }
    let (alerts, blocked, passed) = gateway.stats(sid)?;
    Ok(ScenarioReport {
        alerts,
        blocked,
        passed,
        attestations: ledger.total(),
        server_received,
    })
}

/// The bilateral cloud-DPI scenario: both endpoints attest the middlebox
/// and release keys; inspection is alert-only.
pub fn cloud_dpi_bilateral(seed: u64) -> Result<ScenarioReport> {
    let mut rng = SecureRng::seed_from_u64(seed);
    let epid = EpidGroup::new(34, &mut rng).map_err(MboxError::Sgx)?;
    let mut ledger = AttestLedger::new();

    let mut dpi = MiddleboxHost::deploy(
        "cloud-dpi",
        ProvisionPolicy::Bilateral,
        vec![Rule::new(b"malware-signature", crate::dpi::Action::Alert)],
        AttestConfig::fast(),
        &epid,
        seed,
        &mut rng,
    )?;

    let mut srng = rng.fork(b"server");
    let (mut client, mut server) = handshake(TlsConfig::fast(), &mut rng, &mut srng)?;

    // Client provisions: not active yet — the middlebox refuses to touch
    // traffic until the *other* endpoint also consents.
    let (sid, active) = dpi.provision(EndpointRole::Client, &client, &mut rng, &mut ledger)?;
    assert!(!active, "bilateral needs both endpoints");
    assert!(
        dpi.process(sid, EndpointRole::Client, b"\x00\x00garbage")
            .is_err(),
        "processing before mutual consent must be refused"
    );
    // Server consents: the session activates.
    let (sid2, active) = dpi.provision(EndpointRole::Server, &server, &mut rng, &mut ledger)?;
    assert_eq!(sid, sid2);
    assert!(active);

    let mut server_received = Vec::new();
    for plaintext in [
        b"clean content".as_slice(),
        b"contains malware-signature bytes",
    ] {
        let record = client.send(plaintext)?;
        if let Ok(ProcessResult::Pass(bytes)) = dpi.process(sid, EndpointRole::Client, &record) {
            server_received.push(server.recv(&bytes)?)
        }
    }
    let (alerts, blocked, passed) = dpi.stats(sid)?;
    Ok(ScenarioReport {
        alerts,
        blocked,
        passed,
        attestations: ledger.total(),
        server_received,
    })
}
