//! Calibration hook for the load generator: measures one TLS-middlebox
//! session (deploy + provision setup, then per-record inspection cost)
//! and returns it as a replayable [`WorkProfile`].

use teenet::driver::{WorkProfile, WorkStep};
use teenet::ledger::AttestLedger;
use teenet::AttestConfig;
use teenet_crypto::SecureRng;
use teenet_sgx::cost::{CostModel, Counters};
use teenet_sgx::{EpidGroup, TransitionMode};
use teenet_tls::handshake::{handshake, TlsConfig};

use crate::dpi::{Action, Rule};
use crate::middlebox::ProvisionPolicy;
use crate::provision::EndpointRole;
use crate::scenarios::{MiddleboxHost, ProcessResult};
use crate::Result;

/// Calibrates the middlebox record-traffic workload.
///
/// Setup covers enclave deployment plus a unilateral key provisioning
/// (one attestation). One session is `records_per_session` TLS records of
/// `record_bytes` application payload flowing client→server through the
/// in-enclave DPI engine. The per-record enclave cost is measured on a
/// real record; the client cost is the record encryption under the
/// paper's model.
pub fn calibrate_tls_mbox(
    seed: u64,
    record_bytes: usize,
    records_per_session: u32,
) -> Result<WorkProfile> {
    calibrate_tls_mbox_mode(
        seed,
        record_bytes,
        records_per_session,
        TransitionMode::Classic,
    )
}

/// [`calibrate_tls_mbox`] with an explicit transition mode.
///
/// Under [`TransitionMode::Switchless`] records flow through the batched
/// ecall path ([`MiddleboxHost::process_batch`]): the first record of a
/// session carries the lone EENTER/EEXIT pair, and every further record is
/// a transition-free marginal cost, measured as batch-of-two minus
/// batch-of-one — the per-record amortisation of the paper's Table 2.
pub fn calibrate_tls_mbox_mode(
    seed: u64,
    record_bytes: usize,
    records_per_session: u32,
    mode: TransitionMode,
) -> Result<WorkProfile> {
    assert!(records_per_session > 0, "a session needs at least 1 record");
    let model = CostModel::paper();
    let mut rng = SecureRng::seed_from_u64(seed);
    let mut srng = rng.fork(b"tls-server");
    let epid = EpidGroup::new(7, &mut rng).map_err(crate::MboxError::Sgx)?;
    let mut ledger = AttestLedger::new();
    let mut gateway = MiddleboxHost::deploy(
        "load-gateway",
        ProvisionPolicy::Unilateral,
        vec![Rule::new(b"password", Action::Alert)],
        AttestConfig::fast(),
        &epid,
        seed,
        &mut rng,
    )?;

    let (mut client, _server) = handshake(TlsConfig::fast(), &mut rng, &mut srng)
        .map_err(|e| crate::MboxError::Session(tls_err(e)))?;
    let (sid, active) = gateway.provision(EndpointRole::Client, &client, &mut rng, &mut ledger)?;
    debug_assert!(active);
    gateway
        .platform
        .set_transition_mode(gateway.enclave, mode)
        .map_err(crate::MboxError::Sgx)?;
    let setup = gateway.platform.total_counters();

    let payload = vec![0x61u8; record_bytes];
    let steps = match mode {
        TransitionMode::Classic => {
            let record = client
                .send(&payload)
                .map_err(|e| crate::MboxError::Session(tls_err(e)))?;
            let record_len = record.len();
            let before = gateway.platform.total_counters();
            let t_before = gateway
                .platform
                .transition_stats_of(gateway.enclave)
                .map_err(crate::MboxError::Sgx)?;
            expect_pass(gateway.process(sid, EndpointRole::Client, &record)?)?;
            let server = gateway.platform.total_counters().since(before);
            let transitions = gateway
                .platform
                .transition_stats_of(gateway.enclave)
                .map_err(crate::MboxError::Sgx)?
                .since(t_before);
            let step = record_step(&model, server, transitions, record_len);
            vec![step; records_per_session as usize]
        }
        TransitionMode::Switchless => {
            // Three identical-shape records: one for the batch-of-one
            // measurement, two for the batch-of-two.
            let mut records = Vec::new();
            for _ in 0..3 {
                records.push(
                    client
                        .send(&payload)
                        .map_err(|e| crate::MboxError::Session(tls_err(e)))?,
                );
            }
            let record_len = records[0].len();
            let c0 = gateway.platform.total_counters();
            let t0 = gateway
                .platform
                .transition_stats_of(gateway.enclave)
                .map_err(crate::MboxError::Sgx)?;
            for r in gateway.process_batch(sid, EndpointRole::Client, &[&records[0]])? {
                expect_pass(r)?;
            }
            let batch1 = gateway.platform.total_counters().since(c0);
            let tb1 = gateway
                .platform
                .transition_stats_of(gateway.enclave)
                .map_err(crate::MboxError::Sgx)?
                .since(t0);
            let c1 = gateway.platform.total_counters();
            let t1 = gateway
                .platform
                .transition_stats_of(gateway.enclave)
                .map_err(crate::MboxError::Sgx)?;
            for r in
                gateway.process_batch(sid, EndpointRole::Client, &[&records[1], &records[2]])?
            {
                expect_pass(r)?;
            }
            let batch2 = gateway.platform.total_counters().since(c1);
            let tb2 = gateway
                .platform
                .transition_stats_of(gateway.enclave)
                .map_err(crate::MboxError::Sgx)?
                .since(t1);

            // First record of a session pays the batch's transition pair;
            // every further record is the transition-free marginal cost.
            let first = record_step(&model, batch1, tb1, record_len);
            let marginal = record_step(&model, batch2.since(batch1), tb2.since(tb1), record_len);
            let mut steps = vec![first];
            steps.extend(vec![marginal; records_per_session as usize - 1]);
            steps
        }
    };
    Ok(WorkProfile { setup, steps, mode })
}

fn expect_pass(result: ProcessResult) -> Result<()> {
    match result {
        ProcessResult::Pass(_) | ProcessResult::Rewritten(_) => Ok(()),
        ProcessResult::Blocked => Err(crate::MboxError::Session("calibration record blocked")),
    }
}

fn record_step(
    model: &CostModel,
    server: Counters,
    transitions: teenet_sgx::TransitionStats,
    record_len: usize,
) -> WorkStep {
    let mut client_cost = Counters::new();
    client_cost.normal(model.aes_bytes(record_len) + model.hmac_short);
    WorkStep {
        name: "record",
        client: client_cost,
        server,
        request_bytes: record_len,
        // The middlebox forwards the record onward; model the ack/continue
        // signal back to the sender as a bare status byte.
        response_bytes: 1,
        transitions,
    }
}

fn tls_err(_e: teenet_tls::TlsError) -> &'static str {
    "tls failure during calibration"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbox_profile_shape() {
        let profile = calibrate_tls_mbox(3, 1024, 4).unwrap();
        assert_eq!(profile.steps.len(), 4);
        let step = &profile.steps[0];
        // Provisioning includes an attestation, so setup dwarfs a record.
        assert!(profile.setup.normal_instr > step.server.normal_instr);
        // In-enclave processing costs SGX instructions (ecall transitions).
        assert!(step.server.sgx_instr > 0);
        // Record is payload plus TLS framing overhead.
        assert!(step.request_bytes > 1024);
    }

    #[test]
    fn mbox_calibration_deterministic() {
        let a = calibrate_tls_mbox(9, 512, 2).unwrap();
        let b = calibrate_tls_mbox(9, 512, 2).unwrap();
        assert_eq!(a.setup, b.setup);
        assert_eq!(a.steps[0].server, b.steps[0].server);
        assert_eq!(a.steps[0].request_bytes, b.steps[0].request_bytes);
    }

    #[test]
    fn switchless_mbox_amortises_transitions() {
        let classic = calibrate_tls_mbox(3, 1024, 4).unwrap();
        let sw = calibrate_tls_mbox_mode(3, 1024, 4, TransitionMode::Switchless).unwrap();
        let sgx_sum = |p: &WorkProfile| p.steps.iter().map(|s| s.server.sgx_instr).sum::<u64>();
        assert!(
            sgx_sum(&sw) < sgx_sum(&classic),
            "batching must cut per-session SGX instructions"
        );
        // Records after the first ride the batch: no transition pair.
        assert_eq!(sw.steps[1].transitions.taken, 0);
        assert!(sw.steps[1].server.sgx_instr < sw.steps[0].server.sgx_instr);
        assert_eq!(sw.steps.len(), classic.steps.len());
    }

    #[test]
    fn bigger_records_cost_more() {
        let small = calibrate_tls_mbox(5, 256, 1).unwrap();
        let large = calibrate_tls_mbox(5, 4096, 1).unwrap();
        assert!(
            large.steps[0].server.normal_instr > small.steps[0].server.normal_instr,
            "DPI over a longer record must cost more"
        );
        assert!(large.steps[0].client.normal_instr > small.steps[0].client.normal_instr);
    }
}
