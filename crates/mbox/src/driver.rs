//! The TLS-middlebox record-traffic workload as an
//! [`EnclaveService`].
//!
//! Setup covers enclave deployment plus a unilateral key provisioning
//! (one attestation). One session is `records_per_session` TLS records of
//! `record_bytes` application payload flowing client→server through the
//! in-enclave DPI engine. The per-record enclave cost is measured on a
//! real record; the client cost is the record encryption under the
//! paper's model.
//!
//! Under [`TransitionMode::Switchless`] records flow through the batched
//! ecall path ([`MiddleboxHost::process_batch`]): the first record of a
//! session carries the lone EENTER/EEXIT pair, and every further record
//! is a transition-free marginal cost, measured by the harness as
//! batch-of-two minus batch-of-one — the per-record amortisation of the
//! paper's Table 2.

use teenet::AttestConfig;
use teenet_app::{
    AppError, EnclaveService, ServiceEnv, StepExecution, StepOutcome, StepRequest, StepSpec,
};
use teenet_crypto::SecureRng;
use teenet_sgx::cost::Counters;
use teenet_sgx::{EpidGroup, SwitchlessConfig, TransitionMode, TransitionStats};
use teenet_tls::handshake::{handshake, TlsConfig};
use teenet_tls::TlsSession;

use crate::dpi::{Action, Rule};
use crate::middlebox::ProvisionPolicy;
use crate::provision::EndpointRole;
use crate::scenarios::{MiddleboxHost, ProcessResult};
use crate::{MboxError, Result};

pub use teenet_app::{WorkProfile, WorkStep};

struct Deployed {
    gateway: MiddleboxHost,
    rng: SecureRng,
    srng: SecureRng,
    client: Option<TlsSession>,
    sid: [u8; 8],
}

/// The middlebox record-traffic workload: in-enclave DPI over provisioned
/// TLS sessions, driven through [`teenet_app::AppHarness`].
pub struct TlsMboxService {
    record_bytes: usize,
    records_per_session: u32,
    deployed: Option<Deployed>,
}

impl TlsMboxService {
    /// A service pushing `records_per_session` records of `record_bytes`
    /// payload through the gateway per session.
    pub fn new(record_bytes: usize, records_per_session: u32) -> Self {
        TlsMboxService {
            record_bytes,
            records_per_session,
            deployed: None,
        }
    }

    fn state(&self) -> Result<&Deployed> {
        self.deployed
            .as_ref()
            .ok_or(MboxError::Session("middlebox service not deployed"))
    }
}

impl Default for TlsMboxService {
    fn default() -> Self {
        TlsMboxService::new(1024, 4)
    }
}

impl EnclaveService for TlsMboxService {
    type Error = MboxError;

    fn name(&self) -> &'static str {
        "tls"
    }

    fn describe(&self) -> &'static str {
        "TLS middlebox record traffic: in-enclave DPI on provisioned sessions"
    }

    fn deploy(&mut self, env: &mut ServiceEnv) -> Result<()> {
        let mut rng = SecureRng::seed_from_u64(env.seed);
        let srng = rng.fork(b"tls-server");
        let epid = EpidGroup::new(7, &mut rng).map_err(MboxError::Sgx)?;
        let gateway = MiddleboxHost::deploy_backend(
            env.backend,
            "load-gateway",
            ProvisionPolicy::Unilateral,
            vec![Rule::new(b"password", Action::Alert)],
            AttestConfig::fast(),
            &epid,
            env.seed,
            &mut rng,
        )?;
        self.deployed = Some(Deployed {
            gateway,
            rng,
            srng,
            client: None,
            sid: [0; 8],
        });
        Ok(())
    }

    /// One endpoint handshake plus a unilateral key provisioning: the
    /// client attests the gateway and releases its session keys.
    fn provision(&mut self, env: &mut ServiceEnv) -> Result<()> {
        let state = self
            .deployed
            .as_mut()
            .ok_or(MboxError::Session("middlebox service not deployed"))?;
        let (client, _server) = handshake(TlsConfig::fast(), &mut state.rng, &mut state.srng)
            .map_err(|e| MboxError::Session(tls_err(e)))?;
        let (sid, active) = state.gateway.provision(
            EndpointRole::Client,
            &client,
            &mut state.rng,
            &mut env.ledger,
        )?;
        if !active {
            return Err(MboxError::Session("provisioned session failed to activate"));
        }
        state.client = Some(client);
        state.sid = sid;
        Ok(())
    }

    fn set_transition_mode(
        &mut self,
        mode: TransitionMode,
        switchless: SwitchlessConfig,
    ) -> Result<()> {
        let state = self
            .deployed
            .as_mut()
            .ok_or(MboxError::Session("middlebox service not deployed"))?;
        let enclave = state.gateway.enclave;
        // Configure before switching: entering switchless initialises the
        // worker pool from the configuration in force at that moment.
        state
            .gateway
            .platform
            .configure_switchless(enclave, switchless)
            .map_err(MboxError::Sgx)?;
        state
            .gateway
            .platform
            .set_transition_mode(enclave, mode)
            .map_err(MboxError::Sgx)
    }

    fn server_counters(&self) -> Result<Counters> {
        Ok(self.state()?.gateway.platform.total_counters())
    }

    fn transition_stats(&self) -> Result<TransitionStats> {
        let state = self.state()?;
        state
            .gateway
            .platform
            .transition_stats_of(state.gateway.enclave)
            .map_err(MboxError::Sgx)
    }

    fn session_script(&self, env: &ServiceEnv) -> Result<Vec<StepSpec>> {
        if self.records_per_session == 0 {
            return Err(MboxError::Calibration("a session needs at least 1 record"));
        }
        Ok(vec![match env.mode {
            TransitionMode::Classic => StepSpec::repeat("record", self.records_per_session),
            TransitionMode::Switchless => StepSpec::amortised("record", self.records_per_session),
        }])
    }

    fn run_step(
        &mut self,
        _spec: &StepSpec,
        request: StepRequest,
        env: &mut ServiceEnv,
    ) -> Result<StepOutcome> {
        let payload = vec![0x61u8; self.record_bytes];
        let state = self
            .deployed
            .as_mut()
            .ok_or(MboxError::Session("middlebox service not deployed"))?;
        let client = state
            .client
            .as_mut()
            .ok_or(MboxError::Session("middlebox session not provisioned"))?;

        let count = match request {
            StepRequest::Once => 1,
            StepRequest::Batch(k) => k,
        };
        let mut records = Vec::new();
        for _ in 0..count {
            records.push(
                client
                    .send(&payload)
                    .map_err(|e| MboxError::Session(tls_err(e)))?,
            );
        }
        let record_len = records.first().map(Vec::len).unwrap_or(0);

        match request {
            StepRequest::Once => {
                let record = records
                    .first()
                    .ok_or(MboxError::Session("empty record batch"))?;
                expect_pass(
                    state
                        .gateway
                        .process(state.sid, EndpointRole::Client, record)?,
                )?;
            }
            StepRequest::Batch(_) => {
                let refs: Vec<&[u8]> = records.iter().map(Vec::as_slice).collect();
                for r in state
                    .gateway
                    .process_batch(state.sid, EndpointRole::Client, &refs)?
                {
                    expect_pass(r)?;
                }
            }
        }

        // Client-side cost under the paper's model: one record encryption
        // per record in the batch.
        let mut client_cost = Counters::new();
        client_cost
            .normal(u64::from(count) * (env.model.aes_bytes(record_len) + env.model.hmac_short));
        Ok(StepOutcome::Executed(StepExecution {
            request_bytes: record_len,
            // The middlebox forwards the record onward; model the
            // ack/continue signal back to the sender as a bare status byte.
            response_bytes: 1,
            client: client_cost,
        }))
    }
}

impl From<AppError> for MboxError {
    fn from(e: AppError) -> Self {
        match e {
            AppError::Calibration(m) => MboxError::Calibration(m),
            AppError::Harness(m) => MboxError::Session(m),
        }
    }
}

fn expect_pass(result: ProcessResult) -> Result<()> {
    match result {
        ProcessResult::Pass(_) | ProcessResult::Rewritten(_) => Ok(()),
        ProcessResult::Blocked => Err(MboxError::Session("calibration record blocked")),
    }
}

fn tls_err(_e: teenet_tls::TlsError) -> &'static str {
    "tls failure during calibration"
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_app::AppHarness;

    fn calibrate(
        seed: u64,
        record_bytes: usize,
        records_per_session: u32,
        mode: TransitionMode,
    ) -> Result<WorkProfile> {
        AppHarness::new(seed, mode)
            .calibrate(&mut TlsMboxService::new(record_bytes, records_per_session))
    }

    #[test]
    fn mbox_profile_shape() {
        let profile = calibrate(3, 1024, 4, TransitionMode::Classic).unwrap();
        assert_eq!(profile.steps.len(), 4);
        let step = &profile.steps[0];
        // Provisioning includes an attestation, so setup dwarfs a record.
        assert!(profile.setup.normal_instr > step.server.normal_instr);
        // In-enclave processing costs SGX instructions (ecall transitions).
        assert!(step.server.sgx_instr > 0);
        // Record is payload plus TLS framing overhead.
        assert!(step.request_bytes > 1024);
    }

    #[test]
    fn zero_record_session_is_a_domain_error() {
        let err = calibrate(3, 1024, 0, TransitionMode::Classic).unwrap_err();
        assert_eq!(
            err,
            MboxError::Calibration("a session needs at least 1 record")
        );
        let err = calibrate(3, 1024, 0, TransitionMode::Switchless).unwrap_err();
        assert!(matches!(err, MboxError::Calibration(_)));
    }

    #[test]
    fn bigger_records_cost_more() {
        let small = calibrate(5, 256, 1, TransitionMode::Classic).unwrap();
        let large = calibrate(5, 4096, 1, TransitionMode::Classic).unwrap();
        assert!(
            large.steps[0].server.normal_instr > small.steps[0].server.normal_instr,
            "DPI over a longer record must cost more"
        );
        assert!(large.steps[0].client.normal_instr > small.steps[0].client.normal_instr);
    }
}
