//! Calibration hook for the load generator: measures one TLS-middlebox
//! session (deploy + provision setup, then per-record inspection cost)
//! and returns it as a replayable [`WorkProfile`].

use teenet::driver::{WorkProfile, WorkStep};
use teenet::ledger::AttestLedger;
use teenet::AttestConfig;
use teenet_crypto::SecureRng;
use teenet_sgx::cost::{CostModel, Counters};
use teenet_sgx::EpidGroup;
use teenet_tls::handshake::{handshake, TlsConfig};

use crate::dpi::{Action, Rule};
use crate::middlebox::ProvisionPolicy;
use crate::provision::EndpointRole;
use crate::scenarios::{MiddleboxHost, ProcessResult};
use crate::Result;

/// Calibrates the middlebox record-traffic workload.
///
/// Setup covers enclave deployment plus a unilateral key provisioning
/// (one attestation). One session is `records_per_session` TLS records of
/// `record_bytes` application payload flowing client→server through the
/// in-enclave DPI engine. The per-record enclave cost is measured on a
/// real record; the client cost is the record encryption under the
/// paper's model.
pub fn calibrate_tls_mbox(
    seed: u64,
    record_bytes: usize,
    records_per_session: u32,
) -> Result<WorkProfile> {
    assert!(records_per_session > 0, "a session needs at least 1 record");
    let model = CostModel::paper();
    let mut rng = SecureRng::seed_from_u64(seed);
    let mut srng = rng.fork(b"tls-server");
    let epid = EpidGroup::new(7, &mut rng).map_err(crate::MboxError::Sgx)?;
    let mut ledger = AttestLedger::new();
    let mut gateway = MiddleboxHost::deploy(
        "load-gateway",
        ProvisionPolicy::Unilateral,
        vec![Rule::new(b"password", Action::Alert)],
        AttestConfig::fast(),
        &epid,
        seed,
        &mut rng,
    )?;

    let (mut client, _server) = handshake(TlsConfig::fast(), &mut rng, &mut srng)
        .map_err(|e| crate::MboxError::Session(tls_err(e)))?;
    let (sid, active) = gateway.provision(EndpointRole::Client, &client, &mut rng, &mut ledger)?;
    debug_assert!(active);
    let setup = gateway.platform.total_counters();

    let payload = vec![0x61u8; record_bytes];
    let record = client
        .send(&payload)
        .map_err(|e| crate::MboxError::Session(tls_err(e)))?;
    let before = gateway.platform.total_counters();
    match gateway.process(sid, EndpointRole::Client, &record)? {
        ProcessResult::Pass(_) | ProcessResult::Rewritten(_) => {}
        ProcessResult::Blocked => {
            return Err(crate::MboxError::Session("calibration record blocked"))
        }
    }
    let server = gateway.platform.total_counters().since(before);

    // The endpoint's share of a record: AES over the record plus the MAC.
    let mut client_cost = Counters::new();
    client_cost.normal(model.aes_bytes(record.len()) + model.hmac_short);

    let step = WorkStep {
        name: "record",
        client: client_cost,
        server,
        request_bytes: record.len(),
        // The middlebox forwards the record onward; model the ack/continue
        // signal back to the sender as a bare status byte.
        response_bytes: 1,
    };
    Ok(WorkProfile {
        setup,
        steps: vec![step; records_per_session as usize],
    })
}

fn tls_err(_e: teenet_tls::TlsError) -> &'static str {
    "tls failure during calibration"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbox_profile_shape() {
        let profile = calibrate_tls_mbox(3, 1024, 4).unwrap();
        assert_eq!(profile.steps.len(), 4);
        let step = &profile.steps[0];
        // Provisioning includes an attestation, so setup dwarfs a record.
        assert!(profile.setup.normal_instr > step.server.normal_instr);
        // In-enclave processing costs SGX instructions (ecall transitions).
        assert!(step.server.sgx_instr > 0);
        // Record is payload plus TLS framing overhead.
        assert!(step.request_bytes > 1024);
    }

    #[test]
    fn mbox_calibration_deterministic() {
        let a = calibrate_tls_mbox(9, 512, 2).unwrap();
        let b = calibrate_tls_mbox(9, 512, 2).unwrap();
        assert_eq!(a.setup, b.setup);
        assert_eq!(a.steps[0].server, b.steps[0].server);
        assert_eq!(a.steps[0].request_bytes, b.steps[0].request_bytes);
    }

    #[test]
    fn bigger_records_cost_more() {
        let small = calibrate_tls_mbox(5, 256, 1).unwrap();
        let large = calibrate_tls_mbox(5, 4096, 1).unwrap();
        assert!(
            large.steps[0].server.normal_instr > small.steps[0].server.normal_instr,
            "DPI over a longer record must cost more"
        );
        assert!(large.steps[0].client.normal_instr > small.steps[0].client.normal_instr);
    }
}
