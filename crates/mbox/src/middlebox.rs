//! The middlebox enclave: attested key reception and in-enclave record
//! processing.
//!
//! Endpoint approval is enforced by [`ProvisionPolicy`]: with
//! [`ProvisionPolicy::Bilateral`] the session only activates once *both*
//! endpoints have attested the middlebox and released the keys ("when both
//! end-points are SGX-enabled, it can be used to allow only the
//! middleboxes that both end-points agree upon decrypt/encrypt the TLS
//! traffic"); [`ProvisionPolicy::Unilateral`] activates on the first
//! release (the enterprise-inspection use case).

use std::collections::{HashMap, HashSet};

use teenet::attest::AttestConfig;
use teenet::responder::AttestResponder;
use teenet_sgx::{EnclaveCtx, EnclaveProgram, SgxError};
use teenet_tls::record::RecordProtection;

use crate::dpi::{DpiEngine, Verdict};
use crate::provision::{session_id, EndpointRole, ProvisionMsg};

/// How many endpoints must release keys before processing starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvisionPolicy {
    /// Both endpoints must agree (attest + release).
    Bilateral,
    /// One endpoint suffices (enterprise / provider deployment).
    Unilateral,
}

/// Ecall function ids of the middlebox enclave.
pub mod mb_fn {
    /// Attestation begin (responder).
    pub const ATTEST_BEGIN: u64 = 0;
    /// Attestation finish (responder).
    pub const ATTEST_FINISH: u64 = 1;
    /// Key release: nonce(32) ‖ channel-sealed [`super::ProvisionMsg`].
    pub const PROVISION: u64 = 2;
    /// Record processing: session(8) ‖ direction(1: 0=c2s,1=s2c) ‖ record.
    pub const PROCESS: u64 = 3;
    /// Statistics: session(8) → alerts(u64) ‖ blocked(u64) ‖ passed(u64).
    pub const STATS: u64 = 4;
}

/// PROCESS result status bytes.
pub mod process_status {
    /// Record passes unchanged; record bytes follow.
    pub const PASS: u8 = 0;
    /// Record dropped by policy; nothing follows.
    pub const BLOCKED: u8 = 1;
    /// Record rewritten; re-sealed record bytes follow.
    pub const REWRITTEN: u8 = 2;
}

struct MbSession {
    c2s: RecordProtection,
    s2c: RecordProtection,
    provisioned: HashSet<EndpointRole>,
    active: bool,
    alerts: u64,
    blocked: u64,
    passed: u64,
}

/// The middlebox enclave program.
///
/// Its code image covers the middlebox name, version, provisioning policy
/// and the **full DPI rule configuration** — endpoints approving a
/// middlebox approve exactly this behaviour, so a middlebox with altered
/// rules (or an exfiltration patch) measures differently and fails
/// attestation.
pub struct MiddleboxEnclave {
    name: String,
    version: u16,
    policy: ProvisionPolicy,
    engine: DpiEngine,
    responder: AttestResponder,
    sessions: HashMap<[u8; 8], MbSession>,
}

impl MiddleboxEnclave {
    /// Builds a middlebox enclave.
    pub fn new(
        name: &str,
        version: u16,
        policy: ProvisionPolicy,
        engine: DpiEngine,
        attest: AttestConfig,
    ) -> Self {
        MiddleboxEnclave {
            name: name.to_owned(),
            version,
            policy,
            engine,
            responder: AttestResponder::new(attest),
            sessions: HashMap::new(),
        }
    }

    /// The code image an identical honest build would have (what endpoints
    /// pin as the expected identity).
    pub fn image_for(
        name: &str,
        version: u16,
        policy: ProvisionPolicy,
        engine: &DpiEngine,
    ) -> Vec<u8> {
        let mut image = Vec::new();
        image.extend_from_slice(b"teenet-middlebox-");
        image.extend_from_slice(name.as_bytes());
        image.extend_from_slice(&version.to_le_bytes());
        image.push(match policy {
            ProvisionPolicy::Bilateral => 0,
            ProvisionPolicy::Unilateral => 1,
        });
        image.extend_from_slice(&engine.config_bytes());
        image
    }

    fn required_endpoints(&self) -> usize {
        match self.policy {
            ProvisionPolicy::Bilateral => 2,
            ProvisionPolicy::Unilateral => 1,
        }
    }
}

impl EnclaveProgram for MiddleboxEnclave {
    fn code_image(&self) -> Vec<u8> {
        Self::image_for(&self.name, self.version, self.policy, &self.engine)
    }

    fn ecall(
        &mut self,
        ctx: &mut EnclaveCtx<'_>,
        fn_id: u64,
        input: &[u8],
    ) -> core::result::Result<Vec<u8>, SgxError> {
        match fn_id {
            mb_fn::ATTEST_BEGIN => self.responder.handle_begin(ctx, input),
            mb_fn::ATTEST_FINISH => self.responder.handle_finish(ctx, input),
            mb_fn::PROVISION => {
                if input.len() < 32 {
                    return Err(SgxError::EcallRejected("short provision input"));
                }
                let (nonce, sealed) = input.split_at(32);
                let nonce: [u8; 32] = nonce
                    .try_into()
                    .map_err(|_| SgxError::EcallRejected("bad session nonce"))?;
                ctx.charge(ctx.model.aes_key_schedule + ctx.model.aes_bytes(sealed.len()));
                let channel = self.responder.channel_mut(&nonce)?;
                let plain = channel
                    .open(sealed)
                    .map_err(|_| SgxError::EcallRejected("bad provision message"))?;
                let msg = ProvisionMsg::from_bytes(&plain)
                    .map_err(|_| SgxError::EcallRejected("malformed provision message"))?;
                let sid = session_id(&msg.keys);
                ctx.malloc(plain.len().max(1))?;
                let required = self.required_endpoints();
                let session = self.sessions.entry(sid).or_insert_with(|| MbSession {
                    c2s: RecordProtection::with_seq(
                        msg.keys.suite,
                        msg.keys.client_write.clone(),
                        msg.seq_c2s,
                    ),
                    s2c: RecordProtection::with_seq(
                        msg.keys.suite,
                        msg.keys.server_write.clone(),
                        msg.seq_s2c,
                    ),
                    provisioned: HashSet::new(),
                    active: false,
                    alerts: 0,
                    blocked: 0,
                    passed: 0,
                });
                session.provisioned.insert(msg.role);
                session.active = session.provisioned.len() >= required;
                let mut out = sid.to_vec();
                out.push(session.active as u8);
                Ok(out)
            }
            mb_fn::PROCESS => {
                if input.len() < 9 {
                    return Err(SgxError::EcallRejected("short process input"));
                }
                let sid: [u8; 8] = input[..8]
                    .try_into()
                    .map_err(|_| SgxError::EcallRejected("bad session id"))?;
                let direction = input[8];
                let record = &input[9..];
                ctx.charge(ctx.model.aes_key_schedule + 2 * ctx.model.aes_bytes(record.len()));
                let session = self
                    .sessions
                    .get_mut(&sid)
                    .ok_or(SgxError::EcallRejected("unknown session"))?;
                if !session.active {
                    return Err(SgxError::EcallRejected(
                        "session not approved by all endpoints",
                    ));
                }
                let protection = if direction == 0 {
                    &mut session.c2s
                } else {
                    &mut session.s2c
                };
                // Decrypt a copy: for Pass the original ciphertext is
                // forwarded untouched; for Rewrite we re-seal at the same
                // sequence number so downstream state stays consistent.
                let seq_before = protection.seq();
                let plain = protection
                    .open(record)
                    .map_err(|_| SgxError::EcallRejected("record failed authentication"))?;
                match self.engine.inspect(&plain) {
                    Verdict::Pass { alerts } => {
                        session.alerts += alerts as u64;
                        session.passed += 1;
                        let mut out = vec![process_status::PASS];
                        out.extend_from_slice(record);
                        Ok(out)
                    }
                    Verdict::Blocked { alerts } => {
                        session.alerts += alerts as u64;
                        session.blocked += 1;
                        Ok(vec![process_status::BLOCKED])
                    }
                    Verdict::Rewritten { data, alerts } => {
                        session.alerts += alerts as u64;
                        session.passed += 1;
                        // Re-seal at the consumed sequence number.
                        let p = if direction == 0 {
                            &session.c2s
                        } else {
                            &session.s2c
                        };
                        let mut resealer =
                            RecordProtection::with_seq(p.suite(), p.keys().clone(), seq_before);
                        let sealed = resealer
                            .seal(&data)
                            .map_err(|_| SgxError::EcallRejected("reseal failed"))?;
                        let mut out = vec![process_status::REWRITTEN];
                        out.extend_from_slice(&sealed);
                        Ok(out)
                    }
                }
            }
            mb_fn::STATS => {
                if input.len() != 8 {
                    return Err(SgxError::EcallRejected("short stats input"));
                }
                let sid: [u8; 8] = input
                    .try_into()
                    .map_err(|_| SgxError::EcallRejected("bad session id"))?;
                let session = self
                    .sessions
                    .get(&sid)
                    .ok_or(SgxError::EcallRejected("unknown session"))?;
                let mut out = Vec::with_capacity(24);
                out.extend_from_slice(&session.alerts.to_le_bytes());
                out.extend_from_slice(&session.blocked.to_le_bytes());
                out.extend_from_slice(&session.passed.to_le_bytes());
                Ok(out)
            }
            _ => Err(SgxError::EcallRejected("unknown middlebox fn")),
        }
    }
}
