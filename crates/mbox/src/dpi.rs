//! Deep packet inspection: an Aho–Corasick multi-pattern matcher and rule
//! actions.
//!
//! This is the in-network function of §3.3: once an attested middlebox
//! holds the session keys, it inspects decrypted TLS records against a
//! rule set ("TLS traffic in enterprise networks can be sent to the
//! SGX-enabled cloud for deep packet inspection").

// teenet-analyze: allow-file(enclave-index) -- every node/rule index is produced by the automaton construction itself (nodes.len()-1 at push time, match indices bounded by scan); record bytes only select transitions, never indices
use std::collections::VecDeque;

/// What to do when a rule matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Record the match, let the record through.
    Alert,
    /// Drop the record.
    Block,
    /// Mask the matched bytes with `*` and let the record through.
    Rewrite,
}

/// One inspection rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Byte pattern to search for.
    pub pattern: Vec<u8>,
    /// Action on match.
    pub action: Action,
}

impl Rule {
    /// Builds a rule.
    pub fn new(pattern: &[u8], action: Action) -> Self {
        Rule {
            pattern: pattern.to_vec(),
            action,
        }
    }
}

/// A match found during scanning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the matching rule.
    pub rule: usize,
    /// End offset of the match in the haystack (exclusive).
    pub end: usize,
}

#[derive(Debug, Clone)]
struct AcNode {
    children: Vec<(u8, usize)>, // sparse transition list
    fail: usize,
    outputs: Vec<usize>, // rule indices ending here
    depth: usize,
}

/// An Aho–Corasick automaton over a rule set.
#[derive(Debug, Clone)]
pub struct DpiEngine {
    nodes: Vec<AcNode>,
    rules: Vec<Rule>,
}

impl DpiEngine {
    /// Compiles the automaton. Empty patterns are ignored.
    pub fn build(rules: Vec<Rule>) -> Self {
        let mut nodes = vec![AcNode {
            children: Vec::new(),
            fail: 0,
            outputs: Vec::new(),
            depth: 0,
        }];
        // Trie construction.
        for (ri, rule) in rules.iter().enumerate() {
            if rule.pattern.is_empty() {
                continue;
            }
            let mut cur = 0usize;
            for &b in &rule.pattern {
                cur = match nodes[cur].children.iter().find(|&&(c, _)| c == b) {
                    Some(&(_, next)) => next,
                    None => {
                        let depth = nodes[cur].depth + 1;
                        nodes.push(AcNode {
                            children: Vec::new(),
                            fail: 0,
                            outputs: Vec::new(),
                            depth,
                        });
                        let next = nodes.len() - 1;
                        nodes[cur].children.push((b, next));
                        next
                    }
                };
            }
            nodes[cur].outputs.push(ri);
        }
        // Failure links via BFS.
        let mut queue = VecDeque::new();
        let root_children = nodes[0].children.clone();
        for &(_, child) in &root_children {
            nodes[child].fail = 0;
            queue.push_back(child);
        }
        while let Some(n) = queue.pop_front() {
            let children = nodes[n].children.clone();
            for (b, child) in children {
                // Follow failure links of the parent to find the deepest
                // proper suffix state with a b-transition.
                let mut f = nodes[n].fail;
                let fail_target = loop {
                    if let Some(&(_, t)) = nodes[f].children.iter().find(|&&(c, _)| c == b) {
                        if t != child {
                            break t;
                        }
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f].fail;
                };
                nodes[child].fail = fail_target;
                let extra = nodes[fail_target].outputs.clone();
                nodes[child].outputs.extend(extra);
                queue.push_back(child);
            }
        }
        DpiEngine { nodes, rules }
    }

    /// The compiled rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Scans `haystack`, returning all matches.
    pub fn scan(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut state = 0usize;
        for (i, &b) in haystack.iter().enumerate() {
            loop {
                if let Some(&(_, next)) = self.nodes[state].children.iter().find(|&&(c, _)| c == b)
                {
                    state = next;
                    break;
                }
                if state == 0 {
                    break;
                }
                state = self.nodes[state].fail;
            }
            for &rule in &self.nodes[state].outputs {
                out.push(Match { rule, end: i + 1 });
            }
        }
        out
    }

    /// Applies the rule set to a record: returns the verdict and, for
    /// rewrites, the sanitised bytes.
    pub fn inspect(&self, record: &[u8]) -> Verdict {
        let matches = self.scan(record);
        if matches.is_empty() {
            return Verdict::Pass { alerts: 0 };
        }
        // Block wins over Rewrite wins over Alert.
        if matches
            .iter()
            .any(|m| self.rules[m.rule].action == Action::Block)
        {
            return Verdict::Blocked {
                alerts: matches.len(),
            };
        }
        if matches
            .iter()
            .any(|m| self.rules[m.rule].action == Action::Rewrite)
        {
            let mut data = record.to_vec();
            for m in &matches {
                if self.rules[m.rule].action == Action::Rewrite {
                    let len = self.rules[m.rule].pattern.len();
                    for b in data[m.end - len..m.end].iter_mut() {
                        *b = b'*';
                    }
                }
            }
            return Verdict::Rewritten {
                data,
                alerts: matches.len(),
            };
        }
        Verdict::Pass {
            alerts: matches.len(),
        }
    }

    /// A canonical byte encoding of the rule set (part of the middlebox
    /// code identity: endpoints approve a middlebox *with its rules*).
    pub fn config_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for r in &self.rules {
            out.push(match r.action {
                Action::Alert => 0,
                Action::Block => 1,
                Action::Rewrite => 2,
            });
            out.extend_from_slice(&(r.pattern.len() as u16).to_le_bytes());
            out.extend_from_slice(&r.pattern);
        }
        out
    }
}

/// Result of inspecting one record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Forward unchanged; `alerts` rules fired with [`Action::Alert`].
    Pass {
        /// Number of matches observed.
        alerts: usize,
    },
    /// Drop the record.
    Blocked {
        /// Number of matches observed.
        alerts: usize,
    },
    /// Forward the sanitised bytes.
    Rewritten {
        /// Sanitised record plaintext.
        data: Vec<u8>,
        /// Number of matches observed.
        alerts: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(patterns: &[(&[u8], Action)]) -> DpiEngine {
        DpiEngine::build(patterns.iter().map(|(p, a)| Rule::new(p, *a)).collect())
    }

    #[test]
    fn finds_single_pattern() {
        let e = engine(&[(b"virus", Action::Alert)]);
        let m = e.scan(b"this has a virus inside");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].rule, 0);
        assert_eq!(m[0].end, 16);
    }

    #[test]
    fn finds_overlapping_patterns() {
        let e = engine(&[
            (b"he", Action::Alert),
            (b"she", Action::Alert),
            (b"hers", Action::Alert),
        ]);
        let m = e.scan(b"ushers");
        // "she" ends at 4, "he" ends at 4, "hers" ends at 6.
        let rules: Vec<usize> = m.iter().map(|m| m.rule).collect();
        assert!(rules.contains(&0));
        assert!(rules.contains(&1));
        assert!(rules.contains(&2));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn repeated_matches() {
        let e = engine(&[(b"ab", Action::Alert)]);
        assert_eq!(e.scan(b"ababab").len(), 3);
    }

    #[test]
    fn no_match() {
        let e = engine(&[(b"malware", Action::Alert)]);
        assert!(e.scan(b"perfectly clean traffic").is_empty());
        assert!(e.scan(b"").is_empty());
    }

    #[test]
    fn binary_patterns() {
        let e = engine(&[(&[0x00, 0xff, 0x00], Action::Alert)]);
        assert_eq!(e.scan(&[0xab, 0x00, 0xff, 0x00, 0xcd]).len(), 1);
    }

    #[test]
    fn inspect_pass_and_alert() {
        let e = engine(&[(b"suspicious", Action::Alert)]);
        assert_eq!(e.inspect(b"all good"), Verdict::Pass { alerts: 0 });
        assert_eq!(
            e.inspect(b"suspicious payload"),
            Verdict::Pass { alerts: 1 }
        );
    }

    #[test]
    fn inspect_block_wins() {
        let e = engine(&[(b"exfil", Action::Block), (b"exf", Action::Alert)]);
        assert!(matches!(
            e.inspect(b"data exfil attempt"),
            Verdict::Blocked { .. }
        ));
    }

    #[test]
    fn inspect_rewrite_masks() {
        let e = engine(&[(b"ssn=123456789", Action::Rewrite)]);
        let v = e.inspect(b"payload ssn=123456789 end");
        match v {
            Verdict::Rewritten { data, alerts } => {
                assert_eq!(alerts, 1);
                assert_eq!(&data, b"payload ************* end");
            }
            other => panic!("expected rewrite, got {other:?}"),
        }
    }

    #[test]
    fn config_bytes_distinguish_rule_sets() {
        let a = engine(&[(b"x", Action::Alert)]);
        let b = engine(&[(b"x", Action::Block)]);
        let c = engine(&[(b"y", Action::Alert)]);
        assert_ne!(a.config_bytes(), b.config_bytes());
        assert_ne!(a.config_bytes(), c.config_bytes());
    }

    #[test]
    fn empty_patterns_ignored() {
        let e = engine(&[(b"", Action::Alert), (b"real", Action::Alert)]);
        let m = e.scan(b"the real thing");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].rule, 1);
    }
}
