#![warn(missing_docs)]

//! # teenet-mbox
//!
//! TLS-aware middleboxes — the paper's third case study (§3.3):
//! "endpoints use a remote attestation to authenticate middleboxes and
//! give their session keys through the secure channel to in-path
//! middleboxes."
//!
//! * [`dpi`] — an Aho–Corasick inspection engine with alert/block/rewrite
//!   rules; the rule set is part of the middlebox's measured identity.
//! * [`provision`] — the key-release message and session identification.
//! * [`middlebox`] — the middlebox enclave: attestation responder, key
//!   reception gated by [`middlebox::ProvisionPolicy`] (bilateral consent
//!   or unilateral enterprise mode), in-enclave record processing.
//! * [`scenarios`] — deployable hosts plus the enterprise-outbound and
//!   cloud-DPI flows end to end; [`chain`] — multi-box paths.
//! * [`baseline`] — the out-of-band key-passing baseline the paper
//!   mentions, for comparing against the attested design.

pub mod baseline;
pub mod chain;
pub mod dpi;
pub mod driver;
pub mod error;
pub mod middlebox;
pub mod provision;
pub mod scenarios;

pub use baseline::{compare_key_release_designs, ComparisonReport, ReleaseOutcome};
pub use chain::MiddleboxChain;
pub use dpi::{Action, DpiEngine, Rule, Verdict};
pub use driver::TlsMboxService;
pub use error::{MboxError, Result};
pub use middlebox::{MiddleboxEnclave, ProvisionPolicy};
pub use provision::{session_id, EndpointRole, ProvisionMsg};
pub use scenarios::{MiddleboxHost, ProcessResult, ScenarioReport};

#[cfg(test)]
mod tests {
    use super::*;
    use teenet::attest::AttestConfig;
    use teenet::ledger::AttestLedger;
    use teenet_crypto::SecureRng;
    use teenet_sgx::EpidGroup;
    use teenet_tls::handshake::{handshake, TlsConfig};

    #[test]
    fn enterprise_outbound_blocks_exfil() {
        let report = scenarios::enterprise_outbound(1).unwrap();
        assert_eq!(report.blocked, 1, "the EXFIL record must be blocked");
        assert_eq!(report.passed, 3);
        assert!(report.alerts >= 1, "password alert fired");
        assert_eq!(report.attestations, 1, "one middlebox, one attestation");
        assert_eq!(
            report.server_received,
            vec![
                b"GET /public".to_vec(),
                b"password reset request".to_vec(),
                b"regular traffic".to_vec()
            ],
            "exactly the non-blocked records reach the server"
        );
    }

    #[test]
    fn cloud_dpi_requires_both_endpoints() {
        let report = scenarios::cloud_dpi_bilateral(2).unwrap();
        assert_eq!(report.attestations, 2, "both endpoints attest");
        assert_eq!(report.alerts, 1);
        assert_eq!(report.blocked, 0);
        assert_eq!(report.server_received.len(), 2);
    }

    #[test]
    fn tampered_middlebox_fails_attestation() {
        // A middlebox whose rules differ from what the endpoint pinned
        // (e.g. silently widened to log everything) fails attestation and
        // never sees the session keys.
        let mut rng = SecureRng::seed_from_u64(5);
        let epid = EpidGroup::new(35, &mut rng).unwrap();
        let mut ledger = AttestLedger::new();
        let mut host = MiddleboxHost::deploy(
            "gw",
            ProvisionPolicy::Unilateral,
            vec![Rule::new(b"evil-extra-rule", Action::Alert)],
            AttestConfig::fast(),
            &epid,
            5,
            &mut rng,
        )
        .unwrap();
        // The endpoint expects the box WITHOUT the extra rule.
        host.expected = teenet_sgx::measure_image(&middlebox::MiddleboxEnclave::image_for(
            "gw",
            1,
            ProvisionPolicy::Unilateral,
            &DpiEngine::build(vec![]),
        ));
        let mut srng = rng.fork(b"server");
        let (client, _server) = handshake(TlsConfig::fast(), &mut rng, &mut srng).unwrap();
        let err = host
            .provision(EndpointRole::Client, &client, &mut rng, &mut ledger)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(
            err,
            MboxError::Teenet(teenet::TeenetError::IdentityRejected(_))
        ));
    }

    #[test]
    fn chain_of_middleboxes() {
        let mut rng = SecureRng::seed_from_u64(7);
        let epid = EpidGroup::new(36, &mut rng).unwrap();
        let mut ledger = AttestLedger::new();
        let firewall = MiddleboxHost::deploy(
            "firewall",
            ProvisionPolicy::Unilateral,
            vec![Rule::new(b"attack", Action::Block)],
            AttestConfig::fast(),
            &epid,
            7,
            &mut rng,
        )
        .unwrap();
        let dlp = MiddleboxHost::deploy(
            "dlp",
            ProvisionPolicy::Unilateral,
            vec![Rule::new(b"ssn=123-45-6789", Action::Rewrite)],
            AttestConfig::fast(),
            &epid,
            8,
            &mut rng,
        )
        .unwrap();
        let mut srng = rng.fork(b"server");
        let (mut client, mut server) = handshake(TlsConfig::fast(), &mut rng, &mut srng).unwrap();
        let mut chain = MiddleboxChain::provision(
            vec![firewall, dlp],
            EndpointRole::Client,
            &client,
            &mut rng,
            &mut ledger,
        )
        .unwrap();
        assert_eq!(chain.len(), 2);
        // Table 3: attestations = number of in-path middleboxes.
        assert_eq!(ledger.total(), 2);

        // Clean record passes both boxes.
        let r = client.send(b"normal request").unwrap();
        let out = chain.process(EndpointRole::Client, &r).unwrap().unwrap();
        assert_eq!(server.recv(&out).unwrap(), b"normal request");

        // A record with PII is rewritten by the DLP box but still delivered.
        let r = client.send(b"form: ssn=123-45-6789 submitted").unwrap();
        let out = chain.process(EndpointRole::Client, &r).unwrap().unwrap();
        assert_eq!(
            server.recv(&out).unwrap(),
            b"form: *************** submitted"
        );

        // An attack record is blocked by the firewall; the server's
        // sequence state must not advance... it never sees the record.
        let r = client.send(b"attack payload").unwrap();
        assert!(chain.process(EndpointRole::Client, &r).unwrap().is_none());

        let (alerts, blocked, passed) = chain.stats().unwrap();
        assert_eq!(blocked, 1);
        assert!(passed >= 4, "each box counts its passes: {passed}");
        assert!(alerts >= 1);
    }

    #[test]
    fn middlebox_cannot_forge_beyond_session() {
        // A middlebox only learns the session it was given keys for;
        // records from a *different* session fail authentication.
        let mut rng = SecureRng::seed_from_u64(9);
        let epid = EpidGroup::new(37, &mut rng).unwrap();
        let mut ledger = AttestLedger::new();
        let mut host = MiddleboxHost::deploy(
            "gw",
            ProvisionPolicy::Unilateral,
            vec![],
            AttestConfig::fast(),
            &epid,
            9,
            &mut rng,
        )
        .unwrap();
        let mut srng = rng.fork(b"server");
        let (client, _s1) = handshake(TlsConfig::fast(), &mut rng, &mut srng).unwrap();
        let (mut other_client, _s2) = handshake(TlsConfig::fast(), &mut rng, &mut srng).unwrap();
        let (sid, _) = host
            .provision(EndpointRole::Client, &client, &mut rng, &mut ledger)
            .unwrap();
        let foreign = other_client.send(b"foreign session data").unwrap();
        assert!(host.process(sid, EndpointRole::Client, &foreign).is_err());
    }
}
