//! Error type for the middlebox crate.

use core::fmt;
use teenet::TeenetError;
use teenet_sgx::SgxError;
use teenet_tls::TlsError;

/// Errors from provisioning or record processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MboxError {
    /// A provisioning message was malformed.
    BadProvision(&'static str),
    /// Session is unknown or not yet active.
    Session(&'static str),
    /// A calibration precondition failed (e.g. a session of zero records).
    Calibration(&'static str),
    /// The record was blocked by policy.
    Blocked,
    /// Underlying TLS failure.
    Tls(TlsError),
    /// Underlying attestation failure.
    Teenet(TeenetError),
    /// Underlying SGX failure.
    Sgx(SgxError),
}

impl fmt::Display for MboxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MboxError::BadProvision(w) => write!(f, "bad provisioning message: {w}"),
            MboxError::Session(w) => write!(f, "session error: {w}"),
            MboxError::Calibration(w) => write!(f, "calibration rejected: {w}"),
            MboxError::Blocked => write!(f, "record blocked by policy"),
            MboxError::Tls(e) => write!(f, "tls error: {e}"),
            MboxError::Teenet(e) => write!(f, "attestation error: {e}"),
            MboxError::Sgx(e) => write!(f, "sgx error: {e}"),
        }
    }
}

impl std::error::Error for MboxError {}

impl From<TlsError> for MboxError {
    fn from(e: TlsError) -> Self {
        MboxError::Tls(e)
    }
}

impl From<TeenetError> for MboxError {
    fn from(e: TeenetError) -> Self {
        MboxError::Teenet(e)
    }
}

impl From<SgxError> for MboxError {
    fn from(e: SgxError) -> Self {
        MboxError::Sgx(e)
    }
}

/// Result alias.
pub type Result<T> = core::result::Result<T, MboxError>;
