//! Baseline comparison: session-key passing *without* attestation.
//!
//! The paper positions its design against existing approaches — protocol
//! changes (mcTLS-style explicit middlebox inclusion), computing over
//! encrypted traffic (BlindBox), and "passing session keys out-of-band" —
//! and leaves "the detailed design and comparison with alternative
//! approach as future work" (§3.3). This module implements the
//! out-of-band-key baseline so the comparison can be run: the endpoint
//! ships keys to whatever claims to be the middlebox, with no identity
//! evidence, which is exactly the gap SGX attestation closes.

use teenet::attest::AttestConfig;
use teenet::ledger::AttestLedger;
use teenet_crypto::SecureRng;
use teenet_sgx::EpidGroup;
use teenet_tls::handshake::{handshake, TlsConfig};

use crate::dpi::{Action, Rule};
use crate::error::Result;
use crate::middlebox::ProvisionPolicy;
use crate::provision::EndpointRole;
use crate::scenarios::MiddleboxHost;

/// Outcome of one key-release attempt against a middlebox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// Keys released; the middlebox can read the session.
    KeysReleased,
    /// The release was refused (identity mismatch caught).
    Refused,
}

/// Report comparing the two key-release designs against an honest and a
/// tampered middlebox.
#[derive(Debug)]
pub struct ComparisonReport {
    /// Out-of-band baseline vs the honest box.
    pub oob_honest: ReleaseOutcome,
    /// Out-of-band baseline vs the tampered box (the failure mode).
    pub oob_tampered: ReleaseOutcome,
    /// Attested design vs the honest box.
    pub attested_honest: ReleaseOutcome,
    /// Attested design vs the tampered box.
    pub attested_tampered: ReleaseOutcome,
    /// Attestations the attested design performed.
    pub attestations: u64,
}

/// Runs the comparison: an endpoint wants DPI from a middlebox whose
/// *advertised* rule set it approves, but one deployment of that middlebox
/// has been tampered with (an exfiltration patch widening the rules).
pub fn compare_key_release_designs(seed: u64) -> Result<ComparisonReport> {
    let mut rng = SecureRng::seed_from_u64(seed);
    let epid = EpidGroup::new(44, &mut rng).map_err(crate::error::MboxError::Sgx)?;
    let mut ledger = AttestLedger::new();
    let approved_rules = vec![Rule::new(b"malware", Action::Alert)];
    let tampered_rules = vec![
        Rule::new(b"malware", Action::Alert),
        // The patch: log everything (an empty pattern is ignored by the
        // engine, so the attacker matches every space character instead).
        Rule::new(b" ", Action::Alert),
    ];

    let mut honest = MiddleboxHost::deploy(
        "dpi-service",
        ProvisionPolicy::Unilateral,
        approved_rules.clone(),
        AttestConfig::fast(),
        &epid,
        seed,
        &mut rng,
    )?;
    let mut tampered = MiddleboxHost::deploy(
        "dpi-service",
        ProvisionPolicy::Unilateral,
        tampered_rules,
        AttestConfig::fast(),
        &epid,
        seed + 1,
        &mut rng,
    )?;
    // Both deployments *claim* the approved identity; only the honest one
    // actually has it.
    tampered.expected = honest.expected;

    let mut srng = rng.fork(b"server");
    let (client, _server) = handshake(TlsConfig::fast(), &mut rng, &mut srng)?;

    // --- Baseline: out-of-band key passing. The endpoint has no identity
    // evidence at all — it sends keys to whoever answers at the address.
    // Both boxes get the keys.
    let oob_honest = ReleaseOutcome::KeysReleased;
    let oob_tampered = ReleaseOutcome::KeysReleased;

    // --- Attested design: keys only flow after remote attestation against
    // the approved identity.
    let attested_honest =
        match honest.provision(EndpointRole::Client, &client, &mut rng, &mut ledger) {
            Ok(_) => ReleaseOutcome::KeysReleased,
            Err(_) => ReleaseOutcome::Refused,
        };
    let attested_tampered =
        match tampered.provision(EndpointRole::Client, &client, &mut rng, &mut ledger) {
            Ok(_) => ReleaseOutcome::KeysReleased,
            Err(_) => ReleaseOutcome::Refused,
        };

    Ok(ComparisonReport {
        oob_honest,
        oob_tampered,
        attested_honest,
        attested_tampered,
        attestations: ledger.total(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attestation_closes_the_oob_gap() {
        let report = compare_key_release_designs(5).unwrap();
        // The baseline leaks keys to the tampered box; attestation refuses
        // it while still serving the honest one.
        assert_eq!(report.oob_honest, ReleaseOutcome::KeysReleased);
        assert_eq!(report.oob_tampered, ReleaseOutcome::KeysReleased);
        assert_eq!(report.attested_honest, ReleaseOutcome::KeysReleased);
        assert_eq!(report.attested_tampered, ReleaseOutcome::Refused);
        // Both boxes claim the same identity, so the ledger (which keys
        // sessions by claimed identity) records one first contact.
        assert_eq!(report.attestations, 1);
    }

    #[test]
    fn comparison_is_deterministic() {
        let a = compare_key_release_designs(9).unwrap();
        let b = compare_key_release_designs(9).unwrap();
        assert_eq!(a.attested_tampered, b.attested_tampered);
        assert_eq!(a.attestations, b.attestations);
    }
}
