//! Enclave measurement (MRENCLAVE / MRSIGNER) and SIGSTRUCT.
//!
//! The hardware "'measures' the identity of the software (i.e., a SHA-256
//! digest of enclave contents) inside the enclave, and enforce\[s\] that only
//! the software whose integrity is verified can be executed" (paper §2.1).
//! The measurement is built incrementally the way real SGX does: ECREATE
//! seeds the hash, each EADD records page metadata, each EEXTEND hashes a
//! 256-byte chunk of page content.

use teenet_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use teenet_crypto::sha256::{sha256, Sha256};
use teenet_crypto::SecureRng;

use crate::error::{Result, SgxError};

/// A 256-bit enclave or signer identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Measurement(pub [u8; 32]);

impl Measurement {
    /// Renders a short hex prefix for debugging.
    pub fn short_hex(&self) -> String {
        self.0[..6].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl core::fmt::Debug for Measurement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Measurement({}…)", self.short_hex())
    }
}

impl AsRef<[u8]> for Measurement {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Incrementally builds an MRENCLAVE value from enclave construction events.
pub struct MeasurementBuilder {
    hasher: Sha256,
}

/// Page size used by the measurement process (and the EPC).
pub const PAGE_SIZE: usize = 4096;
/// EEXTEND chunk size.
pub const EEXTEND_CHUNK: usize = 256;

impl MeasurementBuilder {
    /// ECREATE: begins a measurement with the enclave's declared size.
    pub fn ecreate(size_pages: usize) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(b"ECREATE");
        hasher.update(&(size_pages as u64).to_le_bytes());
        MeasurementBuilder { hasher }
    }

    /// EADD: records the addition of one page at `offset` with `page_type`.
    pub fn eadd(&mut self, offset: usize, page_type: crate::epc::PageType) {
        self.hasher.update(b"EADD");
        self.hasher.update(&(offset as u64).to_le_bytes());
        self.hasher.update(&[page_type as u8]);
    }

    /// EEXTEND: measures page content in 256-byte chunks.
    ///
    /// `content` shorter than a page is zero-padded, as loaders do.
    pub fn eextend(&mut self, offset: usize, content: &[u8]) {
        let mut page = [0u8; PAGE_SIZE];
        let n = content.len().min(PAGE_SIZE);
        // teenet-analyze: allow(enclave-index) -- n is min-clamped to both slice lengths
        page[..n].copy_from_slice(&content[..n]);
        for (i, chunk) in page.chunks(EEXTEND_CHUNK).enumerate() {
            self.hasher.update(b"EEXTEND");
            self.hasher
                .update(&((offset + i * EEXTEND_CHUNK) as u64).to_le_bytes());
            self.hasher.update(chunk);
        }
    }

    /// EINIT: finalises and returns the MRENCLAVE.
    pub fn finalize(self) -> Measurement {
        Measurement(self.hasher.finalize())
    }
}

/// Convenience: measures a code image the way the builder would when the
/// image is loaded page by page from offset 0.
pub fn measure_image(image: &[u8]) -> Measurement {
    let pages = image.len().div_ceil(PAGE_SIZE).max(1);
    let mut b = MeasurementBuilder::ecreate(pages);
    for p in 0..pages {
        let start = p * PAGE_SIZE;
        let end = (start + PAGE_SIZE).min(image.len());
        b.eadd(start, crate::epc::PageType::Regular);
        b.eextend(start, image.get(start..end).unwrap_or(&[]));
    }
    b.finalize()
}

/// The enclave signature structure an enclave author ships with the binary.
///
/// Carries the expected MRENCLAVE signed by the author's key; EINIT verifies
/// it and derives MRSIGNER from the author's public key. In the paper's
/// shared-code model (§4) the signing key may be a community-published
/// "open" key (e.g. the Tor foundation's).
#[derive(Clone, Debug)]
pub struct Sigstruct {
    /// The measurement the author vouches for.
    pub mrenclave: Measurement,
    /// Product/security version fields (bumped on updates).
    pub isv_svn: u16,
    /// The author's verification key.
    pub signer: VerifyingKey,
    /// Signature over (mrenclave, isv_svn).
    pub signature: Signature,
}

impl Sigstruct {
    /// Signs `mrenclave` with the author's key.
    pub fn sign(
        mrenclave: Measurement,
        isv_svn: u16,
        key: &SigningKey,
        rng: &mut SecureRng,
    ) -> Result<Self> {
        let msg = Self::message(&mrenclave, isv_svn);
        let signature = key.sign(&msg, rng)?;
        Ok(Sigstruct {
            mrenclave,
            isv_svn,
            signer: key.verifying_key(),
            signature,
        })
    }

    /// Verifies the author signature; returns MRSIGNER on success.
    pub fn verify(&self) -> Result<Measurement> {
        let msg = Self::message(&self.mrenclave, self.isv_svn);
        self.signer
            .verify(&msg, &self.signature)
            .map_err(|_| SgxError::InitFailed("SIGSTRUCT signature invalid"))?;
        Ok(mrsigner_of(&self.signer))
    }

    fn message(mrenclave: &Measurement, isv_svn: u16) -> Vec<u8> {
        let mut msg = Vec::with_capacity(64);
        msg.extend_from_slice(b"SIGSTRUCT");
        msg.extend_from_slice(&mrenclave.0);
        msg.extend_from_slice(&isv_svn.to_le_bytes());
        msg
    }
}

/// MRSIGNER: hash of the signer's public key.
pub fn mrsigner_of(key: &VerifyingKey) -> Measurement {
    Measurement(sha256(&key.to_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use teenet_crypto::schnorr::SchnorrGroup;

    #[test]
    fn identical_images_measure_identically() {
        let image = vec![7u8; 10_000];
        assert_eq!(measure_image(&image), measure_image(&image));
    }

    #[test]
    fn different_images_measure_differently() {
        let a = vec![1u8; 5000];
        let mut b = a.clone();
        b[4999] ^= 1;
        assert_ne!(measure_image(&a), measure_image(&b));
    }

    #[test]
    fn single_flipped_bit_changes_measurement() {
        // A "compromised OR executes additional operations" (paper §3.2) —
        // even one bit of difference must change the identity.
        let a = vec![0u8; PAGE_SIZE * 3];
        let mut b = a.clone();
        b[PAGE_SIZE + 17] = 1;
        assert_ne!(measure_image(&a), measure_image(&b));
    }

    #[test]
    fn empty_image_measures() {
        // Degenerate but legal: one zero page.
        let m = measure_image(&[]);
        assert_eq!(m, measure_image(&[]));
    }

    #[test]
    fn page_layout_affects_measurement() {
        // Same bytes at different offsets hash differently (EADD offsets are
        // part of the measurement).
        let mut b1 = MeasurementBuilder::ecreate(2);
        b1.eadd(0, crate::epc::PageType::Regular);
        b1.eextend(0, b"data");
        let mut b2 = MeasurementBuilder::ecreate(2);
        b2.eadd(PAGE_SIZE, crate::epc::PageType::Regular);
        b2.eextend(PAGE_SIZE, b"data");
        assert_ne!(b1.finalize(), b2.finalize());
    }

    #[test]
    fn sigstruct_roundtrip() {
        let group = SchnorrGroup::small();
        let mut rng = SecureRng::seed_from_u64(1);
        let key = SigningKey::generate(&group, &mut rng).unwrap();
        let mr = measure_image(b"some enclave code");
        let sig = Sigstruct::sign(mr, 1, &key, &mut rng).unwrap();
        let mrsigner = sig.verify().unwrap();
        assert_eq!(mrsigner, mrsigner_of(&key.verifying_key()));
    }

    #[test]
    fn sigstruct_rejects_tampered_measurement() {
        let group = SchnorrGroup::small();
        let mut rng = SecureRng::seed_from_u64(2);
        let key = SigningKey::generate(&group, &mut rng).unwrap();
        let mr = measure_image(b"legit code");
        let mut sig = Sigstruct::sign(mr, 1, &key, &mut rng).unwrap();
        sig.mrenclave = measure_image(b"malicious code");
        assert!(sig.verify().is_err());
    }

    #[test]
    fn sigstruct_rejects_svn_rollback() {
        let group = SchnorrGroup::small();
        let mut rng = SecureRng::seed_from_u64(3);
        let key = SigningKey::generate(&group, &mut rng).unwrap();
        let mr = measure_image(b"code");
        let mut sig = Sigstruct::sign(mr, 5, &key, &mut rng).unwrap();
        sig.isv_svn = 4;
        assert!(sig.verify().is_err());
    }

    #[test]
    fn mrsigner_distinct_per_key() {
        let group = SchnorrGroup::small();
        let mut rng = SecureRng::seed_from_u64(4);
        let k1 = SigningKey::generate(&group, &mut rng).unwrap();
        let k2 = SigningKey::generate(&group, &mut rng).unwrap();
        assert_ne!(
            mrsigner_of(&k1.verifying_key()),
            mrsigner_of(&k2.verifying_key())
        );
    }
}
