//! Error type for the SGX emulator.

use core::fmt;
use teenet_crypto::CryptoError;

/// Errors produced by the SGX emulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// The referenced enclave does not exist or was destroyed.
    NoSuchEnclave(u64),
    /// Enclave is not in the right lifecycle state for the operation.
    BadState {
        /// Operation attempted.
        op: &'static str,
        /// State the enclave was in.
        state: &'static str,
    },
    /// The Enclave Page Cache is out of free pages.
    EpcExhausted {
        /// Pages requested.
        requested: usize,
        /// Pages free.
        free: usize,
    },
    /// SIGSTRUCT signature or identity check failed at EINIT.
    InitFailed(&'static str),
    /// A REPORT MAC failed verification.
    ReportMacMismatch,
    /// A QUOTE signature failed verification.
    QuoteInvalid(&'static str),
    /// A VM-TEE endorsement chain (vendor root → report-signing key)
    /// failed verification.
    EndorsementInvalid(&'static str),
    /// Measurement did not match the expected identity.
    MeasurementMismatch,
    /// Sealed blob could not be unsealed (wrong enclave, tampered, ...).
    UnsealFailed(&'static str),
    /// An ecall reached an enclave program that rejected it.
    EcallRejected(&'static str),
    /// A host (ocall) return value failed an Iago sanity check.
    IagoViolation(&'static str),
    /// Underlying cryptographic failure.
    Crypto(CryptoError),
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::NoSuchEnclave(id) => write!(f, "no such enclave: {id}"),
            SgxError::BadState { op, state } => {
                write!(f, "cannot {op} while enclave is {state}")
            }
            SgxError::EpcExhausted { requested, free } => {
                write!(f, "EPC exhausted: requested {requested} pages, {free} free")
            }
            SgxError::InitFailed(why) => write!(f, "EINIT failed: {why}"),
            SgxError::ReportMacMismatch => write!(f, "REPORT MAC mismatch"),
            SgxError::QuoteInvalid(why) => write!(f, "invalid QUOTE: {why}"),
            SgxError::EndorsementInvalid(why) => {
                write!(f, "invalid endorsement chain: {why}")
            }
            SgxError::MeasurementMismatch => write!(f, "enclave measurement mismatch"),
            SgxError::UnsealFailed(why) => write!(f, "unseal failed: {why}"),
            SgxError::EcallRejected(why) => write!(f, "ecall rejected: {why}"),
            SgxError::IagoViolation(why) => {
                write!(f, "Iago check failed on host return value: {why}")
            }
            SgxError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl std::error::Error for SgxError {}

impl From<CryptoError> for SgxError {
    fn from(e: CryptoError) -> Self {
        SgxError::Crypto(e)
    }
}

/// Result alias for the emulator.
pub type Result<T> = core::result::Result<T, SgxError>;
