//! An SGX-capable platform (one physical machine).
//!
//! Owns the device key, the EPC, the quoting enclave, and every loaded
//! application enclave. The threat model is the paper's (§2.1): the host
//! software stack is untrusted and interacts with enclaves only through
//! ecalls/ocalls; it can refuse service (DoS) but cannot read or alter
//! enclave state — which in this emulator is simply Rust state that the
//! host side has no references to.

use teenet_crypto::schnorr::SigningKey;
use teenet_crypto::sha256::sha256;
use teenet_crypto::SecureRng;

use crate::cost::{CostModel, Counters};
use crate::enclave::{Enclave, EnclaveCtx, EnclaveId, EnclaveProgram};
use crate::epc::{Epc, PageType};
use crate::error::{Result, SgxError};
use crate::measurement::{measure_image, MeasurementBuilder, Sigstruct, PAGE_SIZE};
use crate::ocall::{HostCalls, NullHost};
use crate::quote::{EpidGroup, Quote, QuotingEnclave};
use crate::report::Report;
use crate::switchless::{SwitchlessConfig, SwitchlessState, TransitionMode, TransitionStats};

/// Default EPC size: 24 576 pages = 96 MiB (SGX1-era hardware).
pub const DEFAULT_EPC_PAGES: usize = 24_576;

/// Extra pages reserved per enclave for stack + static heap.
const BASE_RUNTIME_PAGES: usize = 16;

/// One SGX machine: enclaves, EPC, quoting enclave, device key.
pub struct Platform {
    /// Human-readable platform name (for reports and debugging).
    pub name: String,
    /// Cost model used for all accounting on this platform.
    pub model: CostModel,
    device_key: [u8; 32],
    epc: Epc,
    enclaves: Vec<Enclave>,
    rng: SecureRng,
    quoting: QuotingEnclave,
}

impl Platform {
    /// Builds a platform named `name`, provisioned into `group`, with the
    /// default EPC size. `seed` determines the device key and all
    /// platform-local randomness.
    pub fn new(name: &str, group: &EpidGroup, seed: u64) -> Self {
        Self::with_epc(name, group, seed, DEFAULT_EPC_PAGES)
    }

    /// Same as [`Platform::new`] with an explicit EPC capacity.
    pub fn with_epc(name: &str, group: &EpidGroup, seed: u64, epc_pages: usize) -> Self {
        let mut seed_bytes = Vec::from(name.as_bytes());
        seed_bytes.extend_from_slice(&seed.to_le_bytes());
        let device_key = sha256(&seed_bytes);
        let rng = SecureRng::from_seed(&device_key);
        Platform {
            name: name.to_owned(),
            model: CostModel::paper(),
            device_key,
            epc: Epc::new(epc_pages),
            enclaves: Vec::new(),
            quoting: QuotingEnclave::new(group, rng.fork(b"quoting-enclave")),
            rng,
        }
    }

    /// Loads and initialises an enclave: ECREATE → EADD/EEXTEND per page →
    /// EINIT with `sigstruct` verification.
    ///
    /// Launch cost is deliberately not charged to the enclave counters: the
    /// paper "exclude\[s\] the cost launching an SGX application [...]
    /// because it is a one-time cost" (§5).
    pub fn create_enclave(
        &mut self,
        program: Box<dyn EnclaveProgram>,
        sigstruct: &Sigstruct,
    ) -> Result<EnclaveId> {
        let image = program.code_image();
        let image_pages = Enclave::image_pages(image.len());

        // Measure exactly the way a loader would.
        let mut builder = MeasurementBuilder::ecreate(image_pages);
        for p in 0..image_pages {
            let start = p * PAGE_SIZE;
            let end = (start + PAGE_SIZE).min(image.len());
            builder.eadd(start, PageType::Regular);
            builder.eextend(start, image.get(start..end).unwrap_or(&[]));
        }
        let mrenclave = builder.finalize();

        // EINIT: the measured identity must match what the author signed.
        if mrenclave != sigstruct.mrenclave {
            return Err(SgxError::InitFailed("measurement != SIGSTRUCT.mrenclave"));
        }
        let mrsigner = sigstruct.verify()?;

        let id = self.enclaves.len() as EnclaveId;
        self.epc
            .add_pages(id, 0, image_pages + BASE_RUNTIME_PAGES, PageType::Regular)?;
        self.enclaves.push(Enclave {
            id,
            mrenclave,
            mrsigner,
            isv_svn: sigstruct.isv_svn,
            counters: Counters::new(),
            switchless: SwitchlessState::new(),
            program: Some(program),
            next_alloc_offset: (image_pages + BASE_RUNTIME_PAGES) * PAGE_SIZE,
            heap_used: 0,
            destroyed: false,
        });
        Ok(id)
    }

    /// Convenience: signs the program with `author` and loads it.
    pub fn create_signed(
        &mut self,
        program: Box<dyn EnclaveProgram>,
        author: &SigningKey,
        isv_svn: u16,
    ) -> Result<EnclaveId> {
        let mr = measure_image(&program.code_image());
        let mut rng = self.rng.fork(b"sigstruct");
        let sigstruct = Sigstruct::sign(mr, isv_svn, author, &mut rng)?;
        self.create_enclave(program, &sigstruct)
    }

    /// EREMOVE: tears an enclave down, releasing its EPC pages.
    pub fn destroy_enclave(&mut self, id: EnclaveId) -> Result<()> {
        let enclave = self.enclave_mut(id)?;
        enclave.check_alive("destroy")?;
        enclave.destroyed = true;
        enclave.program = None;
        self.epc.remove_enclave(id);
        Ok(())
    }

    /// Performs an ecall into enclave `id` with host services available.
    pub fn ecall(
        &mut self,
        id: EnclaveId,
        fn_id: u64,
        input: &[u8],
        host: &mut dyn HostCalls,
    ) -> Result<Vec<u8>> {
        let model = self.model.clone();
        let enclave = self
            .enclaves
            .get_mut(id as usize)
            .ok_or(SgxError::NoSuchEnclave(id))?;
        enclave.check_alive("ecall")?;
        let mut program = enclave.program.take().ok_or(SgxError::NoSuchEnclave(id))?;

        // EENTER + eventual EEXIT, plus input marshalling. Ecalls always
        // pay their own pair (only *batching* amortises it); the ring only
        // absorbs ocall-shaped crossings made while inside. On a VM-TEE
        // profile the pair costs zero instructions — a guest call is an
        // ordinary call — but it still counts as a taken crossing.
        enclave.counters.sgx(model.ecall_pair_sgx);
        enclave.switchless.stats.taken += 1;
        enclave.counters.normal(input.len() as u64 / 8 + 50);
        enclave.switchless.on_ecall_start();

        let mut rng = self
            .rng
            .fork(&[b"ecall".as_slice(), &id.to_le_bytes()].concat());
        let result = {
            let mut ctx = EnclaveCtx {
                counters: &mut enclave.counters,
                model: &model,
                mrenclave: enclave.mrenclave,
                mrsigner: enclave.mrsigner,
                isv_svn: enclave.isv_svn,
                device_key: &self.device_key,
                rng: &mut rng,
                host,
                epc: &mut self.epc,
                enclave_id: id,
                next_alloc_offset: &mut enclave.next_alloc_offset,
                heap_used: &mut enclave.heap_used,
                switchless: &mut enclave.switchless,
            };
            program.ecall(&mut ctx, fn_id, input)
        };
        let idle_spins = enclave.switchless.on_ecall_end();
        if idle_spins > 0 {
            enclave
                .counters
                .normal(idle_spins.saturating_mul(model.switchless_idle_spin));
        }
        // Keep the platform RNG moving so successive ecalls differ.
        self.rng = self.rng.fork(b"step");
        enclave
            .counters
            .normal(result.as_ref().map(|r| r.len() as u64).unwrap_or(0) / 8);
        enclave.program = Some(program);
        result
    }

    /// Performs a **batched** ecall: N queued calls executed under a single
    /// EENTER/EEXIT pair, the generalisation of the paper's Table 2 I/O
    /// batching (1 packet costs 6 SGX instructions, 100 batched packets
    /// cost 204 — not 600).
    ///
    /// Each call still pays its own marshalling (normal instructions), and
    /// a call that fails aborts the batch, returning its error; results of
    /// the calls before it are discarded (their side effects inside the
    /// enclave stand, exactly as with sequential ecalls).
    pub fn ecall_batch(
        &mut self,
        id: EnclaveId,
        calls: &[(u64, Vec<u8>)],
        host: &mut dyn HostCalls,
    ) -> Result<Vec<Vec<u8>>> {
        if calls.is_empty() {
            return Ok(Vec::new());
        }
        let model = self.model.clone();
        let enclave = self
            .enclaves
            .get_mut(id as usize)
            .ok_or(SgxError::NoSuchEnclave(id))?;
        enclave.check_alive("ecall_batch")?;
        let mut program = enclave.program.take().ok_or(SgxError::NoSuchEnclave(id))?;

        // One transition pair for the whole batch; the other N-1 would-be
        // pairs are elided by the queue.
        enclave.counters.sgx(model.ecall_pair_sgx);
        enclave.switchless.stats.taken += 1;
        enclave.switchless.stats.elided += calls.len() as u64 - 1;
        enclave.switchless.on_ecall_start();

        let mut rng = self
            .rng
            .fork(&[b"ecall".as_slice(), &id.to_le_bytes()].concat());
        let mut results = Vec::with_capacity(calls.len());
        let mut failure = None;
        {
            let mut ctx = EnclaveCtx {
                counters: &mut enclave.counters,
                model: &model,
                mrenclave: enclave.mrenclave,
                mrsigner: enclave.mrsigner,
                isv_svn: enclave.isv_svn,
                device_key: &self.device_key,
                rng: &mut rng,
                host,
                epc: &mut self.epc,
                enclave_id: id,
                next_alloc_offset: &mut enclave.next_alloc_offset,
                heap_used: &mut enclave.heap_used,
                switchless: &mut enclave.switchless,
            };
            for (fn_id, input) in calls {
                ctx.counters.normal(input.len() as u64 / 8 + 50);
                match program.ecall(&mut ctx, *fn_id, input) {
                    Ok(reply) => {
                        ctx.counters.normal(reply.len() as u64 / 8);
                        results.push(reply);
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
        }
        let idle_spins = enclave.switchless.on_ecall_end();
        if idle_spins > 0 {
            enclave
                .counters
                .normal(idle_spins.saturating_mul(model.switchless_idle_spin));
        }
        self.rng = self.rng.fork(b"step");
        enclave.program = Some(program);
        match failure {
            Some(e) => Err(e),
            None => Ok(results),
        }
    }

    /// Batched ecall without host services.
    pub fn ecall_batch_nohost(
        &mut self,
        id: EnclaveId,
        calls: &[(u64, Vec<u8>)],
    ) -> Result<Vec<Vec<u8>>> {
        let mut host = NullHost;
        self.ecall_batch(id, calls, &mut host)
    }

    /// Sets the transition mode of one enclave. Entering switchless starts
    /// the host worker spinning; returning to classic parks it.
    pub fn set_transition_mode(&mut self, id: EnclaveId, mode: TransitionMode) -> Result<()> {
        self.enclave_mut(id)?.switchless.set_mode(mode);
        Ok(())
    }

    /// Tunes the switchless ring/worker of one enclave.
    pub fn configure_switchless(&mut self, id: EnclaveId, config: SwitchlessConfig) -> Result<()> {
        self.enclave_mut(id)?.switchless.config = config;
        Ok(())
    }

    /// Crossing statistics of one enclave.
    pub fn transition_stats_of(&self, id: EnclaveId) -> Result<TransitionStats> {
        Ok(self.enclave_ref(id)?.switchless.stats)
    }

    /// Sum of all enclaves' crossing statistics.
    pub fn total_transition_stats(&self) -> TransitionStats {
        let mut total = TransitionStats::new();
        for e in &self.enclaves {
            total.merge(e.switchless.stats);
        }
        total
    }

    /// Ecall without host services (pure computation inside the enclave).
    pub fn ecall_nohost(&mut self, id: EnclaveId, fn_id: u64, input: &[u8]) -> Result<Vec<u8>> {
        let mut host = NullHost;
        self.ecall(id, fn_id, input, &mut host)
    }

    /// Runs the quoting enclave over `report` (local attestation + sign).
    pub fn quote(&mut self, report: &Report) -> Result<Quote> {
        let model = self.model.clone();
        self.quoting.quote(&self.device_key, report, &model)
    }

    /// The TargetInfo enclaves use to address reports to this platform's QE.
    pub fn quoting_target_info(&self) -> crate::report::TargetInfo {
        self.quoting.target_info()
    }

    /// Counters of one enclave.
    pub fn counters_of(&self, id: EnclaveId) -> Result<Counters> {
        Ok(self.enclave_ref(id)?.counters)
    }

    /// Counters of the quoting enclave.
    pub fn quoting_counters(&self) -> Counters {
        self.quoting.counters
    }

    /// Resets the counters of one enclave (e.g. to exclude setup phases,
    /// as the paper does for Table 4).
    pub fn reset_counters(&mut self, id: EnclaveId) -> Result<()> {
        self.enclave_mut(id)?.counters = Counters::new();
        Ok(())
    }

    /// Sum of all enclave counters plus the quoting enclave.
    pub fn total_counters(&self) -> Counters {
        let mut total = self.quoting.counters;
        for e in &self.enclaves {
            total.merge(e.counters);
        }
        total
    }

    /// The identity (MRENCLAVE) of a loaded enclave.
    pub fn measurement_of(&self, id: EnclaveId) -> Result<crate::measurement::Measurement> {
        Ok(self.enclave_ref(id)?.mrenclave)
    }

    /// Free EPC pages remaining.
    pub fn epc_free_pages(&self) -> usize {
        self.epc.free_pages()
    }

    /// The platform's device key (crate-internal: the VM-TEE backend's
    /// security processor verifies report MACs with it, exactly as the
    /// quoting enclave does here).
    pub(crate) fn device_key(&self) -> &[u8; 32] {
        &self.device_key
    }

    fn enclave_ref(&self, id: EnclaveId) -> Result<&Enclave> {
        self.enclaves
            .get(id as usize)
            .ok_or(SgxError::NoSuchEnclave(id))
    }

    fn enclave_mut(&mut self, id: EnclaveId) -> Result<&mut Enclave> {
        self.enclaves
            .get_mut(id as usize)
            .ok_or(SgxError::NoSuchEnclave(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyRequest;
    use crate::report::report_data_from;
    use teenet_crypto::schnorr::SchnorrGroup;

    /// A trivial program: fn 0 echoes, fn 1 seals input, fn 2 allocates.
    struct Echo {
        version: u8,
        sealed: Option<crate::seal::SealedBlob>,
    }

    impl EnclaveProgram for Echo {
        fn code_image(&self) -> Vec<u8> {
            vec![b'e', b'c', b'h', b'o', self.version]
        }
        fn ecall(&mut self, ctx: &mut EnclaveCtx<'_>, fn_id: u64, input: &[u8]) -> Result<Vec<u8>> {
            match fn_id {
                0 => Ok(input.to_vec()),
                1 => {
                    let blob = ctx.seal(KeyRequest::SealEnclave, b"t", input);
                    self.sealed = Some(blob);
                    Ok(Vec::new())
                }
                2 => {
                    let blob = self
                        .sealed
                        .as_ref()
                        .ok_or(SgxError::EcallRejected("no blob"))?;
                    let blob = blob.clone();
                    ctx.unseal(KeyRequest::SealEnclave, &blob)
                }
                3 => {
                    ctx.alloc(10_000)?;
                    Ok(Vec::new())
                }
                _ => Err(SgxError::EcallRejected("unknown fn")),
            }
        }
    }

    fn setup() -> (Platform, SigningKey) {
        let mut rng = SecureRng::seed_from_u64(5);
        let group = EpidGroup::new(1, &mut rng).unwrap();
        let platform = Platform::new("test", &group, 7);
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        (platform, author)
    }

    fn echo(version: u8) -> Box<Echo> {
        Box::new(Echo {
            version,
            sealed: None,
        })
    }

    /// Compile-time regression: a whole platform (device key, EPC,
    /// enclaves with their boxed programs, quoting enclave) must stay
    /// `Send` so one independent instance can live per load-generation
    /// shard. Reintroducing non-`Send` state (an `Rc`, a thread-bound
    /// handle) fails this test at compile time.
    #[test]
    fn platform_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Platform>();
        assert_send::<Enclave>();
        assert_send::<Box<dyn EnclaveProgram>>();
        assert_send::<Box<dyn HostCalls>>();
    }

    #[test]
    fn ecall_roundtrip_and_counting() {
        let (mut p, author) = setup();
        let id = p.create_signed(echo(1), &author, 1).unwrap();
        let before = p.counters_of(id).unwrap();
        assert_eq!(before, Counters::new(), "launch is not charged");
        let out = p.ecall_nohost(id, 0, b"hello").unwrap();
        assert_eq!(out, b"hello");
        let after = p.counters_of(id).unwrap();
        assert_eq!(after.sgx_instr, 2, "EENTER + EEXIT");
        assert!(after.normal_instr > 0);
    }

    #[test]
    fn einit_rejects_mismatched_sigstruct() {
        let (mut p, author) = setup();
        let mut rng = SecureRng::seed_from_u64(11);
        // Sign version 1 but load version 2 ("tampered binary").
        let mr = measure_image(&echo(1).code_image());
        let sig = Sigstruct::sign(mr, 1, &author, &mut rng).unwrap();
        let err = p.create_enclave(echo(2), &sig).unwrap_err();
        assert!(matches!(err, SgxError::InitFailed(_)));
    }

    #[test]
    fn seal_unseal_within_enclave() {
        let (mut p, author) = setup();
        let id = p.create_signed(echo(1), &author, 1).unwrap();
        p.ecall_nohost(id, 1, b"top secret").unwrap();
        let out = p.ecall_nohost(id, 2, b"").unwrap();
        assert_eq!(out, b"top secret");
    }

    #[test]
    fn alloc_consumes_epc_and_charges() {
        let (mut p, author) = setup();
        let id = p.create_signed(echo(1), &author, 1).unwrap();
        let free_before = p.epc_free_pages();
        let c_before = p.counters_of(id).unwrap();
        p.ecall_nohost(id, 3, b"").unwrap();
        assert_eq!(p.epc_free_pages(), free_before - 3); // 10 KB → 3 pages
        let c = p.counters_of(id).unwrap().since(c_before);
        assert!(c.sgx_instr >= 4, "ecall pair + alloc exit pair");
    }

    #[test]
    fn epc_exhaustion_fails_enclave_creation() {
        let mut rng = SecureRng::seed_from_u64(5);
        let group = EpidGroup::new(1, &mut rng).unwrap();
        let mut p = Platform::with_epc("tiny", &group, 7, 8);
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let err = p.create_signed(echo(1), &author, 1).unwrap_err();
        assert!(matches!(err, SgxError::EpcExhausted { .. }));
    }

    #[test]
    fn destroyed_enclave_rejects_ecalls() {
        let (mut p, author) = setup();
        let id = p.create_signed(echo(1), &author, 1).unwrap();
        p.destroy_enclave(id).unwrap();
        assert!(p.ecall_nohost(id, 0, b"x").is_err());
        assert!(p.destroy_enclave(id).is_err());
    }

    #[test]
    fn report_and_quote_flow() {
        // Full local flow: enclave EREPORTs to the QE, QE quotes, a remote
        // party verifies under the group public key.
        let mut rng = SecureRng::seed_from_u64(5);
        let group = EpidGroup::new(1, &mut rng).unwrap();
        let mut p = Platform::new("test", &group, 7);
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();

        struct Reporter;
        impl EnclaveProgram for Reporter {
            fn code_image(&self) -> Vec<u8> {
                b"reporter-v1".to_vec()
            }
            fn ecall(
                &mut self,
                ctx: &mut EnclaveCtx<'_>,
                _fn_id: u64,
                input: &[u8],
            ) -> Result<Vec<u8>> {
                // input carries the QE measurement.
                let mut mr = [0u8; 32];
                mr.copy_from_slice(&input[..32]);
                let report = ctx.ereport(
                    crate::report::TargetInfo {
                        mrenclave: crate::measurement::Measurement(mr),
                    },
                    &report_data_from(b"nonce"),
                );
                // Return the report body fields we need (test-only encoding).
                let mut out = report.body.to_bytes();
                out.extend_from_slice(&report.mac);
                Ok(out)
            }
        }

        let id = p.create_signed(Box::new(Reporter), &author, 1).unwrap();
        let qe_mr = p.quoting_target_info().mrenclave;
        let out = p.ecall_nohost(id, 0, &qe_mr.0).unwrap();

        // Reassemble the report (the host merely ferries bytes).
        let body = crate::report::ReportBody {
            mrenclave: crate::measurement::Measurement(out[..32].try_into().unwrap()),
            mrsigner: crate::measurement::Measurement(out[32..64].try_into().unwrap()),
            isv_svn: u16::from_le_bytes(out[64..66].try_into().unwrap()),
            report_data: out[66..130].try_into().unwrap(),
        };
        let mac: [u8; 32] = out[130..162].try_into().unwrap();
        let report = Report {
            body,
            target: p.quoting_target_info(),
            mac,
        };
        let quote = p.quote(&report).unwrap();
        let mut c = Counters::new();
        quote
            .verify(&group.public_key(), &mut c, &CostModel::paper())
            .unwrap();
        assert_eq!(quote.body.mrenclave, p.measurement_of(id).unwrap());
    }

    #[test]
    fn ecalls_with_randomness_differ_across_calls() {
        struct Rand;
        impl EnclaveProgram for Rand {
            fn code_image(&self) -> Vec<u8> {
                b"rand-v1".to_vec()
            }
            fn ecall(
                &mut self,
                ctx: &mut EnclaveCtx<'_>,
                _fn_id: u64,
                _input: &[u8],
            ) -> Result<Vec<u8>> {
                let mut buf = vec![0u8; 16];
                ctx.random(&mut buf);
                Ok(buf)
            }
        }
        let (mut p, author) = setup();
        let id = p.create_signed(Box::new(Rand), &author, 1).unwrap();
        let a = p.ecall_nohost(id, 0, b"").unwrap();
        let b = p.ecall_nohost(id, 0, b"").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn identical_programs_same_measurement_across_platforms() {
        let mut rng = SecureRng::seed_from_u64(5);
        let group = EpidGroup::new(1, &mut rng).unwrap();
        let mut p1 = Platform::new("alpha", &group, 1);
        let mut p2 = Platform::new("beta", &group, 2);
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let id1 = p1.create_signed(echo(1), &author, 1).unwrap();
        let id2 = p2.create_signed(echo(1), &author, 1).unwrap();
        assert_eq!(
            p1.measurement_of(id1).unwrap(),
            p2.measurement_of(id2).unwrap()
        );
    }
}

#[cfg(test)]
mod paging_tests {
    use super::*;
    use crate::enclave::{EnclaveCtx, EnclaveProgram};
    use crate::error::SgxError;
    use teenet_crypto::schnorr::SchnorrGroup;

    /// Allocates the requested number of bytes via the heap allocator.
    struct Hog;
    impl EnclaveProgram for Hog {
        fn code_image(&self) -> Vec<u8> {
            b"hog-v1".to_vec()
        }
        fn ecall(
            &mut self,
            ctx: &mut EnclaveCtx<'_>,
            _fn_id: u64,
            input: &[u8],
        ) -> Result<Vec<u8>> {
            let bytes = u32::from_le_bytes(input.try_into().expect("4")) as usize;
            ctx.malloc(bytes)?;
            Ok(Vec::new())
        }
    }

    fn tiny_platform(epc_pages: usize) -> (Platform, EnclaveId) {
        let mut rng = SecureRng::seed_from_u64(77);
        let group = EpidGroup::new(1, &mut rng).unwrap();
        let mut p = Platform::with_epc("paging", &group, 7, epc_pages);
        let author = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let id = p.create_signed(Box::new(Hog), &author, 1).unwrap();
        (p, id)
    }

    #[test]
    fn oversubscription_triggers_ewb_instead_of_failing() {
        // 24 pages total; the enclave base takes 17, leaving 7 free. A
        // 40 KiB allocation (10 pages) must succeed by evicting.
        let (mut p, id) = tiny_platform(24);
        let before = p.counters_of(id).unwrap();
        p.ecall_nohost(id, 0, &(40_960u32).to_le_bytes()).unwrap();
        let delta = p.counters_of(id).unwrap().since(before);
        // At least 3 pages were evicted: EWB cost + AEX pairs charged.
        assert!(delta.normal_instr >= 3 * p.model.ewb_page);
        assert!(
            delta.sgx_instr >= 2 + 6,
            "page-extension trap + 3 AEX pairs"
        );
    }

    #[test]
    fn eviction_cannot_exceed_total_capacity_in_one_request() {
        // A single allocation larger than the whole EPC still fails.
        let (mut p, id) = tiny_platform(24);
        let err = p
            .ecall_nohost(id, 0, &(24 * 4096u32 + 1).to_le_bytes())
            .unwrap_err();
        assert!(matches!(err, SgxError::EpcExhausted { .. }));
    }

    #[test]
    fn repeated_small_allocations_page_forever() {
        // The enclave can keep allocating past EPC capacity; each page
        // past the limit costs an eviction (thrash accounting).
        let (mut p, id) = tiny_platform(24);
        for _ in 0..20 {
            p.ecall_nohost(id, 0, &(4_096u32).to_le_bytes()).unwrap();
        }
        assert!(p.epc_free_pages() == 0 || p.epc_free_pages() < 24);
    }
}
