//! Enclave Page Cache (EPC) and its access-control map (EPCM).
//!
//! "Memory content of the enclave is stored inside Enclave Page Cache
//! (EPC), which is protected memory [...] The processor maintains enclave
//! page cache map (EPCM) to keep meta-data associated with each EPC page
//! for access protection" (paper §2.1). We model page accounting and
//! ownership checks; page *contents* live with the enclave program (Rust
//! state), which is what the encryption by the MEE guarantees anyway —
//! the host can never observe it.

use crate::error::{Result, SgxError};
use crate::measurement::PAGE_SIZE;
use std::collections::HashMap;

/// Types of EPC pages, as recorded in the EPCM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PageType {
    /// SGX Enclave Control Structure page.
    Secs = 0,
    /// Thread Control Structure page.
    Tcs = 1,
    /// Regular code/data page.
    Regular = 2,
}

/// One EPCM entry: metadata the processor keeps per EPC page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpcmEntry {
    /// Owning enclave id.
    pub enclave_id: u64,
    /// Page type.
    pub page_type: PageType,
    /// Offset of the page within the enclave's linear range.
    pub offset: usize,
    /// Whether the page is valid (EREMOVE clears this).
    pub valid: bool,
    /// Whether the page currently resides in the EPC (false = evicted to
    /// encrypted main memory by EWB).
    pub resident: bool,
}

/// The Enclave Page Cache: a fixed pool of protected pages.
///
/// When the pool is full, pages can be evicted (EWB) to encrypted main
/// memory: the page leaves the EPC but stays logically owned by its
/// enclave; touching it again would fault it back in (ELDU). The emulator
/// tracks eviction counts so the cost model can charge the paging crypto.
#[derive(Debug)]
pub struct Epc {
    total_pages: usize,
    entries: HashMap<u64, Vec<EpcmEntry>>,
    used: usize,
    /// FIFO of (enclave, offset) in allocation order — the eviction queue.
    fifo: Vec<(u64, usize)>,
    evicted: u64,
}

impl Epc {
    /// Creates an EPC with `total_pages` capacity.
    ///
    /// Real SGX1 platforms shipped with ~93 MiB of usable EPC; the default
    /// platform uses 24 576 pages (96 MiB).
    pub fn new(total_pages: usize) -> Self {
        Epc {
            total_pages,
            entries: HashMap::new(),
            used: 0,
            fifo: Vec::new(),
            evicted: 0,
        }
    }

    /// Total pages evicted to main memory so far (EWB events).
    pub fn evicted_pages(&self) -> u64 {
        self.evicted
    }

    /// EWB: evicts up to `count` of the oldest resident pages to encrypted
    /// main memory, freeing EPC capacity. Returns how many were evicted.
    pub fn evict_pages(&mut self, count: usize) -> usize {
        let mut done = 0;
        while done < count {
            let Some((enclave_id, offset)) = self.fifo.first().copied() else {
                break;
            };
            self.fifo.remove(0);
            if let Some(list) = self.entries.get_mut(&enclave_id) {
                if let Some(entry) = list
                    .iter_mut()
                    .find(|e| e.offset == offset && e.valid && e.resident)
                {
                    entry.resident = false;
                    self.used -= 1;
                    self.evicted += 1;
                    done += 1;
                }
            }
        }
        done
    }

    /// Number of free pages.
    pub fn free_pages(&self) -> usize {
        self.total_pages - self.used
    }

    /// Number of pages currently allocated.
    pub fn used_pages(&self) -> usize {
        self.used
    }

    /// Pages allocated to one enclave.
    pub fn pages_of(&self, enclave_id: u64) -> usize {
        self.entries
            .get(&enclave_id)
            .map_or(0, |v| v.iter().filter(|e| e.valid).count())
    }

    /// EADD/EAUG: allocates `count` pages of `page_type` to `enclave_id`
    /// starting at linear `offset`.
    pub fn add_pages(
        &mut self,
        enclave_id: u64,
        offset: usize,
        count: usize,
        page_type: PageType,
    ) -> Result<()> {
        if count > self.free_pages() {
            return Err(SgxError::EpcExhausted {
                requested: count,
                free: self.free_pages(),
            });
        }
        let list = self.entries.entry(enclave_id).or_default();
        for i in 0..count {
            list.push(EpcmEntry {
                enclave_id,
                page_type,
                offset: offset + i * PAGE_SIZE,
                valid: true,
                resident: true,
            });
            self.fifo.push((enclave_id, offset + i * PAGE_SIZE));
        }
        self.used += count;
        Ok(())
    }

    /// EREMOVE: releases all pages of an enclave (teardown).
    pub fn remove_enclave(&mut self, enclave_id: u64) {
        if let Some(list) = self.entries.remove(&enclave_id) {
            self.used -= list.iter().filter(|e| e.valid && e.resident).count();
        }
        self.fifo.retain(|&(id, _)| id != enclave_id);
    }

    /// Access check: does `enclave_id` own a valid page at `offset`?
    ///
    /// Models the EPCM check the processor performs on every enclave-mode
    /// access; other enclaves (or the host) asking for the page get denied.
    pub fn check_access(&self, enclave_id: u64, offset: usize) -> bool {
        let page_base = offset - offset % PAGE_SIZE;
        self.entries.get(&enclave_id).is_some_and(|list| {
            list.iter()
                .any(|e| e.valid && e.offset == page_base && e.enclave_id == enclave_id)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_and_accounting() {
        let mut epc = Epc::new(10);
        epc.add_pages(1, 0, 4, PageType::Regular).unwrap();
        assert_eq!(epc.used_pages(), 4);
        assert_eq!(epc.free_pages(), 6);
        assert_eq!(epc.pages_of(1), 4);
        assert_eq!(epc.pages_of(2), 0);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut epc = Epc::new(3);
        epc.add_pages(1, 0, 2, PageType::Regular).unwrap();
        let err = epc.add_pages(2, 0, 2, PageType::Regular).unwrap_err();
        assert!(matches!(
            err,
            SgxError::EpcExhausted {
                requested: 2,
                free: 1
            }
        ));
    }

    #[test]
    fn remove_frees_pages() {
        let mut epc = Epc::new(5);
        epc.add_pages(1, 0, 3, PageType::Regular).unwrap();
        epc.add_pages(2, 0, 2, PageType::Tcs).unwrap();
        epc.remove_enclave(1);
        assert_eq!(epc.free_pages(), 3);
        assert_eq!(epc.pages_of(1), 0);
        assert_eq!(epc.pages_of(2), 2);
    }

    #[test]
    fn access_control_per_enclave() {
        let mut epc = Epc::new(8);
        epc.add_pages(1, 0, 2, PageType::Regular).unwrap();
        epc.add_pages(2, PAGE_SIZE * 2, 1, PageType::Regular)
            .unwrap();
        // Enclave 1 can touch its own pages (any offset within them).
        assert!(epc.check_access(1, 0));
        assert!(epc.check_access(1, PAGE_SIZE + 123));
        // Enclave 1 cannot touch enclave 2's page; enclave 2 can.
        assert!(!epc.check_access(1, PAGE_SIZE * 2));
        assert!(epc.check_access(2, PAGE_SIZE * 2 + 1));
        // Nobody can touch unallocated space.
        assert!(!epc.check_access(1, PAGE_SIZE * 7));
    }
}
