//! The ocall (enclave → host) interface and Iago sanity checking.
//!
//! An enclave cannot perform I/O itself; it must exit to the untrusted host
//! (EEXIT), let the host run the operation, and re-enter (EENTER/ERESUME).
//! The paper's discussion (§6) warns that "an enclave application can be
//! subject to Iago attacks if it blindly relies on external services (e.g.,
//! system call). The enclave program must verify/sanity check the return
//! values and output parameters of system calls." The
//! [`checked`](fn@checked) wrapper is that sanity-checking discipline, and
//! [`NullHost`] / closures make hosts easy to fake (including maliciously)
//! in tests.

use crate::error::{Result, SgxError};

/// The untrusted host services an enclave may invoke.
///
/// `name` identifies the service ("send", "recv", "time", …); payload and
/// return value are opaque bytes marshalled across the boundary.
///
/// `Send` is a supertrait so a host implementation can accompany its
/// platform onto another OS thread (one platform + host per load shard).
pub trait HostCalls: Send {
    /// Executes a host call and returns the (untrusted) result.
    fn ocall(&mut self, name: &str, payload: &[u8]) -> Vec<u8>;
}

/// A host that answers every call with an empty reply.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHost;

impl HostCalls for NullHost {
    fn ocall(&mut self, _name: &str, _payload: &[u8]) -> Vec<u8> {
        Vec::new()
    }
}

/// Blanket impl so closures can serve as hosts in tests and examples.
impl<F> HostCalls for F
where
    F: FnMut(&str, &[u8]) -> Vec<u8> + Send,
{
    fn ocall(&mut self, name: &str, payload: &[u8]) -> Vec<u8> {
        self(name, payload)
    }
}

/// Applies an Iago sanity check to an untrusted host return value.
///
/// `validate` inspects the raw bytes and either converts them into a typed
/// value or rejects them; rejection surfaces as
/// [`SgxError::IagoViolation`]. Enclave code in this workspace never
/// consumes an ocall result without passing through here.
pub fn checked<T>(
    raw: Vec<u8>,
    what: &'static str,
    validate: impl FnOnce(&[u8]) -> Option<T>,
) -> Result<T> {
    validate(&raw).ok_or(SgxError::IagoViolation(what))
}

/// Common validator: the host echoed back a length that must not exceed
/// what the enclave asked for (e.g. a `read` that "returns" more bytes than
/// the buffer).
pub fn validate_len_le(raw: &[u8], max: usize) -> Option<usize> {
    if raw.len() != 8 {
        return None;
    }
    let len = u64::from_le_bytes(raw.try_into().ok()?) as usize;
    (len <= max).then_some(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_host_returns_empty() {
        let mut h = NullHost;
        assert!(h.ocall("anything", b"payload").is_empty());
    }

    #[test]
    fn closure_host_works() {
        let mut h = |name: &str, payload: &[u8]| -> Vec<u8> {
            assert_eq!(name, "echo");
            payload.to_vec()
        };
        assert_eq!(HostCalls::ocall(&mut h, "echo", b"hi"), b"hi");
    }

    #[test]
    fn checked_accepts_valid() {
        let v = checked(vec![1, 2, 3], "triple", |raw| {
            (raw.len() == 3).then(|| raw.to_vec())
        })
        .unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn checked_rejects_invalid() {
        let err = checked(vec![1, 2], "triple", |raw| {
            (raw.len() == 3).then(|| raw.to_vec())
        })
        .unwrap_err();
        assert!(matches!(err, SgxError::IagoViolation("triple")));
    }

    #[test]
    fn validate_len_le_bounds() {
        // A malicious host claiming a 100-byte read into a 10-byte buffer
        // must be caught (classic Iago vector).
        let claim = 100u64.to_le_bytes().to_vec();
        assert!(validate_len_le(&claim, 10).is_none());
        let ok = 10u64.to_le_bytes().to_vec();
        assert_eq!(validate_len_le(&ok, 10), Some(10));
        assert!(validate_len_le(&[1, 2], 10).is_none());
    }
}
