//! Sealing: encrypting enclave secrets for storage outside the enclave.
//!
//! Sealed blobs are AES-128-CTR encrypted and HMAC-authenticated under a
//! key from EGETKEY, so only the same enclave (MRENCLAVE policy) or the
//! same author's enclaves (MRSIGNER policy) on the same platform can
//! recover them. Used by e.g. the quoting enclave to persist its
//! attestation key, and by directory authorities to protect their
//! authority keys (paper §3.2: "they can keep authority keys and list of
//! Tor nodes inside the enclaves").

use teenet_crypto::aes::Aes128;
use teenet_crypto::hmac::{hmac_sha256, hmac_verify};

use crate::error::{Result, SgxError};

/// A sealed blob: nonce, ciphertext, and MAC. Safe to hand to the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// Associated data label bound into the MAC (not secret).
    pub label: Vec<u8>,
    /// CTR nonce.
    pub nonce: [u8; 16],
    /// Encrypted payload.
    pub ciphertext: Vec<u8>,
    /// HMAC over label, nonce and ciphertext.
    pub mac: [u8; 32],
}

impl SealedBlob {
    /// Wire encoding (blobs cross the enclave boundary for host storage).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(54 + self.label.len() + self.ciphertext.len());
        out.extend_from_slice(&(self.label.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.label);
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&(self.ciphertext.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.ciphertext);
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses [`SealedBlob::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let err = || SgxError::UnsealFailed("malformed sealed blob");
        fn arr<const N: usize>(
            buf: &[u8],
            off: usize,
            err: impl Fn() -> SgxError,
        ) -> Result<[u8; N]> {
            let slice = buf.get(off..off + N).ok_or_else(&err)?;
            let mut out = [0u8; N];
            out.copy_from_slice(slice);
            Ok(out)
        }
        if buf.len() < 2 {
            return Err(err());
        }
        let llen = u16::from_le_bytes([buf[0], buf[1]]) as usize;
        let mut off = 2;
        let label = buf.get(off..off + llen).ok_or_else(err)?.to_vec();
        off += llen;
        let nonce: [u8; 16] = arr(buf, off, err)?;
        off += 16;
        let clen = u32::from_le_bytes(arr::<4>(buf, off, err)?) as usize;
        off += 4;
        let ciphertext = buf.get(off..off + clen).ok_or_else(err)?.to_vec();
        off += clen;
        let mac: [u8; 32] = arr(buf, off, err)?;
        off += 32;
        if off != buf.len() {
            return Err(err());
        }
        Ok(SealedBlob {
            label,
            nonce,
            ciphertext,
            mac,
        })
    }
}

fn split_key(seal_key: &[u8; 32]) -> ([u8; 16], [u8; 32]) {
    let mut enc = [0u8; 16];
    enc.copy_from_slice(&seal_key[..16]);
    // MAC key: expand the upper half to 32 bytes by repetition-free HMAC.
    let mac = hmac_sha256(&seal_key[16..], b"seal-mac-key");
    (enc, mac)
}

/// Seals `plaintext` under `seal_key` with a caller-supplied unique nonce.
pub fn seal(seal_key: &[u8; 32], label: &[u8], nonce: [u8; 16], plaintext: &[u8]) -> SealedBlob {
    let (enc_key, mac_key) = split_key(seal_key);
    #[allow(clippy::expect_used)]
    // teenet-analyze: allow(enclave-abort) -- key is the statically 16-byte half of split_key, not untrusted input
    let cipher = Aes128::new(&enc_key).expect("16-byte key");
    let mut ciphertext = plaintext.to_vec();
    cipher.ctr_apply(&nonce, &mut ciphertext);
    let mut macd = Vec::with_capacity(label.len() + 16 + ciphertext.len());
    macd.extend_from_slice(label);
    macd.extend_from_slice(&nonce);
    macd.extend_from_slice(&ciphertext);
    let mac = hmac_sha256(&mac_key, &macd);
    SealedBlob {
        label: label.to_vec(),
        nonce,
        ciphertext,
        mac,
    }
}

/// Unseals a blob; fails on any tampering or wrong key.
pub fn unseal(seal_key: &[u8; 32], blob: &SealedBlob) -> Result<Vec<u8>> {
    let (enc_key, mac_key) = split_key(seal_key);
    let mut macd = Vec::with_capacity(blob.label.len() + 16 + blob.ciphertext.len());
    macd.extend_from_slice(&blob.label);
    macd.extend_from_slice(&blob.nonce);
    macd.extend_from_slice(&blob.ciphertext);
    if !hmac_verify(&mac_key, &macd, &blob.mac) {
        return Err(SgxError::UnsealFailed("MAC mismatch"));
    }
    #[allow(clippy::expect_used)]
    // teenet-analyze: allow(enclave-abort) -- key is the statically 16-byte half of split_key, not untrusted input
    let cipher = Aes128::new(&enc_key).expect("16-byte key");
    let mut plaintext = blob.ciphertext.clone();
    cipher.ctr_apply(&blob.nonce, &mut plaintext);
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_wire_roundtrip() {
        let blob = seal(&[7u8; 32], b"label", [9u8; 16], b"payload bytes");
        let parsed = SealedBlob::from_bytes(&blob.to_bytes()).unwrap();
        assert_eq!(parsed, blob);
        assert_eq!(unseal(&[7u8; 32], &parsed).unwrap(), b"payload bytes");
        // Truncation and trailing garbage rejected.
        let bytes = blob.to_bytes();
        assert!(SealedBlob::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(SealedBlob::from_bytes(&long).is_err());
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let key = [7u8; 32];
        let blob = seal(&key, b"authority-key", [1u8; 16], b"secret material");
        assert_eq!(unseal(&key, &blob).unwrap(), b"secret material");
    }

    #[test]
    fn wrong_key_fails() {
        let blob = seal(&[7u8; 32], b"l", [1u8; 16], b"secret");
        assert!(unseal(&[8u8; 32], &blob).is_err());
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let key = [7u8; 32];
        let mut blob = seal(&key, b"l", [1u8; 16], b"secret");
        blob.ciphertext[0] ^= 1;
        assert!(unseal(&key, &blob).is_err());
    }

    #[test]
    fn tampered_label_fails() {
        let key = [7u8; 32];
        let mut blob = seal(&key, b"label-a", [1u8; 16], b"secret");
        blob.label = b"label-b".to_vec();
        assert!(unseal(&key, &blob).is_err());
    }

    #[test]
    fn tampered_nonce_fails() {
        let key = [7u8; 32];
        let mut blob = seal(&key, b"l", [1u8; 16], b"secret");
        blob.nonce[0] ^= 1;
        assert!(unseal(&key, &blob).is_err());
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let key = [7u8; 32];
        let blob = seal(&key, b"l", [3u8; 16], b"visible secret!!");
        assert_ne!(blob.ciphertext, b"visible secret!!");
    }

    #[test]
    fn empty_plaintext_ok() {
        let key = [7u8; 32];
        let blob = seal(&key, b"l", [0u8; 16], b"");
        assert_eq!(unseal(&key, &blob).unwrap(), Vec::<u8>::new());
    }
}
