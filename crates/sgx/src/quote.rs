//! The quoting enclave, QUOTEs and the attestation (EPID) group.
//!
//! "Intel SGX uses a specially provisioned enclave, called quoting enclave,
//! whose identity is well-known [...] Only the quoting enclave can access
//! the processor key used for attestation. [...] The quoting enclave then
//! creates a signature of attestation result (QUOTE), using the private
//! key of the CPU." (paper §2.2)
//!
//! Intel's real scheme is EPID, a group signature: any platform in the
//! group produces signatures verifiable under one group public key without
//! identifying the platform. We model the privacy-relevant surface of that
//! — a per-group signing key shared by member platforms, one public
//! verification key for challengers — with a Schnorr signature (the paper
//! itself reduces EPID to "the private key of the CPU", fn. 2).

use teenet_crypto::schnorr::{SchnorrGroup, Signature, SigningKey, VerifyingKey};
use teenet_crypto::sha256::sha256;
use teenet_crypto::SecureRng;

use crate::cost::{CostModel, Counters};
use crate::error::{Result, SgxError};
use crate::keys::{derive_key, KeyRequest};
use crate::measurement::Measurement;
use crate::report::{verify_report, Report, ReportBody, TargetInfo};

/// The well-known quoting-enclave identity (same on every platform).
pub fn quoting_enclave_measurement() -> Measurement {
    Measurement(sha256(b"teenet-quoting-enclave-v1"))
}

/// An attestation group: platforms provisioned with the same group key
/// produce QUOTEs verifiable under the group's public key.
pub struct EpidGroup {
    /// Public group identifier.
    pub group_id: u64,
    signing: SigningKey,
}

impl EpidGroup {
    /// Creates a new attestation group (the "Intel provisioning service").
    pub fn new(group_id: u64, rng: &mut SecureRng) -> Result<Self> {
        let group = SchnorrGroup::standard();
        let signing = SigningKey::generate(&group, rng)?;
        Ok(EpidGroup { group_id, signing })
    }

    /// The verification key challengers use.
    pub fn public_key(&self) -> VerifyingKey {
        self.signing.verifying_key()
    }

    pub(crate) fn signing_key(&self) -> SigningKey {
        self.signing.clone()
    }
}

/// A QUOTE: a REPORT body signed by the platform's quoting enclave.
#[derive(Debug, Clone)]
pub struct Quote {
    /// The attested enclave's report body.
    pub body: ReportBody,
    /// Attestation group the signing platform belongs to.
    pub group_id: u64,
    /// Group signature over `(group_id, body)`.
    pub signature: Signature,
}

impl Quote {
    fn message(group_id: u64, body: &ReportBody) -> Vec<u8> {
        let mut msg = Vec::with_capacity(16 + 130);
        msg.extend_from_slice(b"QUOTE");
        msg.extend_from_slice(&group_id.to_le_bytes());
        msg.extend_from_slice(&body.to_bytes());
        msg
    }

    /// Verifies the group signature; charges the challenger's verification
    /// cost to `counters`.
    pub fn verify(
        &self,
        group_public: &VerifyingKey,
        counters: &mut Counters,
        model: &CostModel,
    ) -> Result<()> {
        counters.normal(model.quote_verify);
        group_public
            .verify(&Self::message(self.group_id, &self.body), &self.signature)
            .map_err(|_| SgxError::QuoteInvalid("group signature"))
    }
}

/// The per-platform quoting enclave.
pub struct QuotingEnclave {
    /// Instructions executed by the quoting enclave.
    pub counters: Counters,
    group_id: u64,
    attestation_key: SigningKey,
    rng: SecureRng,
}

impl QuotingEnclave {
    /// Provisions the quoting enclave with the group's attestation key.
    pub fn new(group: &EpidGroup, rng: SecureRng) -> Self {
        QuotingEnclave {
            counters: Counters::new(),
            group_id: group.group_id,
            attestation_key: group.signing_key(),
            rng,
        }
    }

    /// The TargetInfo application enclaves use to EREPORT to the QE.
    pub fn target_info(&self) -> TargetInfo {
        TargetInfo {
            mrenclave: quoting_enclave_measurement(),
        }
    }

    /// Turns a REPORT (targeted at the QE) into a QUOTE.
    ///
    /// Performs the QE's half of intra-attestation — EGETKEY for its report
    /// key, MAC verification — then signs. Instruction accounting follows
    /// Table 1's quoting-enclave column: entering/exiting the QE, EGETKEY,
    /// and the dominant signature cost.
    pub fn quote(
        &mut self,
        device_key: &[u8; 32],
        report: &Report,
        model: &CostModel,
    ) -> Result<Quote> {
        // Host enters the QE with the report (EENTER ... EEXIT at the end);
        // the report/quote are moved over socket ocalls (recv report, send
        // verification, recv ack, send quote = 4 exits + 4 re-entries),
        // and intra-attestation is mutual (the QE EREPORTs back to the
        // target, Sec. 2.2), adding one EREPORT and a second entry pair.
        self.counters.sgx(2);
        self.counters.sgx(8); // socket ocalls
        self.counters.sgx(2); // second entry pair for the mutual phase
        self.counters.sgx(1); // QE's own EREPORT toward the target
        self.counters.sgx(1); // EGETKEY for the launch key check
        self.counters.sgx(2); // final acknowledgement round trip
        if report.target.mrenclave != quoting_enclave_measurement() {
            return Err(SgxError::QuoteInvalid("report not targeted at QE"));
        }
        // EGETKEY: the QE obtains its own report key.
        self.counters.sgx(1);
        let report_key = derive_key(
            device_key,
            KeyRequest::Report,
            &quoting_enclave_measurement(),
            &Measurement([0u8; 32]),
        );
        self.counters.normal(model.hmac_short);
        verify_report(&report_key, report)?;
        // Sign the quote with the group attestation key.
        self.counters.normal(model.quote_sign);
        self.counters.normal(model.attest_quote_base);
        let msg = Quote::message(self.group_id, &report.body);
        let signature = self
            .attestation_key
            .sign(&msg, &mut self.rng)
            .map_err(SgxError::Crypto)?;
        Ok(Quote {
            body: report.body.clone(),
            group_id: self.group_id,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ereport, report_data_from};

    fn m(b: u8) -> Measurement {
        Measurement([b; 32])
    }

    fn setup() -> (EpidGroup, QuotingEnclave, [u8; 32], CostModel) {
        let mut rng = SecureRng::seed_from_u64(42);
        let group = EpidGroup::new(7, &mut rng).unwrap();
        let qe = QuotingEnclave::new(&group, rng.fork(b"qe"));
        (group, qe, [3u8; 32], CostModel::paper())
    }

    fn report_for_qe(device_key: &[u8; 32], qe: &QuotingEnclave) -> Report {
        let body = ReportBody {
            mrenclave: m(1),
            mrsigner: m(2),
            isv_svn: 1,
            report_data: report_data_from(b"dh-pubkey-digest"),
        };
        ereport(device_key, qe.target_info(), body)
    }

    #[test]
    fn quote_roundtrip() {
        let (group, mut qe, dk, model) = setup();
        let report = report_for_qe(&dk, &qe);
        let quote = qe.quote(&dk, &report, &model).unwrap();
        let mut counters = Counters::new();
        quote
            .verify(&group.public_key(), &mut counters, &model)
            .unwrap();
        assert_eq!(quote.body.mrenclave, m(1));
        assert_eq!(counters.normal_instr, model.quote_verify);
    }

    #[test]
    fn quote_rejects_wrong_group_key() {
        let (_, mut qe, dk, model) = setup();
        let mut rng = SecureRng::seed_from_u64(99);
        let other_group = EpidGroup::new(8, &mut rng).unwrap();
        let report = report_for_qe(&dk, &qe);
        let quote = qe.quote(&dk, &report, &model).unwrap();
        let mut counters = Counters::new();
        assert!(quote
            .verify(&other_group.public_key(), &mut counters, &model)
            .is_err());
    }

    #[test]
    fn quote_rejects_report_for_other_target() {
        let (_, mut qe, dk, model) = setup();
        let body = ReportBody {
            mrenclave: m(1),
            mrsigner: m(2),
            isv_svn: 1,
            report_data: [0u8; 64],
        };
        // Report targeted at some other enclave, not the QE.
        let report = ereport(&dk, TargetInfo { mrenclave: m(9) }, body);
        assert!(qe.quote(&dk, &report, &model).is_err());
    }

    #[test]
    fn quote_rejects_forged_report_mac() {
        let (_, mut qe, dk, model) = setup();
        let mut report = report_for_qe(&dk, &qe);
        report.body.mrenclave = m(66); // lie about identity after MACing
        assert!(matches!(
            qe.quote(&dk, &report, &model),
            Err(SgxError::ReportMacMismatch)
        ));
    }

    #[test]
    fn tampered_quote_body_fails_verification() {
        let (group, mut qe, dk, model) = setup();
        let report = report_for_qe(&dk, &qe);
        let mut quote = qe.quote(&dk, &report, &model).unwrap();
        quote.body.report_data[0] ^= 1;
        let mut counters = Counters::new();
        assert!(quote
            .verify(&group.public_key(), &mut counters, &model)
            .is_err());
    }

    #[test]
    fn two_platforms_same_group_verify_under_one_key() {
        // The EPID property the model preserves: quotes from different
        // platforms in one group verify under the same public key.
        let mut rng = SecureRng::seed_from_u64(1);
        let group = EpidGroup::new(7, &mut rng).unwrap();
        let model = CostModel::paper();
        let mut qe_a = QuotingEnclave::new(&group, rng.fork(b"a"));
        let mut qe_b = QuotingEnclave::new(&group, rng.fork(b"b"));
        let dk_a = [1u8; 32];
        let dk_b = [2u8; 32];
        let ra = report_for_qe(&dk_a, &qe_a);
        let rb = report_for_qe(&dk_b, &qe_b);
        let qa = qe_a.quote(&dk_a, &ra, &model).unwrap();
        let qb = qe_b.quote(&dk_b, &rb, &model).unwrap();
        let mut c = Counters::new();
        qa.verify(&group.public_key(), &mut c, &model).unwrap();
        qb.verify(&group.public_key(), &mut c, &model).unwrap();
    }

    #[test]
    fn qe_counts_instructions() {
        let (_, mut qe, dk, model) = setup();
        let report = report_for_qe(&dk, &qe);
        qe.quote(&dk, &report, &model).unwrap();
        assert!(qe.counters.sgx_instr >= 3); // EENTER/EEXIT + EGETKEY
        assert!(qe.counters.normal_instr >= model.quote_sign);
    }
}
