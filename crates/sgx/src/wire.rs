//! Wire encodings for attestation structures.
//!
//! Reports and quotes cross trust boundaries as bytes (ecall/ocall
//! payloads, network messages), so they get explicit canonical encodings
//! with strict parsers. All integers little-endian; variable-length fields
//! u16-length-prefixed.

use teenet_crypto::schnorr::Signature;

use crate::error::{Result, SgxError};
use crate::measurement::Measurement;
use crate::quote::Quote;
use crate::report::{Report, ReportBody, TargetInfo, REPORT_DATA_LEN};

pub(crate) fn take<'a>(buf: &mut &'a [u8], n: usize, what: &'static str) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(SgxError::Crypto(teenet_crypto::CryptoError::Malformed(
            what,
        )));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

/// Like [`take`], but returns a fixed array, so parsers never need an
/// abort-on-mismatch `try_into().expect(..)` after a length check.
pub(crate) fn take_arr<const N: usize>(buf: &mut &[u8], what: &'static str) -> Result<[u8; N]> {
    let head = take(buf, N, what)?;
    let mut out = [0u8; N];
    out.copy_from_slice(head);
    Ok(out)
}

pub(crate) fn take_var<'a>(buf: &mut &'a [u8], what: &'static str) -> Result<&'a [u8]> {
    let len_bytes = take(buf, 2, what)?;
    let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]) as usize;
    take(buf, len, what)
}

pub(crate) fn put_var(out: &mut Vec<u8>, bytes: &[u8]) {
    debug_assert!(bytes.len() <= u16::MAX as usize);
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

impl ReportBody {
    /// Parses a body from the canonical encoding of
    /// [`ReportBody::to_bytes`].
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self> {
        let mrenclave = take_arr::<32>(&mut buf, "report body mrenclave")?;
        let mrsigner = take_arr::<32>(&mut buf, "report body mrsigner")?;
        let svn = take_arr::<2>(&mut buf, "report body svn")?;
        let data = take_arr::<REPORT_DATA_LEN>(&mut buf, "report body data")?;
        if !buf.is_empty() {
            return Err(SgxError::Crypto(teenet_crypto::CryptoError::Malformed(
                "report body trailing bytes",
            )));
        }
        Ok(ReportBody {
            mrenclave: Measurement(mrenclave),
            mrsigner: Measurement(mrsigner),
            isv_svn: u16::from_le_bytes(svn),
            report_data: data,
        })
    }

    /// Encoded length of a report body.
    pub const WIRE_LEN: usize = 32 + 32 + 2 + REPORT_DATA_LEN;
}

impl Report {
    /// Canonical wire encoding (body ‖ target ‖ mac).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ReportBody::WIRE_LEN + 64);
        out.extend_from_slice(&self.body.to_bytes());
        out.extend_from_slice(&self.target.mrenclave.0);
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses the encoding of [`Report::to_bytes`].
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self> {
        let body = take(&mut buf, ReportBody::WIRE_LEN, "report body")?;
        let target = take_arr::<32>(&mut buf, "report target")?;
        let mac = take_arr::<32>(&mut buf, "report mac")?;
        if !buf.is_empty() {
            return Err(SgxError::Crypto(teenet_crypto::CryptoError::Malformed(
                "report trailing bytes",
            )));
        }
        Ok(Report {
            body: ReportBody::from_bytes(body)?,
            target: TargetInfo {
                mrenclave: Measurement(target),
            },
            mac,
        })
    }
}

impl Quote {
    /// Canonical wire encoding (body ‖ group_id ‖ signature).
    pub fn to_bytes(&self) -> Vec<u8> {
        let sig = self.signature.to_bytes();
        let mut out = Vec::with_capacity(ReportBody::WIRE_LEN + 10 + sig.len());
        out.extend_from_slice(&self.body.to_bytes());
        out.extend_from_slice(&self.group_id.to_le_bytes());
        put_var(&mut out, &sig);
        out
    }

    /// Parses the encoding of [`Quote::to_bytes`].
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self> {
        let body = take(&mut buf, ReportBody::WIRE_LEN, "quote body")?;
        let gid = take_arr::<8>(&mut buf, "quote group id")?;
        let sig = take_var(&mut buf, "quote signature")?;
        if !buf.is_empty() {
            return Err(SgxError::Crypto(teenet_crypto::CryptoError::Malformed(
                "quote trailing bytes",
            )));
        }
        Ok(Quote {
            body: ReportBody::from_bytes(body)?,
            group_id: u64::from_le_bytes(gid),
            signature: Signature::from_bytes(sig).map_err(SgxError::Crypto)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::report_data_from;
    use teenet_crypto::schnorr::{SchnorrGroup, SigningKey};
    use teenet_crypto::SecureRng;

    fn body() -> ReportBody {
        ReportBody {
            mrenclave: Measurement([1u8; 32]),
            mrsigner: Measurement([2u8; 32]),
            isv_svn: 0x0304,
            report_data: report_data_from(b"bind me"),
        }
    }

    #[test]
    fn report_body_roundtrip() {
        let b = body();
        let parsed = ReportBody::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn report_body_rejects_bad_lengths() {
        let bytes = body().to_bytes();
        assert!(ReportBody::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(ReportBody::from_bytes(&long).is_err());
    }

    #[test]
    fn report_roundtrip() {
        let r = Report {
            body: body(),
            target: TargetInfo {
                mrenclave: Measurement([9u8; 32]),
            },
            mac: [7u8; 32],
        };
        let parsed = Report::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn quote_roundtrip() {
        let mut rng = SecureRng::seed_from_u64(3);
        let key = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let sig = key.sign(b"anything", &mut rng).unwrap();
        let q = Quote {
            body: body(),
            group_id: 42,
            signature: sig,
        };
        let parsed = Quote::from_bytes(&q.to_bytes()).unwrap();
        assert_eq!(parsed.body, q.body);
        assert_eq!(parsed.group_id, 42);
        assert_eq!(parsed.signature, q.signature);
    }

    #[test]
    fn quote_rejects_truncation_and_trailing() {
        let mut rng = SecureRng::seed_from_u64(3);
        let key = SigningKey::generate(&SchnorrGroup::small(), &mut rng).unwrap();
        let sig = key.sign(b"anything", &mut rng).unwrap();
        let q = Quote {
            body: body(),
            group_id: 42,
            signature: sig,
        };
        let bytes = q.to_bytes();
        assert!(Quote::from_bytes(&bytes[..10]).is_err());
        assert!(Quote::from_bytes(&bytes[..bytes.len() - 2]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(Quote::from_bytes(&long).is_err());
    }
}
