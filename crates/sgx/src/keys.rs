//! EGETKEY key derivation.
//!
//! All enclave-visible keys derive from the per-platform device key (fused
//! into the CPU at manufacture, in our model derived from the platform
//! seed). Derivations bind the requesting enclave's identity exactly the
//! way real SGX does: the *report key* binds MRENCLAVE (only that enclave
//! can verify REPORTs targeted at it), and *seal keys* bind MRENCLAVE or
//! MRSIGNER depending on policy.

use teenet_crypto::hmac::HmacSha256;

use crate::measurement::Measurement;

/// Key kinds an enclave can request through EGETKEY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyRequest {
    /// The key EREPORT used to MAC a REPORT targeted at this enclave.
    Report,
    /// Sealing key bound to the exact enclave identity (MRENCLAVE policy).
    SealEnclave,
    /// Sealing key bound to the enclave author (MRSIGNER policy) — survives
    /// software upgrades by the same signer.
    SealSigner {
        /// Minimum security version embedded in the derivation.
        isv_svn: u16,
    },
}

/// Derives a 256-bit key for `request` on behalf of the enclave with the
/// given identities, from the platform `device_key`.
pub fn derive_key(
    device_key: &[u8; 32],
    request: KeyRequest,
    mrenclave: &Measurement,
    mrsigner: &Measurement,
) -> [u8; 32] {
    let mut mac = HmacSha256::new(device_key);
    match request {
        KeyRequest::Report => {
            mac.update(b"sgx-report-key");
            mac.update(&mrenclave.0);
        }
        KeyRequest::SealEnclave => {
            mac.update(b"sgx-seal-mrenclave");
            mac.update(&mrenclave.0);
        }
        KeyRequest::SealSigner { isv_svn } => {
            mac.update(b"sgx-seal-mrsigner");
            mac.update(&mrsigner.0);
            mac.update(&isv_svn.to_le_bytes());
        }
    }
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(b: u8) -> Measurement {
        Measurement([b; 32])
    }

    #[test]
    fn report_key_binds_mrenclave() {
        let dk = [9u8; 32];
        let k1 = derive_key(&dk, KeyRequest::Report, &m(1), &m(7));
        let k2 = derive_key(&dk, KeyRequest::Report, &m(2), &m(7));
        assert_ne!(k1, k2);
        // Signer is irrelevant for the report key.
        let k3 = derive_key(&dk, KeyRequest::Report, &m(1), &m(8));
        assert_eq!(k1, k3);
    }

    #[test]
    fn seal_signer_key_survives_enclave_change() {
        let dk = [9u8; 32];
        let k1 = derive_key(&dk, KeyRequest::SealSigner { isv_svn: 1 }, &m(1), &m(7));
        let k2 = derive_key(&dk, KeyRequest::SealSigner { isv_svn: 1 }, &m(2), &m(7));
        assert_eq!(k1, k2, "same signer, different code → same seal key");
        let k3 = derive_key(&dk, KeyRequest::SealSigner { isv_svn: 2 }, &m(1), &m(7));
        assert_ne!(k1, k3, "svn bump rotates the key");
    }

    #[test]
    fn seal_enclave_key_differs_from_report_key() {
        let dk = [9u8; 32];
        let kr = derive_key(&dk, KeyRequest::Report, &m(1), &m(7));
        let ks = derive_key(&dk, KeyRequest::SealEnclave, &m(1), &m(7));
        assert_ne!(kr, ks);
    }

    #[test]
    fn different_platforms_different_keys() {
        let k1 = derive_key(&[1u8; 32], KeyRequest::Report, &m(1), &m(7));
        let k2 = derive_key(&[2u8; 32], KeyRequest::Report, &m(1), &m(7));
        assert_ne!(k1, k2);
    }
}
