//! Switchless enclave transitions: a shared-ring call model in the spirit
//! of HotCalls (Svenningsson et al., "Speeding up enclave transitions for
//! IO-intensive applications").
//!
//! The paper charges every enclave↔host crossing as SGX(U) instructions
//! (EENTER/EEXIT at 10 000 cycles each, §5 fn. 6) and blames those
//! crossings for much of the steady-state overhead: "mainly due to
//! in-enclave I/O and dynamic memory allocation that cause context
//! switches". Switchless calls remove the crossing: the enclave posts the
//! request into an **untrusted shared ring** and a host worker thread,
//! spinning on the ring, services it while the enclave keeps running.
//! What remains is ordinary work — writing the request into the ring and
//! the worker's poll/dispatch — charged as normal instructions.
//!
//! The emulated model, per would-be transition pair:
//!
//! * **Elided** — the worker is awake and the ring has a free slot: charge
//!   [`crate::cost::CostModel::switchless_post`] +
//!   [`crate::cost::CostModel::switchless_poll`] normal instructions and
//!   zero SGX instructions.
//! * **Fallback: ring full** — the ring has no free slot; the enclave
//!   takes a real transition (which drains the ring while the host runs).
//! * **Fallback: worker asleep** — the worker exhausted its spin budget
//!   ([`SwitchlessConfig::worker_spin_ecalls`] consecutive ecalls with no
//!   switchless traffic) and went to sleep; the enclave takes a real
//!   transition and pays [`crate::cost::CostModel::switchless_wake`] to
//!   wake it.
//!
//! Asynchronous exits (AEX on EPC eviction) are **never** elided — they
//! are hardware-initiated, not call-shaped, so no ring can absorb them.
//!
//! Ecalls are amortised instead of elided: a batched ecall
//! ([`crate::platform::Platform::ecall_batch`]) pays one EENTER/EEXIT
//! pair for N queued calls, mirroring the paper's Table 2, where batching
//! 100 packets turns 6 SGX instructions per packet into 204 per batch.

/// How an enclave crosses the enclave↔host boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransitionMode {
    /// Every crossing is a real EENTER/EEXIT pair (the paper's baseline).
    #[default]
    Classic,
    /// Ocall-path crossings go through the shared call ring when possible.
    Switchless,
}

impl TransitionMode {
    /// Stable lowercase name (used in reports and JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            TransitionMode::Classic => "classic",
            TransitionMode::Switchless => "switchless",
        }
    }
}

/// Tuning knobs of the switchless layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchlessConfig {
    /// Request slots in the untrusted shared ring. A burst longer than
    /// this inside one ecall overflows and falls back to a real
    /// transition (which drains the ring).
    pub ring_capacity: usize,
    /// Consecutive ecalls without switchless traffic the host worker
    /// spins through before going to sleep. `0` means the worker sleeps
    /// whenever an ecall posts nothing.
    pub worker_spin_ecalls: u32,
}

impl Default for SwitchlessConfig {
    fn default() -> Self {
        SwitchlessConfig {
            ring_capacity: 64,
            worker_spin_ecalls: 8,
        }
    }
}

/// Per-enclave accounting of boundary crossings, in EENTER/EEXIT *pairs*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransitionStats {
    /// Real transition pairs taken (classic crossings and fallbacks).
    pub taken: u64,
    /// Transition pairs elided — serviced through the ring, or amortised
    /// away by ecall batching.
    pub elided: u64,
    /// Switchless posts that had to fall back to a real transition
    /// (ring full or worker asleep). Always a subset of `taken`.
    pub fallbacks: u64,
}

impl TransitionStats {
    /// A zeroed stats record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates another record into this one.
    pub fn merge(&mut self, other: TransitionStats) {
        self.taken += other.taken;
        self.elided += other.elided;
        self.fallbacks += other.fallbacks;
    }

    /// Difference since an earlier snapshot (saturating, like
    /// [`crate::cost::Counters::since`]).
    pub fn since(&self, earlier: TransitionStats) -> TransitionStats {
        TransitionStats {
            taken: self.taken.saturating_sub(earlier.taken),
            elided: self.elided.saturating_sub(earlier.elided),
            fallbacks: self.fallbacks.saturating_sub(earlier.fallbacks),
        }
    }
}

/// Outcome of posting a would-be transition to the switchless layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Post {
    /// Classic mode: take the real transition.
    Classic,
    /// Serviced through the ring; no SGX instructions.
    Elided,
    /// Switchless mode but the request could not be absorbed; take a real
    /// transition. `woke` is true when the worker had to be woken.
    Fallback {
        /// Whether the sleeping worker was woken (charges the wake cost).
        woke: bool,
    },
}

/// Per-enclave switchless state: mode, ring occupancy, worker liveness.
#[derive(Debug, Clone)]
pub struct SwitchlessState {
    /// Current transition mode.
    pub mode: TransitionMode,
    /// Ring/worker tuning.
    pub config: SwitchlessConfig,
    /// Crossing statistics since enclave creation.
    pub stats: TransitionStats,
    worker_awake: bool,
    idle_ecalls: u32,
    ring_used: usize,
    posted_this_ecall: bool,
}

impl Default for SwitchlessState {
    fn default() -> Self {
        Self::new()
    }
}

impl SwitchlessState {
    /// Classic-mode state (no ring, no worker).
    pub fn new() -> Self {
        SwitchlessState {
            mode: TransitionMode::Classic,
            config: SwitchlessConfig::default(),
            stats: TransitionStats::new(),
            worker_awake: false,
            idle_ecalls: 0,
            ring_used: 0,
            posted_this_ecall: false,
        }
    }

    /// Switches modes. Entering switchless starts the worker spinning
    /// (awake); returning to classic parks it.
    pub fn set_mode(&mut self, mode: TransitionMode) {
        self.mode = mode;
        self.worker_awake = mode == TransitionMode::Switchless;
        self.idle_ecalls = 0;
        self.ring_used = 0;
    }

    /// Whether the host worker is currently spinning on the ring.
    pub fn worker_awake(&self) -> bool {
        self.worker_awake
    }

    /// Called at every EENTER: the host ran between ecalls, so the worker
    /// has drained the ring.
    pub(crate) fn on_ecall_start(&mut self) {
        self.ring_used = 0;
        self.posted_this_ecall = false;
    }

    /// Called at every EEXIT: ecalls that post nothing burn the worker's
    /// spin budget; past it, the worker sleeps.
    pub(crate) fn on_ecall_end(&mut self) {
        if self.mode != TransitionMode::Switchless {
            return;
        }
        if self.posted_this_ecall {
            self.idle_ecalls = 0;
        } else {
            self.idle_ecalls = self.idle_ecalls.saturating_add(1);
            if self.idle_ecalls > self.config.worker_spin_ecalls {
                self.worker_awake = false;
            }
        }
    }

    /// Tries to absorb `pairs` would-be transition pairs into the ring.
    pub(crate) fn post(&mut self, pairs: u64) -> Post {
        if self.mode != TransitionMode::Switchless {
            return Post::Classic;
        }
        self.posted_this_ecall = true;
        self.idle_ecalls = 0;
        if !self.worker_awake {
            // Wake the worker via a real transition; the ring is empty
            // once it resumes spinning.
            self.worker_awake = true;
            self.ring_used = 0;
            return Post::Fallback { woke: true };
        }
        let pairs = pairs as usize;
        if self.ring_used + pairs > self.config.ring_capacity {
            // Overflow: the real transition gives the worker time to
            // drain everything.
            self.ring_used = 0;
            return Post::Fallback { woke: false };
        }
        self.ring_used += pairs;
        Post::Elided
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switchless(ring: usize, spin: u32) -> SwitchlessState {
        let mut s = SwitchlessState::new();
        s.config = SwitchlessConfig {
            ring_capacity: ring,
            worker_spin_ecalls: spin,
        };
        s.set_mode(TransitionMode::Switchless);
        s
    }

    /// Compile-time regression: the switchless ring/worker state is plain
    /// owned data and must stay `Send` (it rides inside `Enclave`, which
    /// moves to a load shard's thread together with its platform).
    #[test]
    fn switchless_state_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SwitchlessState>();
        assert_send::<TransitionStats>();
    }

    #[test]
    fn classic_mode_never_elides() {
        let mut s = SwitchlessState::new();
        assert_eq!(s.post(1), Post::Classic);
        assert_eq!(s.post(10), Post::Classic);
    }

    #[test]
    fn awake_worker_elides_until_ring_full() {
        let mut s = switchless(3, 8);
        s.on_ecall_start();
        assert_eq!(s.post(1), Post::Elided);
        assert_eq!(s.post(1), Post::Elided);
        assert_eq!(s.post(1), Post::Elided);
        // Fourth post overflows the 3-slot ring: fallback drains it.
        assert_eq!(s.post(1), Post::Fallback { woke: false });
        // Drained: elision resumes.
        assert_eq!(s.post(1), Post::Elided);
    }

    #[test]
    fn ring_drains_between_ecalls() {
        let mut s = switchless(2, 8);
        s.on_ecall_start();
        assert_eq!(s.post(2), Post::Elided);
        s.on_ecall_end();
        s.on_ecall_start();
        assert_eq!(s.post(2), Post::Elided, "fresh ecall sees an empty ring");
    }

    #[test]
    fn idle_worker_sleeps_then_fallback_wakes_it() {
        let mut s = switchless(8, 1);
        // Two consecutive ecalls without switchless traffic: budget is 1,
        // so the second idle ecall puts the worker to sleep.
        for _ in 0..2 {
            s.on_ecall_start();
            s.on_ecall_end();
        }
        assert!(!s.worker_awake());
        s.on_ecall_start();
        assert_eq!(s.post(1), Post::Fallback { woke: true });
        assert!(s.worker_awake());
        assert_eq!(s.post(1), Post::Elided, "worker spins again after wake");
    }

    #[test]
    fn posting_keeps_worker_awake() {
        let mut s = switchless(8, 0);
        for _ in 0..5 {
            s.on_ecall_start();
            assert_eq!(s.post(1), Post::Elided);
            s.on_ecall_end();
            assert!(s.worker_awake(), "active traffic resets the spin budget");
        }
    }

    #[test]
    fn stats_since_is_saturating() {
        let a = TransitionStats {
            taken: 1,
            elided: 2,
            fallbacks: 0,
        };
        let b = TransitionStats {
            taken: 5,
            elided: 1,
            fallbacks: 3,
        };
        let d = a.since(b);
        assert_eq!(d.taken, 0);
        assert_eq!(d.elided, 1);
        assert_eq!(d.fallbacks, 0);
    }

    #[test]
    fn mode_names_are_stable() {
        assert_eq!(TransitionMode::Classic.as_str(), "classic");
        assert_eq!(TransitionMode::Switchless.as_str(), "switchless");
    }

    /// Sequential analogue of the `teenet-analyze` ring model checker:
    /// enumerate every ecall sequence over {post one pair, overflow
    /// post, idle ecall} and check the same invariants on the real
    /// implementation — outcome conservation (every post is elided or
    /// falls back), the woke flag reflecting the worker's state, posts
    /// always leaving the worker spinning, and occupancy within the
    /// ring capacity.
    #[test]
    fn enumerated_ecall_sequences_conserve_outcomes() {
        const OPS: u32 = 3;
        const DEPTH: u32 = 7;
        for (ring, spin) in [(1usize, 0u32), (2, 1), (3, 2)] {
            for encoded in 0..OPS.pow(DEPTH) {
                let mut seq = encoded;
                let mut s = switchless(ring, spin);
                let (mut posts, mut elided, mut fallbacks) = (0u64, 0u64, 0u64);
                for _ in 0..DEPTH {
                    let op = seq % OPS;
                    seq /= OPS;
                    s.on_ecall_start();
                    if op < 2 {
                        let pairs = if op == 0 { 1 } else { ring as u64 + 1 };
                        let awake_before = s.worker_awake();
                        posts += 1;
                        match s.post(pairs) {
                            Post::Elided => elided += 1,
                            Post::Fallback { woke } => {
                                fallbacks += 1;
                                assert_eq!(
                                    woke, !awake_before,
                                    "woke flag must reflect the worker state"
                                );
                            }
                            Post::Classic => {
                                panic!("switchless mode never returns Classic")
                            }
                        }
                        assert!(s.worker_awake(), "a post always leaves the worker spinning");
                    }
                    s.on_ecall_end();
                    assert!(
                        s.ring_used <= s.config.ring_capacity,
                        "ring occupancy must stay within capacity"
                    );
                }
                assert_eq!(
                    elided + fallbacks,
                    posts,
                    "every post is elided or falls back (seq {encoded}, ring {ring}, spin {spin})"
                );
            }
        }
    }
}
